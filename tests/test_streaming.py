"""Streaming driver: sustained back-to-back transforms."""

import numpy as np
import pytest

from repro.asip.streaming import StreamingFFT


def blocks(n, count, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(count):
        yield rng.standard_normal(n) + 1j * rng.standard_normal(n)


class TestStreamingFFT:
    def test_stream_of_symbols_all_verified(self):
        stream = StreamingFFT(64)
        stats = stream.process(blocks(64, 5))
        assert stats.symbols == 5
        assert stats.total_cycles > 0

    def test_cycle_count_is_deterministic(self):
        """No data-dependent control flow: every symbol costs the same."""
        stats = StreamingFFT(128).process(blocks(128, 4, seed=3))
        assert stats.is_deterministic
        assert len(stats.per_symbol_cycles) == 4

    def test_sustained_rate_matches_single_shot(self):
        from repro.asip import simulate_fft

        n = 64
        single = simulate_fft(
            np.random.default_rng(1).standard_normal(n).astype(complex)
        ).stats.cycles
        stats = StreamingFFT(n).process(blocks(n, 3, seed=1))
        # the stream re-runs the identical program; rates agree closely
        assert abs(stats.cycles_per_symbol - single) / single < 0.02

    def test_throughput_property(self):
        stats = StreamingFFT(64).process(blocks(64, 2))
        assert stats.msamples_per_second > 50

    def test_fixed_point_stream(self):
        def scaled_blocks():
            rng = np.random.default_rng(5)
            for _ in range(2):
                yield 0.2 * (
                    rng.standard_normal(64) + 1j * rng.standard_normal(64)
                )

        stats = StreamingFFT(64, fixed_point=True).process(scaled_blocks())
        assert stats.symbols == 2

    def test_verification_catches_corruption(self):
        stream = StreamingFFT(16)
        # corrupt by patching read_output to return garbage
        original = stream.asip.read_output
        stream.asip.read_output = lambda: np.zeros(16, dtype=complex)
        with pytest.raises(AssertionError):
            stream.process(blocks(16, 1, seed=9))
        stream.asip.read_output = original

    def test_empty_stream(self):
        stats = StreamingFFT(16).process([])
        assert stats.symbols == 0
        assert stats.cycles_per_symbol == 0.0
        assert stats.msamples_per_second == 0.0
