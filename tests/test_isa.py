"""ISA layer: instruction objects, encoding round-trips, registers."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    BRANCH_OPCODES,
    CUSTOM_OPCODES,
    Format,
    Instruction,
    Opcode,
    decode,
    encode,
    encode_program,
    name_to_number,
    number_to_name,
)
from repro.isa.disassembler import round_trip
from repro.isa.instructions import OPCODE_FORMAT


class TestRegisters:
    def test_plain_names(self):
        assert name_to_number("r0") == 0
        assert name_to_number("R31") == 31

    def test_aliases(self):
        assert name_to_number("zero") == 0
        assert name_to_number("$sp") == 29
        assert name_to_number("ra") == 31

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            name_to_number("r32")
        with pytest.raises(ValueError):
            name_to_number("bogus")

    def test_number_to_name(self):
        assert number_to_name(0) == "zero"
        with pytest.raises(ValueError):
            number_to_name(32)


class TestInstruction:
    def test_every_opcode_has_a_format(self):
        assert set(OPCODE_FORMAT) == set(Opcode)

    def test_register_validation(self):
        with pytest.raises(ValueError):
            Instruction(opcode=Opcode.ADD, rd=32)

    def test_custom_set(self):
        assert Opcode.BUT4 in CUSTOM_OPCODES
        assert Instruction(opcode=Opcode.LDIN).is_custom
        assert not Instruction(opcode=Opcode.ADD).is_custom

    def test_str_forms(self):
        assert str(Instruction(opcode=Opcode.NOP)) == "nop"
        lw = Instruction(opcode=Opcode.LW, rt=5, rs=2, imm=-4)
        assert str(lw) == "lw r5, -4(r2)"
        add = Instruction(opcode=Opcode.ADD, rd=1, rs=2, rt=3)
        assert str(add) == "add r1, r2, r3"
        jr = Instruction(opcode=Opcode.JR, rs=31)
        assert str(jr) == "jr r31"


def _random_instruction(draw):
    opcode = draw(st.sampled_from(list(Opcode)))
    fmt = OPCODE_FORMAT[opcode]
    reg = st.integers(0, 31)
    if fmt is Format.NONE:
        return Instruction(opcode=opcode)
    if fmt is Format.J:
        return Instruction(opcode=opcode, imm=draw(st.integers(0, 100_000)))
    if fmt is Format.R:
        return Instruction(
            opcode=opcode, rd=draw(reg), rs=draw(reg), rt=draw(reg)
        )
    if opcode in BRANCH_OPCODES:
        imm = draw(st.integers(0, 30_000))
    else:
        imm = draw(st.integers(-32768, 32767))
    return Instruction(opcode=opcode, rs=draw(reg), rt=draw(reg), imm=imm)


class TestEncoding:
    @given(st.data())
    def test_round_trip(self, data):
        instr = _random_instruction(data.draw)
        index = data.draw(st.integers(0, 1000))
        back = round_trip(instr, index)
        assert back.opcode == instr.opcode
        fmt = instr.format
        if fmt is Format.R:
            assert (back.rd, back.rs, back.rt) == (
                instr.rd, instr.rs, instr.rt
            )
        elif fmt is Format.I:
            assert (back.rs, back.rt, back.imm) == (
                instr.rs, instr.rt, instr.imm
            )
        elif fmt is Format.J:
            assert back.imm == instr.imm

    def test_words_are_32_bit(self):
        instr = Instruction(opcode=Opcode.ADDI, rt=1, rs=2, imm=-1)
        word = encode(instr)
        assert 0 <= word < (1 << 32)

    def test_branch_offsets_are_pc_relative(self):
        # a branch at index 10 targeting 8 encodes a negative offset
        br = Instruction(opcode=Opcode.BNE, rs=1, rt=0, imm=8)
        word = encode(br, index=10)
        assert (word & 0xFFFF) == 0xFFFD  # -3
        assert decode(word, index=10).imm == 8

    def test_oversized_immediate_rejected(self):
        with pytest.raises(ValueError):
            encode(Instruction(opcode=Opcode.ADDI, rt=1, imm=70_000))

    def test_encode_program(self):
        from repro.isa import ProgramBuilder

        b = ProgramBuilder()
        b.li(1, 5)
        b.halt()
        words = encode_program(b.build())
        assert len(words) == 2
