"""End-to-end FFT ASIP simulation: correctness, stats, custom-op semantics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.asip import (
    FFTASIP,
    GROUP_SIZE_REG,
    generate_fft_program,
    simulate_fft,
)
from repro.isa import Opcode, ProgramBuilder
from repro.sim.errors import SimulationError


def random_vector(n, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


class TestEndToEnd:
    @given(st.sampled_from([8, 16, 32, 64, 128, 256]),
           st.integers(0, 1000))
    @settings(deadline=None, max_examples=12)
    def test_spectrum_matches_numpy(self, n, seed):
        x = random_vector(n, seed)
        result = simulate_fft(x)
        assert np.allclose(result.spectrum, np.fft.fft(x), atol=1e-8 * n)

    def test_1024_point(self):
        x = random_vector(1024, 42)
        result = simulate_fft(x)
        assert np.allclose(result.spectrum, np.fft.fft(x), atol=1e-6)

    def test_fixed_point_mode(self):
        n = 64
        x = random_vector(n, 7) * 0.2
        result = simulate_fft(x, fixed_point=True)
        reference = np.fft.fft(x) / n
        from repro.core import snr_db

        assert snr_db(reference, result.spectrum) > 35.0


class TestStatistics:
    def test_custom_op_counts_match_plan(self):
        x = random_vector(256, 1)
        result = simulate_fft(x)
        plan = result.asip.plan
        ops = result.stats.custom_ops
        assert ops["ldin"] == plan.total_ldin == 256
        assert ops["stout"] == plan.total_stout == 256
        assert ops["but4"] == plan.total_but4

    def test_ldin_stout_count_as_loads_stores(self):
        result = simulate_fft(random_vector(64, 2))
        assert result.stats.loads == 64
        assert result.stats.stores == 64

    def test_cycles_close_to_paper_table1(self):
        """Within 15% of every published Table I row."""
        paper = {64: 197, 128: 402, 256: 851, 512: 1828, 1024: 4168}
        for n, expected in paper.items():
            result = simulate_fft(random_vector(n, n))
            assert abs(result.stats.cycles - expected) / expected < 0.15, (
                n, result.stats.cycles
            )

    def test_throughput_decreases_with_size(self):
        """Table I's qualitative claim."""
        rates = []
        for n in (64, 128, 256, 512, 1024):
            result = simulate_fft(random_vector(n, n))
            rates.append(result.throughput.mbps_paper_convention)
        assert rates == sorted(rates, reverse=True)

    def test_bu_op_count(self):
        result = simulate_fft(random_vector(64, 3))
        assert result.asip.bu.op_count == result.asip.plan.total_but4


class TestCustomOpSemantics:
    def test_group_size_must_be_configured(self):
        asip = FFTASIP(64)
        b = ProgramBuilder()
        b.emit(Opcode.BUT4, rs=1, rt=2)
        b.halt()
        with pytest.raises(SimulationError):
            asip.run(b.build())

    def test_ldin_post_increment_and_wrap(self):
        asip = FFTASIP(64)
        asip.memory.write_complex(0, 1 + 2j)
        asip.memory.write_complex(1, 3 + 4j)
        b = ProgramBuilder()
        b.li(GROUP_SIZE_REG, 8)
        b.li(4, 0)   # mem cursor
        b.li(5, 0)   # crf cursor
        b.emit(Opcode.LDIN, rs=4, rt=5)
        b.halt()
        asip.run(b.build())
        assert asip.crf.read(0) == 1 + 2j
        assert asip.crf.read(1) == 3 + 4j
        assert asip.read_reg(4) == 2
        assert asip.read_reg(5) == 2

    def test_stout_prerotation_outside_scratch_rejected(self):
        asip = FFTASIP(64)
        b = ProgramBuilder()
        b.li(GROUP_SIZE_REG, 8)
        b.li(6, 0)
        b.li(7, 0)  # input region, not scratch
        b.emit(Opcode.STOUT, rs=6, rt=7, imm=1)
        b.halt()
        with pytest.raises(SimulationError):
            asip.run(b.build())

    def test_input_length_validated(self):
        with pytest.raises(ValueError):
            FFTASIP(64).load_input(np.zeros(32))

    def test_ai0_layout_is_corner_turned(self):
        asip = FFTASIP(16)  # P = Q = 4
        x = np.arange(16, dtype=complex)
        asip.load_input(x)
        # point l*P + m holds x[Q*m + l]; group 1, element 2 -> x[4*2+1]
        assert asip.memory.read_complex(1 * 4 + 2) == 9 + 0j


class TestProgramShape:
    def test_small_sizes_fully_unrolled(self):
        program = generate_fft_program(64)
        opcodes = [i.opcode for i in program]
        assert Opcode.BNE not in opcodes
        assert opcodes.count(Opcode.LDIN) == 64 // 2 * 2  # both epochs

    def test_large_sizes_use_group_loops(self):
        program = generate_fft_program(1024)
        opcodes = [i.opcode for i in program]
        assert Opcode.BNE in opcodes
        # loops keep the program compact
        assert len(program) < 300

    def test_program_size_mismatch_rejected(self):
        from repro.core.plan import build_plan

        with pytest.raises(ValueError):
            generate_fft_program(64, build_plan(128))

    def test_non_square_sizes_work(self):
        for n in (8, 32, 128, 512, 2048):
            x = random_vector(n, n)
            result = simulate_fft(x)
            assert np.allclose(
                result.spectrum, np.fft.fft(x), atol=1e-7 * n
            )
