"""Q1.15 fixed-point datapath: quantisation, saturation, bit-level I/O."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fixed_point import (
    FixedComplex,
    FixedPointContext,
    quantize,
    snr_db,
)

unit_floats = st.floats(-0.999, 0.999)
unit_cplx = st.builds(complex, unit_floats, unit_floats)


class TestQuantize:
    @given(unit_cplx)
    def test_error_bounded_by_half_lsb(self, value):
        q = quantize(value).to_complex()
        assert abs(q.real - value.real) <= 2 ** -16 + 1e-12
        assert abs(q.imag - value.imag) <= 2 ** -16 + 1e-12

    def test_saturates_above_one(self):
        q = quantize(2.0 + 0j)
        assert q.re == 2 ** 15 - 1

    def test_saturates_below_minus_one(self):
        q = quantize(-2.0 - 2.0j)
        assert q.re == -(2 ** 15)
        assert q.im == -(2 ** 15)

    @given(unit_cplx)
    def test_idempotent_on_grid(self, value):
        once = quantize(value)
        again = quantize(once.to_complex())
        assert once == again


class TestWords:
    @given(st.integers(-(2 ** 15), 2 ** 15 - 1),
           st.integers(-(2 ** 15), 2 ** 15 - 1))
    def test_word_roundtrip(self, re, im):
        fx = FixedComplex(re, im)
        assert FixedComplex.from_words(*fx.to_words()) == fx

    def test_negative_packing(self):
        fx = FixedComplex(-1, -32768)
        re_w, im_w = fx.to_words()
        assert re_w == 0xFFFF
        assert im_w == 0x8000


class TestContext:
    def test_butterfly_matches_float_when_exact(self):
        ctx = FixedPointContext(scale_stages=False)
        a, b = quantize(0.25 + 0j), quantize(0.25 + 0j)
        w = quantize(1.0 - 2 ** -15)  # ~unity
        s, d = ctx.butterfly(a, b, w)
        assert abs(s.to_complex().real - 0.5) < 1e-3
        assert abs(d.to_complex().real) < 1e-3

    def test_scaling_halves_outputs(self):
        ctx = FixedPointContext(scale_stages=True)
        s, d = ctx.butterfly(
            quantize(0.5), quantize(0.5), quantize(1.0 - 2 ** -15)
        )
        assert abs(s.to_complex().real - 0.5) < 1e-3  # (0.5+0.5)/2
        assert abs(d.to_complex().real) < 1e-3

    def test_overflow_detected_without_scaling(self):
        ctx = FixedPointContext(scale_stages=False)
        ctx.add(quantize(0.9), quantize(0.9))
        assert ctx.overflow_count == 1

    def test_no_overflow_with_scaling(self):
        ctx = FixedPointContext(scale_stages=True)
        ctx.add(quantize(0.9), quantize(0.9))
        assert ctx.overflow_count == 0

    @given(
        st.builds(complex, st.floats(-0.49, 0.49), st.floats(-0.49, 0.49)),
        st.builds(complex, st.floats(-0.49, 0.49), st.floats(-0.49, 0.49)),
    )
    @settings(max_examples=50)
    def test_multiply_close_to_float(self, x, w):
        """Inputs bounded so the product components stay inside Q1.15
        (saturation on overflow is tested separately)."""
        ctx = FixedPointContext()
        got = ctx.multiply(quantize(x), quantize(w)).to_complex()
        assert abs(got - x * w) < 1e-3

    def test_multiply_saturates_on_large_product(self):
        ctx = FixedPointContext()
        big = quantize(0.999 + 0.999j)
        got = ctx.multiply(big, quantize(0.999 - 0.999j)).to_complex()
        assert abs(got.real - (1.0 - 2 ** -15)) < 1e-3  # clamped
        assert ctx.overflow_count >= 1

    def test_vector_helpers_roundtrip(self):
        ctx = FixedPointContext()
        x = np.array([0.1 + 0.2j, -0.3 - 0.4j])
        back = ctx.to_complex_vector(ctx.quantize_vector(x))
        assert np.allclose(back, x, atol=1e-4)


class TestSnr:
    def test_perfect_is_infinite(self):
        x = np.array([1.0 + 1j])
        assert snr_db(x, x) == float("inf")

    def test_known_ratio(self):
        ref = np.array([1.0 + 0j])
        measured = np.array([1.1 + 0j])
        assert abs(snr_db(ref, measured) - 20.0) < 0.1

    def test_zero_signal(self):
        assert snr_db(np.zeros(2), np.ones(2)) == float("-inf")
