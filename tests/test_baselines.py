"""Table II baselines: software FFT program, TI and Xtensa models."""

import numpy as np
import pytest

from repro.baselines import (
    ButterflyKernel,
    SoftwareFFTBaseline,
    TIVliwModel,
    VliwResources,
    XtensaFFTModel,
    run_table2,
)


class TestSoftwareBaseline:
    @pytest.mark.parametrize("n", [8, 16, 64, 128])
    def test_correct_spectrum(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        spectrum, _ = SoftwareFFTBaseline(n).run(x)
        assert np.allclose(spectrum, np.fft.fft(x), atol=1e-6)

    def test_cycle_count_scales_like_nlogn_times_constant(self):
        s64 = SoftwareFFTBaseline(64).run(np.ones(64))[1]
        s256 = SoftwareFFTBaseline(256).run(np.ones(256))[1]
        ratio = s256.cycles / s64.cycles
        # butterfly count ratio = (256*8)/(64*6) = 5.33
        assert 4.5 < ratio < 6.0

    def test_hundreds_of_cycles_per_butterfly(self):
        """The naive-software signature the paper's 866x rests on."""
        n = 64
        stats = SoftwareFFTBaseline(n).run(np.ones(n))[1]
        per_butterfly = stats.cycles / (n // 2 * 6)
        assert per_butterfly > 200

    def test_input_length_validated(self):
        with pytest.raises(ValueError):
            SoftwareFFTBaseline(64).run(np.zeros(32))


class TestTIModel:
    def test_initiation_interval_is_4(self):
        """The paper's 'about 4 cycles per butterfly'."""
        assert ButterflyKernel().initiation_interval(VliwResources()) == 4

    def test_1024_cycles_near_paper(self):
        cycles = TIVliwModel(1024).cycle_count()
        assert abs(cycles - 24_976) / 24_976 < 0.05

    def test_misses_near_paper(self):
        misses = TIVliwModel(1024).simulate().dcache_misses
        assert abs(misses - 9_944) / 9_944 < 0.10

    def test_loads_stores_unreported(self):
        stats = TIVliwModel(1024).simulate()
        assert stats.loads == 0 and stats.stores == 0

    def test_wider_machine_lowers_ii(self):
        wide = VliwResources(ldst=4, mult=4, alu=4)
        assert ButterflyKernel().initiation_interval(wide) == 2


class TestXtensaModel:
    def test_1024_near_paper(self):
        model = XtensaFFTModel(1024)
        stats = model.simulate()
        assert abs(stats.cycles - 9_705) / 9_705 < 0.10
        assert abs(stats.loads - 5_494) / 5_494 < 0.10
        assert abs(stats.stores - 5_301) / 5_301 < 0.10

    def test_misses_sit_near_compulsory_footprint(self):
        stats = XtensaFFTModel(1024).simulate()
        # 1024 packed points + twiddles over 8-word lines
        assert 100 < stats.dcache_misses < 400

    def test_memory_bound_scaling(self):
        c512 = XtensaFFTModel(512).cycle_count()
        c1024 = XtensaFFTModel(1024).cycle_count()
        # N log N scaling: (1024*10)/(512*9) = 2.22
        assert 2.0 < c1024 / c512 < 2.5


class TestTable2:
    def test_full_comparison_small(self):
        """Run the whole Table II flow at N=256 (fast) and check the
        ordering and magnitude relations the paper reports."""
        rows = run_table2(256)
        sw = rows["standard_sw"].cycles
        ti = rows["ti_dsp"].cycles
        xt = rows["xtensa"].cycles
        ours = rows["proposed"].cycles
        assert sw > ti > xt > ours
        assert rows["standard_sw"].improvement_over(rows["standard_sw"]) == 1
        assert sw / ours > 100          # hundreds-X over pure software
        assert 3 < ti / ours < 12       # single-digit-X over the DSP
        assert 1.5 < xt / ours < 4      # ~2-3X over Xtensa

    def test_loads_reduction_vs_xtensa(self):
        rows = run_table2(256)
        assert rows["xtensa"].loads / rows["proposed"].loads > 3
