"""Cross-module integration: the full correctness chain of the README.

algorithm engine == ASIP execution == numpy, across datapaths, programs
surviving binary encode/decode, and the OFDM system exercising the whole
stack at once.
"""

import numpy as np
import pytest

from repro.asip import FFTASIP, generate_fft_program, simulate_fft
from repro.core import ArrayFFT
from repro.fft import cached_fft
from repro.isa import Program, decode, encode


def random_vector(n, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


class TestThreeLevelAgreement:
    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_algorithm_equals_asip_equals_numpy(self, n):
        x = random_vector(n, n)
        algorithm = ArrayFFT(n).transform(x)
        asip = simulate_fft(x).spectrum
        reference = np.fft.fft(x)
        assert np.allclose(algorithm, reference, atol=1e-9 * n)
        assert np.allclose(asip, reference, atol=1e-9 * n)
        assert np.allclose(asip, algorithm, atol=1e-9 * n)

    def test_array_engine_plugs_into_cached_skeleton(self):
        """The ArrayFFT can serve as the inner engine of the generic
        cached-FFT skeleton (P-point groups of a larger transform)."""
        n = 256
        x = random_vector(n, 1)
        inner_engines = {}

        def inner(group):
            size = len(group)
            if size not in inner_engines:
                inner_engines[size] = ArrayFFT(size)
            return inner_engines[size].transform(group)

        assert np.allclose(cached_fft(x, inner_fft=inner), np.fft.fft(x))

    def test_fixed_point_asip_equals_fixed_point_algorithm(self):
        """Bit-true agreement between the two Q1.15 paths."""
        n = 64
        x = random_vector(n, 5) * 0.2
        algorithm = ArrayFFT(n, fixed_point=True).transform(x)
        asip = simulate_fft(x, fixed_point=True).spectrum
        assert np.allclose(asip, algorithm, atol=2e-4)


class TestBinaryProgramPath:
    def test_program_survives_encode_decode_and_runs(self):
        """Encode the generated program to 32-bit words, decode it back,
        execute the decoded program — identical spectrum and cycles."""
        n = 64
        x = random_vector(n, 3)

        direct = FFTASIP(n)
        direct.load_input(x)
        program = generate_fft_program(n, direct.plan)
        direct_stats = direct.run(program)

        words = [encode(instr, i) for i, instr in enumerate(program)]
        decoded = Program(
            instructions=[decode(w, i) for i, w in enumerate(words)],
            name="decoded",
        )
        roundtrip = FFTASIP(n)
        roundtrip.load_input(x)
        rt_stats = roundtrip.run(decoded)

        assert np.allclose(roundtrip.read_output(), direct.read_output())
        assert rt_stats.cycles == direct_stats.cycles
        assert rt_stats.instructions == direct_stats.instructions


class TestSystemLevel:
    def test_ofdm_symbol_through_full_stack(self):
        """Transmitter (ArrayFFT inverse) -> channel -> instruction-level
        ASIP receiver -> demap, with multipath equalisation."""
        from repro.ofdm import MultipathChannel, OfdmLink

        channel = MultipathChannel.exponential_profile(
            3, rng=np.random.default_rng(11)
        )
        link = OfdmLink(64, scheme="16qam", channel=channel,
                        snr_db=35.0, use_asip=True, seed=8)
        result = link.run_symbol()
        assert result.bit_errors == 0
        assert result.fft_cycles > 0

    def test_back_to_back_symbols_are_independent(self):
        """Repeated ASIP runs on one machine family stay correct (no
        state leaks between symbols)."""
        n = 32
        for seed in range(4):
            x = random_vector(n, seed)
            assert np.allclose(
                simulate_fft(x).spectrum, np.fft.fft(x), atol=1e-9
            )
