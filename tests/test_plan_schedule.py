"""Execution plans and BU scheduling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.plan import build_plan
from repro.core.schedule import (
    BUOp,
    horizontal_schedule,
    interleaved_schedule,
)

SIZES = st.sampled_from([8, 16, 64, 128, 256, 1024])


class TestPlan:
    def test_1024_structure(self):
        plan = build_plan(1024)
        assert plan.split.P == 32 and plan.split.Q == 32
        assert plan.crf_entries == 32
        e0, e1 = plan.epochs
        assert e0.group_count == 32 and e0.group_size == 32
        assert e0.stage_count == 5
        assert e0.stages[0].modules == 4

    def test_counts_match_paper_formulas(self):
        """LDIN repeats N times total; BUT4 = N*log2(N)/8."""
        plan = build_plan(1024)
        assert plan.total_ldin == 1024
        assert plan.total_stout == 1024
        assert plan.total_but4 == 1024 * 10 // 8

    @given(SIZES)
    def test_but4_count_any_size(self, n):
        plan = build_plan(n)
        stages = n.bit_length() - 1
        # one butterfly per 2 points per stage, 4 per BUT4 (capped below 8)
        expected = sum(
            e.group_count * e.stage_count
            * max(e.group_size // 8, 1)
            for e in plan.epochs
        )
        assert plan.total_but4 == expected
        if n >= 64:
            assert plan.total_but4 == n * stages // 8

    @given(SIZES)
    def test_stage_tables_are_permutations(self, n):
        plan = build_plan(n)
        for epoch in plan.epochs:
            for stage in epoch.stages:
                assert sorted(stage.read_addresses) == list(
                    range(epoch.group_size)
                )
                assert len(stage.coefficient_indices) == (
                    epoch.group_size // 2
                )

    def test_plan_size_mismatch(self):
        from repro.addressing.epoch import split_epochs

        with pytest.raises(ValueError):
            build_plan(64, split_epochs(128))


class TestHorizontalSchedule:
    def test_covers_every_op_once(self):
        plan = build_plan(64)
        ops = list(horizontal_schedule(plan))
        assert len(ops) == plan.total_but4
        assert len(set(ops)) == len(ops)

    def test_order_is_stages_within_group(self):
        plan = build_plan(64)
        ops = list(horizontal_schedule(plan))
        first_group = [op for op in ops if op.epoch == 0 and op.group == 0]
        assert [op.stage for op in first_group] == [1, 2, 3]
        # group 0 completes before group 1 starts
        idx_g0 = max(
            i for i, op in enumerate(ops)
            if op.epoch == 0 and op.group == 0
        )
        idx_g1 = min(
            i for i, op in enumerate(ops)
            if op.epoch == 0 and op.group == 1
        )
        assert idx_g0 < idx_g1

    def test_epoch0_before_epoch1(self):
        ops = list(horizontal_schedule(build_plan(256)))
        switch = [op.epoch for op in ops]
        assert switch == sorted(switch)


class TestInterleavedSchedule:
    def test_same_op_set_as_horizontal(self):
        plan = build_plan(64)
        assert set(interleaved_schedule(plan, ways=2)) == set(
            horizontal_schedule(plan)
        )

    def test_two_way_interleaves_stages(self):
        plan = build_plan(64)
        ops = list(interleaved_schedule(plan, ways=2))
        # within the first bundle, stage 1 of groups 0 and 1 precede
        # stage 2 of group 0
        s1g1 = min(
            i for i, op in enumerate(ops)
            if (op.epoch, op.group, op.stage) == (0, 1, 1)
        )
        s2g0 = min(
            i for i, op in enumerate(ops)
            if (op.epoch, op.group, op.stage) == (0, 0, 2)
        )
        assert s1g1 < s2g0

    def test_rejects_bad_ways(self):
        with pytest.raises(ValueError):
            list(interleaved_schedule(build_plan(64), ways=0))

    def test_buop_is_hashable_value_object(self):
        a = BUOp(epoch=0, group=1, stage=2, module=3)
        b = BUOp(epoch=0, group=1, stage=2, module=3)
        assert a == b and hash(a) == hash(b)
