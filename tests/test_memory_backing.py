"""ndarray-backed MainMemory: fancy-indexed bulk paths, raw-word oracle.

The word store is an int64 (packed) / complex128 (float) ndarray so the
fast execution paths' gathers and scatters are true fancy indexing; the
dict overlay preserves exact raw ``lw``/``sw`` semantics for anything
the ndarray cannot hold losslessly.
"""

import numpy as np
import pytest

from repro.sim.memory import MainMemory


class TestNdarrayBacking:
    def test_packed_store_is_int64_array(self):
        mem = MainMemory(64, float_mode=False)
        assert mem._data.dtype == np.int64

    def test_float_store_is_complex_array(self):
        mem = MainMemory(64, float_mode=True)
        assert mem._data.dtype == complex


class TestRawWordSemantics:
    def test_packed_int_roundtrip_exact(self):
        mem = MainMemory(32, float_mode=False)
        for value in (0, 1, -1, 2**31 - 1, -(2**31), 2**62):
            mem.write_word(3, value)
            got = mem.read_word(3)
            assert got == value and isinstance(got, int)

    def test_packed_overlay_holds_oversize_values(self):
        mem = MainMemory(32, float_mode=False)
        huge = 2**80 + 7
        mem.write_word(5, huge)
        assert mem.read_word(5) == huge
        # A later in-range write must drop the overlay entry.
        mem.write_word(5, 42)
        assert mem.read_word(5) == 42

    def test_float_mode_raw_types_preserved(self):
        mem = MainMemory(32, float_mode=True)
        mem.write_word(10, 2.5)
        got = mem.read_word(10)
        assert got == 2.5 and isinstance(got, float)
        mem.write_word(11, 7)
        got = mem.read_word(11)
        assert got == 7 and isinstance(got, int)

    def test_float_mode_untouched_word_reads_integer_zero(self):
        mem = MainMemory(8, float_mode=True)
        got = mem.read_word(2)
        assert got == 0 and isinstance(got, int)

    def test_complex_write_supersedes_raw_word(self):
        mem = MainMemory(8, float_mode=True)
        mem.write_word(1, 5)
        mem.write_complex(1, 0.5 + 0.25j)
        assert mem.read_word(1) == 0.5 + 0.25j
        assert mem.read_complex(1) == 0.5 + 0.25j

    def test_raw_word_visible_through_complex_layer(self):
        # Historical behaviour: read_complex of a numeric raw word
        # returns its complex projection.
        mem = MainMemory(8, float_mode=True)
        mem.write_word(4, 2.5)
        assert mem.read_complex(4) == complex(2.5)


class TestFancyIndexedBulkPaths:
    @pytest.mark.parametrize("float_mode", [True, False])
    def test_gather_scatter_complex_matches_scalar_loop(self, float_mode):
        rng = np.random.default_rng(3)
        mem = MainMemory(64, float_mode=float_mode)
        values = 0.4 * (rng.standard_normal(20) + 1j * rng.standard_normal(20))
        addresses = rng.permutation(64)[:20].astype(np.int64)
        mem.scatter_complex(addresses, values)
        want = np.array(
            [mem.read_complex(int(a)) for a in addresses], dtype=complex
        )
        got = mem.gather_complex(addresses)
        assert np.array_equal(got, want)

    def test_gather_words_matches_read_word(self):
        rng = np.random.default_rng(4)
        mem = MainMemory(64, float_mode=False)
        addresses = np.arange(16, dtype=np.int64)
        words = rng.integers(0, 2**32, size=16, dtype=np.int64)
        mem.scatter_words(addresses, words)
        assert np.array_equal(mem.gather_words(addresses), words)
        for a in addresses:
            assert mem.read_word(int(a)) == words[a]

    def test_gather_words_overlay_semantics(self):
        mem = MainMemory(16, float_mode=False)
        mem.write_word(0, 100)
        mem.write_word(1, 2**70)  # overlay-resident
        assert mem.read_word(1) == 2**70  # scalar path stays exact
        assert mem.gather_words(np.array([0]))[0] == 100
        # The bulk word path cannot hold an oversize raw value; it must
        # refuse loudly (the old fromiter(int64) path raised the same).
        with pytest.raises(OverflowError):
            mem.gather_words(np.array([0, 1]))

    def test_gather_is_a_copy(self):
        mem = MainMemory(16, float_mode=True)
        mem.write_complex(0, 1 + 1j)
        got = mem.gather_complex(np.array([0]))
        got[0] = 0
        assert mem.read_complex(0) == 1 + 1j

    def test_vector_roundtrip(self):
        rng = np.random.default_rng(5)
        mem = MainMemory(32, float_mode=False)
        values = 0.3 * (rng.standard_normal(8) + 1j * rng.standard_normal(8))
        mem.load_complex_vector(4, values)
        got = mem.read_complex_vector(4, 8)
        want = np.array([mem.read_complex(4 + k) for k in range(8)])
        assert np.array_equal(got, want)
        assert np.allclose(got, values, atol=1e-4)  # Q1.15 grid

    def test_bounds_checked(self):
        mem = MainMemory(8, float_mode=True)
        with pytest.raises(IndexError):
            mem.gather_complex(np.array([0, 8]))
        with pytest.raises(IndexError):
            mem.scatter_complex(np.array([-1]), np.array([0j]))
        with pytest.raises(IndexError):
            mem.read_word(8)
        with pytest.raises(IndexError):
            mem.write_word(-1, 0)
