"""OFDM substrate: constellations, channels, and the ASIP-backed link."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ofdm import (
    CONSTELLATIONS,
    MultipathChannel,
    OfdmLink,
    awgn,
    demodulate,
    modulate,
)

SCHEMES = ["bpsk", "qpsk", "16qam", "64qam"]


class TestConstellations:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_unit_average_power(self, scheme):
        points = CONSTELLATIONS[scheme].points
        assert np.isclose(np.mean(np.abs(points) ** 2), 1.0)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_map_unmap_roundtrip(self, scheme):
        c = CONSTELLATIONS[scheme]
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, size=c.bits_per_symbol * 50)
        assert np.array_equal(c.unmap_symbols(c.map_bits(bits)), bits)

    def test_gray_neighbours_differ_in_one_bit(self):
        """Adjacent 16-QAM points along one axis differ in one bit."""
        c = CONSTELLATIONS["16qam"]
        reals = sorted(set(np.round(c.points.real, 6)))
        for a, b in zip(reals, reals[1:]):
            pa = [p for p in range(16) if np.isclose(c.points[p].real, a)
                  and np.isclose(c.points[p].imag, reals[0])]
            pb = [p for p in range(16) if np.isclose(c.points[p].real, b)
                  and np.isclose(c.points[p].imag, reals[0])]
            assert bin(pa[0] ^ pb[0]).count("1") == 1

    def test_bit_count_validated(self):
        with pytest.raises(ValueError):
            modulate([0, 1, 1], scheme="qpsk")

    def test_module_level_helpers(self):
        bits = np.array([0, 1, 1, 0])
        assert np.array_equal(demodulate(modulate(bits)), bits)


class TestChannel:
    def test_awgn_snr_accuracy(self):
        rng = np.random.default_rng(0)
        signal = np.ones(200_00, dtype=complex)
        noisy = awgn(signal, snr_db=10.0, rng=rng)
        measured = np.mean(np.abs(noisy - signal) ** 2)
        assert abs(10 * np.log10(1.0 / measured) - 10.0) < 0.3

    def test_awgn_zero_signal(self):
        out = awgn(np.zeros(8), 10.0)
        assert np.allclose(out, 0)

    def test_multipath_is_circular_convolution(self):
        channel = MultipathChannel([1.0, 0.5])
        x = np.array([1.0, 0, 0, 0], dtype=complex)
        out = channel.apply(x)
        assert np.allclose(out, [1.0, 0.5, 0, 0])

    def test_frequency_response_matches_apply(self):
        rng = np.random.default_rng(5)
        channel = MultipathChannel.exponential_profile(4, rng=rng)
        x = rng.standard_normal(32) + 1j * rng.standard_normal(32)
        via_time = np.fft.fft(channel.apply(x))
        via_freq = np.fft.fft(x) * channel.frequency_response(32)
        assert np.allclose(via_time, via_freq)

    def test_validation(self):
        with pytest.raises(ValueError):
            MultipathChannel([])
        with pytest.raises(ValueError):
            MultipathChannel(np.ones(16)).apply(np.ones(8))

    def test_exponential_profile_normalised(self):
        channel = MultipathChannel.exponential_profile(
            5, rng=np.random.default_rng(1)
        )
        assert np.isclose(np.linalg.norm(channel.taps), 1.0)

    def test_batched_apply_matches_per_symbol(self):
        rng = np.random.default_rng(6)
        channel = MultipathChannel.exponential_profile(4, rng=rng)
        batch = rng.standard_normal((5, 32)) + 1j * rng.standard_normal(
            (5, 32)
        )
        got = channel.apply(batch)
        want = np.stack([channel.apply(row) for row in batch])
        assert np.array_equal(got, want)

    def test_batched_awgn_per_symbol_snr(self):
        rng = np.random.default_rng(7)
        # Rows with very different powers: per-symbol sigma must track.
        batch = np.ones((2, 20_000), dtype=complex)
        batch[1] *= 10.0
        noisy = awgn(batch, snr_db=10.0, rng=rng)
        for row, clean in zip(noisy, batch):
            measured = np.mean(np.abs(row - clean) ** 2)
            power = np.mean(np.abs(clean) ** 2)
            assert abs(10 * np.log10(power / measured) - 10.0) < 0.3

    def test_batched_awgn_zero_batch(self):
        out = awgn(np.zeros((3, 8)), 10.0)
        assert np.allclose(out, 0)


class TestLink:
    def test_clean_channel_zero_errors(self):
        link = OfdmLink(64, scheme="qpsk", snr_db=40.0, seed=1)
        result = link.run_symbol()
        assert result.bit_errors == 0
        assert result.fft_cycles == 0  # algorithm engine

    def test_asip_backed_receiver(self):
        link = OfdmLink(64, scheme="qpsk", snr_db=35.0,
                        use_asip=True, seed=2)
        result = link.run_symbol()
        assert result.bit_errors == 0
        assert result.fft_cycles > 0

    def test_multipath_with_equalisation(self):
        channel = MultipathChannel.exponential_profile(
            3, rng=np.random.default_rng(9)
        )
        link = OfdmLink(128, scheme="qpsk", channel=channel,
                        snr_db=35.0, seed=3)
        assert link.run_symbol().bit_errors == 0

    def test_ber_degrades_with_snr(self):
        low = OfdmLink(64, scheme="16qam", snr_db=5.0, seed=4)
        high = OfdmLink(64, scheme="16qam", snr_db=30.0, seed=4)
        assert low.measure_ber(5) > high.measure_ber(5)

    def test_higher_order_needs_more_snr(self):
        qpsk = OfdmLink(64, scheme="qpsk", snr_db=12.0, seed=5)
        qam64 = OfdmLink(64, scheme="64qam", snr_db=12.0, seed=5)
        assert qam64.measure_ber(5) > qpsk.measure_ber(5)

    def test_validation(self):
        with pytest.raises(ValueError):
            OfdmLink(64, scheme="8psk")
        with pytest.raises(ValueError):
            OfdmLink(64).measure_ber(0)


class TestInverseTransform:
    def test_array_fft_inverse_roundtrip(self):
        from repro.core import ArrayFFT

        rng = np.random.default_rng(6)
        x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        engine = ArrayFFT(64)
        assert np.allclose(engine.inverse(engine.transform(x)), x)

    def test_inverse_matches_numpy(self):
        from repro.core import ArrayFFT

        rng = np.random.default_rng(7)
        spectrum = rng.standard_normal(128) + 1j * rng.standard_normal(128)
        assert np.allclose(
            ArrayFFT(128).inverse(spectrum), np.fft.ifft(spectrum)
        )
