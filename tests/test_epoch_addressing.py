"""Epoch memory addressing: the AI0/AO0/AI1/AO1 relations of Fig. 1."""

import pytest
from hypothesis import given, strategies as st

from repro.addressing.bitops import bit_reverse, swap_fields
from repro.addressing.epoch import EpochSplit, split_epochs

SIZES = st.sampled_from([4, 8, 16, 32, 64, 128, 256, 1024])


class TestSplitEpochs:
    def test_square_split(self):
        split = split_epochs(64)
        assert (split.p, split.q) == (3, 3)
        assert (split.P, split.Q) == (8, 8)

    def test_non_square_split(self):
        split = split_epochs(128)
        assert (split.p, split.q) == (4, 3)
        assert split.P * split.Q == 128

    @given(SIZES)
    def test_paper_constraint(self, n):
        split = split_epochs(n)
        assert split.p + split.q == split.n
        assert 0 <= split.p - split.q <= 1

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            split_epochs(2)

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            split_epochs(96)

    def test_group_structure(self):
        split = split_epochs(128)  # P=16, Q=8
        assert split.groups_in_epoch(0) == 8
        assert split.groups_in_epoch(1) == 16
        assert split.group_size(0) == 16
        assert split.group_size(1) == 8
        assert split.stages_in_epoch(0) == 4
        assert split.stages_in_epoch(1) == 3

    def test_epoch_bounds(self):
        split = split_epochs(16)
        with pytest.raises(ValueError):
            split.stages_in_epoch(2)
        with pytest.raises(ValueError):
            split.groups_in_epoch(-1)


class TestAddressRelations:
    """The paper's four sequences and the relations between them."""

    @given(SIZES, st.data())
    def test_ai0_is_natural(self, n, data):
        split = split_epochs(n)
        k = data.draw(st.integers(0, n - 1))
        assert split.ai0(k) == k

    @given(SIZES, st.data())
    def test_ao0_reverses_low_p_bits(self, n, data):
        split = split_epochs(n)
        k = data.draw(st.integers(0, n - 1))
        high = k >> split.p
        low = k & (split.P - 1)
        expected = (high << split.p) | bit_reverse(low, split.p)
        assert split.ao0(k) == expected

    @given(SIZES, st.data())
    def test_ai1_swaps_fields_of_ao0(self, n, data):
        split = split_epochs(n)
        k = data.draw(st.integers(0, n - 1))
        assert split.ai1(k) == swap_fields(split.ao0(k), split.p, split.q)

    @given(SIZES, st.data())
    def test_ao1_reverses_low_q_bits_of_ai1(self, n, data):
        split = split_epochs(n)
        k = data.draw(st.integers(0, n - 1))
        a = split.ai1(k)
        high = a >> split.q
        low = a & (split.Q - 1)
        assert split.ao1(k) == (high << split.q) | bit_reverse(low, split.q)

    @given(SIZES)
    def test_all_maps_are_permutations(self, n):
        split = split_epochs(n)
        for perm in (
            split.ao0_permutation(),
            split.ai1_permutation(),
            split.ao1_permutation(),
        ):
            assert sorted(perm) == list(range(n))

    def test_index_bounds(self):
        split = split_epochs(16)
        for fn in (split.ai0, split.ao0, split.ai1, split.ao1):
            with pytest.raises(ValueError):
                fn(16)
            with pytest.raises(ValueError):
                fn(-1)

    def test_fig1_64_point_examples(self):
        """Spot-check the 64-point structure of Fig. 1 (p = q = 3)."""
        split = split_epochs(64)
        # k = [l=1][m=0] -> AO0 unchanged for m=0 (reverse of 000 is 000)
        assert split.ao0(0b001000) == 0b001000
        # m=1 (001) reverses to 100 within the low field
        assert split.ao0(0b001001) == 0b001100
        # AI1 swaps the two 3-bit fields of AO0
        assert split.ai1(0b001001) == 0b100001
