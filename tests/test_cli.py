"""The ``python -m repro`` reproduction CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.size == 1024
        args = build_parser().parse_args(["hw"])
        assert args.group_size == 32


class TestCommands:
    def test_fft_command(self, capsys):
        assert main(["fft", "--size", "64"]) == 0
        out = capsys.readouterr().out
        assert "cycles = " in out
        assert "max error" in out

    def test_fft_fixed_point(self, capsys):
        assert main(["fft", "--size", "16", "--fixed-point"]) == 0
        assert "Q1.15" in capsys.readouterr().out

    def test_stream_command(self, capsys):
        assert main(["stream", "--size", "64", "--symbols", "6"]) == 0
        out = capsys.readouterr().out
        assert "Msample/s" in out
        assert "Mbps" in out
        assert "deterministic = True" in out

    def test_stream_fixed_point(self, capsys):
        assert main(["stream", "--size", "32", "--symbols", "4",
                     "--fixed-point", "--no-verify"]) == 0
        assert "Q1.15" in capsys.readouterr().out

    def test_hw_command(self, capsys):
        assert main(["hw", "--group-size", "16"]) == 0
        assert "BU + AC gates" in capsys.readouterr().out

    def test_listing_command(self, capsys):
        assert main(["listing", "--size", "8"]) == 0
        out = capsys.readouterr().out
        assert "but4" in out
        assert "stout" in out

    def test_table2_small(self, capsys):
        assert main(["table2", "--size", "64"]) == 0
        out = capsys.readouterr().out
        assert "X vs proposed" in out
        assert "Standard SW FFT" in out


class TestReport:
    def test_report_small(self, capsys):
        assert main(["report", "--size", "64"]) == 0
        out = capsys.readouterr().out
        assert "# Reproduction report" in out
        assert "Table I" in out and "Table II" in out
        assert "FAIL" not in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "--size", "64",
                     "--output", str(target)]) == 0
        assert "Hardware cost" in target.read_text()
