"""The ``python -m repro`` reproduction CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.size == 1024
        args = build_parser().parse_args(["hw"])
        assert args.group_size == 32


class TestCommands:
    def test_fft_command(self, capsys):
        assert main(["fft", "--size", "64"]) == 0
        out = capsys.readouterr().out
        assert "cycles = " in out
        assert "max error" in out

    def test_fft_fixed_point(self, capsys):
        assert main(["fft", "--size", "16", "--fixed-point"]) == 0
        assert "Q1.15" in capsys.readouterr().out

    def test_stream_command(self, capsys):
        assert main(["stream", "--size", "64", "--symbols", "6"]) == 0
        out = capsys.readouterr().out
        assert "Msample/s" in out
        assert "Mbps" in out
        assert "deterministic = True" in out

    def test_stream_fixed_point(self, capsys):
        assert main(["stream", "--size", "32", "--symbols", "4",
                     "--fixed-point", "--no-verify"]) == 0
        assert "Q1.15" in capsys.readouterr().out

    def test_hw_command(self, capsys):
        assert main(["hw", "--group-size", "16"]) == 0
        assert "BU + AC gates" in capsys.readouterr().out

    def test_listing_command(self, capsys):
        assert main(["listing", "--size", "8"]) == 0
        out = capsys.readouterr().out
        assert "but4" in out
        assert "stout" in out

    def test_table2_small(self, capsys):
        assert main(["table2", "--size", "64"]) == 0
        out = capsys.readouterr().out
        assert "X vs proposed" in out
        assert "Standard SW FFT" in out


class TestFacadeFlags:
    def test_fft_on_compiled_backend(self, capsys):
        assert main(["fft", "--size", "32", "--backend", "compiled"]) == 0
        out = capsys.readouterr().out
        assert "backend = compiled" in out
        assert "max error" in out
        assert "cycles = " not in out  # no simulated machine behind it

    def test_fft_precision_flag(self, capsys):
        assert main(["fft", "--size", "16", "--precision", "q15"]) == 0
        out = capsys.readouterr().out
        assert "Q1.15" in out
        assert "overflow count" in out

    def test_stream_backend_flag(self, capsys):
        assert main(["stream", "--size", "32", "--symbols", "4",
                     "--backend", "compiled"]) == 0
        out = capsys.readouterr().out
        assert "backend = compiled" in out
        assert "deterministic = True" in out

    def test_stream_records_row(self, tmp_path, capsys):
        target = tmp_path / "bench.json"
        assert main(["stream", "--size", "32", "--symbols", "4",
                     "--record", str(target)]) == 0
        assert "recorded" in capsys.readouterr().out
        import json

        stored = json.loads(target.read_text())
        row = stored["cli_stream"]["latest"]["rows"][0]
        assert row["backend"] == "asip-batch"
        assert row["symbols"] == 4

    def test_bench_all_backends(self, tmp_path, capsys):
        target = tmp_path / "bench.json"
        assert main(["bench", "--sizes", "16", "--symbols", "4",
                     "--record", str(target)]) == 0
        out = capsys.readouterr().out
        for name in ("compiled", "reference", "sharded",
                     "asip", "asip-batch"):
            assert name in out
        import json

        stored = json.loads(target.read_text())
        rows = stored["cli_bench"]["latest"]["rows"]
        assert {r["backend"] for r in rows} == {
            "compiled", "reference", "sharded", "asip", "asip-batch"
        }

    def test_bench_unknown_backend_exits_with_menu(self):
        with pytest.raises(SystemExit, match="compiled"):
            main(["bench", "--sizes", "16", "--backend", "bogus",
                  "--record", ""])

    def test_fft_workers_on_serial_backend_is_loud(self):
        with pytest.raises(SystemExit, match="workers"):
            main(["fft", "--size", "16", "--backend", "compiled",
                  "--workers", "2"])

    def test_bench_single_backend_no_write(self, capsys):
        assert main(["bench", "--sizes", "16", "--symbols", "2",
                     "--backend", "compiled", "--record", ""]) == 0
        out = capsys.readouterr().out
        assert "compiled" in out
        assert "recorded" not in out

    def test_bench_history_appends(self, tmp_path):
        target = tmp_path / "bench.json"
        for _ in range(2):
            assert main(["bench", "--sizes", "16", "--symbols", "2",
                         "--backend", "compiled",
                         "--record", str(target)]) == 0
        import json

        stored = json.loads(target.read_text())
        assert len(stored["cli_bench"]["history"]) == 2
        assert (stored["cli_bench"]["latest"]
                == stored["cli_bench"]["history"][-1])


class TestReport:
    def test_report_small(self, capsys):
        assert main(["report", "--size", "64"]) == 0
        out = capsys.readouterr().out
        assert "# Reproduction report" in out
        assert "Table I" in out and "Table II" in out
        assert "FAIL" not in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "--size", "64",
                     "--output", str(target)]) == 0
        assert "Hardware cost" in target.read_text()


class TestUarch:
    def test_overlay_table_and_sandwich(self, capsys):
        assert main(["uarch", "--size", "64"]) == 0
        out = capsys.readouterr().out
        assert "Timing overlay" in out
        assert "critical-path" in out
        assert "dual-issue" in out
        assert "sandwich:" in out and "ok" in out
        assert "VIOLATED" not in out

    def test_scenario_positional_sets_size(self, capsys):
        assert main(["uarch", "multipath-eq"]) == 0
        assert "128-point" in capsys.readouterr().out

    def test_unknown_scenario_exits_with_menu(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["uarch", "definitely-not-a-scenario"])
        assert "uwb-ofdm" in str(excinfo.value)

    def test_study_records_section(self, tmp_path, capsys):
        import json

        target = tmp_path / "bench.json"
        assert main(["uarch", "--size", "64", "--study",
                     "--record", str(target)]) == 0
        out = capsys.readouterr().out
        assert "Issue-width design study" in out
        assert "extended Table II" in out
        stored = json.loads(target.read_text())
        rows = stored["uarch"]["latest"]["rows"]
        assert {row["config"] for row in rows} == {
            "w1/32kB-4way", "w2/32kB-4way", "w1/8kB-2way", "w2/8kB-2way",
        }
        for row in rows:
            assert row["floor_cycles"] <= row["cycles"]
            assert row["energy_uj"] > 0
