"""The channel-coding subsystem: codec, interleavers, demappers, Viterbi."""

import numpy as np
import pytest

import repro
from repro.coding import (
    PUNCTURE_PATTERNS,
    BlockInterleaver,
    ConvolutionalCode,
    IdentityInterleaver,
    SoftDemapper,
    ViterbiDecoder,
    build_interleaver,
    code_names,
    demapper_names,
    get_code,
    get_demapper,
    get_interleaver,
    interleaver_names,
    register_code,
    register_demapper,
    register_interleaver,
    resolve_code,
    resolve_interleaver,
    unregister_code,
    unregister_demapper,
    unregister_interleaver,
)
from repro.ofdm.modulation import CONSTELLATIONS

RATES = tuple(sorted(PUNCTURE_PATTERNS))


class TestConvolutionalCode:
    def test_k7_trellis_shape(self):
        code = get_code("conv-k7")
        assert code.constraint_length == 7
        assert code.n_states == 64
        assert code.outputs.shape == (64, 2, 2)
        assert code.prev_states.shape == (64, 2)

    def test_predecessor_tables_invert_next_states(self):
        code = get_code("conv-k7")
        for state in range(code.n_states):
            for bit in (0, 1):
                ns = code.next_states[state, bit]
                assert state in code.prev_states[ns]
                assert code.input_bits[ns] == bit

    def test_vectorized_encoder_matches_reference(self):
        rng = np.random.default_rng(7)
        for name in ("conv-k7", "conv-k3"):
            code = get_code(name)
            bits = rng.integers(0, 2, size=(4, 50))
            assert np.array_equal(code.encode(bits),
                                  code.encode_reference(bits))

    def test_termination_returns_to_zero_state(self):
        code = get_code("conv-k7")
        out = code.encode_reference(np.ones(20, dtype=int))
        assert out.shape == (20 + code.memory, 2)

    def test_needs_two_generators(self):
        with pytest.raises(ValueError, match="generators"):
            ConvolutionalCode("bad", (0o7,))


class TestPuncturing:
    @pytest.mark.parametrize("rate", RATES)
    def test_geometry_fills_capacity(self, rate):
        punct = get_code("conv-k7").punctured(rate)
        for capacity in (128, 256, 384, 1000):
            geom = punct.block_geometry(capacity)
            assert geom.coded_bits <= capacity
            assert geom.coded_bits + geom.pad_bits == capacity
            assert geom.info_bits == geom.steps - 6
            assert punct.coded_length(geom.steps) == geom.coded_bits
            # maximal: one more step would overflow the capacity
            assert punct.coded_length(geom.steps + 1) > capacity

    @pytest.mark.parametrize("rate", RATES)
    def test_encode_pads_to_capacity(self, rate):
        punct = get_code("conv-k7").punctured(rate)
        geom = punct.block_geometry(128)
        rng = np.random.default_rng(1)
        info = rng.integers(0, 2, size=(3, geom.info_bits))
        coded = punct.encode(info, capacity=128)
        assert coded.shape == (3, 128)
        assert not coded[:, geom.coded_bits:].any()  # zero pad

    def test_depuncture_round_trip(self):
        punct = get_code("conv-k7").punctured("3/4")
        geom = punct.block_geometry(128)
        rng = np.random.default_rng(2)
        llrs = rng.standard_normal((2, geom.coded_bits))
        grid = punct.depuncture(llrs)
        assert grid.shape == (2, geom.steps, 2)
        # kept positions carry the stream, punctured positions zero
        assert np.array_equal(grid[..., punct.step_mask(geom.steps)], llrs)
        assert np.count_nonzero(grid) == llrs.size

    def test_unknown_rate_lists_menu(self):
        with pytest.raises(repro.UnknownNameError, match="3/4"):
            get_code("conv-k7").punctured("7/8")


class TestViterbi:
    @pytest.mark.parametrize("rate", RATES)
    def test_noiseless_round_trip(self, rate):
        punct = get_code("conv-k7").punctured(rate)
        geom = punct.block_geometry(192)
        rng = np.random.default_rng(3)
        info = rng.integers(0, 2, size=(4, geom.info_bits))
        llrs = 1.0 - 2.0 * punct.encode(info).astype(float)
        assert np.array_equal(punct.decode(llrs), info)

    @pytest.mark.parametrize("rate", RATES)
    @pytest.mark.parametrize("code_name", ("conv-k7", "conv-k3"))
    def test_vectorized_bit_identical_to_oracle(self, code_name, rate):
        """The acceptance-criterion identity: randomized seeded trials."""
        punct = get_code(code_name).punctured(rate)
        geom = punct.block_geometry(128)
        rng = np.random.default_rng(hash((code_name, rate)) % 2**32)
        for trial in range(3):
            info = rng.integers(0, 2, size=(3, geom.info_bits))
            clean = 1.0 - 2.0 * punct.encode(info).astype(float)
            # Heavy noise on purpose: ties and wrong paths stress the
            # compare-select ordering, not just the happy path.
            noisy = clean + 1.2 * rng.standard_normal(clean.shape)
            fast = punct.decode(noisy)
            oracle = punct.decode(noisy, reference=True)
            assert np.array_equal(fast, oracle)

    def test_batch_matches_per_block_decode(self):
        punct = get_code("conv-k7").punctured("1/2")
        geom = punct.block_geometry(96)
        rng = np.random.default_rng(5)
        info = rng.integers(0, 2, size=(6, geom.info_bits))
        llrs = (1.0 - 2.0 * punct.encode(info)
                + 0.9 * rng.standard_normal((6, geom.coded_bits)))
        batched = punct.decode(llrs)
        rows = np.stack([punct.decode(row) for row in llrs])
        assert np.array_equal(batched, rows)

    def test_corrects_hard_decision_errors(self):
        """Soft decoding repairs a channel hard decisions get wrong."""
        punct = get_code("conv-k7").punctured("1/2")
        geom = punct.block_geometry(512)
        rng = np.random.default_rng(6)
        info = rng.integers(0, 2, size=geom.info_bits)
        clean = 1.0 - 2.0 * punct.encode(info).astype(float)
        noisy = clean + 0.7 * rng.standard_normal(clean.shape)
        raw_errors = int(np.sum((noisy < 0) != (clean < 0)))
        decoded_errors = int(np.sum(punct.decode(noisy) != info))
        assert raw_errors > 0
        assert decoded_errors < raw_errors

    def test_rejects_bad_shapes(self):
        decoder = ViterbiDecoder(get_code("conv-k7"))
        with pytest.raises(ValueError, match="steps"):
            decoder.decode(np.zeros((4, 3)))
        with pytest.raises(ValueError, match="trellis steps"):
            decoder.decode(np.zeros((4, 2)))


class TestInterleavers:
    def test_block_interleaver_round_trip(self):
        rng = np.random.default_rng(8)
        il = BlockInterleaver(64, depth=8)
        x = rng.standard_normal((3, 64))
        assert np.array_equal(il.deinterleave(il.interleave(x)), x)

    def test_block_interleaver_spreads_adjacent_bits(self):
        il = BlockInterleaver(64, depth=8)
        a, b = il.permutation[0], il.permutation[1]
        assert abs(int(a) - int(b)) == 8  # column stride on the air

    def test_identity_is_noop(self):
        il = IdentityInterleaver(16)
        x = np.arange(16)
        assert np.array_equal(il.interleave(x), x)

    def test_depth_must_divide(self):
        with pytest.raises(ValueError, match="divide"):
            BlockInterleaver(10, depth=4)

    def test_resolve_accepts_all_designators(self):
        assert isinstance(resolve_interleaver(None, 32),
                          IdentityInterleaver)
        assert isinstance(resolve_interleaver("block", 32),
                          BlockInterleaver)
        custom = resolve_interleaver(("block", {"depth": 4}), 32)
        assert custom.depth == 4
        assert resolve_interleaver(custom, 32) is custom
        with pytest.raises(ValueError, match="sized for"):
            resolve_interleaver(custom, 64)
        with pytest.raises(TypeError, match="designator"):
            resolve_interleaver(1234, 32)


class TestSoftDemappers:
    @pytest.mark.parametrize("scheme", ("bpsk", "qpsk", "16qam"))
    def test_noiseless_signs_recover_bits(self, scheme):
        constellation = CONSTELLATIONS[scheme]
        rng = np.random.default_rng(9)
        bits = rng.integers(0, 2, size=32 * constellation.bits_per_symbol)
        llrs = get_demapper(scheme).llrs(constellation.map_bits(bits))
        assert np.array_equal((llrs < 0).astype(int), bits)

    @pytest.mark.parametrize("scheme", ("bpsk", "qpsk", "16qam"))
    def test_llr_signs_match_hard_demap_under_noise(self, scheme):
        constellation = CONSTELLATIONS[scheme]
        rng = np.random.default_rng(10)
        bits = rng.integers(0, 2, size=64 * constellation.bits_per_symbol)
        symbols = constellation.map_bits(bits)
        noisy = symbols + 0.15 * (rng.standard_normal(symbols.shape)
                                  + 1j * rng.standard_normal(symbols.shape))
        hard = constellation.unmap_symbols(noisy)
        soft = get_demapper(scheme).hard_bits(
            get_demapper(scheme).llrs(noisy)
        )
        assert np.array_equal(hard, soft)

    def test_batch_llrs_match_rows(self):
        demapper = get_demapper("16qam")
        rng = np.random.default_rng(11)
        symbols = (rng.standard_normal((4, 16))
                   + 1j * rng.standard_normal((4, 16)))
        batched = demapper.llrs(symbols)
        assert batched.shape == (4, 64)
        for k, row in enumerate(symbols):
            assert np.array_equal(batched[k], demapper.llrs(row))

    def test_noise_var_is_affine_scale(self):
        demapper = get_demapper("qpsk")
        rng = np.random.default_rng(12)
        symbols = rng.standard_normal(8) + 1j * rng.standard_normal(8)
        assert np.allclose(demapper.llrs(symbols, noise_var=0.5),
                           demapper.llrs(symbols) / 0.5)


class TestCodingRegistries:
    """Error paths match the backend/stage/scenario registries."""

    def test_unknown_code_lists_menu(self):
        with pytest.raises(KeyError, match="conv-k7"):
            get_code("turbo")
        with pytest.raises(ValueError, match="registered codes"):
            get_code("turbo")
        assert isinstance(
            pytest.raises(repro.UnknownNameError, get_code, "x").value,
            LookupError,
        )

    def test_unknown_interleaver_lists_menu(self):
        with pytest.raises(KeyError, match="block"):
            get_interleaver("random")
        with pytest.raises(ValueError, match="registered interleavers"):
            build_interleaver("random", 64)

    def test_unknown_demapper_lists_menu(self):
        with pytest.raises(KeyError, match="16qam"):
            get_demapper("64qam")
        with pytest.raises(ValueError, match="registered demappers"):
            get_demapper("64qam")

    def test_register_unregister_code(self):
        code = ConvolutionalCode("k2-test", (0o3, 0o1))
        register_code(code)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_code(code)
            assert get_code("k2-test") is code
            assert "k2-test" in code_names()
        finally:
            unregister_code("k2-test")
        with pytest.raises(KeyError):
            get_code("k2-test")

    def test_register_unregister_interleaver(self):
        register_interleaver("throwaway", IdentityInterleaver)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_interleaver("throwaway", IdentityInterleaver)
            assert "throwaway" in interleaver_names()
            assert isinstance(build_interleaver("throwaway", 8),
                              IdentityInterleaver)
        finally:
            unregister_interleaver("throwaway")

    def test_register_unregister_demapper(self):
        demapper = SoftDemapper(CONSTELLATIONS["64qam"])
        register_demapper("64qam-test", demapper)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_demapper("64qam-test", demapper)
            assert get_demapper("64qam-test") is demapper
            assert "64qam-test" in demapper_names()
        finally:
            unregister_demapper("64qam-test")

    def test_registration_type_checked(self):
        with pytest.raises(TypeError, match="ConvolutionalCode"):
            register_code("not-a-code")
        with pytest.raises(TypeError, match="callable"):
            register_interleaver("bad", None)
        with pytest.raises(TypeError, match="llrs"):
            register_demapper("bad", object())

    def test_resolve_code_designators(self):
        assert resolve_code(None) is None
        punct = resolve_code("conv-k7", "3/4")
        assert punct.rate == "3/4"
        assert resolve_code(punct) is punct
        base = get_code("conv-k3")
        assert resolve_code(base, "2/3").base is base


class TestCodedOfdmLink:
    def test_run_coded_clean_at_high_snr(self):
        from repro.ofdm import CodedOfdmLink

        with CodedOfdmLink(64, scheme="qpsk", rate="1/2",
                           snr_db=30.0, seed=0) as link:
            result = link.run_coded(4)
        assert result.symbols == 4
        assert result.coded_ber == 0.0
        assert result.frame_error_rate == 0.0
        assert result.tx_info_bits.shape == (4, link.info_bits_per_symbol)

    def test_coded_beats_uncoded_in_noise(self):
        from repro.ofdm import CodedOfdmLink

        with CodedOfdmLink(128, scheme="qpsk", rate="1/2",
                           snr_db=6.0, seed=1) as link:
            result = link.run_coded(16)
        assert result.uncoded_ber > 0.0
        assert result.coded_ber <= result.uncoded_ber

    def test_from_scenario_coded_preset(self):
        from repro.ofdm import CodedOfdmLink

        with CodedOfdmLink.from_scenario(
            "wimax-ofdm-coded", n_subcarriers=64
        ) as link:
            assert link.code.rate == "3/4"
            metrics = link.measure_coded_ber(symbols=2)
        assert set(metrics) == {"coded_ber", "uncoded_ber", "fer"}

    def test_from_scenario_rejects_uncoded(self):
        from repro.ofdm import CodedOfdmLink

        with pytest.raises(ValueError, match="uncoded"):
            CodedOfdmLink.from_scenario("uwb-ofdm")

    def test_needs_a_code(self):
        from repro.ofdm import CodedOfdmLink

        with pytest.raises(ValueError, match="needs a code"):
            CodedOfdmLink(64, code=None)


class TestCodedBerSweep:
    def test_sweep_by_scenario(self):
        from repro.analysis import coded_ber_sweep

        curve = coded_ber_sweep((6.0, 12.0), scenario="uwb-ofdm-coded",
                                n_points=64, symbols=4)
        assert set(curve) == {6.0, 12.0}
        for point in curve.values():
            assert set(point) == {"coded_ber", "uncoded_ber", "fer"}
            assert point["coded_ber"] <= point["uncoded_ber"]

    def test_sweep_explicit_geometry(self):
        from repro.analysis import coded_ber_sweep

        curve = coded_ber_sweep((20.0,), n_points=64, scheme="16qam",
                                code_rate="3/4", symbols=2)
        assert curve[20.0]["coded_ber"] == 0.0

    def test_sweep_rejects_uncoded_scenario(self):
        from repro.analysis import coded_ber_sweep

        with pytest.raises(ValueError, match="uncoded"):
            coded_ber_sweep((10.0,), scenario="uwb-ofdm")

    def test_sweep_rejects_scenario_codec_conflicts(self):
        from repro.analysis import coded_ber_sweep

        with pytest.raises(ValueError, match="code_rate"):
            coded_ber_sweep((10.0,), scenario="uwb-ofdm-coded",
                            code_rate="3/4")

    def test_sweep_needs_geometry(self):
        from repro.analysis import coded_ber_sweep

        with pytest.raises(ValueError, match="n_points or scenario"):
            coded_ber_sweep((10.0,))
