"""Analysis helpers: tables, verification, sweeps, throughput metrics."""

import numpy as np
import pytest

from repro.analysis import (
    format_ratio,
    max_error,
    render_table,
    size_sweep,
    spectrum_snr_db,
    table1_rows,
    verify_against_numpy,
)
from repro.asip.throughput import (
    msamples_per_second,
    paper_mbps,
    throughput_report,
)


class TestTables:
    def test_render_basic(self):
        out = render_table(["a", "b"], [[1, 2.5], [30000, "x"]], title="T")
        assert "T" in out
        assert "30,000" in out
        assert "2.5" in out

    def test_ratio_format(self):
        assert format_ratio(866.5123) == "866.5X"


class TestVerify:
    def test_max_error(self):
        assert max_error([1 + 1j], [1 + 0j]) == 1.0

    def test_verify_against_numpy(self):
        x = np.random.default_rng(0).standard_normal(16)
        assert verify_against_numpy(np.fft.fft(x), x)
        assert not verify_against_numpy(np.zeros(16), x + 1)

    def test_scaled_verification(self):
        x = np.random.default_rng(1).standard_normal(16)
        assert verify_against_numpy(np.fft.fft(x) / 16, x, scale=1 / 16)

    def test_snr_helper(self):
        x = np.random.default_rng(2).standard_normal(16)
        assert spectrum_snr_db(np.fft.fft(x), x) == float("inf")


class TestThroughput:
    def test_paper_formula_reproduces_table1(self):
        """6 * N * 300MHz / cycles reproduces every published Mbps."""
        published = {
            64: (197, 584.7), 128: (402, 572.2), 256: (851, 540.9),
            512: (1828, 502.2), 1024: (4168, 440.6),
        }
        for n, (cycles, mbps) in published.items():
            assert abs(paper_mbps(n, cycles) - mbps) / mbps < 0.01

    def test_msamples(self):
        assert msamples_per_second(1024, 4168) == pytest.approx(
            1024 * 300e6 / 4168 / 1e6
        )

    def test_report_rows(self):
        report = throughput_report(64, 197)
        n, cycles, msps, mbps = report.row()
        assert (n, cycles) == (64, 197)
        assert mbps == pytest.approx(584.7, abs=0.2)

    def test_rejects_zero_cycles(self):
        with pytest.raises(ValueError):
            msamples_per_second(64, 0)


class TestSweep:
    def test_small_sweep(self):
        results = size_sweep([16, 64])
        assert set(results) == {16, 64}
        rows = table1_rows(results)
        assert rows[0][0] == 16
        assert rows[1][2] == 197  # paper cycles column for N=64

    def test_fixed_point_sweep(self):
        results = size_sweep([16], fixed_point=True)
        assert 16 in results
