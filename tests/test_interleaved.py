"""The interleaved-group executor (temporal-parallel variant)."""

import numpy as np
import pytest

from repro.core.interleaved import InterleavedArrayFFT


def random_vector(n, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


class TestInterleavedExecution:
    @pytest.mark.parametrize("n", [16, 64, 128, 256])
    @pytest.mark.parametrize("ways", [1, 2, 4])
    def test_matches_numpy(self, n, ways):
        x = random_vector(n, n + ways)
        engine = InterleavedArrayFFT(n, ways=ways)
        assert np.allclose(engine.transform(x), np.fft.fft(x),
                           atol=1e-9 * n)

    def test_one_way_equals_baseline_engine(self):
        from repro.core import ArrayFFT

        x = random_vector(64, 3)
        assert np.allclose(
            InterleavedArrayFFT(64, ways=1).transform(x),
            ArrayFFT(64).transform(x),
        )

    def test_crf_requirement_scales_with_ways(self):
        assert InterleavedArrayFFT(1024, ways=1).crf_entries_required == 32
        assert InterleavedArrayFFT(1024, ways=4).crf_entries_required == 128

    def test_executed_ops_follow_interleaved_schedule(self):
        from repro.core.schedule import interleaved_schedule

        engine = InterleavedArrayFFT(64, ways=2)
        engine.transform(random_vector(64, 1))
        expected = list(interleaved_schedule(engine.plan, 2))
        assert engine.executed_ops == expected

    def test_rejects_bad_ways(self):
        with pytest.raises(ValueError):
            InterleavedArrayFFT(64, ways=0)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            InterleavedArrayFFT(64).transform(np.zeros(16))


class TestAreaTrade:
    def test_interleaving_costs_crf_gates(self):
        """The ablation story: ways=2 doubles the register file the
        paper sized at ~13K gates for P=32."""
        from repro.hw import AreaModel

        base = AreaModel(32).breakdown().crf
        doubled = AreaModel(64).breakdown().crf  # 2x entries
        assert doubled == 2 * base
