"""Tier-1 perf regression gate: the engine-speed benchmark in --quick mode.

The full benchmark (pytest benchmarks/bench_engine_speed.py) sweeps the
large sizes and records the dated trajectory in BENCH_engine.json; this
wrapper runs its --quick mode — small sizes, conservative floors, no
trajectory write — inside the default test run, so a fast path silently
degrading to its oracle fails tier-1 loudly without a long bench.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BENCH = REPO / "benchmarks" / "bench_engine_speed.py"


def test_quick_benchmark_floors():
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    result = subprocess.run(
        [sys.executable, str(BENCH), "--quick"],
        cwd=REPO, env=env, capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, (
        f"quick benchmark floors violated:\n{result.stdout}\n{result.stderr}"
    )
    assert "quick" in result.stdout
    # The streaming-session floor, the vectorised-Viterbi floor, the
    # scenario-preset exercise, the co-execution overhead row, the
    # serve-tier throughput/zero-shed row, the telemetry
    # disabled-overhead row and the uarch overlay overhead/sandwich row
    # all run inside the gate.
    assert "session" in result.stdout
    assert "viterbi" in result.stdout
    assert "quick scenario" in result.stdout
    assert "quick coexec" in result.stdout
    assert "quick serve" in result.stdout
    assert "quick telemetry" in result.stdout
    assert "quick uarch" in result.stdout
