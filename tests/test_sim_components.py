"""Simulator components: cache, memory, CRF, ROM, AC logic, trace."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.addressing.local import stage_input_addresses
from repro.sim import (
    AddressChangingLogic,
    CacheConfig,
    CoefficientROM,
    CustomRegisterFile,
    DataCache,
    ExecutionTrace,
    MainMemory,
)


class TestCache:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(sets=3)
        with pytest.raises(ValueError):
            CacheConfig(ways=0)

    def test_default_is_32kb(self):
        assert CacheConfig().size_bytes == 32 * 1024

    def test_cold_miss_then_hit(self):
        cache = DataCache()
        assert cache.access(0) > 1
        assert cache.access(1) == 1  # same line
        assert cache.miss_rate == 0.5

    def test_lru_eviction(self):
        config = CacheConfig(sets=1, ways=2, block_words=1)
        cache = DataCache(config)
        cache.access(0)        # {0}
        cache.access(1)        # {1, 0}
        cache.access(0)        # {0, 1}  — refreshes 0
        cache.access(2)        # evicts 1
        assert cache.access(0) == config.hit_latency
        assert cache.access(1) > config.hit_latency

    def test_writeback_counting(self):
        config = CacheConfig(sets=1, ways=1, block_words=1)
        cache = DataCache(config)
        cache.access(0, is_write=True)
        cache.access(1, is_write=False)  # evicts dirty block 0
        assert cache.writebacks == 1

    def test_reset(self):
        cache = DataCache()
        cache.access(0)
        cache.reset()
        assert cache.accesses == 0
        assert cache.access(0) > 1  # cold again


class TestMainMemory:
    def test_word_roundtrip(self):
        mem = MainMemory(16)
        mem.write_word(3, 99)
        assert mem.read_word(3) == 99

    def test_bounds(self):
        mem = MainMemory(4)
        with pytest.raises(IndexError):
            mem.read_word(4)
        with pytest.raises(IndexError):
            mem.write_word(-1, 0)
        with pytest.raises(ValueError):
            MainMemory(0)

    @given(st.builds(complex, st.floats(-0.9, 0.9), st.floats(-0.9, 0.9)))
    def test_packed_fixed_point_roundtrip(self, value):
        mem = MainMemory(8, float_mode=False)
        mem.write_complex(2, value)
        # per-component error <= 2**-16, so complex magnitude <= sqrt(2)*2**-16
        assert abs(mem.read_complex(2) - value) < 2.2e-5

    def test_float_mode_is_exact(self):
        mem = MainMemory(8, float_mode=True)
        mem.write_complex(0, 1.2345 - 9.876j)
        assert mem.read_complex(0) == 1.2345 - 9.876j

    def test_vector_helpers(self):
        mem = MainMemory(8)
        mem.load_complex_vector(2, [1 + 1j, 2 + 2j])
        assert np.allclose(mem.read_complex_vector(2, 2), [1 + 1j, 2 + 2j])


class TestCRF:
    def test_ping_pong_banks(self):
        crf = CustomRegisterFile(4)
        crf.write(0, 1 + 0j)
        crf.write_shadow(0, 9 + 0j)
        assert crf.read(0) == 1 + 0j
        crf.swap_banks()
        assert crf.read(0) == 9 + 0j

    def test_access_counting(self):
        crf = CustomRegisterFile(4)
        crf.write(1, 1j)
        crf.read(1)
        assert crf.reads == 1 and crf.writes == 1

    def test_bounds(self):
        crf = CustomRegisterFile(4)
        with pytest.raises(IndexError):
            crf.read(4)
        with pytest.raises(ValueError):
            CustomRegisterFile(0)

    def test_load_vector_and_snapshot(self):
        crf = CustomRegisterFile(3)
        crf.load_vector([1, 2, 3])
        assert np.allclose(crf.snapshot(), [1, 2, 3])
        with pytest.raises(ValueError):
            crf.load_vector([1, 2])


class TestROM:
    def test_contents(self):
        rom = CoefficientROM(16)
        assert len(rom) == 8
        assert abs(rom.read(0) - 1.0) < 1e-12
        assert abs(rom.read(4) - (-1j)) < 1e-12

    def test_stride_addressing_for_smaller_group(self):
        rom = CoefficientROM(32)
        # W_8^1 == W_32^4
        assert abs(rom.read_for_size(1, 8) - np.exp(-2j * np.pi / 8)) < 1e-12

    def test_bounds(self):
        rom = CoefficientROM(16)
        with pytest.raises(IndexError):
            rom.read(8)
        with pytest.raises(ValueError):
            rom.read_for_size(0, 64)

    def test_read_counting(self):
        rom = CoefficientROM(8)
        rom.read(0)
        rom.read(1)
        assert rom.reads == 2


class TestACLogic:
    def test_requires_configuration(self):
        ac = AddressChangingLogic()
        with pytest.raises(RuntimeError):
            _ = ac.group_size

    def test_addresses_match_plan_tables(self):
        ac = AddressChangingLogic()
        ac.configure(32)
        reads = stage_input_addresses(5, 3)
        addr = ac.addresses(module=2, stage=3)
        assert addr.crf_reads_first == tuple(reads[4:8])
        assert addr.crf_reads_second == tuple(reads[20:24])
        assert addr.crf_writes_first == (4, 5, 6, 7)
        assert addr.crf_writes_second == (20, 21, 22, 23)

    def test_rom_addresses_follow_stride_rule(self):
        from repro.addressing.coefficients import rom_coefficient_index

        ac = AddressChangingLogic()
        ac.configure(32)
        addr = ac.addresses(module=3, stage=2)
        expected = tuple(
            rom_coefficient_index(32, 2, m) for m in (8, 9, 10, 11)
        )
        assert addr.rom_addresses == expected

    def test_small_group_lane_count(self):
        ac = AddressChangingLogic()
        ac.configure(4)
        assert ac.modules_per_stage() == 1
        assert ac.lanes_for_module(1) == 2
        addr = ac.addresses(module=1, stage=1)
        assert len(addr.crf_reads_first) == 2

    def test_operand_validation(self):
        ac = AddressChangingLogic()
        ac.configure(16)
        with pytest.raises(ValueError):
            ac.addresses(module=0, stage=1)
        with pytest.raises(ValueError):
            ac.addresses(module=1, stage=5)


class TestTrace:
    def test_records_and_bounds(self):
        from repro.isa import assemble
        from repro.sim import Machine, MainMemory

        machine = Machine(MainMemory(64))
        trace = ExecutionTrace(capacity=4)
        machine.step = trace.wrap(machine)
        machine.run(assemble("li r1, 3\nloop: addi r1, r1, -1\n"
                             "bne r1, r0, loop\nhalt"))
        assert len(trace) == 4  # capped at capacity
        assert "addi" in trace.listing()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ExecutionTrace(capacity=0)
