"""The Algorithm-1 code generator in detail."""

import pytest

from repro.asip.codegen import UNROLL_THRESHOLD, generate_fft_program
from repro.asip.fft_asip import GROUP_SIZE_REG, STOUT_STRIDE_REG
from repro.core.plan import build_plan
from repro.isa import Opcode


def opcode_counts(program):
    counts = {}
    for instr in program:
        counts[instr.opcode] = counts.get(instr.opcode, 0) + 1
    return counts


class TestOpCounts:
    @pytest.mark.parametrize("n", [8, 64, 256, 1024, 2048])
    def test_custom_op_counts_match_plan(self, n):
        plan = build_plan(n)
        counts = opcode_counts(generate_fft_program(n, plan))
        unrolled = n <= UNROLL_THRESHOLD
        if unrolled:
            assert counts[Opcode.LDIN] == plan.total_ldin
            assert counts[Opcode.STOUT] == plan.total_stout
            assert counts[Opcode.BUT4] == plan.total_but4
        else:
            # looped: one group body per epoch in the text
            e0, e1 = plan.epochs
            assert counts[Opcode.LDIN] == (
                max(e0.group_size // 2, 1) + max(e1.group_size // 2, 1)
            )

    def test_ldin_repeated_n_times_total(self):
        """The paper: 'this instruction needs to be repeated for N times
        in total' — executed count equals N (one per two points, both
        epochs)."""
        import numpy as np

        from repro.asip import simulate_fft

        result = simulate_fft(np.ones(128, dtype=complex))
        assert result.stats.custom_ops["ldin"] == 128


class TestStructure:
    def test_epoch_configuration_registers(self):
        program = generate_fft_program(128)  # non-square: P=16, Q=8
        writes = [
            (i.rt, i.imm) for i in program
            if i.opcode is Opcode.ADDI and i.rs == 0
        ]
        assert (GROUP_SIZE_REG, 16) in writes
        assert (GROUP_SIZE_REG, 8) in writes
        assert (STOUT_STRIDE_REG, 8) in writes
        assert (STOUT_STRIDE_REG, 16) in writes

    def test_square_sizes_skip_redundant_latches(self):
        program = generate_fft_program(64)  # P = Q = 8
        group_size_writes = [
            i for i in program
            if i.opcode is Opcode.ADDI and i.rs == 0
            and i.rt == GROUP_SIZE_REG
        ]
        assert len(group_size_writes) == 1

    def test_prerotation_only_in_epoch0(self):
        program = generate_fft_program(64)
        stouts = [i for i in program if i.opcode is Opcode.STOUT]
        flagged = [i for i in stouts if i.imm == 1]
        assert len(flagged) == len(stouts) // 2

    def test_stage_operands_use_constant_pool(self):
        program = generate_fft_program(1024)
        stage_regs = {i.rt for i in program if i.opcode is Opcode.BUT4}
        assert stage_regs <= set(range(20, 25))

    def test_large_p_materialises_module_numbers(self):
        # N=32768 -> P=256 -> 32 modules > the 8-register pool
        program = generate_fft_program(32768)
        modules = {i.rs for i in program if i.opcode is Opcode.BUT4}
        assert 11 in modules  # the scratch register

    def test_listing_is_renderable(self):
        listing = generate_fft_program(64).listing()
        assert "but4" in listing and "ldin" in listing


class TestUnrollThreshold:
    def test_threshold_boundary(self):
        assert Opcode.BNE not in opcode_counts(generate_fft_program(512))
        assert Opcode.BNE in opcode_counts(generate_fft_program(1024))

    def test_explicit_threshold_override(self):
        looped = generate_fft_program(64, unroll_threshold=0)
        assert Opcode.BNE in opcode_counts(looped)
        assert len(looped) < len(generate_fft_program(64))

    def test_override_still_correct(self):
        import numpy as np

        from repro.asip import FFTASIP

        n = 64
        x = np.random.default_rng(0).standard_normal(n).astype(complex)
        asip = FFTASIP(n)
        asip.load_input(x)
        asip.run(generate_fft_program(n, asip.plan, unroll_threshold=0))
        assert np.allclose(asip.read_output(), np.fft.fft(x), atol=1e-9)
