"""Co-execution, fault injection and fuzzing (repro.verify).

Three layers of coverage:

* clean lockstep runs over every runner — no false divergences;
* the fault-injection self-test — every fault class in
  ``FAULT_CLASSES`` must be *detected* and *localised to the injected
  coordinates*, and the hooks must restore state on exit;
* the seeded fuzzer — a fixed-seed smoke (the tier-1 acceptance
  criterion: zero real divergences across all registered backends),
  determinism, and the shrinker.
"""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.array_fft import ArrayFFT
from repro.verify import (
    FAULT_CLASSES,
    FUZZ_KINDS,
    branch_metric_flip,
    coexec_asip,
    coexec_backends,
    coexec_fft,
    coexec_viterbi,
    demonstrate_fault,
    fuzz_backends,
    shrink_config,
    twiddle_flip,
)


class TestCoexecClean:
    """Lockstep runs over healthy twins report no divergence."""

    def test_fft_float(self):
        result = coexec_fft(64)
        assert result.ok and result.report is None
        assert result.steps > 0

    def test_fft_q15(self):
        assert coexec_fft(64, fixed_point=True).ok

    def test_asip_lockstep(self):
        result = coexec_asip(16)
        assert result.ok
        assert result.steps > 0  # instructions actually stepped

    def test_asip_q15(self):
        assert coexec_asip(16, fixed_point=True).ok

    def test_viterbi_trellis(self):
        result = coexec_viterbi(steps=24)
        assert result.ok
        assert result.steps == 24

    def test_backend_pair(self):
        result = coexec_backends(64, ("compiled", "reference"), symbols=4)
        assert result.ok
        assert result.steps == 4
        assert result.seconds > 0

    def test_backend_pair_q15(self):
        assert coexec_backends(32, ("compiled", "asip"), symbols=2,
                               precision="q15").ok

    def test_backends_need_a_pair(self):
        with pytest.raises(ValueError, match="two backends"):
            coexec_backends(64, ("compiled",))

    def test_fft_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            coexec_fft(a=ArrayFFT(32), b=ArrayFFT(64))


class TestFaultLocalisation:
    """Acceptance: every injected fault class is detected *and*
    localised to the exact injected coordinates."""

    @pytest.mark.parametrize("kind", FAULT_CLASSES)
    def test_fault_detected(self, kind):
        fault, result = demonstrate_fault(kind)
        assert not result.ok, f"{kind}: harness missed {fault.describe()}"
        assert result.report.backends  # a named backend pair
        assert kind.split("-")[0] in fault.kind

    def test_twiddle_localised_to_butterfly(self):
        fault, result = demonstrate_fault("twiddle")
        loc = result.report.location
        assert result.report.kind == "fft-butterfly"
        assert loc["phase"] == "epoch0"
        assert loc["stage"] == fault.location["stage"] == 1
        assert loc["butterfly"] == fault.location["butterfly"] == 2
        # The diverging operand pair carries both sides' weights.
        assert "weight_a" in result.report.operands

    def test_branch_metric_localised_to_trellis_step(self):
        fault, result = demonstrate_fault("branch-metric")
        assert result.report.kind == "viterbi-step"
        assert result.report.location["state"] == fault.location["state"]
        assert result.report.location["mismatch"] == "metric"

    def test_llr_sign_localised_to_bit(self):
        fault, result = demonstrate_fault("llr-sign")
        assert result.report.kind == "llr"
        assert result.report.location["bit"] == fault.location["position"]
        assert result.report.location["sign_flipped"] is True

    def test_worker_shard_localised_to_symbol(self):
        fault, result = demonstrate_fault("worker-shard")
        assert result.report.kind == "spectrum"
        assert result.report.location["symbol"] == fault.location["symbol"]

    def test_asip_step_localised_to_instruction(self):
        fault, result = demonstrate_fault("asip-step")
        assert result.report.kind == "asip-instruction"
        # at_step is 1-based; the diff surfaces after that instruction.
        assert result.report.step_index == fault.location["at_step"] - 1
        assert result.report.operands["register"] == \
            fault.location["register"]
        assert "opcode" in result.report.location

    def test_engine_stall_localised_to_tenant(self):
        fault, result = demonstrate_fault("engine-stall")
        assert result.report.kind == "engine-stall"
        assert result.report.location["tenant"] == "stalled"
        # The clean tenant on the same server kept serving bit-exact
        # results while the stalled one's watchdog fired exactly once.
        assert result.report.operands["clean_ok"] is True
        assert result.report.operands["recorded_timeouts"] == 1

    def test_unknown_fault_class_raises(self):
        with pytest.raises(ValueError, match="unknown fault class"):
            demonstrate_fault("cosmic-ray")

    def test_twiddle_hook_restores_on_exit(self):
        a = ArrayFFT(64, compiled=True)
        b = ArrayFFT(64, compiled=False)
        with twiddle_flip(a, epoch=0, stage=1, index=2):
            assert not coexec_fft(a=a, b=b).ok
        assert coexec_fft(a=a, b=b).ok  # tables restored

    def test_branch_metric_hook_restores_on_exit(self):
        from repro.coding.convolutional import get_code
        from repro.coding.viterbi import ViterbiDecoder

        a = ViterbiDecoder(get_code("conv-k3"))
        b = ViterbiDecoder(get_code("conv-k3"))
        with branch_metric_flip(a, state=1, branch=1):
            assert not coexec_viterbi(a=a, b=b).ok
        assert coexec_viterbi(a=a, b=b).ok


class TestFuzz:
    def test_fixed_seed_smoke(self):
        # The tier-1 acceptance smoke: a fixed-seed sweep across every
        # generator family and registered backend finds nothing.
        report = fuzz_backends(8, seed=1234)
        assert report.ok
        assert report.cases == 8
        assert "0 divergences" in report.summary()

    def test_covers_all_kinds_round_robin(self):
        report = fuzz_backends(len(FUZZ_KINDS), seed=3)
        assert report.ok and report.cases == len(FUZZ_KINDS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fuzz kind"):
            fuzz_backends(2, kinds=("isa", "quantum"))

    def test_generators_are_deterministic(self):
        from repro.verify.fuzz import _gen_coded, _gen_isa

        a = np.random.default_rng(7)
        b = np.random.default_rng(7)
        assert _gen_isa(a) == _gen_isa(b)
        assert _gen_coded(a) == _gen_coded(b)

    def test_shrink_reaches_the_floors(self):
        from repro.verify.coexec import DivergenceReport

        report = DivergenceReport(kind="spectrum", backends=("a", "b"),
                                  step_index=0)
        minimal = shrink_config(
            {"n_points": 64, "symbols": 4, "seed": 1},
            lambda config: report,  # never stops failing
        )
        assert minimal == {"n_points": 16, "symbols": 1, "seed": 1}

    def test_shrink_keeps_failing_configs_only(self):
        from repro.verify.coexec import DivergenceReport

        report = DivergenceReport(kind="spectrum", backends=("a", "b"),
                                  step_index=0)

        def run_case(config):
            # Fails only while symbols stays above 2: the shrinker must
            # stop at 2, not push through to the floor of 1.
            return report if config["symbols"] >= 2 else None

        minimal = shrink_config({"symbols": 8, "seed": 0}, run_case)
        assert minimal["symbols"] == 2


class TestCli:
    def test_fuzz_mode(self, capsys):
        assert cli_main(["verify", "--fuzz", "4", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "fuzz: 4 cases, 0 divergences" in out

    def test_inject_mode(self, capsys):
        assert cli_main(["verify", "--inject", "twiddle"]) == 0
        out = capsys.readouterr().out
        assert "injected twiddle-flip" in out
        assert "detected" in out

    def test_coexec_mode(self, capsys):
        assert cli_main(["verify", "--coexec", "uwb-ofdm",
                         "--symbols", "2"]) == 0
        assert "parity: OK" in capsys.readouterr().out

    def test_exactly_one_mode_required(self):
        with pytest.raises(SystemExit):
            cli_main(["verify"])
        with pytest.raises(SystemExit):
            cli_main(["verify", "--fuzz", "2", "--inject", "twiddle"])

    def test_unknown_scenario_exits(self):
        with pytest.raises(SystemExit):
            cli_main(["verify", "--coexec", "not-a-scenario"])

    def test_inject_choices_cover_fault_classes(self):
        from repro.cli import build_parser

        parser = build_parser()
        for kind in FAULT_CLASSES:
            args = parser.parse_args(["verify", "--inject", kind])
            assert args.inject == kind
        with pytest.raises(SystemExit):
            parser.parse_args(["verify", "--inject", "bogus"])
