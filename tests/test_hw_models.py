"""Hardware cost models against the paper's Section IV numbers."""

import pytest

from repro.hw import (
    AreaModel,
    PowerModel,
    TimingModel,
    hardware_report,
)


class TestAreaCalibration:
    def test_bu_ac_within_one_percent(self):
        bu_ac = AreaModel(32).breakdown().bu_ac
        assert abs(bu_ac - 17_324) / 17_324 < 0.01

    def test_crf_rom_within_one_percent(self):
        crf_rom = AreaModel(32).breakdown().crf_rom
        assert abs(crf_rom - 15_764) / 15_764 < 0.01

    def test_total_near_33k(self):
        assert abs(AreaModel(32).breakdown().total - 33_000) < 1_000

    def test_overhead_is_fraction_of_base_core(self):
        fraction = AreaModel(32).overhead_fraction()
        assert 0.25 < fraction < 0.40  # "acceptable as an accelerator"


class TestAreaScaling:
    def test_storage_scales_with_p(self):
        small = AreaModel(8).breakdown()
        large = AreaModel(128).breakdown()
        assert large.crf == 16 * small.crf
        assert abs(large.rom - 16 * small.rom) / large.rom < 0.002

    def test_bu_is_p_independent(self):
        assert (
            AreaModel(8).breakdown().butterfly_unit
            == AreaModel(128).breakdown().butterfly_unit
        )

    def test_ac_grows_slowly(self):
        a8 = AreaModel(8).breakdown().ac_logic
        a128 = AreaModel(128).breakdown().ac_logic
        assert a128 < 4 * a8  # ~log^2, not linear

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            AreaModel(24)


class TestTiming:
    def test_bu_critical_path_is_3_2_ns(self):
        assert abs(TimingModel(32).bu_critical_path_ns() - 3.2) < 0.05

    def test_supports_300mhz(self):
        assert TimingModel(32).max_clock_mhz() >= 300.0

    def test_ac_path_negligible(self):
        t = TimingModel(32)
        assert t.ac_critical_path_ns() < t.bu_critical_path_ns() / 3

    def test_ac_path_grows_with_p_but_stays_subcritical(self):
        t = TimingModel(1024)
        assert t.critical_path_ns() == t.bu_critical_path_ns()


class TestPower:
    def test_bu_ac_power_within_five_percent(self):
        power = PowerModel(AreaModel(32)).breakdown().bu_ac
        assert abs(power - 17.68) / 17.68 < 0.05

    def test_power_scales_with_clock(self):
        slow = PowerModel(AreaModel(32), clock_mhz=150).breakdown().bu_ac
        fast = PowerModel(AreaModel(32), clock_mhz=300).breakdown().bu_ac
        assert abs(fast - 2 * slow) < 1e-9

    def test_storage_power_is_minor(self):
        breakdown = PowerModel(AreaModel(32)).breakdown()
        assert breakdown.crf + breakdown.rom < breakdown.bu_ac / 2


class TestReport:
    def test_rows_cover_all_published_metrics(self):
        report = hardware_report(32)
        metrics = {row[0] for row in report.rows()}
        assert "BU + AC gates" in metrics
        assert "BU + AC power (mW)" in metrics
        assert len(report.rows()) == 6

    def test_every_row_within_ten_percent_of_paper(self):
        for name, modelled, paper in hardware_report(32).rows():
            assert abs(modelled - paper) / paper < 0.10, name
