"""Fault injection: prove the addressing rules are load-bearing.

Each test corrupts one mechanism the paper introduces (the L switch, the
ROM stride rule, the pre-rotation, the bank ping-pong) and asserts the
FFT *breaks* — demonstrating that the reproduction's correctness rests on
those rules rather than on some forgiving redundancy, and that the test
suite would catch a regression in any of them.
"""

import numpy as np
import pytest

from repro.addressing.coefficients import rom_coefficient_index
from repro.addressing.local import stage_input_addresses
from repro.core import ArrayFFT
from repro.core.plan import StagePlan, build_plan


def random_vector(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


def _with_broken_stage(engine, epoch_index, stage_index, **overrides):
    """Rebuild one StagePlan field and splice it into the engine's plan."""
    plan = engine.plan
    epoch = plan.epochs[epoch_index]
    stage = epoch.stages[stage_index]
    fields = {
        "stage": stage.stage,
        "read_addresses": stage.read_addresses,
        "coefficient_indices": stage.coefficient_indices,
        "modules": stage.modules,
    }
    fields.update(overrides)
    stages = list(epoch.stages)
    stages[stage_index] = StagePlan(**fields)
    object.__setattr__(epoch, "stages", tuple(stages))
    return engine


class TestFaults:
    def test_wrong_local_switch_breaks_fft(self):
        """Swap the wrong bit pair in one stage's read addresses."""
        n = 64
        engine = ArrayFFT(n)
        p = engine.plan.split.p
        wrong = tuple(
            a ^ 0b101 for a in stage_input_addresses(p, 2)
        )
        _with_broken_stage(engine, 0, 1, read_addresses=wrong)
        x = random_vector(n)
        assert not np.allclose(engine.transform(x), np.fft.fft(x),
                               atol=1e-6)

    def test_wrong_coefficient_stage_numbering_breaks_fft(self):
        """Use the reversed (DIF-like) stage numbering the Section II-C
        example rules out."""
        n = 64
        engine = ArrayFFT(n)
        size = engine.plan.epochs[0].group_size
        p = engine.plan.split.p
        # corrupt stage 1 with stage p's coefficient set (the reversed
        # numbering maps 1 <-> p, which differs for any p >= 2)
        reversed_coeffs = tuple(
            rom_coefficient_index(size, p, m) for m in range(size // 2)
        )
        _with_broken_stage(engine, 0, 0,
                           coefficient_indices=reversed_coeffs)
        x = random_vector(n, 1)
        assert not np.allclose(engine.transform(x), np.fft.fft(x),
                               atol=1e-6)

    def test_missing_prerotation_breaks_fft(self):
        """Zero-exponent pre-rotation = plain block FFTs, not the DFT."""
        n = 64
        engine = ArrayFFT(n)

        class NoRotation:
            def weight(self, s, l):
                return 1.0 + 0j

        engine.prerotation = NoRotation()
        x = random_vector(n, 2)
        assert not np.allclose(engine.transform(x), np.fft.fft(x),
                               atol=1e-6)

    def test_wrong_epoch_gather_breaks_fft(self):
        """Loading epoch-0 groups contiguously instead of strided (the
        AI0 corner-turn) must fail for any non-symmetric input."""
        from repro.asip import FFTASIP, generate_fft_program

        n = 64
        asip = FFTASIP(n)
        x = random_vector(n, 3)
        # stage the input WITHOUT the corner turn
        asip.memory.load_complex_vector(0, x)
        asip.run(generate_fft_program(n, asip.plan))
        assert not np.allclose(asip.read_output(), np.fft.fft(x),
                               atol=1e-6)

    def test_pairing_invariant_detects_corrupted_switch(self):
        """The label-flow invariant check fires on a corrupted L rule."""
        import repro.addressing.global_rule as gr

        original = gr.stage_input_addresses
        try:
            gr.stage_input_addresses = lambda p, stage: list(range(1 << p))
            with pytest.raises(AssertionError):
                gr.column_labels(4, 4)
        finally:
            gr.stage_input_addresses = original


class TestFaultFreeBaseline:
    def test_untouched_engine_remains_correct(self):
        """Sanity: the same engines pass when nothing is injected."""
        n = 64
        x = random_vector(n, 4)
        assert np.allclose(ArrayFFT(n).transform(x), np.fft.fft(x))
