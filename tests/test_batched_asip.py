"""Multi-symbol ASIP batching + int-array Q1.15 datapath: exactness.

The batched fast paths are only allowed to exist because they are the
same machine: every test here pins batched/vectorised execution to the
serial loop and the step interpreter — registers, memory, spectra,
per-symbol cycles, every SimStats counter, CRF/ROM/BU access counts and
Q1.15 overflow counts.
"""

import numpy as np
import pytest

from repro.asip import FFTASIP, generate_fft_program
from repro.asip.streaming import StreamingFFT
from repro.isa.instructions import Opcode
from repro.isa.program import ProgramBuilder


def random_blocks(symbols, n, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return scale * (
        rng.standard_normal((symbols, n))
        + 1j * rng.standard_normal((symbols, n))
    )


def run_serial(machine, program, blocks):
    outputs = []
    cycles = []
    for row in blocks:
        before = machine.stats.cycles
        machine.load_input(row)
        machine.run(program)
        cycles.append(machine.stats.cycles - before)
        outputs.append(machine.read_output())
    return np.stack(outputs), cycles


def assert_machines_equal(a: FFTASIP, b: FFTASIP, exact=True):
    assert a.registers == b.registers
    assert a.stats.as_dict() == b.stats.as_dict()
    assert a.crf.reads == b.crf.reads
    assert a.crf.writes == b.crf.writes
    assert a.rom.reads == b.rom.reads
    assert a.bu.op_count == b.bu.op_count
    mem_a = a.memory.read_complex_vector(0, 3 * a.n_points)
    mem_b = b.memory.read_complex_vector(0, 3 * b.n_points)
    if exact:
        assert np.array_equal(mem_a, mem_b)
    else:
        assert np.allclose(mem_a, mem_b, atol=1e-12)


class TestIntDatapath:
    """Tentpole layer 1: the vectorised Q1.15 simulator datapath."""

    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_bit_identical_to_scalar_interpreter(self, n):
        x = random_blocks(1, n, seed=n, scale=0.3)[0]
        program = generate_fft_program(n)
        fast = FFTASIP(n, fixed_point=True)
        oracle = FFTASIP(n, fixed_point=True, vectorized=False,
                         int_datapath=False)
        fast.load_input(x)
        fast.run(program)
        oracle.load_input(x)
        oracle.run_interpreted(program)
        assert np.array_equal(fast.read_output(), oracle.read_output())
        assert fast.fx.overflow_count == oracle.fx.overflow_count
        assert_machines_equal(fast, oracle)

    def test_pr1_scalar_lane_config_still_equal(self):
        """int_datapath=False reproduces the PR-1 path exactly."""
        n = 64
        x = random_blocks(1, n, seed=5, scale=0.3)[0]
        program = generate_fft_program(n)
        fast = FFTASIP(n, fixed_point=True)
        pr1 = FFTASIP(n, fixed_point=True, int_datapath=False)
        for machine in (fast, pr1):
            machine.load_input(x)
            machine.run(program)
        assert np.array_equal(fast.read_output(), pr1.read_output())
        assert fast.fx.overflow_count == pr1.fx.overflow_count
        assert_machines_equal(fast, pr1)

    def test_overflow_counts_match_when_saturating(self):
        """With per-stage scaling off, large inputs saturate in the
        butterflies; the vectorised counts must agree exactly."""
        n = 64
        x = random_blocks(1, n, seed=7, scale=0.9)[0]
        program = generate_fft_program(n)
        fast = FFTASIP(n, fixed_point=True)
        oracle = FFTASIP(n, fixed_point=True, vectorized=False,
                         int_datapath=False)
        fast.fx.scale_stages = oracle.fx.scale_stages = False
        fast.load_input(x)
        fast.run(program)
        oracle.load_input(x)
        oracle.run_interpreted(program)
        assert oracle.fx.overflow_count > 0
        assert fast.fx.overflow_count == oracle.fx.overflow_count
        assert np.array_equal(fast.read_output(), oracle.read_output())

    def test_int_crf_scalar_accessors_roundtrip(self):
        """The int-mode CRF's scalar interface is lossless on the grid."""
        from repro.sim.crf import CustomRegisterFile

        crf = CustomRegisterFile(8, int_mode=True)
        value = complex(12345 / 32768, -32768 / 32768)
        crf.write(3, value)
        assert crf.read(3) == value
        assert crf.reads == 1 and crf.writes == 1


class TestRunBatch:
    """Tentpole layer 2: the multi-symbol batch axis."""

    @pytest.mark.parametrize("n,symbols", [(16, 3), (64, 7), (256, 5)])
    def test_float_batch_equals_serial(self, n, symbols):
        blocks = random_blocks(symbols, n, seed=n + symbols)
        program = generate_fft_program(n)
        batched = FFTASIP(n)
        serial = FFTASIP(n)
        outs_b, cycles_b = batched.run_batch(program, blocks)
        outs_s, cycles_s = run_serial(serial, program, blocks)
        assert np.array_equal(outs_b, outs_s)
        assert cycles_b == cycles_s
        assert_machines_equal(batched, serial)

    @pytest.mark.parametrize("n,symbols", [(32, 4), (64, 6)])
    def test_fixed_batch_bit_identical(self, n, symbols):
        blocks = random_blocks(symbols, n, seed=n, scale=0.3)
        program = generate_fft_program(n)
        batched = FFTASIP(n, fixed_point=True)
        serial = FFTASIP(n, fixed_point=True)
        outs_b, cycles_b = batched.run_batch(program, blocks)
        outs_s, cycles_s = run_serial(serial, program, blocks)
        assert np.array_equal(outs_b, outs_s)
        assert cycles_b == cycles_s
        assert batched.fx.overflow_count == serial.fx.overflow_count
        assert_machines_equal(batched, serial)

    def test_tiny_size_uses_per_op_batched_custom_ops(self):
        """N=4 programs issue unfused single LDIN/STOUT ops — the per-op
        batched executors must agree with the serial loop too."""
        n, symbols = 4, 3
        blocks = random_blocks(symbols, n, seed=1)
        program = generate_fft_program(n)
        batched = FFTASIP(n)
        serial = FFTASIP(n)
        outs_b, cycles_b = batched.run_batch(program, blocks)
        outs_s, cycles_s = run_serial(serial, program, blocks)
        assert np.array_equal(outs_b, outs_s)
        assert cycles_b == cycles_s
        assert_machines_equal(batched, serial)

    def test_cache_counters_replayed_exactly(self):
        """dcache hits/misses must equal the serial loop's (cold first
        symbol, warm rest) — the trace-replay path."""
        n, symbols = 64, 9
        blocks = random_blocks(symbols, n, seed=3)
        program = generate_fft_program(n)
        batched = FFTASIP(n)
        serial = FFTASIP(n)
        batched.run_batch(program, blocks)
        run_serial(serial, program, blocks)
        assert batched.stats.dcache_hits == serial.stats.dcache_hits
        assert batched.stats.dcache_misses == serial.stats.dcache_misses
        assert batched.dcache.hits == serial.dcache.hits
        assert batched.dcache.misses == serial.dcache.misses
        assert batched.dcache.writebacks == serial.dcache.writebacks
        assert batched.dcache.state_key() == serial.dcache.state_key()

    def test_uncached_machine_batches(self):
        n, symbols = 32, 4
        blocks = random_blocks(symbols, n, seed=8)
        program = generate_fft_program(n)
        batched = FFTASIP(n, cache_config=None)
        batched.dcache = None
        serial = FFTASIP(n)
        serial.dcache = None
        outs_b, _ = batched.run_batch(program, blocks)
        outs_s, _ = run_serial(serial, program, blocks)
        assert np.array_equal(outs_b, outs_s)
        assert batched.stats.as_dict() == serial.stats.as_dict()

    def test_empty_and_single_symbol(self):
        n = 16
        program = generate_fft_program(n)
        machine = FFTASIP(n)
        outs, cycles = machine.run_batch(
            program, np.empty((0, n), dtype=complex)
        )
        assert outs.shape == (0, n) and cycles == []
        block = random_blocks(1, n, seed=2)
        outs, cycles = machine.run_batch(program, block)
        assert len(cycles) == 1
        assert np.allclose(outs[0], np.fft.fft(block[0]), atol=1e-8)

    def test_shape_validated(self):
        machine = FFTASIP(16)
        program = generate_fft_program(16)
        with pytest.raises(ValueError):
            machine.run_batch(program, np.zeros((2, 8), dtype=complex))
        with pytest.raises(ValueError):
            machine.run_batch(program, np.zeros(16, dtype=complex))


class TestBatchFallbacks:
    """run_batch must decline batching whenever exactness is at risk."""

    def serial_reference(self, n, blocks, **kwargs):
        program = generate_fft_program(n)
        machine = FFTASIP(n, **kwargs)
        return run_serial(machine, program, blocks), machine

    def test_scalar_oracle_config_falls_back(self):
        n, symbols = 16, 3
        blocks = random_blocks(symbols, n, seed=4)
        program = generate_fft_program(n)
        machine = FFTASIP(n, vectorized=False)
        assert not machine._can_batch(program)
        outs, cycles = machine.run_batch(program, blocks)
        (outs_ref, cycles_ref), ref = self.serial_reference(
            n, blocks, vectorized=False
        )
        assert np.array_equal(outs, outs_ref)
        assert cycles == cycles_ref

    def test_pr1_fixed_config_falls_back(self):
        n = 16
        machine = FFTASIP(n, fixed_point=True, int_datapath=False)
        assert not machine._can_batch(generate_fft_program(n))

    def test_charged_cache_latency_falls_back(self):
        n = 16
        machine = FFTASIP(n)
        machine.charge_cache_latency = True
        assert not machine._can_batch(generate_fft_program(n))

    def test_instrumented_machine_falls_back(self):
        n = 16
        machine = FFTASIP(n)
        machine.read_output = lambda: np.zeros(n, dtype=complex)
        assert not machine._can_batch(generate_fft_program(n))

    def test_lw_sw_program_falls_back(self):
        machine = FFTASIP(16)
        b = ProgramBuilder()
        b.emit(Opcode.SW, rs=0, rt=0, imm=64)
        b.halt()
        assert not machine._can_batch(b.build())

    def test_cross_symbol_dataflow_rejected(self):
        """A program that reads a data-region column before writing it
        (and writes it later) would consume the previous symbol's state
        serially; the batch guard must refuse it rather than silently
        diverge."""
        from repro.asip.fft_asip import GROUP_SIZE_REG
        from repro.sim.errors import SimulationError

        n = 16
        machine = FFTASIP(n)
        b = ProgramBuilder()
        b.li(GROUP_SIZE_REG, 4)
        b.li(26, 1)          # LDIN stride
        b.li(25, 1)          # STOUT stride
        b.li(4, 2 * n)       # LDIN cursor -> output region (unwritten)
        b.li(5, 0)
        b.emit(Opcode.LDIN, rs=4, rt=5)
        b.li(6, 0)
        b.li(7, 2 * n)       # STOUT cursor -> same output columns
        b.emit(Opcode.STOUT, rs=6, rt=7)
        b.halt()
        program = b.build()
        assert machine._can_batch(program)
        blocks = random_blocks(3, n, seed=9)
        with pytest.raises(SimulationError):
            machine.run_batch(program, blocks)

    def test_streaming_corruption_detected_through_batch(self):
        """A corrupted batched output must still fail verification."""
        stream = StreamingFFT(16)
        original = stream.asip.run_batch

        def corrupt(program, blocks):
            outputs, cycles = original(program, blocks)
            outputs[-1] = 0
            return outputs, cycles

        stream.asip.run_batch = corrupt
        blocks = random_blocks(4, 16, seed=6)
        with pytest.raises(AssertionError):
            stream.process(blocks)


class TestBatchedStreaming:
    def test_batched_process_equals_serial_process(self):
        n, symbols = 64, 10
        blocks = random_blocks(symbols, n, seed=11)
        serial = StreamingFFT(n)
        batched = StreamingFFT(n)
        stats_s = serial.process(blocks, batch=1)
        stats_b = batched.process(blocks, batch=4)
        assert stats_s.per_symbol_cycles == stats_b.per_symbol_cycles
        assert stats_s.total_cycles == stats_b.total_cycles
        assert stats_b.is_deterministic
        assert (serial.asip.stats.as_dict()
                == batched.asip.stats.as_dict())

    def test_generator_input_with_reused_buffer(self):
        n = 16

        def reused(count):
            rng = np.random.default_rng(13)
            buf = np.empty(n, dtype=complex)
            for _ in range(count):
                buf[:] = rng.standard_normal(n) + 1j * rng.standard_normal(n)
                yield buf

        stats = StreamingFFT(n).process(reused(7), batch=3)
        assert stats.symbols == 7
        assert stats.is_deterministic

    def test_fixed_point_batched_stream(self):
        blocks = random_blocks(6, 64, seed=14, scale=0.2)
        stats = StreamingFFT(64, fixed_point=True).process(blocks)
        assert stats.symbols == 6
        assert stats.is_deterministic

    def test_mbps_paper_convention_property(self):
        stats = StreamingFFT(64).process(random_blocks(2, 64, seed=15))
        assert stats.mbps_paper_convention == pytest.approx(
            6.0 * stats.msamples_per_second
        )
