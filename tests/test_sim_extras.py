"""Remaining sim/stat/hw surfaces: stats, pipeline config, energy."""

import pytest

from repro.hw.energy import energy_per_fft_nj
from repro.sim import PipelineConfig, SimStats
from repro.sim.pipeline import PipelineConfig as PC


class TestSimStats:
    def test_derived_properties(self):
        stats = SimStats(cycles=100, instructions=50, loads=10, stores=5,
                         dcache_hits=12, dcache_misses=3)
        assert stats.memory_operations == 15
        assert stats.dcache_accesses == 15
        assert stats.miss_rate == 0.2
        assert stats.cpi == 2.0

    def test_empty_stats_do_not_divide_by_zero(self):
        stats = SimStats()
        assert stats.miss_rate == 0.0
        assert stats.cpi == 0.0

    def test_custom_op_counter(self):
        stats = SimStats()
        stats.count_custom("but4")
        stats.count_custom("but4")
        stats.count_custom("ldin")
        assert stats.custom_ops == {"but4": 2, "ldin": 1}

    def test_as_dict_includes_custom_ops(self):
        stats = SimStats(cycles=7)
        stats.count_custom("stout")
        flat = stats.as_dict()
        assert flat["cycles"] == 7
        assert flat["op_stout"] == 1


class TestPipelineConfig:
    def test_defaults(self):
        config = PipelineConfig()
        assert config.branch_penalty == 2
        assert config.but4_latency == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PC(branch_penalty=-1)

    def test_frozen(self):
        with pytest.raises(Exception):
            PipelineConfig().branch_penalty = 5


class TestEnergy:
    def test_report_arithmetic(self):
        report = energy_per_fft_nj(1024, 3600)
        assert report.time_us == pytest.approx(3600 / 300.0)
        assert report.energy_nj == pytest.approx(
            report.power_mw * report.time_us
        )
        assert report.nj_per_point == pytest.approx(
            report.energy_nj / 1024
        )

    def test_energy_scale_is_sub_microjoule(self):
        """~20 mW for ~12 us -> a few hundred nJ per 1024-point FFT."""
        report = energy_per_fft_nj(1024, 3602)
        assert 50 < report.energy_nj < 1000

    def test_rejects_bad_cycles(self):
        with pytest.raises(ValueError):
            energy_per_fft_nj(64, 0)

    def test_energy_per_point_improves_with_size(self):
        """Larger transforms amortise fixed overhead per point."""
        from repro.asip import simulate_fft
        import numpy as np

        small = simulate_fft(
            np.random.default_rng(0).standard_normal(64).astype(complex)
        ).stats.cycles
        large = simulate_fft(
            np.random.default_rng(0).standard_normal(1024).astype(complex)
        ).stats.cycles
        e_small = energy_per_fft_nj(64, small).nj_per_point
        e_large = energy_per_fft_nj(1024, large).nj_per_point
        # per-point energy grows only with the log2(N)/8 compute term
        assert e_large < 1.6 * e_small
