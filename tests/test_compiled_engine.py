"""Compiled-plan vectorized engine: equivalence with the oracle datapaths.

The compiled engine is only allowed to be fast because it is provably the
same computation: the Q1.15 path must match the scalar ``FixedComplex``
walk bit for bit (overflow counts included), the float path must agree to
rounding noise, and the predecoded simulator must retire the same
instructions with the same statistics as the step interpreter.
"""

import numpy as np
import pytest

from repro.addressing.coefficients import PreRotationStore
from repro.core import ArrayFFT, array_fft
from repro.engines import _SHARED_CACHE
from repro.core.fixed_point import (
    FixedPointContext,
    quantize,
    quantize_array,
    round_shift_array,
)
from repro.core.fixed_point import _round_shift


def random_vector(n, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return scale * (rng.standard_normal(n) + 1j * rng.standard_normal(n))


ALL_SIZES = [4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048]


class TestFixedPointBitIdentity:
    @pytest.mark.parametrize("n", ALL_SIZES)
    def test_bit_identical_across_sizes(self, n):
        """Exact integer equality with the FixedComplex oracle, 4..2048."""
        x = random_vector(n, seed=n, scale=0.3)
        fast = ArrayFFT(n, fixed_point=True)
        oracle = ArrayFFT(n, fixed_point=True, compiled=False)
        got = fast.transform(x)
        want = oracle.transform(x)
        assert np.array_equal(got, want)
        assert fast.fx.overflow_count == oracle.fx.overflow_count

    def test_overflow_counts_match_when_saturating(self):
        """Large inputs overflow; the counts must still agree exactly."""
        n = 64
        x = random_vector(n, seed=1, scale=0.999)
        fast = ArrayFFT(n, fixed_point=True)
        oracle = ArrayFFT(n, fixed_point=True, compiled=False)
        # Disable per-stage scaling on both contexts to force saturation.
        fast.fx.scale_stages = oracle.fx.scale_stages = False
        assert np.array_equal(fast.transform(x), oracle.transform(x))
        assert oracle.fx.overflow_count > 0
        assert fast.fx.overflow_count == oracle.fx.overflow_count

    def test_vector_quantize_matches_scalar(self):
        rng = np.random.default_rng(2)
        values = rng.uniform(-1.3, 1.3, 64) + 1j * rng.uniform(-1.3, 1.3, 64)
        re, im = quantize_array(values)
        for k, v in enumerate(values):
            q = quantize(complex(v))
            assert (int(re[k]), int(im[k])) == (q.re, q.im)

    def test_vector_round_shift_matches_scalar(self):
        v = np.arange(-70, 70, dtype=np.int64)
        for bits in (1, 3, 15):
            got = round_shift_array(v, bits)
            want = [_round_shift(int(x), bits) for x in v]
            assert list(got) == want

    def test_vector_butterfly_counts_overflow_like_scalar(self):
        ctx_v = FixedPointContext(scale_stages=False)
        ctx_s = FixedPointContext(scale_stages=False)
        a = quantize(0.9 + 0.9j)
        b = quantize(0.9 - 0.8j)
        w = quantize(0.999)
        s, d = ctx_s.butterfly(a, b, w)
        sr, si, dr, di = ctx_v.butterfly_arrays(
            *[np.array([v]) for v in (a.re, a.im, b.re, b.im, w.re, w.im)]
        )
        assert (int(sr[0]), int(si[0])) == (s.re, s.im)
        assert (int(dr[0]), int(di[0])) == (d.re, d.im)
        assert ctx_v.overflow_count == ctx_s.overflow_count


class TestFloatEquivalence:
    @pytest.mark.parametrize("n", ALL_SIZES)
    def test_matches_oracle_datapath(self, n):
        x = random_vector(n, seed=n)
        fast = ArrayFFT(n)
        oracle = ArrayFFT(n, compiled=False)
        assert np.allclose(fast.transform(x), oracle.transform(x),
                           atol=1e-12, rtol=1e-12)

    def test_matches_numpy(self):
        for n in (64, 512, 2048):
            x = random_vector(n, seed=n)
            assert np.allclose(ArrayFFT(n).transform(x), np.fft.fft(x),
                               atol=1e-8 * n)

    def test_bu_op_count_matches_plan(self):
        engine = ArrayFFT(128)
        engine.transform(random_vector(128))
        assert engine.bu.op_count == engine.plan.total_but4


class TestBatchTransform:
    def test_transform_many_matches_per_symbol(self):
        n, symbols = 256, 7
        blocks = np.stack([random_vector(n, seed=k) for k in range(symbols)])
        engine = ArrayFFT(n)
        batch = engine.transform_many(blocks)
        single = np.stack([ArrayFFT(n).transform(b) for b in blocks])
        assert np.allclose(batch, single, atol=1e-12)
        assert np.allclose(batch, np.fft.fft(blocks, axis=1), atol=1e-8 * n)

    def test_transform_many_fixed_bit_identical(self):
        n, symbols = 64, 5
        blocks = np.stack(
            [random_vector(n, seed=k, scale=0.3) for k in range(symbols)]
        )
        engine = ArrayFFT(n, fixed_point=True)
        batch = engine.transform_many(blocks)
        for k in range(symbols):
            oracle = ArrayFFT(n, fixed_point=True, compiled=False)
            assert np.array_equal(batch[k], oracle.transform(blocks[k]))

    def test_transform_many_counts_ops_per_symbol(self):
        engine = ArrayFFT(64)
        engine.transform_many(np.zeros((3, 64), dtype=complex))
        assert engine.bu.op_count == 3 * engine.plan.total_but4

    def test_shape_validated(self):
        engine = ArrayFFT(64)
        with pytest.raises(ValueError):
            engine.transform_many(np.zeros((2, 32), dtype=complex))
        with pytest.raises(ValueError):
            engine.transform_many(np.zeros(64, dtype=complex))

    def test_inverse_many_roundtrip(self):
        n = 128
        blocks = np.stack([random_vector(n, seed=k) for k in range(4)])
        engine = ArrayFFT(n)
        assert np.allclose(
            engine.transform_many(engine.inverse_many(blocks)), blocks,
            atol=1e-9,
        )


class TestLookupMany:
    @pytest.mark.parametrize("n", [8, 32, 256, 2048])
    def test_matches_scalar_lookup(self, n):
        store = PreRotationStore(n)
        exponents = np.arange(4 * n) - n  # negative, in-range, wrapped
        got = store.lookup_many(exponents)
        for e, value in zip(exponents, got):
            assert value == store.lookup(int(e))

    def test_weight_matrix_matches_weights(self):
        store = PreRotationStore(64)
        matrix = store.weight_matrix(8, 8)
        for s in range(8):
            for l in range(8):
                assert matrix[s, l] == store.weight(s, l)


class TestEngineCache:
    def test_one_shot_wrapper_reuses_engines(self):
        _SHARED_CACHE.clear()
        x = random_vector(64, seed=3)
        first = array_fft(x)
        key = (64, "compiled", "float", None)
        assert key in _SHARED_CACHE
        engine = _SHARED_CACHE[key]
        second = array_fft(x)
        assert _SHARED_CACHE[key] is engine
        assert np.allclose(first, second)
        array_fft(x * 0.2, fixed_point=True)
        assert (64, "compiled", "q15", None) in _SHARED_CACHE
        assert len(_SHARED_CACHE) == 2

    def test_cached_results_still_correct(self):
        _SHARED_CACHE.clear()
        for seed in range(3):
            x = random_vector(32, seed=seed)
            assert np.allclose(array_fft(x), np.fft.fft(x), atol=1e-9)


class TestPredecodedMachine:
    def assemble_and_compare(self, source):
        from repro.isa import assemble
        from repro.sim import Machine, MainMemory

        program = assemble(source)
        fast = Machine(MainMemory(1024))
        slow = Machine(MainMemory(1024))
        fast.run(program)
        slow.run_interpreted(program)
        assert fast.registers == slow.registers
        assert fast.stats.as_dict() == slow.stats.as_dict()

    def test_alu_and_branch_program(self):
        self.assemble_and_compare("""
            li r1, 10
            li r2, 0
        loop:
            add r2, r2, r1
            addi r1, r1, -1
            bne r1, r0, loop
            sw r2, 64(r0)
            lw r3, 64(r0)
            add r4, r3, r3
            halt
        """)

    def test_jal_jr_and_stalls(self):
        self.assemble_and_compare("""
            jal sub
            halt
        sub:
            li r2, 5
            sw r2, 8(r0)
            lw r3, 8(r0)
            add r4, r3, r3
            jr ra
        """)

    def test_asip_predecoded_run_matches_interpreter(self):
        from repro.asip import FFTASIP, generate_fft_program

        n = 64
        x = random_vector(n, seed=7)
        fast = FFTASIP(n)
        slow = FFTASIP(n, vectorized=False)
        fast.load_input(x)
        slow.load_input(x)
        program = generate_fft_program(n)
        fast.run(program)
        slow.run_interpreted(program)
        assert np.allclose(fast.read_output(), slow.read_output(),
                           atol=1e-12)
        assert fast.stats.as_dict() == slow.stats.as_dict()
        assert fast.bu.op_count == slow.bu.op_count
        assert fast.crf.reads == slow.crf.reads
        assert fast.crf.writes == slow.crf.writes
        assert fast.rom.reads == slow.rom.reads

    def test_asip_fixed_point_bit_identical(self):
        from repro.asip import FFTASIP, generate_fft_program

        n = 32
        x = random_vector(n, seed=9, scale=0.2)
        fast = FFTASIP(n, fixed_point=True)
        slow = FFTASIP(n, fixed_point=True, vectorized=False)
        fast.load_input(x)
        slow.load_input(x)
        program = generate_fft_program(n)
        fast.run(program)
        slow.run_interpreted(program)
        assert np.array_equal(fast.read_output(), slow.read_output())
        assert fast.fx.overflow_count == slow.fx.overflow_count
        assert fast.stats.as_dict() == slow.stats.as_dict()

    def test_transform_many_honours_compiled_false(self):
        n = 32
        blocks = np.stack([random_vector(n, seed=k) for k in range(3)])
        oracle = ArrayFFT(n, compiled=False)
        got = oracle.transform_many(blocks)
        assert oracle._compiled is None  # the oracle path really ran
        assert np.allclose(got, np.fft.fft(blocks, axis=1), atol=1e-9)

    def test_flipping_vectorized_reinvalidates_predecode(self):
        from repro.asip import FFTASIP, generate_fft_program

        n = 16
        x = random_vector(n, seed=13)
        program = generate_fft_program(n)
        machine = FFTASIP(n)
        machine.load_input(x)
        machine.run(program)
        machine.vectorized = False
        machine.load_input(x)
        machine.run(program)
        reference = FFTASIP(n, vectorized=False)
        reference.load_input(x)
        reference.run_interpreted(program)
        assert np.allclose(machine.read_output(), reference.read_output(),
                           atol=1e-12)

    def test_runaway_guard_counts_fused_burst_instructions(self):
        from repro.asip import FFTASIP, generate_fft_program
        from repro.sim.errors import RunawayProgram

        n = 64
        program = generate_fft_program(n)
        machine = FFTASIP(n)
        machine.max_instructions = 50
        machine.load_input(random_vector(n, seed=1))
        with pytest.raises(RunawayProgram):
            machine.run(program)
        # The guard fired within one burst of the limit, not at a
        # multiple of it.
        assert machine.stats.instructions <= 50 + n

    def test_patched_execute_custom_is_honoured(self):
        """Instrumenting execute_custom on the instance (the custom-op
        analogue of the ExecutionTrace step wrap) must be seen by run()."""
        from repro.asip import FFTASIP, generate_fft_program

        n = 16
        asip = FFTASIP(n)
        asip.load_input(random_vector(n, seed=17))
        seen = []
        original = asip.execute_custom
        asip.execute_custom = lambda instr: (
            seen.append(instr.opcode), original(instr)
        )[1]
        asip.run(generate_fft_program(n))
        assert len(seen) == sum(asip.stats.custom_ops.values())

    def test_executor_patched_between_runs_is_honoured(self):
        """Patching a per-op executor between runs of one cached program
        must rebuild the handlers and decline burst fusion."""
        from repro.asip import FFTASIP, generate_fft_program

        n = 16
        x = random_vector(n, seed=19)
        program = generate_fft_program(n)
        asip = FFTASIP(n)
        asip.load_input(x)
        asip.run(program)
        calls = []
        original = asip._exec_but4
        asip._exec_but4 = lambda instr: (calls.append(1), original(instr))[1]
        asip.load_input(x)
        asip.run(program)
        assert len(calls) == asip.plan.total_but4
        assert np.allclose(asip.read_output(), np.fft.fft(x), atol=1e-8)

    def test_asip_prerotation_fault_injection_seam(self):
        """Replacing the store before the first run must be honoured
        (the weight table is built lazily, like ArrayFFT's engine)."""
        from repro.asip import FFTASIP, generate_fft_program

        class NoRotation:
            def weight(self, s, l):
                return 1.0 + 0j

        n = 64
        x = random_vector(n, seed=21)
        asip = FFTASIP(n)
        asip.prerotation = NoRotation()
        asip.load_input(x)
        asip.run(generate_fft_program(n))
        assert not np.allclose(asip.read_output(), np.fft.fft(x),
                               atol=1e-6)

    def test_stream_verify_copies_caller_buffers(self):
        """A caller reusing one buffer per block must still verify clean
        (chunked verification snapshots each input)."""
        from repro.asip.streaming import StreamingFFT

        def reused_buffer_blocks(n, count):
            rng = np.random.default_rng(23)
            buf = np.empty(n, dtype=complex)
            for _ in range(count):
                buf[:] = rng.standard_normal(n) + 1j * rng.standard_normal(n)
                yield buf

        stats = StreamingFFT(8).process(reused_buffer_blocks(8, 4))
        assert stats.symbols == 4

    def test_streamed_reuse_keeps_stats_identical(self):
        """Burst fusion + predecode cache across repeated runs."""
        from repro.asip.streaming import StreamingFFT

        stream = StreamingFFT(64)
        rng = np.random.default_rng(11)
        blocks = [rng.standard_normal(64) + 1j * rng.standard_normal(64)
                  for _ in range(3)]
        stats = stream.process(blocks)
        assert stats.is_deterministic
        assert stats.symbols == 3
