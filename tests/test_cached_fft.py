"""The Baas-style cached (two-epoch) FFT skeleton."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.addressing.epoch import EpochSplit, split_epochs
from repro.fft import cached_fft, naive_dft, prerotation_weights
from repro.fft.cached import epoch0_groups, epoch1_groups


def random_vector(n, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


class TestCachedFFT:
    @given(st.sampled_from([4, 8, 16, 32, 64, 128, 256]),
           st.integers(0, 99))
    @settings(deadline=None, max_examples=30)
    def test_matches_numpy(self, n, seed):
        x = random_vector(n, seed)
        assert np.allclose(cached_fft(x), np.fft.fft(x))

    def test_with_naive_inner_engine(self):
        x = random_vector(64, 7)
        assert np.allclose(cached_fft(x, inner_fft=naive_dft),
                           np.fft.fft(x))

    def test_custom_split(self):
        x = random_vector(64, 8)
        split = EpochSplit(n=6, p=4, q=2)  # non-default 16x4 split
        assert np.allclose(cached_fft(x, split=split), np.fft.fft(x))

    def test_split_size_mismatch(self):
        with pytest.raises(ValueError):
            cached_fft(np.zeros(16), split=split_epochs(64))


class TestGroupIteration:
    def test_epoch0_groups_are_strided(self):
        split = split_epochs(16)  # P=Q=4
        x = np.arange(16, dtype=complex)
        groups = dict(epoch0_groups(x, split))
        assert np.allclose(groups[1], [1, 5, 9, 13])
        assert len(groups) == 4

    def test_epoch1_groups_are_contiguous(self):
        split = split_epochs(16)
        z = np.arange(16, dtype=complex)
        groups = dict(epoch1_groups(z, split))
        assert np.allclose(groups[2], [8, 9, 10, 11])

    def test_prerotation_weights_values(self):
        split = split_epochs(64)
        w = prerotation_weights(split, s=3)
        l = np.arange(split.Q)
        assert np.allclose(w, np.exp(-2j * np.pi * 3 * l / 64))
