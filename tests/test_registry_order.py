"""Deterministic registries: sorted menus and stable error messages.

Every registry in the repo (facade backends, pipeline stages, scenario
presets, codes, interleavers, demappers, trace exporters, uarch configs)
must present its contents in name order regardless of registration order
— so ``*_specs()`` snapshots iterate deterministically and
``UnknownNameError`` menus are byte-stable across runs and
re-registrations.
"""

import pytest

from repro.coding.convolutional import code_names, code_specs, get_code
from repro.coding.demap import demapper_names, demapper_specs, get_demapper
from repro.coding.interleave import (
    get_interleaver,
    interleaver_names,
    interleaver_specs,
)
from repro.core.registry import (
    UnknownNameError,
    backend_names,
    backend_specs,
    get_backend,
)
from repro.pipelines.registry import get_stage, stage_names, stage_specs
from repro.scenarios import get_scenario, scenario_names, scenario_specs
from repro.telemetry import exporter_names, exporter_specs, get_exporter
from repro.uarch import get_uarch, uarch_names, uarch_specs

REGISTRIES = [
    ("backend", backend_names, backend_specs, get_backend),
    ("stage", stage_names, stage_specs, get_stage),
    ("scenario", scenario_names, scenario_specs, get_scenario),
    ("code", code_names, code_specs, get_code),
    ("interleaver", interleaver_names, interleaver_specs, get_interleaver),
    ("demapper", demapper_names, demapper_specs, get_demapper),
    ("exporter", exporter_names, exporter_specs, get_exporter),
    ("uarch", uarch_names, uarch_specs, get_uarch),
]

IDS = [row[0] for row in REGISTRIES]


@pytest.mark.parametrize("label,names,specs,lookup", REGISTRIES, ids=IDS)
def test_specs_iterate_in_name_order(label, names, specs, lookup):
    snapshot = specs()
    assert list(snapshot) == sorted(snapshot)
    assert list(snapshot) == list(names())


@pytest.mark.parametrize("label,names,specs,lookup", REGISTRIES, ids=IDS)
def test_unknown_name_menu_is_sorted(label, names, specs, lookup):
    with pytest.raises(UnknownNameError) as excinfo:
        lookup("definitely-not-registered")
    message = str(excinfo.value)
    assert "definitely-not-registered" in message
    # The menu embedded in the message is the full sorted name list.
    assert ", ".join(names()) in message
    assert names() == sorted(names())


def test_specs_order_survives_unsorted_registration():
    from repro.coding.demap import (
        register_demapper,
        unregister_demapper,
    )

    clean = get_demapper("qpsk")
    try:
        register_demapper("zz-last", clean, replace=True)
        register_demapper("aa-first", clean, replace=True)
        snapshot = list(demapper_specs())
        assert snapshot == sorted(snapshot)
        assert snapshot[0] == "16qam" and "zz-last" in snapshot
    finally:
        unregister_demapper("zz-last")
        unregister_demapper("aa-first")
