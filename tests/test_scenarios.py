"""The scenario registry, presets, wiring and the `run` CLI."""

import json

import numpy as np
import pytest

import repro
from repro.analysis import scenario_sweep
from repro.cli import main
from repro.ofdm import OfdmLink
from repro.scenarios import (
    ScenarioSpec,
    build_scenario,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_names,
    scenario_specs,
    unregister_scenario,
)

PRESETS = ("uwb-ofdm", "wimax-ofdm", "multipath-eq", "spectral")


class TestRegistry:
    def test_builtin_presets_registered(self):
        names = scenario_names()
        for name in PRESETS:
            assert name in names
        assert len(names) >= 4

    def test_unknown_scenario_lists_menu(self):
        with pytest.raises(KeyError, match="uwb-ofdm"):
            get_scenario("nope")
        with pytest.raises(ValueError, match="registered scenarios"):
            get_scenario("nope")
        assert isinstance(
            pytest.raises(repro.UnknownNameError, get_scenario, "x").value,
            LookupError,
        )

    def test_register_and_unregister(self):
        spec = ScenarioSpec(name="tiny", description="test", n_points=16,
                            snr_db=30.0, symbols=2)
        register_scenario(spec)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_scenario(spec)
            assert get_scenario("tiny") is spec
            result = run_scenario("tiny")
            assert result.symbols == 2
            assert result.n_points == 16
        finally:
            unregister_scenario("tiny")
        with pytest.raises(KeyError):
            get_scenario("tiny")

    def test_spec_type_checked(self):
        with pytest.raises(TypeError, match="ScenarioSpec"):
            register_scenario({"name": "dict"})

    def test_specs_snapshot(self):
        specs = scenario_specs()
        assert specs["spectral"].precision == "q15"
        assert specs["multipath-eq"].channel_profile == (3, 0.4, 2)


class TestPresets:
    @pytest.mark.parametrize("name", PRESETS)
    def test_preset_builds_and_runs_small(self, name):
        result = run_scenario(name, symbols=2, n_points=64)
        assert result.name == name
        assert result.symbols == 2
        assert result.spectrum.shape == (2, 64)
        if get_scenario(name).scheme is not None:
            assert result.ber is not None

    def test_channel_taps_reproducible(self):
        spec = get_scenario("multipath-eq")
        taps_a = spec.make_channel().taps
        taps_b = spec.make_channel().taps
        assert np.array_equal(taps_a, taps_b)

    def test_backend_override(self):
        result = run_scenario("wimax-ofdm", symbols=2, n_points=32,
                              backend="asip-batch")
        assert result.transform.backend == "asip-batch"
        assert result.total_cycles > 0

    def test_spectral_preset_is_q15(self):
        result = run_scenario("spectral", symbols=3, n_points=32)
        assert result.precision == "q15"
        assert "overflow_count" in result.metrics


class TestScenarioParity:
    """Presets through the pipeline match the hand-wired OfdmLink."""

    @pytest.mark.parametrize("backend",
                             ("compiled", "asip-batch", "sharded"))
    @pytest.mark.parametrize("name",
                             ("uwb-ofdm", "wimax-ofdm", "multipath-eq"))
    def test_ber_and_bits_match_link(self, name, backend):
        spec = get_scenario(name)
        n = 32  # shrink the geometry; the chain shape is what's under test
        with spec.build(n_points=n, backend=backend) as pipe:
            result = pipe.run(symbols=3)
        with OfdmLink.from_scenario(name, n_subcarriers=n,
                                    backend=backend) as link:
            link_results = link.run_symbols(3)
        assert np.array_equal(
            result.rx_bits, np.stack([r.rx_bits for r in link_results])
        )
        assert np.array_equal(
            result.equalised,
            np.stack([r.equalised for r in link_results]),
        )
        link_errors = sum(r.bit_errors for r in link_results)
        assert result.metrics["bit_errors"] == link_errors

    def test_spectral_matches_streaming_fft_engine(self):
        from repro.asip.streaming import StreamingFFT

        spec = get_scenario("spectral")
        with spec.build(n_points=32, backend="asip-batch") as pipe:
            result = pipe.run(symbols=4)
        blocks = result.stage_outputs["block-source"]
        streamer = StreamingFFT(32, fixed_point=True)
        stats = streamer.process(blocks)
        assert stats.symbols == 4
        assert result.transform.cycles == stats.per_symbol_cycles
        # Same blocks through the persistent machine: bit-identical.
        spectra, _ = streamer.asip.run_batch(streamer.program, blocks)
        assert np.array_equal(result.spectrum, spectra)

    def test_link_from_scenario_rejects_unmodulated(self):
        with pytest.raises(ValueError, match="not a modulated"):
            OfdmLink.from_scenario("spectral")


class TestScenarioSweepHelpers:
    def test_sweep_rows_for_all_presets(self):
        rows = scenario_sweep(symbols=2, n_points=32)
        assert {row["scenario"] for row in rows} == set(scenario_names())
        for row in rows:
            assert row["symbols"] == 2
            assert row["wall_ms"] > 0

    def test_ber_sweep_accepts_scenario(self):
        from repro.analysis import ber_sweep

        curve = ber_sweep(snr_dbs=(10, 20), symbols=2,
                          scenario="wimax-ofdm", n_points=32)
        assert set(curve) == {10.0, 20.0}

    def test_ber_sweep_needs_geometry(self):
        from repro.analysis import ber_sweep

        with pytest.raises(ValueError, match="n_points or scenario"):
            ber_sweep(snr_dbs=(10,))


class TestRunCli:
    def test_run_list(self, capsys):
        assert main(["run", "--list"]) == 0
        out = capsys.readouterr().out
        for name in PRESETS:
            assert name in out

    def test_run_single_scenario(self, capsys):
        assert main(["run", "multipath-eq", "--size", "32",
                     "--symbols", "2"]) == 0
        out = capsys.readouterr().out
        assert "multipath-eq" in out
        assert "BER" in out
        assert "source -> modulate" in out

    def test_run_scenario_on_asip_backend(self, capsys):
        assert main(["run", "wimax-ofdm", "--size", "32", "--symbols", "2",
                     "--backend", "asip-batch"]) == 0
        out = capsys.readouterr().out
        assert "cycles/symbol" in out

    def test_run_all_records_rows(self, tmp_path, capsys):
        target = tmp_path / "bench.json"
        assert main(["run", "--all", "--size", "32", "--symbols", "2",
                     "--record", str(target)]) == 0
        out = capsys.readouterr().out
        assert "Scenario sweep" in out
        stored = json.loads(target.read_text())
        rows = stored["cli_run"]["latest"]["rows"]
        assert {r["scenario"] for r in rows} == set(scenario_names())
        assert all("wall_ms" in r for r in rows)

    def test_run_unknown_scenario_exits_with_menu(self):
        with pytest.raises(SystemExit, match="uwb-ofdm"):
            main(["run", "bogus"])

    def test_run_without_name_exits_helpfully(self):
        with pytest.raises(SystemExit, match="--list"):
            main(["run"])

    def test_run_q15_shows_overflow(self, capsys):
        assert main(["run", "spectral", "--size", "32",
                     "--symbols", "2"]) == 0
        assert "overflow count" in capsys.readouterr().out
