"""The coded OFDM chain through pipelines, scenarios, CLI and metrics."""

import json

import numpy as np
import pytest

import repro
from repro.cli import main
from repro.ofdm import CodedOfdmLink
from repro.pipelines import CODED_OFDM_CHAIN
from repro.scenarios import get_scenario, scenario_names

CODED_PRESETS = ("dvbt-2k", "dvbt-8k", "uwb-ofdm-coded",
                 "wimax-ofdm-coded")


class TestCodedChain:
    def test_chain_constant_matches_acceptance_shape(self):
        assert CODED_OFDM_CHAIN == (
            "source", "encode", "interleave", "modulate", "ifft",
            "channel", "transform", "equalize", "soft-demodulate",
            "deinterleave", "decode", "coded-metrics",
        )

    def test_coded_chain_validates(self):
        pipe = repro.pipeline(64, CODED_OFDM_CHAIN, scheme="qpsk",
                              snr_db=12.0, code="conv-k7")
        assert pipe.stage_names == list(CODED_OFDM_CHAIN)
        pipe.close()

    def test_coded_pipeline_runs_and_reports(self):
        with repro.pipeline(64, CODED_OFDM_CHAIN, scheme="qpsk",
                            snr_db=14.0, code="conv-k7",
                            code_rate="2/3") as pipe:
            result = pipe.run(symbols=4)
        metrics = result.metrics
        assert metrics["code"] == "conv-k7 r2/3"
        assert metrics["coded_ber"] == metrics["ber"]
        assert metrics["coded_ber"] <= metrics["uncoded_ber"]
        assert 0.0 <= metrics["fer"] <= 1.0
        assert metrics["info_bits_per_symbol"] * 4 == metrics["total_bits"]
        # per-stage outputs flow with the declared kinds
        assert result.stage_outputs["soft-demodulate"].shape == (4, 128)
        assert result.stage_outputs["decode"].shape == (
            4, metrics["info_bits_per_symbol"]
        )

    def test_unknown_code_fails_at_build(self):
        with pytest.raises(repro.UnknownNameError, match="conv-k7"):
            repro.pipeline(64, CODED_OFDM_CHAIN, code="turbo")

    def test_unknown_interleaver_fails_at_build(self):
        with pytest.raises(repro.UnknownNameError, match="block"):
            repro.pipeline(64, CODED_OFDM_CHAIN, code="conv-k7",
                           interleaver="helical")

    def test_unregistered_demapper_scheme_fails_at_build(self):
        # 64qam maps fine but has no registered soft demapper yet; a
        # coded pipeline must refuse at build time, not mid-run.
        with pytest.raises(repro.UnknownNameError, match="16qam"):
            repro.pipeline(64, CODED_OFDM_CHAIN, scheme="64qam",
                           code="conv-k7")

    def test_interleaver_without_code_is_loud(self):
        with pytest.raises(ValueError, match="coded pipeline"):
            repro.pipeline(64, code=None, interleaver="block")

    def test_coded_stage_outside_coded_pipeline_is_loud(self):
        with repro.pipeline(
            64, ("source", "encode", "metrics"), scheme="qpsk"
        ) as pipe:
            with pytest.raises(ValueError, match="coded pipeline"):
                pipe.run(symbols=2)

    def test_reference_decode_stage_is_bit_identical(self):
        spec = get_scenario("uwb-ofdm-coded")
        with spec.build(n_points=64) as fast, \
                spec.build(n_points=64).with_stage(
                    "decode", "decode", reference=True) as oracle:
            a = fast.run(symbols=3)
            b = oracle.run(symbols=3)
        assert np.array_equal(a.output, b.output)
        assert a.metrics["coded_ber"] == b.metrics["coded_ber"]

    def test_payload_injection_round_trip(self):
        with repro.pipeline(64, CODED_OFDM_CHAIN, scheme="qpsk",
                            snr_db=30.0, code="conv-k7") as pipe:
            info = np.zeros((2, 58), dtype=int)
            info[:, :4] = 1
            result = pipe.run(data=info)
        assert np.array_equal(result.output, info)


class TestCodedPresets:
    @pytest.mark.parametrize("name", CODED_PRESETS)
    def test_preset_registered_and_coded(self, name):
        spec = get_scenario(name)
        assert name in scenario_names()
        assert spec.code == "conv-k7"
        assert tuple(spec.stages) == CODED_OFDM_CHAIN

    @pytest.mark.parametrize("name", CODED_PRESETS)
    def test_preset_runs_small(self, name):
        result = repro.run_scenario(name, symbols=2, n_points=64)
        assert result.name == name
        assert "coded_ber" in result.metrics
        assert "uncoded_ber" in result.metrics
        assert "fer" in result.metrics

    @pytest.mark.parametrize("name", CODED_PRESETS)
    def test_high_snr_coded_ber_never_worse_than_uncoded(self, name):
        """The sanity property: at high SNR, coding never hurts."""
        spec = get_scenario(name)
        result = repro.run_scenario(
            name, symbols=4, n_points=64,
            snr_db=(spec.snr_db or 20.0) + 8.0,
        )
        assert result.metrics["coded_ber"] <= result.metrics["uncoded_ber"]
        assert result.metrics["coded_ber"] == 0.0

    def test_preset_on_asip_backend_reports_cycles(self):
        result = repro.run_scenario("wimax-ofdm-coded", symbols=2,
                                    n_points=32, backend="asip-batch")
        assert result.transform.backend == "asip-batch"
        assert result.total_cycles > 0
        assert "coded_ber" in result.metrics


class TestCodedLinkParity:
    """The pipeline chain is bit-identical to the hand-wired coded link."""

    @pytest.mark.parametrize("name",
                             ("uwb-ofdm-coded", "wimax-ofdm-coded"))
    def test_pipeline_matches_coded_link(self, name):
        spec = get_scenario(name)
        with spec.build(n_points=64) as pipe:
            pres = pipe.run(symbols=3)
        with CodedOfdmLink.from_scenario(name, n_subcarriers=64) as link:
            lres = link.run_coded(3)
        assert np.array_equal(pres.stage_outputs["source"],
                              lres.tx_info_bits)
        assert np.array_equal(pres.output, lres.rx_info_bits)
        assert np.array_equal(pres.equalised, lres.equalised)
        assert pres.metrics["coded_ber"] == lres.coded_ber
        assert pres.metrics["uncoded_ber"] == lres.uncoded_ber
        assert pres.metrics["fer"] == lres.frame_error_rate


class TestStageSeconds:
    def test_every_stage_is_accounted(self):
        with repro.pipeline(64, scheme="qpsk", snr_db=20.0) as pipe:
            result = pipe.run(symbols=2)
        seconds = result.metrics["stage_seconds"]
        assert list(seconds) == list(pipe.stage_names)
        assert all(v >= 0.0 for v in seconds.values())

    def test_repeated_stage_names_get_suffixes(self):
        with repro.pipeline(
            32, ("block-source", "transform", "metrics", "metrics"),
            scheme=None,
        ) as pipe:
            result = pipe.run(symbols=2)
        assert "metrics#2" in result.metrics["stage_seconds"]

    def test_sweep_rows_carry_stage_seconds(self):
        from repro.analysis import scenario_sweep

        rows = scenario_sweep(names=["uwb-ofdm-coded"], symbols=2,
                              n_points=64)
        assert "stage_seconds" in rows[0]
        assert "decode" in rows[0]["stage_seconds"]


class TestCodedCli:
    def test_run_coded_scenario_prints_both_bers(self, capsys):
        assert main(["run", "wimax-ofdm-coded", "--size", "64",
                     "--symbols", "2"]) == 0
        out = capsys.readouterr().out
        assert "coded BER" in out
        assert "uncoded BER" in out
        assert "FER" in out
        assert "slowest stages" in out

    def test_run_record_includes_coded_rows(self, tmp_path, capsys):
        target = tmp_path / "bench.json"
        assert main(["run", "--all", "--size", "64", "--symbols", "2",
                     "--record", str(target)]) == 0
        rows = json.loads(target.read_text())["cli_run"]["latest"]["rows"]
        by_name = {row["scenario"]: row for row in rows}
        assert set(by_name) == set(scenario_names())
        for name in CODED_PRESETS:
            assert "coded_ber" in by_name[name]
            assert "stage_seconds" in by_name[name]

    def test_run_list_shows_coded_presets(self, capsys):
        assert main(["run", "--list"]) == 0
        out = capsys.readouterr().out
        for name in CODED_PRESETS:
            assert name in out
