"""Coefficient addressing: ROM stride rule and the pre-rotation store."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.addressing.coefficients import (
    PreRotationStore,
    prerotation_exponent,
    rom_coefficient_index,
    rom_module_addresses,
    rom_table,
)


class TestRomRule:
    def test_paper_32_point_stage2_example(self):
        """Section II-C: stage 2 of a 32-point FFT, modules 1..4 read
        (0,0,0,0), (0,0,0,0), (8,8,8,8), (8,8,8,8)."""
        addresses = [rom_module_addresses(32, 2, i) for i in range(1, 5)]
        assert addresses == [
            (0, 0, 0, 0), (0, 0, 0, 0), (8, 8, 8, 8), (8, 8, 8, 8),
        ]

    def test_stage1_all_zero(self):
        assert all(
            rom_coefficient_index(32, 1, m) == 0 for m in range(16)
        )

    def test_last_stage_all_distinct(self):
        p = 5
        addresses = [rom_coefficient_index(32, p, m) for m in range(16)]
        assert addresses == list(range(16))

    @given(st.sampled_from([8, 16, 32, 64, 128]), st.data())
    def test_stride_rule_closed_form(self, points, data):
        stages = points.bit_length() - 1
        stage = data.draw(st.integers(1, stages))
        m = data.draw(st.integers(0, points // 2 - 1))
        stride = points >> stage
        expected = (m // stride) * stride if stride else 0
        assert rom_coefficient_index(points, stage, m) == expected

    @given(st.sampled_from([8, 16, 32, 64]), st.data())
    def test_addresses_in_rom_range(self, points, data):
        stages = points.bit_length() - 1
        stage = data.draw(st.integers(1, stages))
        m = data.draw(st.integers(0, points // 2 - 1))
        assert 0 <= rom_coefficient_index(points, stage, m) < points // 2

    def test_bounds(self):
        with pytest.raises(ValueError):
            rom_coefficient_index(32, 0, 0)
        with pytest.raises(ValueError):
            rom_coefficient_index(32, 6, 0)
        with pytest.raises(ValueError):
            rom_coefficient_index(32, 1, 16)
        with pytest.raises(ValueError):
            rom_module_addresses(32, 1, 5)

    def test_rom_table_contents(self):
        table = rom_table(16)
        assert len(table) == 8
        k = np.arange(8)
        assert np.allclose(table, np.exp(-2j * np.pi * k / 16))


class TestPreRotationStore:
    def test_stores_only_n_eighth_plus_one(self):
        assert PreRotationStore(1024).stored_count == 129
        assert PreRotationStore(64).stored_count == 9

    @given(st.sampled_from([8, 16, 64, 256, 1024]), st.data())
    @settings(max_examples=60)
    def test_reconstruction_exact(self, n, data):
        store = PreRotationStore(n)
        exponent = data.draw(st.integers(0, 4 * n))
        assert abs(
            store.lookup(exponent) - store.exact(exponent)
        ) < 1e-12

    def test_full_circle_64(self):
        store = PreRotationStore(64)
        for e in range(64):
            assert abs(store.lookup(e) - store.exact(e)) < 1e-12

    @given(st.sampled_from([16, 64, 256]), st.data())
    def test_weight_matches_wn_sl(self, n, data):
        store = PreRotationStore(n)
        s = data.draw(st.integers(0, n - 1))
        l = data.draw(st.integers(0, n - 1))
        expected = np.exp(-2j * np.pi * ((s * l) % n) / n)
        assert abs(store.weight(s, l) - expected) < 1e-12

    def test_stored_address_in_range(self):
        store = PreRotationStore(64)
        for e in range(64):
            assert 0 <= store.stored_address(e) <= 8

    def test_paper_parity_rule_first_quarter(self):
        """Even octant: e mod N/8; odd octant: N/8 - (e mod N/8)."""
        store = PreRotationStore(64)
        assert store.stored_address(3) == 3       # octant 0
        assert store.stored_address(8 + 3) == 5   # octant 1: 8 - 3
        assert store.stored_address(8) == 8

    def test_rejects_small_n(self):
        with pytest.raises(ValueError):
            PreRotationStore(4)

    def test_exponent_helper(self):
        assert prerotation_exponent(3, 5, 8) == 7
        with pytest.raises(ValueError):
            prerotation_exponent(-1, 0, 8)
