"""Sharded parallel batch engine: bit-identity and fallback coverage."""

import numpy as np
import pytest

from repro.asip.streaming import StreamingFFT
from repro.core import ArrayFFT, ShardedEngine, array_fft, stream_sharded
from repro.engines import _SHARED_CACHE
from repro.core.parallel import available_workers
from repro.ofdm import MultipathChannel, OfdmLink


def random_blocks(symbols, n, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return scale * (
        rng.standard_normal((symbols, n))
        + 1j * rng.standard_normal((symbols, n))
    )


class TestShardedEngine:
    def test_float_bit_identical_to_serial(self):
        n, symbols = 128, 48
        blocks = random_blocks(symbols, n, seed=1)
        want = ArrayFFT(n).transform_many(blocks)
        with ShardedEngine(n, workers=2, min_parallel_symbols=8) as engine:
            got = engine.transform_many(blocks)
        assert np.array_equal(got, want)

    def test_fixed_bit_identical_with_overflow_accounting(self):
        n, symbols = 64, 32
        blocks = random_blocks(symbols, n, seed=2, scale=0.9)
        serial = ArrayFFT(n, fixed_point=True)
        serial.fx.scale_stages = True
        want = serial.transform_many(blocks)
        with ShardedEngine(n, fixed_point=True, workers=2,
                           min_parallel_symbols=8) as engine:
            got = engine.transform_many(blocks)
            assert engine.engine.fx.overflow_count == serial.fx.overflow_count
        assert np.array_equal(got, want)

    def test_inverse_many_roundtrip(self):
        n = 64
        blocks = random_blocks(20, n, seed=3)
        with ShardedEngine(n, workers=2, min_parallel_symbols=8) as engine:
            spectra = engine.transform_many(blocks)
            back = engine.inverse_many(spectra)
        assert np.allclose(back, blocks, atol=1e-9)

    def test_small_batch_stays_serial(self):
        n = 64
        engine = ShardedEngine(n, workers=2)  # default threshold 64
        blocks = random_blocks(8, n, seed=4)
        got = engine.transform_many(blocks)
        assert engine._pool is None  # pool never built
        assert np.array_equal(got, ArrayFFT(n).transform_many(blocks))
        engine.close()

    def test_single_worker_never_pools(self):
        n = 64
        engine = ShardedEngine(n, workers=1, min_parallel_symbols=1)
        got = engine.transform_many(random_blocks(16, n, seed=5))
        assert engine._pool is None
        engine.close()

    def test_broken_pool_falls_back_serial(self, monkeypatch):
        n, symbols = 64, 32
        blocks = random_blocks(symbols, n, seed=6)
        engine = ShardedEngine(n, workers=2, min_parallel_symbols=8)

        def refuse(*args, **kwargs):
            raise OSError("no processes for you")

        monkeypatch.setattr(
            "repro.core.parallel.ProcessPoolExecutor", refuse
        )
        got = engine.transform_many(blocks)
        assert engine._pool_broken
        assert np.array_equal(got, ArrayFFT(n).transform_many(blocks))
        # And it stays serial (no retry storm) while still being correct.
        again = engine.transform_many(blocks)
        assert np.array_equal(again, got)
        engine.close()

    def test_mid_flight_pool_failure_falls_back(self):
        n, symbols = 64, 32
        blocks = random_blocks(symbols, n, seed=7)
        engine = ShardedEngine(n, workers=2, min_parallel_symbols=8)

        class ExplodingPool:
            def map(self, *args, **kwargs):
                raise RuntimeError("worker died")

            def shutdown(self, **kwargs):
                pass

        engine._pool = ExplodingPool()
        got = engine.transform_many(blocks)
        assert engine._pool_broken
        assert np.array_equal(got, ArrayFFT(n).transform_many(blocks))
        engine.close()

    def test_shape_validated(self):
        engine = ShardedEngine(64, workers=1)
        with pytest.raises(ValueError):
            engine.transform_many(np.zeros((2, 32), dtype=complex))
        with pytest.raises(ValueError):
            engine.transform_many(np.zeros(64, dtype=complex))
        engine.close()

    def test_single_symbol_passthrough(self):
        n = 64
        x = random_blocks(1, n, seed=8)[0]
        engine = ShardedEngine(n, workers=1)
        assert np.array_equal(
            engine.transform(x), ArrayFFT(n).transform(x)
        )
        assert np.allclose(
            engine.inverse(engine.transform(x)), x, atol=1e-9
        )
        engine.close()

    def test_available_workers_positive(self):
        assert available_workers() >= 1


class TestArrayFftWrapper:
    def test_batch_input(self):
        blocks = random_blocks(5, 64, seed=9)
        got = array_fft(blocks)
        assert np.allclose(got, np.fft.fft(blocks, axis=1), atol=1e-8)

    def test_batch_with_workers_matches_serial(self):
        blocks = random_blocks(72, 64, seed=10)
        want = array_fft(blocks)
        got = array_fft(blocks, workers=2)
        assert np.array_equal(got, want)
        assert (64, "sharded", "float", 2) in _SHARED_CACHE

    def test_vector_input_unchanged(self):
        x = random_blocks(1, 64, seed=11)[0]
        assert np.allclose(array_fft(x), np.fft.fft(x), atol=1e-8)


class TestStreamSharded:
    def test_merged_stats_equal_local_run(self):
        n, symbols = 64, 16
        blocks = random_blocks(symbols, n, seed=12)
        merged = stream_sharded(n, blocks, workers=2)
        local = StreamingFFT(n).process(blocks)
        assert merged.symbols == local.symbols
        assert merged.total_cycles == local.total_cycles
        assert merged.is_deterministic
        assert merged.msamples_per_second == pytest.approx(
            local.msamples_per_second
        )

    def test_short_stream_runs_locally(self):
        n = 64
        blocks = random_blocks(3, n, seed=13)
        stats = stream_sharded(n, blocks, workers=2)
        assert stats.symbols == 3

    def test_merge_rejects_size_mismatch(self):
        from repro.asip.streaming import StreamStats

        a = StreamStats(n_points=64)
        b = StreamStats(n_points=128)
        with pytest.raises(ValueError):
            a.merge(b)


class TestLinkWorkers:
    def test_run_symbols_identical_with_and_without_pool(self):
        channel = MultipathChannel.exponential_profile(
            3, rng=np.random.default_rng(20)
        )
        plain = OfdmLink(64, scheme="qpsk", snr_db=35.0, seed=21,
                         channel=channel)
        with OfdmLink(64, scheme="qpsk", snr_db=35.0, seed=21,
                      channel=channel, workers=2) as pooled:
            for a, b in zip(plain.run_symbols(6), pooled.run_symbols(6)):
                assert np.array_equal(a.tx_bits, b.tx_bits)
                assert np.array_equal(a.rx_bits, b.rx_bits)
                assert np.array_equal(a.equalised, b.equalised)
        plain.close()  # no pool: must be a no-op

    def test_measure_ber_clean_channel(self):
        with OfdmLink(64, scheme="qpsk", snr_db=40.0, seed=22,
                      workers=2) as link:
            assert link.measure_ber(4) == 0.0
