"""Sharded parallel batch engine: bit-identity, fallback and self-healing."""

import time

import numpy as np
import pytest

from repro.asip.streaming import StreamingFFT
from repro.core import ArrayFFT, CircuitBreaker, ShardedEngine, array_fft, \
    stream_sharded
from repro.engines import _SHARED_CACHE
from repro.core.parallel import available_workers
from repro.ofdm import MultipathChannel, OfdmLink


def random_blocks(symbols, n, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return scale * (
        rng.standard_normal((symbols, n))
        + 1j * rng.standard_normal((symbols, n))
    )


class TestShardedEngine:
    def test_float_bit_identical_to_serial(self):
        n, symbols = 128, 48
        blocks = random_blocks(symbols, n, seed=1)
        want = ArrayFFT(n).transform_many(blocks)
        with ShardedEngine(n, workers=2, min_parallel_symbols=8) as engine:
            got = engine.transform_many(blocks)
        assert np.array_equal(got, want)

    def test_fixed_bit_identical_with_overflow_accounting(self):
        n, symbols = 64, 32
        blocks = random_blocks(symbols, n, seed=2, scale=0.9)
        serial = ArrayFFT(n, fixed_point=True)
        serial.fx.scale_stages = True
        want = serial.transform_many(blocks)
        with ShardedEngine(n, fixed_point=True, workers=2,
                           min_parallel_symbols=8) as engine:
            got = engine.transform_many(blocks)
            assert engine.engine.fx.overflow_count == serial.fx.overflow_count
        assert np.array_equal(got, want)

    def test_inverse_many_roundtrip(self):
        n = 64
        blocks = random_blocks(20, n, seed=3)
        with ShardedEngine(n, workers=2, min_parallel_symbols=8) as engine:
            spectra = engine.transform_many(blocks)
            back = engine.inverse_many(spectra)
        assert np.allclose(back, blocks, atol=1e-9)

    def test_small_batch_stays_serial(self):
        n = 64
        engine = ShardedEngine(n, workers=2)  # default threshold 64
        blocks = random_blocks(8, n, seed=4)
        got = engine.transform_many(blocks)
        assert engine._pool is None  # pool never built
        assert np.array_equal(got, ArrayFFT(n).transform_many(blocks))
        engine.close()

    def test_single_worker_never_pools(self):
        n = 64
        engine = ShardedEngine(n, workers=1, min_parallel_symbols=1)
        got = engine.transform_many(random_blocks(16, n, seed=5))
        assert engine._pool is None
        engine.close()

    def test_broken_pool_falls_back_serial(self, monkeypatch):
        n, symbols = 64, 32
        blocks = random_blocks(symbols, n, seed=6)
        engine = ShardedEngine(n, workers=2, min_parallel_symbols=8)

        def refuse(*args, **kwargs):
            raise OSError("no processes for you")

        monkeypatch.setattr(
            "repro.core.parallel.ProcessPoolExecutor", refuse
        )
        with pytest.warns(RuntimeWarning, match="falling back"):
            got = engine.transform_many(blocks)
        assert engine._pool_broken
        assert engine.degraded
        assert "no processes for you" in engine.degraded_reason
        assert np.array_equal(got, ArrayFFT(n).transform_many(blocks))
        # And it stays serial (no retry storm) while still being correct.
        again = engine.transform_many(blocks)
        assert np.array_equal(again, got)
        engine.close()

    def test_mid_flight_pool_failure_falls_back(self):
        n, symbols = 64, 32
        blocks = random_blocks(symbols, n, seed=7)
        engine = ShardedEngine(n, workers=2, min_parallel_symbols=8)

        class ExplodingPool:
            def map(self, *args, **kwargs):
                raise RuntimeError("worker died")

            def shutdown(self, **kwargs):
                pass

        engine._pool = ExplodingPool()
        with pytest.warns(RuntimeWarning, match="falling back"):
            got = engine.transform_many(blocks)
        assert engine._pool_broken
        assert engine.degraded
        assert np.array_equal(got, ArrayFFT(n).transform_many(blocks))
        engine.close()

    def test_degradation_warns_exactly_once(self):
        import warnings

        n, symbols = 64, 16
        blocks = random_blocks(symbols, n, seed=16)
        engine = ShardedEngine(n, workers=2, min_parallel_symbols=8)
        engine._pool_broken = False
        with pytest.warns(RuntimeWarning, match="first failure"):
            engine._mark_broken("first failure")  # the single warning
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            engine._mark_broken("second failure")
            got = engine.transform_many(blocks)
        assert engine.degraded_reason == "first failure"
        assert np.array_equal(got, ArrayFFT(n).transform_many(blocks))
        engine.close()

    @pytest.mark.skipif(
        available_workers() < 2,
        reason="worker-kill race needs >= 2 CPUs (mirrors the sharded "
               "bench gate)",
    )
    def test_sigkilled_worker_degrades_to_serial(self):
        import os
        import signal

        n, symbols = 64, 32
        blocks = random_blocks(symbols, n, seed=17)
        engine = ShardedEngine(n, workers=2, min_parallel_symbols=8)
        warm = engine.transform_many(blocks)  # spins the pool up
        assert engine._pool is not None and not engine.degraded
        victim = next(iter(engine._pool._processes))
        os.kill(victim, signal.SIGKILL)
        with pytest.warns(RuntimeWarning, match="falling back"):
            got = engine.transform_many(blocks)
        assert engine.degraded and engine._pool_broken
        assert np.array_equal(got, warm)
        assert np.array_equal(got, ArrayFFT(n).transform_many(blocks))
        engine.close()

    def test_shape_validated(self):
        engine = ShardedEngine(64, workers=1)
        with pytest.raises(ValueError):
            engine.transform_many(np.zeros((2, 32), dtype=complex))
        with pytest.raises(ValueError):
            engine.transform_many(np.zeros(64, dtype=complex))
        engine.close()

    def test_single_symbol_passthrough(self):
        n = 64
        x = random_blocks(1, n, seed=8)[0]
        engine = ShardedEngine(n, workers=1)
        assert np.array_equal(
            engine.transform(x), ArrayFFT(n).transform(x)
        )
        assert np.allclose(
            engine.inverse(engine.transform(x)), x, atol=1e-9
        )
        engine.close()

    def test_available_workers_positive(self):
        assert available_workers() >= 1


class TestCircuitBreaker:
    """The three-state protocol on an injected clock (no real sleeps)."""

    def make(self, **kwargs):
        self.now = 0.0
        kwargs.setdefault("clock", lambda: self.now)
        return CircuitBreaker(**kwargs)

    def test_starts_closed_and_allows(self):
        breaker = self.make()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow_attempt()
        assert breaker.failures == 0

    def test_failure_opens_and_refuses_inside_backoff(self):
        breaker = self.make(backoff_initial=1.0)
        assert breaker.record_failure("boom")  # fresh episode
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow_attempt()
        self.now = 0.5
        assert not breaker.allow_attempt()

    def test_half_open_admits_exactly_one_probe(self):
        breaker = self.make(backoff_initial=1.0)
        breaker.record_failure("boom")
        self.now = 1.0
        assert breaker.allow_attempt()  # the single probe slot
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow_attempt()  # second caller refused

    def test_successful_probe_closes_and_counts_recovery(self):
        breaker = self.make(backoff_initial=1.0)
        breaker.record_failure("boom")
        self.now = 1.0
        assert breaker.allow_attempt()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.failures == 0
        assert breaker.opened_count == 1
        assert breaker.recovered_count == 1
        assert breaker.allow_attempt()

    def test_failed_probe_reopens_silently_with_doubled_backoff(self):
        breaker = self.make(backoff_initial=1.0, backoff_max=16.0)
        assert breaker.record_failure("first")    # fresh -> warn moment
        self.now = 1.0
        assert breaker.allow_attempt()
        assert not breaker.record_failure("again")  # not fresh: no warning
        # Second failure doubles the backoff: retry at now + 2.0.
        self.now = 2.5
        assert not breaker.allow_attempt()
        self.now = 3.0
        assert breaker.allow_attempt()

    def test_backoff_is_capped(self):
        breaker = self.make(backoff_initial=1.0, backoff_max=4.0)
        for _ in range(10):
            breaker.record_failure("boom")
        assert breaker.snapshot()["retry_in_s"] <= 4.0

    def test_snapshot_fields(self):
        breaker = self.make(backoff_initial=1.0)
        breaker.record_failure("boom")
        snap = breaker.snapshot()
        assert snap["state"] == "open"
        assert snap["failures"] == 1
        assert snap["opened"] == 1
        assert snap["recovered"] == 0
        assert snap["last_failure"] == "boom"
        assert snap["retry_in_s"] == pytest.approx(1.0)

    def test_force_open_and_reset(self):
        breaker = self.make()
        breaker.force_open("admin")
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opened_count == 1
        breaker.reset()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow_attempt()


class TestPoolSelfHealing:
    """The sharded engine's breaker restores parallel execution."""

    def test_probe_restores_parallel_after_backoff(self):
        n, symbols = 64, 32
        blocks = random_blocks(symbols, n, seed=30)
        want = ArrayFFT(n).transform_many(blocks)
        engine = ShardedEngine(n, workers=2, min_parallel_symbols=8,
                               breaker_backoff_initial=0.05)

        class ExplodingPool:
            def map(self, *args, **kwargs):
                raise RuntimeError("worker died")

            def shutdown(self, **kwargs):
                pass

        engine._pool = ExplodingPool()
        try:
            with pytest.warns(RuntimeWarning, match="falling back"):
                got = engine.transform_many(blocks)
            assert np.array_equal(got, want)
            assert engine.degraded and engine._pool is None
            # Inside the backoff window: serial, no pool build, no warning.
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("error")
                again = engine.transform_many(blocks)
            assert np.array_equal(again, want)
            assert engine._pool is None
            # Past the backoff: one batch probes a *fresh* pool and the
            # breaker closes — parallel execution is back, bit-identical.
            time.sleep(0.06)
            healed = engine.transform_many(blocks)
            assert np.array_equal(healed, want)
            assert not engine.degraded
            assert engine._pool is not None
            assert engine.breaker.state == CircuitBreaker.CLOSED
            assert engine.breaker.opened_count == 1
            assert engine.breaker.recovered_count == 1
            # The first episode's reason survives for diagnostics.
            assert "worker died" in engine.degraded_reason
        finally:
            engine.close()

    def test_failed_probe_reopens_without_second_warning(self, monkeypatch):
        import warnings

        n, symbols = 64, 24
        blocks = random_blocks(symbols, n, seed=31)
        want = ArrayFFT(n).transform_many(blocks)
        engine = ShardedEngine(n, workers=2, min_parallel_symbols=8,
                               breaker_backoff_initial=0.05)

        def refuse(*args, **kwargs):
            raise OSError("still no processes")

        monkeypatch.setattr(
            "repro.core.parallel.ProcessPoolExecutor", refuse
        )
        with pytest.warns(RuntimeWarning, match="falling back"):
            got = engine.transform_many(blocks)
        assert np.array_equal(got, want)
        time.sleep(0.06)
        # The probe's spawn fails again: silent re-open, serial result.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = engine.transform_many(blocks)
        assert np.array_equal(again, want)
        assert engine.degraded
        assert engine.breaker.failures == 2
        engine.close()

    @pytest.mark.skipif(
        available_workers() < 2,
        reason="worker-kill recovery needs >= 2 CPUs (mirrors the "
               "sharded bench gate)",
    )
    def test_sigkilled_worker_then_probe_recovers(self):
        import os
        import signal

        n, symbols = 64, 32
        blocks = random_blocks(symbols, n, seed=32)
        engine = ShardedEngine(n, workers=2, min_parallel_symbols=8,
                               breaker_backoff_initial=0.05)
        try:
            warm = engine.transform_many(blocks)
            victim = next(iter(engine._pool._processes))
            os.kill(victim, signal.SIGKILL)
            with pytest.warns(RuntimeWarning, match="falling back"):
                got = engine.transform_many(blocks)
            assert engine.degraded
            assert np.array_equal(got, warm)
            time.sleep(0.06)
            healed = engine.transform_many(blocks)
            assert np.array_equal(healed, warm)
            assert not engine.degraded
            assert engine.breaker.recovered_count == 1
        finally:
            engine.close()


class TestDegradedMarker:
    """A broken pool marks every later facade result ``degraded=True``."""

    def test_marker_flows_through_facade_results(self):
        import repro
        from repro.verify import pool_failure

        blocks = random_blocks(80, 64, seed=18)  # above the facade floor
        with repro.engine(64, backend="sharded", workers=2) as eng:
            with pool_failure(eng.impl.sharded):
                with pytest.warns(RuntimeWarning, match="falling back"):
                    broken = eng.transform_many(blocks)
            assert broken.degraded
            assert eng.impl.degraded
            # Still numerically correct — the fallback ran serially.
            assert np.array_equal(
                broken.spectrum, ArrayFFT(64).transform_many(blocks)
            )
            # Inside the breaker's backoff window the engine stays
            # degraded; later results keep carrying the marker.
            later = eng.transform_many(blocks[:4])
            assert later.degraded

    def test_healthy_results_are_not_degraded(self):
        import repro

        with repro.engine(64, backend="compiled") as eng:
            result = eng.transform_many(random_blocks(4, 64, seed=19))
        assert result.degraded is False

    def test_concat_results_ors_the_marker(self):
        import dataclasses

        import repro

        with repro.engine(16) as eng:
            a = eng.transform_many(random_blocks(2, 16, seed=20))
            b = eng.transform_many(random_blocks(2, 16, seed=21))
        merged = repro.concat_results(
            [a, dataclasses.replace(b, degraded=True)], engine=eng
        )
        assert merged.degraded
        clean = repro.concat_results([a, b], engine=eng)
        assert clean.degraded is False


class TestArrayFftWrapper:
    def test_batch_input(self):
        blocks = random_blocks(5, 64, seed=9)
        got = array_fft(blocks)
        assert np.allclose(got, np.fft.fft(blocks, axis=1), atol=1e-8)

    def test_batch_with_workers_matches_serial(self):
        blocks = random_blocks(72, 64, seed=10)
        want = array_fft(blocks)
        got = array_fft(blocks, workers=2)
        assert np.array_equal(got, want)
        assert (64, "sharded", "float", 2) in _SHARED_CACHE

    def test_vector_input_unchanged(self):
        x = random_blocks(1, 64, seed=11)[0]
        assert np.allclose(array_fft(x), np.fft.fft(x), atol=1e-8)


class TestStreamSharded:
    def test_merged_stats_equal_local_run(self):
        n, symbols = 64, 16
        blocks = random_blocks(symbols, n, seed=12)
        merged = stream_sharded(n, blocks, workers=2)
        local = StreamingFFT(n).process(blocks)
        assert merged.symbols == local.symbols
        assert merged.total_cycles == local.total_cycles
        assert merged.is_deterministic
        assert merged.msamples_per_second == pytest.approx(
            local.msamples_per_second
        )

    def test_short_stream_runs_locally(self):
        n = 64
        blocks = random_blocks(3, n, seed=13)
        stats = stream_sharded(n, blocks, workers=2)
        assert stats.symbols == 3

    def test_merge_rejects_size_mismatch(self):
        from repro.asip.streaming import StreamStats

        a = StreamStats(n_points=64)
        b = StreamStats(n_points=128)
        with pytest.raises(ValueError):
            a.merge(b)


class TestLinkWorkers:
    def test_run_symbols_identical_with_and_without_pool(self):
        channel = MultipathChannel.exponential_profile(
            3, rng=np.random.default_rng(20)
        )
        plain = OfdmLink(64, scheme="qpsk", snr_db=35.0, seed=21,
                         channel=channel)
        with OfdmLink(64, scheme="qpsk", snr_db=35.0, seed=21,
                      channel=channel, workers=2) as pooled:
            for a, b in zip(plain.run_symbols(6), pooled.run_symbols(6)):
                assert np.array_equal(a.tx_bits, b.tx_bits)
                assert np.array_equal(a.rx_bits, b.rx_bits)
                assert np.array_equal(a.equalised, b.equalised)
        plain.close()  # no pool: must be a no-op

    def test_measure_ber_clean_channel(self):
        with OfdmLink(64, scheme="qpsk", snr_db=40.0, seed=22,
                      workers=2) as link:
            assert link.measure_ber(4) == 0.0
