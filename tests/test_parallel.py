"""Sharded parallel batch engine: bit-identity and fallback coverage."""

import numpy as np
import pytest

from repro.asip.streaming import StreamingFFT
from repro.core import ArrayFFT, ShardedEngine, array_fft, stream_sharded
from repro.engines import _SHARED_CACHE
from repro.core.parallel import available_workers
from repro.ofdm import MultipathChannel, OfdmLink


def random_blocks(symbols, n, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return scale * (
        rng.standard_normal((symbols, n))
        + 1j * rng.standard_normal((symbols, n))
    )


class TestShardedEngine:
    def test_float_bit_identical_to_serial(self):
        n, symbols = 128, 48
        blocks = random_blocks(symbols, n, seed=1)
        want = ArrayFFT(n).transform_many(blocks)
        with ShardedEngine(n, workers=2, min_parallel_symbols=8) as engine:
            got = engine.transform_many(blocks)
        assert np.array_equal(got, want)

    def test_fixed_bit_identical_with_overflow_accounting(self):
        n, symbols = 64, 32
        blocks = random_blocks(symbols, n, seed=2, scale=0.9)
        serial = ArrayFFT(n, fixed_point=True)
        serial.fx.scale_stages = True
        want = serial.transform_many(blocks)
        with ShardedEngine(n, fixed_point=True, workers=2,
                           min_parallel_symbols=8) as engine:
            got = engine.transform_many(blocks)
            assert engine.engine.fx.overflow_count == serial.fx.overflow_count
        assert np.array_equal(got, want)

    def test_inverse_many_roundtrip(self):
        n = 64
        blocks = random_blocks(20, n, seed=3)
        with ShardedEngine(n, workers=2, min_parallel_symbols=8) as engine:
            spectra = engine.transform_many(blocks)
            back = engine.inverse_many(spectra)
        assert np.allclose(back, blocks, atol=1e-9)

    def test_small_batch_stays_serial(self):
        n = 64
        engine = ShardedEngine(n, workers=2)  # default threshold 64
        blocks = random_blocks(8, n, seed=4)
        got = engine.transform_many(blocks)
        assert engine._pool is None  # pool never built
        assert np.array_equal(got, ArrayFFT(n).transform_many(blocks))
        engine.close()

    def test_single_worker_never_pools(self):
        n = 64
        engine = ShardedEngine(n, workers=1, min_parallel_symbols=1)
        got = engine.transform_many(random_blocks(16, n, seed=5))
        assert engine._pool is None
        engine.close()

    def test_broken_pool_falls_back_serial(self, monkeypatch):
        n, symbols = 64, 32
        blocks = random_blocks(symbols, n, seed=6)
        engine = ShardedEngine(n, workers=2, min_parallel_symbols=8)

        def refuse(*args, **kwargs):
            raise OSError("no processes for you")

        monkeypatch.setattr(
            "repro.core.parallel.ProcessPoolExecutor", refuse
        )
        with pytest.warns(RuntimeWarning, match="falling back"):
            got = engine.transform_many(blocks)
        assert engine._pool_broken
        assert engine.degraded
        assert "no processes for you" in engine.degraded_reason
        assert np.array_equal(got, ArrayFFT(n).transform_many(blocks))
        # And it stays serial (no retry storm) while still being correct.
        again = engine.transform_many(blocks)
        assert np.array_equal(again, got)
        engine.close()

    def test_mid_flight_pool_failure_falls_back(self):
        n, symbols = 64, 32
        blocks = random_blocks(symbols, n, seed=7)
        engine = ShardedEngine(n, workers=2, min_parallel_symbols=8)

        class ExplodingPool:
            def map(self, *args, **kwargs):
                raise RuntimeError("worker died")

            def shutdown(self, **kwargs):
                pass

        engine._pool = ExplodingPool()
        with pytest.warns(RuntimeWarning, match="falling back"):
            got = engine.transform_many(blocks)
        assert engine._pool_broken
        assert engine.degraded
        assert np.array_equal(got, ArrayFFT(n).transform_many(blocks))
        engine.close()

    def test_degradation_warns_exactly_once(self):
        import warnings

        n, symbols = 64, 16
        blocks = random_blocks(symbols, n, seed=16)
        engine = ShardedEngine(n, workers=2, min_parallel_symbols=8)
        engine._pool_broken = False
        with pytest.warns(RuntimeWarning, match="first failure"):
            engine._mark_broken("first failure")  # the single warning
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            engine._mark_broken("second failure")
            got = engine.transform_many(blocks)
        assert engine.degraded_reason == "first failure"
        assert np.array_equal(got, ArrayFFT(n).transform_many(blocks))
        engine.close()

    @pytest.mark.skipif(
        available_workers() < 2,
        reason="worker-kill race needs >= 2 CPUs (mirrors the sharded "
               "bench gate)",
    )
    def test_sigkilled_worker_degrades_to_serial(self):
        import os
        import signal

        n, symbols = 64, 32
        blocks = random_blocks(symbols, n, seed=17)
        engine = ShardedEngine(n, workers=2, min_parallel_symbols=8)
        warm = engine.transform_many(blocks)  # spins the pool up
        assert engine._pool is not None and not engine.degraded
        victim = next(iter(engine._pool._processes))
        os.kill(victim, signal.SIGKILL)
        with pytest.warns(RuntimeWarning, match="falling back"):
            got = engine.transform_many(blocks)
        assert engine.degraded and engine._pool_broken
        assert np.array_equal(got, warm)
        assert np.array_equal(got, ArrayFFT(n).transform_many(blocks))
        engine.close()

    def test_shape_validated(self):
        engine = ShardedEngine(64, workers=1)
        with pytest.raises(ValueError):
            engine.transform_many(np.zeros((2, 32), dtype=complex))
        with pytest.raises(ValueError):
            engine.transform_many(np.zeros(64, dtype=complex))
        engine.close()

    def test_single_symbol_passthrough(self):
        n = 64
        x = random_blocks(1, n, seed=8)[0]
        engine = ShardedEngine(n, workers=1)
        assert np.array_equal(
            engine.transform(x), ArrayFFT(n).transform(x)
        )
        assert np.allclose(
            engine.inverse(engine.transform(x)), x, atol=1e-9
        )
        engine.close()

    def test_available_workers_positive(self):
        assert available_workers() >= 1


class TestDegradedMarker:
    """A broken pool marks every later facade result ``degraded=True``."""

    def test_marker_flows_through_facade_results(self):
        import repro
        from repro.verify import pool_failure

        blocks = random_blocks(80, 64, seed=18)  # above the facade floor
        with repro.engine(64, backend="sharded", workers=2) as eng:
            with pool_failure(eng.impl.sharded):
                with pytest.warns(RuntimeWarning, match="falling back"):
                    broken = eng.transform_many(blocks)
            assert broken.degraded
            assert eng.impl.degraded
            # Still numerically correct — the fallback ran serially.
            assert np.array_equal(
                broken.spectrum, ArrayFFT(64).transform_many(blocks)
            )
            # The engine stays degraded for life; later results carry it.
            later = eng.transform_many(blocks[:4])
            assert later.degraded

    def test_healthy_results_are_not_degraded(self):
        import repro

        with repro.engine(64, backend="compiled") as eng:
            result = eng.transform_many(random_blocks(4, 64, seed=19))
        assert result.degraded is False

    def test_concat_results_ors_the_marker(self):
        import dataclasses

        import repro

        with repro.engine(16) as eng:
            a = eng.transform_many(random_blocks(2, 16, seed=20))
            b = eng.transform_many(random_blocks(2, 16, seed=21))
        merged = repro.concat_results(
            [a, dataclasses.replace(b, degraded=True)], engine=eng
        )
        assert merged.degraded
        clean = repro.concat_results([a, b], engine=eng)
        assert clean.degraded is False


class TestArrayFftWrapper:
    def test_batch_input(self):
        blocks = random_blocks(5, 64, seed=9)
        got = array_fft(blocks)
        assert np.allclose(got, np.fft.fft(blocks, axis=1), atol=1e-8)

    def test_batch_with_workers_matches_serial(self):
        blocks = random_blocks(72, 64, seed=10)
        want = array_fft(blocks)
        got = array_fft(blocks, workers=2)
        assert np.array_equal(got, want)
        assert (64, "sharded", "float", 2) in _SHARED_CACHE

    def test_vector_input_unchanged(self):
        x = random_blocks(1, 64, seed=11)[0]
        assert np.allclose(array_fft(x), np.fft.fft(x), atol=1e-8)


class TestStreamSharded:
    def test_merged_stats_equal_local_run(self):
        n, symbols = 64, 16
        blocks = random_blocks(symbols, n, seed=12)
        merged = stream_sharded(n, blocks, workers=2)
        local = StreamingFFT(n).process(blocks)
        assert merged.symbols == local.symbols
        assert merged.total_cycles == local.total_cycles
        assert merged.is_deterministic
        assert merged.msamples_per_second == pytest.approx(
            local.msamples_per_second
        )

    def test_short_stream_runs_locally(self):
        n = 64
        blocks = random_blocks(3, n, seed=13)
        stats = stream_sharded(n, blocks, workers=2)
        assert stats.symbols == 3

    def test_merge_rejects_size_mismatch(self):
        from repro.asip.streaming import StreamStats

        a = StreamStats(n_points=64)
        b = StreamStats(n_points=128)
        with pytest.raises(ValueError):
            a.merge(b)


class TestLinkWorkers:
    def test_run_symbols_identical_with_and_without_pool(self):
        channel = MultipathChannel.exponential_profile(
            3, rng=np.random.default_rng(20)
        )
        plain = OfdmLink(64, scheme="qpsk", snr_db=35.0, seed=21,
                         channel=channel)
        with OfdmLink(64, scheme="qpsk", snr_db=35.0, seed=21,
                      channel=channel, workers=2) as pooled:
            for a, b in zip(plain.run_symbols(6), pooled.run_symbols(6)):
                assert np.array_equal(a.tx_bits, b.tx_bits)
                assert np.array_equal(a.rx_bits, b.rx_bits)
                assert np.array_equal(a.equalised, b.equalised)
        plain.close()  # no pool: must be a no-op

    def test_measure_ber_clean_channel(self):
        with OfdmLink(64, scheme="qpsk", snr_db=40.0, seed=22,
                      workers=2) as link:
            assert link.measure_ber(4) == 0.0
