"""Remaining surfaces: disassembler listings and the run-result wrapper."""

import numpy as np

from repro.asip import generate_fft_program, simulate_fft
from repro.isa import encode_program
from repro.isa.disassembler import disassemble, disassemble_word


class TestDisassembler:
    def test_word_disassembly(self):
        from repro.isa import Instruction, Opcode, encode

        word = encode(Instruction(opcode=Opcode.ADDI, rt=1, rs=0, imm=5))
        assert disassemble_word(word) == "addi r1, r0, 5"

    def test_listing_of_generated_program(self):
        program = generate_fft_program(8)
        words = encode_program(program)
        listing = disassemble(words)
        assert "ldin" in listing
        assert "but4" in listing
        assert f"{len(words) - 1:6d}:" in listing

    def test_listing_reassembles(self):
        """Disassembled text is valid assembler input (numeric targets)."""
        from repro.isa import assemble

        program = generate_fft_program(8)
        text = "\n".join(str(i) for i in program)
        again = assemble(text)
        assert len(again) == len(program)
        for a, b in zip(again, program):
            assert (a.opcode, a.rd, a.rs, a.rt, a.imm) == (
                b.opcode, b.rd, b.rs, b.rt, b.imm
            )

    def test_reassembled_program_executes_identically(self):
        from repro.asip import FFTASIP
        from repro.isa import assemble

        n = 16
        x = np.random.default_rng(2).standard_normal(n).astype(complex)
        program = generate_fft_program(n)
        reassembled = assemble("\n".join(str(i) for i in program))
        outputs = []
        for prog in (program, reassembled):
            asip = FFTASIP(n)
            asip.load_input(x)
            asip.run(prog)
            outputs.append(asip.read_output())
        assert np.allclose(outputs[0], outputs[1])
        assert np.allclose(outputs[0], np.fft.fft(x), atol=1e-9)


class TestRunResult:
    def test_result_fields(self):
        x = np.random.default_rng(0).standard_normal(16).astype(complex)
        result = simulate_fft(x)
        assert result.n_points == 16
        assert result.cycles == result.stats.cycles
        assert result.throughput.n_points == 16
        assert result.asip.n_points == 16
        assert len(result.spectrum) == 16
