"""Streaming sessions: lifecycle, chunking, backpressure, parity."""

import threading
import time

import numpy as np
import pytest

import repro
from repro.asip.streaming import StreamingFFT
from repro.core.parallel import stream_sharded
from repro.sessions import (
    SessionBackpressure,
    SessionClosed,
    SessionExecutionTimeout,
    StreamSession,
    run_with_watchdog,
)


def _blocks(symbols, n, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return scale * (rng.standard_normal((symbols, n))
                    + 1j * rng.standard_normal((symbols, n)))


class TestLifecycle:
    def test_feed_drain_flush_close(self):
        with repro.session(16, batch=4) as sess:
            assert not sess.closed
            assert sess.feed(_blocks(10, 16)) == 10
            # Two full chunks executed, two symbols still pending.
            assert sess.pending_symbols == 2
            results = sess.drain()
            assert [r.n_symbols for r in results] == [4, 4]
            sess.flush()
            tail = sess.drain()
            assert [r.n_symbols for r in tail] == [2]
            assert sess.symbols_fed == sess.symbols_done == 10
        assert sess.closed

    def test_close_flushes_and_is_idempotent(self):
        sess = repro.session(16, batch=8)
        sess.feed(_blocks(3, 16))
        sess.close()
        sess.close()
        results = sess.drain()  # the tail outlives close
        assert [r.n_symbols for r in results] == [3]

    def test_closed_session_refuses_feed(self):
        sess = repro.session(16)
        sess.close()
        with pytest.raises(SessionClosed):
            sess.feed(_blocks(1, 16))
        with pytest.raises(SessionClosed):
            sess.flush()

    def test_bad_block_shape(self):
        with repro.session(16) as sess:
            with pytest.raises(ValueError, match="16"):
                sess.feed(np.zeros((2, 8), dtype=complex))

    def test_repr_shows_state(self):
        with repro.session(16, batch=2) as sess:
            sess.feed(_blocks(1, 16))
            text = repr(sess)
        assert "open" in text and "pending=1" in text

    def test_results_iterator(self):
        with repro.session(16, batch=2) as sess:
            sess.feed(_blocks(5, 16))
            sess.flush()
            chunks = list(sess.results())
        assert [c.n_symbols for c in chunks] == [2, 2, 1]


class TestChunkSchema:
    def test_chunks_carry_uniform_results(self):
        with repro.session(16, backend="asip-batch", batch=3) as sess:
            sess.feed(_blocks(6, 16))
            results = sess.drain()
        for result in results:
            assert isinstance(result, repro.TransformResult)
            assert result.backend == "asip-batch"
            assert result.n_points == 16
            assert len(result.cycles) == 3
            assert result.stats.cycles == result.total_cycles

    def test_merged_equals_batch_call(self):
        blocks = _blocks(7, 16, seed=3)
        with repro.session(16, batch=2) as sess:
            sess.feed(blocks)
            sess.flush()
            merged = sess.merged()
        with repro.engine(16) as eng:
            reference = eng.transform_many(blocks)
        assert np.array_equal(merged.spectrum, reference.spectrum)
        assert merged.n_symbols == 7

    def test_verify_catches_wrong_chunks(self):
        class Liar:
            fx = None
            sim_stats = None
            machine = None

            def transform_many(self, blocks):
                return np.zeros_like(blocks), [0] * len(blocks)

            def close(self):
                pass

        from repro.core.registry import get_backend
        from repro.engines import Engine

        eng = Engine(get_backend("compiled"), Liar(), 16, "float")
        sess = StreamSession(eng, batch=2, verify=True)
        with pytest.raises(AssertionError, match="symbol 1 is wrong"):
            sess.feed(_blocks(2, 16))

    def test_q15_overflow_accounting_matches_batch(self):
        blocks = _blocks(6, 32, seed=1, scale=0.6)
        with repro.session(32, precision="q15", batch=2) as sess:
            sess.feed(blocks)
            sess.flush()
            merged = sess.merged()
        with repro.engine(32, precision="q15") as eng:
            reference = eng.transform_many(blocks)
        assert np.array_equal(merged.spectrum, reference.spectrum)
        assert merged.overflow_count == reference.overflow_count


class TestBackpressure:
    def test_overrun_raises(self):
        sess = repro.session(16, batch=2, capacity=4)
        sess.feed(_blocks(4, 16))  # 2 executed + drainable, 2... full
        with pytest.raises(SessionBackpressure, match="drain"):
            sess.feed(_blocks(4, 16))
        sess.drain()
        sess.feed(_blocks(2, 16))  # room again after draining
        sess.close()

    def test_wait_times_out(self):
        sess = repro.session(16, batch=2, capacity=2)
        sess.feed(_blocks(2, 16))
        with pytest.raises(SessionBackpressure, match="after waiting"):
            sess.feed(_blocks(1, 16), wait=0.05)
        sess.close()

    def test_threaded_producer_unblocked_by_consumer(self):
        sess = repro.session(16, batch=2, capacity=2)
        fed = []

        def produce():
            for k in range(6):
                sess.feed(_blocks(1, 16, seed=k), wait=5.0)
                fed.append(k)

        producer = threading.Thread(target=produce)
        producer.start()
        drained = 0
        try:
            while drained < 3:
                drained += len(sess.drain())
            producer.join(timeout=5.0)
            assert not producer.is_alive()
            assert fed == list(range(6))
        finally:
            producer.join(timeout=1.0)
            sess.close()

    def test_wait_true_with_timeout_raises_after_deadline(self):
        import time

        sess = repro.session(16, batch=2, capacity=2)
        sess.feed(_blocks(2, 16))  # buffer now full
        started = time.perf_counter()
        with pytest.raises(SessionBackpressure, match="after waiting"):
            sess.feed(_blocks(1, 16), wait=True, timeout=0.08)
        elapsed = time.perf_counter() - started
        # Bounded: raised at the deadline, far below any hang.
        assert 0.05 < elapsed < 5.0
        sess.close()

    def test_timeout_caps_a_numeric_wait(self):
        import time

        sess = repro.session(16, batch=2, capacity=2)
        sess.feed(_blocks(2, 16))
        started = time.perf_counter()
        with pytest.raises(SessionBackpressure, match="after waiting"):
            sess.feed(_blocks(1, 16), wait=30.0, timeout=0.05)
        assert time.perf_counter() - started < 5.0
        sess.close()

    def test_capacity_floor_is_batch(self):
        sess = repro.session(16, batch=8, capacity=1)
        assert sess.capacity == 8
        sess.close()

    def test_close_wakes_blocked_producer_promptly(self):
        import time

        sess = repro.session(16, batch=2, capacity=2)
        sess.feed(_blocks(2, 16))  # buffer now full
        raised = []

        def produce():
            try:
                sess.feed(_blocks(1, 16), wait=30.0)
            except SessionClosed:
                raised.append(time.perf_counter())

        producer = threading.Thread(target=produce)
        started = time.perf_counter()
        producer.start()
        time.sleep(0.05)
        sess.close()
        producer.join(timeout=5.0)
        assert not producer.is_alive()
        # Woken by close's notify, not by the 30 s timeout expiring.
        assert raised and raised[0] - started < 5.0

    def test_results_wait_streams_across_threads(self):
        sess = repro.session(16, batch=2, capacity=4)

        def produce():
            for k in range(6):
                sess.feed(_blocks(1, 16, seed=k), wait=5.0)
            sess.close()

        producer = threading.Thread(target=produce)
        producer.start()
        try:
            chunks = list(sess.results(wait=5.0))
        finally:
            producer.join(timeout=5.0)
        assert sum(c.n_symbols for c in chunks) == 6


class TestResultsWaitThreaded:
    """results(wait=) under a live producer thread (satellite coverage)."""

    def test_timeout_expiry_mid_stream_stops_cleanly(self):
        sess = repro.session(16, batch=2, capacity=8)
        release = threading.Event()

        def produce():
            sess.feed(_blocks(2, 16, seed=1), wait=5.0)
            release.wait(5.0)  # park: the consumer's wait= must expire
            sess.feed(_blocks(2, 16, seed=2), wait=5.0)
            sess.close()

        producer = threading.Thread(target=produce)
        producer.start()
        try:
            got = []
            started = time.perf_counter()
            for chunk in sess.results(wait=0.15):
                got.append(chunk)
            elapsed = time.perf_counter() - started
            # The first chunk arrived, then the wait expired mid-stream
            # — the iterator returned instead of blocking forever.
            assert sum(c.n_symbols for c in got) == 2
            assert elapsed < 5.0
            release.set()
            producer.join(timeout=5.0)
            # A fresh iterator picks the tail up after close.
            tail = list(sess.results(wait=1.0))
            assert sum(c.n_symbols for c in tail) == 2
        finally:
            release.set()
            producer.join(timeout=1.0)
            sess.close()

    def test_drain_after_close_yields_full_tail(self):
        sess = repro.session(16, batch=2, capacity=16)
        done = threading.Event()

        def produce():
            sess.feed(_blocks(7, 16, seed=3), wait=5.0)
            sess.close()  # flushes the odd symbol
            done.set()

        producer = threading.Thread(target=produce)
        producer.start()
        try:
            assert done.wait(5.0)
            # Everything was executed before the consumer ever drained:
            # the whole stream is the post-close tail.
            chunks = list(sess.results(wait=1.0))
            assert [c.n_symbols for c in chunks] == [2, 2, 2, 1]
            assert list(sess.results(wait=0.05)) == []
        finally:
            producer.join(timeout=5.0)

    def test_consumer_drain_wakes_blocked_producer(self):
        sess = repro.session(16, batch=2, capacity=2)
        sess.feed(_blocks(2, 16, seed=4))  # buffer now full
        woken_at = []

        def produce():
            sess.feed(_blocks(1, 16, seed=5), wait=10.0)
            woken_at.append(time.perf_counter())

        producer = threading.Thread(target=produce)
        producer.start()
        try:
            time.sleep(0.05)  # let the producer park in its backoff wait
            started = time.perf_counter()
            chunks = list(sess.results(wait=1.0))
            assert sum(c.n_symbols for c in chunks) == 2
            producer.join(timeout=5.0)
            assert not producer.is_alive()
            # Woken by the drain's notify, far inside the 10 s budget.
            assert woken_at and woken_at[0] - started < 5.0
        finally:
            producer.join(timeout=1.0)
            sess.close()


class TestBackoffKnobs:
    """Per-session producer backoff bounds (constructor satellites)."""

    def test_defaults_match_class_constants(self):
        with repro.session(16) as sess:
            assert sess.backoff_initial == StreamSession._BACKOFF_INITIAL
            assert sess.backoff_max == StreamSession._BACKOFF_MAX

    def test_knobs_are_clamped_and_ordered(self):
        with repro.session(16, backoff_initial=0.0,
                           backoff_max=0.0) as sess:
            assert sess.backoff_initial == pytest.approx(1e-4)
            assert sess.backoff_max >= sess.backoff_initial
        with repro.session(16, backoff_initial=0.02,
                           backoff_max=0.01) as sess:
            assert sess.backoff_max == pytest.approx(sess.backoff_initial)

    def test_short_backoff_reacts_quickly_to_a_drain(self):
        sess = repro.session(16, batch=2, capacity=2,
                             backoff_initial=0.001, backoff_max=0.002)
        sess.feed(_blocks(2, 16, seed=6))
        fed = threading.Event()

        def produce():
            sess.feed(_blocks(1, 16, seed=7), wait=10.0)
            fed.set()

        producer = threading.Thread(target=produce)
        producer.start()
        try:
            time.sleep(0.05)
            sess.drain()
            # 1-2 ms wait slices: the producer notices the freed room
            # orders of magnitude before its 10 s budget.
            assert fed.wait(5.0)
        finally:
            producer.join(timeout=5.0)
            sess.close()


class TestWatchdog:
    """run_with_watchdog + the session exec_timeout plumbing."""

    def test_no_timeout_is_a_plain_call(self):
        assert run_with_watchdog(lambda x: x + 1, (41,)) == 42

    def test_fast_call_returns_result(self):
        assert run_with_watchdog(lambda: "ok", timeout=5.0) == "ok"

    def test_exceptions_propagate(self):
        def boom():
            raise ValueError("inner detail")

        with pytest.raises(ValueError, match="inner detail"):
            run_with_watchdog(boom, timeout=5.0)

    def test_stuck_call_raises_structured_timeout(self):
        release = threading.Event()
        started = time.perf_counter()
        with pytest.raises(SessionExecutionTimeout, match="deadline"):
            run_with_watchdog(release.wait, (30.0,), timeout=0.05,
                              description="stuck wait")
        assert time.perf_counter() - started < 5.0
        release.set()  # unpark the abandoned thread

    def test_session_exec_timeout_fires_and_abort_recovers(self):
        class StallingEngine:
            n_points = 16
            backend = "stall"
            precision = "float"
            batch = None

            def __init__(self):
                self.release = threading.Event()

            def transform_many(self, blocks):
                self.release.wait(30.0)
                raise AssertionError("unreachable in this test")

            def close(self):
                pass

        engine = StallingEngine()
        sess = StreamSession(engine, batch=2, exec_timeout=0.05)
        with pytest.raises(SessionExecutionTimeout, match="2 symbols"):
            sess.feed(_blocks(2, 16, seed=8))
        # The engine is poisoned: abort drops pending input without
        # flushing anything more through it.
        dropped = sess.abort()
        assert dropped == 0
        assert sess.closed
        engine.release.set()

    def test_abort_keeps_finished_tail_and_drops_pending(self):
        sess = repro.session(16, batch=2)
        sess.feed(_blocks(3, 16, seed=9))  # one chunk done, one pending
        dropped = sess.abort()
        assert dropped == 1
        assert sess.closed
        tail = sess.drain()
        assert [r.n_symbols for r in tail] == [2]
        with pytest.raises(SessionClosed):
            sess.feed(_blocks(1, 16))
        assert sess.abort() == 0  # idempotent

    def test_abort_wakes_blocked_producer(self):
        sess = repro.session(16, batch=2, capacity=2)
        sess.feed(_blocks(2, 16, seed=10))
        outcome = []

        def produce():
            try:
                sess.feed(_blocks(1, 16, seed=11), wait=30.0)
            except SessionClosed:
                outcome.append("closed")

        producer = threading.Thread(target=produce)
        producer.start()
        time.sleep(0.05)
        started = time.perf_counter()
        sess.abort()
        producer.join(timeout=5.0)
        assert not producer.is_alive()
        assert time.perf_counter() - started < 5.0
        assert outcome == ["closed"]


class TestMultiProducer:
    """feed() is serialised: concurrent producers need no locking."""

    def test_two_producers_lose_nothing_and_keep_chunks_whole(self):
        n, batch, per_producer = 16, 4, 16
        sess = repro.session(n, batch=batch, capacity=2 * batch)
        errors = []

        def produce(tag):
            try:
                for k in range(per_producer):
                    # A constant block is identifiable after the FFT:
                    # bin 0 holds n * value, every other bin 0.
                    value = tag * 100.0 + k + 1.0
                    sess.feed(np.full(n, value, dtype=complex), wait=10.0)
            except Exception as exc:  # surfaced after join
                errors.append(exc)

        producers = [threading.Thread(target=produce, args=(tag,))
                     for tag in (1, 2)]
        for thread in producers:
            thread.start()
        chunks = []
        try:
            while sum(c.n_symbols for c in chunks) < 2 * per_producer:
                chunks.extend(sess.drain())
        finally:
            for thread in producers:
                thread.join(timeout=10.0)
            sess.close()
        chunks.extend(sess.drain())
        assert not errors
        assert not any(thread.is_alive() for thread in producers)
        assert sess.symbols_fed == sess.symbols_done == 2 * per_producer
        # Serialised feeds always cut whole batches — interleaving two
        # producers must never produce an off-size chunk.
        assert [c.n_symbols for c in chunks] == \
            [batch] * (2 * per_producer // batch)
        # Every fed block comes back exactly once (order may interleave).
        seen = sorted(
            round(float(c.spectrum[k, 0].real) / n)
            for c in chunks for k in range(c.n_symbols)
        )
        expected = sorted(tag * 100 + k + 1 for tag in (1, 2)
                          for k in range(per_producer))
        assert seen == expected

    def test_close_wakes_two_blocked_producers(self):
        import time

        sess = repro.session(16, batch=2, capacity=2)
        sess.feed(_blocks(2, 16))  # buffer now full
        outcomes = []
        blocked = threading.Barrier(3, timeout=5.0)

        def produce(tag):
            blocked.wait()  # both producers walk into the full buffer
            try:
                sess.feed(_blocks(1, 16, seed=tag), wait=30.0)
                outcomes.append((tag, "fed"))
            except SessionClosed:
                outcomes.append((tag, "closed"))

        producers = [threading.Thread(target=produce, args=(tag,))
                     for tag in (1, 2)]
        for thread in producers:
            thread.start()
        blocked.wait()
        time.sleep(0.05)  # let both enter the backoff wait
        started = time.perf_counter()
        sess.close()
        for thread in producers:
            thread.join(timeout=5.0)
        assert not any(thread.is_alive() for thread in producers)
        # Both woken by close's notify, well inside their 30 s budget.
        assert time.perf_counter() - started < 5.0
        assert sorted(outcomes) == [(1, "closed"), (2, "closed")]

    def test_flush_is_serialised_with_feeds(self):
        sess = repro.session(16, batch=4, capacity=16)
        stop = threading.Event()

        def produce():
            k = 0
            while not stop.is_set():
                sess.feed(_blocks(1, 16, seed=k), wait=5.0)
                sess.drain()
                k += 1

        producer = threading.Thread(target=produce)
        producer.start()
        try:
            for _ in range(20):
                sess.flush()
        finally:
            stop.set()
            producer.join(timeout=10.0)
            sess.close()
        assert not producer.is_alive()
        assert sess.symbols_done == sess.symbols_fed


class TestStreamingParity:
    def test_session_matches_streaming_fft_cycles(self):
        blocks = _blocks(6, 32, seed=2)
        stats = StreamingFFT(32).process(blocks, batch=2)
        with repro.session(32, backend="asip-batch", batch=2) as sess:
            sess.feed(blocks)
            sess.flush()
            merged = sess.merged()
        assert merged.cycles == stats.per_symbol_cycles
        assert merged.total_cycles == stats.total_cycles
        assert stats.is_deterministic

    def test_engine_stream_rides_on_sessions(self):
        blocks = _blocks(5, 16, seed=4)
        with repro.engine(16, backend="asip-batch") as eng:
            streamed = eng.stream(blocks, batch=2, verify=True)
        with repro.engine(16, backend="asip-batch") as eng:
            batched = eng.transform_many(blocks)
        assert np.array_equal(streamed.spectrum, batched.spectrum)
        assert streamed.cycles == batched.cycles

    def test_empty_stream_yields_empty_result(self):
        with repro.engine(16) as eng:
            result = eng.stream([])
        assert result.spectrum.shape == (0, 16)
        assert result.n_symbols == 0


class TestShardedStreamMerge:
    def test_stream_sharded_returns_merged_transform_result(self):
        blocks = _blocks(8, 16, seed=5)
        merged = stream_sharded(16, blocks, workers=2, as_result=True)
        assert isinstance(merged, repro.TransformResult)
        assert merged.n_symbols == 8
        local = StreamingFFT(16).process(blocks)
        assert merged.total_cycles == local.total_cycles
        assert list(merged.cycles) == local.per_symbol_cycles

    def test_stream_sharded_stats_compatible(self):
        blocks = _blocks(6, 16, seed=6)
        stats = stream_sharded(16, blocks, workers=2)
        assert stats.symbols == 6
        assert stats.is_deterministic
        serial = StreamingFFT(16).process(blocks)
        assert stats.total_cycles == serial.total_cycles

    def test_short_stream_falls_back_locally(self):
        blocks = _blocks(2, 16, seed=7)
        stats = stream_sharded(16, blocks, workers=4)
        assert stats.symbols == 2

    def test_concat_results_validates_sizes(self):
        with repro.engine(16) as eng:
            a = eng.transform_many(_blocks(2, 16))
        with repro.engine(32) as eng:
            b = eng.transform_many(_blocks(2, 32))
        with pytest.raises(ValueError, match="different sizes"):
            repro.concat_results([a, b])

    def test_concat_empty_needs_identity(self):
        with pytest.raises(ValueError, match="n_points"):
            repro.concat_results([])
        empty = repro.concat_results([], n_points=16, backend="compiled",
                                     precision="float")
        assert empty.spectrum.shape == (0, 16)
