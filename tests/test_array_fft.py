"""The array-structured FFT engine — the paper's core contribution."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ArrayFFT, array_fft, snr_db

SIZES = st.sampled_from([4, 8, 16, 32, 64, 128, 256, 512, 1024])


def random_vector(n, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


class TestFloatDatapath:
    @given(SIZES, st.integers(0, 10 ** 6))
    @settings(deadline=None, max_examples=40)
    def test_matches_numpy(self, n, seed):
        x = random_vector(n, seed)
        assert np.allclose(array_fft(x), np.fft.fft(x), atol=1e-9 * n)

    def test_large_sizes(self):
        for n in (2048, 4096, 8192):
            x = random_vector(n, n)
            assert np.allclose(
                array_fft(x), np.fft.fft(x), atol=1e-8 * n
            )

    def test_engine_is_reusable(self):
        engine = ArrayFFT(64)
        for seed in range(3):
            x = random_vector(64, seed)
            assert np.allclose(engine.transform(x), np.fft.fft(x))

    def test_callable_alias(self):
        engine = ArrayFFT(16)
        x = random_vector(16, 5)
        assert np.allclose(engine(x), engine.transform(x))

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            ArrayFFT(64).transform(np.zeros(32))

    def test_impulse_and_dc(self):
        impulse = np.zeros(64, dtype=complex)
        impulse[0] = 1.0
        assert np.allclose(array_fft(impulse), np.ones(64))
        dc = np.ones(64, dtype=complex)
        spectrum = array_fft(dc)
        assert abs(spectrum[0] - 64) < 1e-9
        assert np.max(np.abs(spectrum[1:])) < 1e-9

    def test_real_input_hermitian_spectrum(self):
        x = np.random.default_rng(4).standard_normal(128).astype(complex)
        spectrum = array_fft(x)
        assert np.allclose(
            spectrum[1:], np.conj(spectrum[1:][::-1]), atol=1e-9
        )


class TestFixedPointDatapath:
    @given(st.sampled_from([16, 64, 256]), st.integers(0, 100))
    @settings(deadline=None, max_examples=10)
    def test_snr_above_35db(self, n, seed):
        x = random_vector(n, seed) * 0.2
        engine = ArrayFFT(n, fixed_point=True)
        measured = engine.transform(x)
        assert snr_db(np.fft.fft(x) / n, measured) > 35.0

    def test_output_is_scaled_by_n(self):
        n = 64
        x = random_vector(n, 9) * 0.2
        measured = ArrayFFT(n, fixed_point=True).transform(x)
        reference = np.fft.fft(x) / n
        assert np.allclose(measured, reference, atol=2e-3)

    def test_no_overflow_with_scaling(self):
        engine = ArrayFFT(64, fixed_point=True)
        x = random_vector(64, 10) * 0.3
        engine.transform(x)
        assert engine.fx.overflow_count == 0


class TestOperationCounts:
    def test_memory_operation_counts(self):
        counts = ArrayFFT(1024).memory_operation_counts()
        assert counts["ldin"] == 1024
        assert counts["stout"] == 1024
        assert counts["but4"] == 1280
        assert counts["prerotation"] == 512

    def test_bu_utilisation_tracked(self):
        engine = ArrayFFT(64)
        engine.transform(random_vector(64, 11))
        assert engine.bu.op_count == engine.plan.total_but4
