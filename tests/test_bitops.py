"""Unit and property tests for the bit-manipulation primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.addressing.bitops import (
    bit_reverse,
    bit_width_of,
    bits_of,
    from_bits,
    get_bit,
    relocate_bit,
    set_bit,
    swap_bits,
    swap_bits_msb,
    swap_fields,
)


class TestBitWidthOf:
    def test_powers_of_two(self):
        assert bit_width_of(1) == 0
        assert bit_width_of(2) == 1
        assert bit_width_of(1024) == 10

    @pytest.mark.parametrize("bad", [0, -4, 3, 6, 1023])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(ValueError):
            bit_width_of(bad)


class TestGetSetBit:
    def test_get_bit(self):
        assert get_bit(0b1010, 1) == 1
        assert get_bit(0b1010, 0) == 0

    def test_set_bit(self):
        assert set_bit(0b1010, 0, 1) == 0b1011
        assert set_bit(0b1010, 1, 0) == 0b1000

    def test_set_bit_rejects_non_binary(self):
        with pytest.raises(ValueError):
            set_bit(0, 0, 2)

    def test_get_bit_rejects_negative_index(self):
        with pytest.raises(ValueError):
            get_bit(1, -1)


class TestBitReverse:
    def test_known_values(self):
        assert bit_reverse(0b001, 3) == 0b100
        assert bit_reverse(0b011, 3) == 0b110
        assert bit_reverse(0b110101, 6) == 0b101011

    def test_zero_width(self):
        assert bit_reverse(0, 0) == 0

    def test_rejects_oversized_value(self):
        with pytest.raises(ValueError):
            bit_reverse(8, 3)

    @given(st.integers(1, 12), st.data())
    def test_involution(self, width, data):
        value = data.draw(st.integers(0, (1 << width) - 1))
        assert bit_reverse(bit_reverse(value, width), width) == value

    @given(st.integers(1, 12))
    def test_is_permutation(self, width):
        size = 1 << width
        image = {bit_reverse(v, width) for v in range(size)}
        assert image == set(range(size))


class TestSwapBits:
    def test_swap(self):
        assert swap_bits(0b100, 0, 2) == 0b001
        assert swap_bits(0b101, 0, 2) == 0b101

    @given(st.integers(0, 255), st.integers(0, 7), st.integers(0, 7))
    def test_involution(self, value, i, j):
        assert swap_bits(swap_bits(value, i, j), i, j) == value

    def test_msb_convention_matches_paper_example(self):
        # Fig. 2: switching the 1st and 2nd bit (from leftmost) of 'def'
        # gives 'edf': for value bits (d, e, f) = (1, 0, 1) -> (0, 1, 1).
        assert swap_bits_msb(0b101, 3, 1, 2) == 0b011

    def test_msb_bounds(self):
        with pytest.raises(ValueError):
            swap_bits_msb(0, 3, 0, 1)
        with pytest.raises(ValueError):
            swap_bits_msb(0, 3, 1, 4)


class TestSwapFields:
    def test_known(self):
        # [ab][cde] -> [cde][ab] for 2+3 bits
        assert swap_fields(0b10110, low_width=3, high_width=2) == 0b11010

    def test_rejects_oversized(self):
        with pytest.raises(ValueError):
            swap_fields(1 << 5, low_width=3, high_width=2)

    @given(st.integers(1, 6), st.integers(1, 6), st.data())
    def test_double_swap_identity(self, low, high, data):
        value = data.draw(st.integers(0, (1 << (low + high)) - 1))
        once = swap_fields(value, low, high)
        assert swap_fields(once, high, low) == value


class TestRelocateBit:
    def test_identity_when_same_position(self):
        assert relocate_bit(0b1011, 4, 2, 2) == 0b1011

    def test_moves_bit(self):
        # [a b c d], move position 1 (a) to position 3: [b c a d]
        assert relocate_bit(0b1000, 4, 1, 3) == 0b0010

    @given(st.integers(2, 10), st.data())
    def test_is_permutation(self, width, data):
        src = data.draw(st.integers(1, width))
        dst = data.draw(st.integers(1, width))
        size = 1 << width
        image = {relocate_bit(v, width, src, dst) for v in range(size)}
        assert image == set(range(size))


class TestBitsRoundTrip:
    @given(st.integers(0, 10), st.data())
    def test_roundtrip(self, width, data):
        value = data.draw(st.integers(0, (1 << width) - 1)) if width else 0
        assert from_bits(bits_of(value, width)) == value

    def test_from_bits_rejects_non_binary(self):
        with pytest.raises(ValueError):
            from_bits([0, 2])
