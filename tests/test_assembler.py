"""Text assembler and the program builder."""

import pytest

from repro.isa import AssemblyError, Opcode, ProgramBuilder, assemble


class TestAssemble:
    def test_basic_program(self):
        program = assemble("""
            # count down from 3
                li   r1, 3
            loop:
                addi r1, r1, -1
                bne  r1, r0, loop
                halt
        """)
        assert len(program) == 4
        assert program.labels["loop"] == 1
        assert program[2].imm == 1  # resolved to the loop index

    def test_memory_syntax(self):
        program = assemble("lw r5, 8(r2)\nsw r5, -4(sp)\nhalt")
        assert program[0].opcode is Opcode.LW
        assert program[0].imm == 8
        assert program[1].rs == 29

    def test_custom_two_operand_forms(self):
        program = assemble("but4 r12, r20\nldin r4, r5\nhalt")
        assert program[0].opcode is Opcode.BUT4
        assert (program[0].rs, program[0].rt) == (12, 20)
        assert program[1].opcode is Opcode.LDIN

    def test_comments_and_blank_lines(self):
        program = assemble("""
            ; semicolon comment
            nop   # trailing comment

            halt
        """)
        assert len(program) == 2

    def test_hex_immediates(self):
        program = assemble("addi r1, r0, 0x10\nhalt")
        assert program[0].imm == 16

    def test_wide_li_expands(self):
        program = assemble("li r1, 0x12345678\nhalt")
        assert program[0].opcode is Opcode.LUI
        assert program[1].opcode is Opcode.ORI

    def test_jump_to_label(self):
        program = assemble("j end\nnop\nend: halt")
        assert program[0].imm == 2

    def test_errors_carry_line_numbers(self):
        with pytest.raises(AssemblyError) as err:
            assemble("nop\nbogus r1, r2\n")
        assert "line 2" in str(err.value)

    def test_undefined_label(self):
        with pytest.raises(ValueError):
            assemble("j nowhere\nhalt")

    def test_duplicate_label(self):
        with pytest.raises(ValueError):
            assemble("a: nop\na: halt")

    def test_bad_register(self):
        with pytest.raises(AssemblyError):
            assemble("addi r99, r0, 1")


class TestProgramBuilder:
    def test_branch_patching(self):
        b = ProgramBuilder("t")
        b.branch(Opcode.J, target="end")
        b.nop()
        b.label("end")
        b.halt()
        program = b.build()
        assert program[0].imm == 2

    def test_branch_requires_branch_opcode(self):
        b = ProgramBuilder()
        with pytest.raises(ValueError):
            b.branch(Opcode.ADD, target="x")

    def test_li_small_is_one_instruction(self):
        b = ProgramBuilder()
        b.li(1, -5)
        assert len(b.build()) == 1

    def test_listing_contains_labels(self):
        b = ProgramBuilder()
        b.label("start")
        b.halt()
        assert "start:" in b.build().listing()

    def test_executed_round_trip_through_text(self):
        """Assembler output disassembles to re-assemblable text."""
        source = "li r1, 7\nloop: addi r1, r1, -1\nbne r1, r0, 1\nhalt"
        program = assemble(source)
        text = "\n".join(str(i) for i in program)
        again = assemble(text)
        assert [i.opcode for i in again] == [i.opcode for i in program]
