"""repro.uarch: trace recording, scoreboard scheduling, the sandwich,
and the issue-width design study."""

import numpy as np
import pytest

from repro.asip import FFTASIP, generate_fft_program
from repro.core.registry import UnknownNameError
from repro.isa import Opcode, assemble
from repro.sim import MainMemory, PipelineConfig, pipeline_preset
from repro.sim.cache import CacheConfig
from repro.sim.machine import Machine
from repro.uarch import (
    RetiredOp,
    Scoreboard,
    UarchSpec,
    cache_timeline,
    critical_path_cycles,
    dataflow_critical_path,
    get_uarch,
    record_trace,
    register_uarch,
    retime,
    run_uarch_study,
    sandwich_cycles,
    table2_extension_rows,
    uarch_names,
    uarch_specs,
    unregister_uarch,
)


def fft_trace(n=64, seed=3):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    machine = FFTASIP(n)
    machine.load_input(x)
    ops = record_trace(machine, generate_fft_program(n))
    return ops, machine, x


class TestRegistry:
    def test_presets_registered(self):
        names = uarch_names()
        for name in ("base-300mhz", "no-interlock", "single-issue",
                     "dual-issue"):
            assert name in names
        assert names == sorted(names)
        assert list(uarch_specs()) == names

    def test_preset_pipelines_single_source_of_truth(self):
        assert get_uarch("base-300mhz").pipeline == PipelineConfig()
        ideal = get_uarch("no-interlock").pipeline
        assert (ideal.branch_penalty, ideal.load_use_stall,
                ideal.mul_extra) == (0, 0, 0)
        assert pipeline_preset("base-300mhz") == PipelineConfig()
        assert pipeline_preset("no-interlock") == ideal

    def test_unknown_name_menu(self):
        with pytest.raises(UnknownNameError) as excinfo:
            get_uarch("definitely-not-registered")
        assert ", ".join(uarch_names()) in str(excinfo.value)

    def test_register_duplicate_and_replace(self):
        spec = UarchSpec("zz-test", "throwaway")
        register_uarch(spec)
        try:
            with pytest.raises(ValueError):
                register_uarch(spec)
            register_uarch(spec, replace=True)
            assert get_uarch("zz-test") is spec
            assert uarch_names() == sorted(uarch_names())
        finally:
            unregister_uarch("zz-test")
        with pytest.raises(UnknownNameError):
            get_uarch("zz-test")

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            UarchSpec("bad", issue_width=0)
        with pytest.raises(TypeError):
            register_uarch("not-a-spec")


class TestScoreboard:
    def test_raw_and_waw(self):
        board = Scoreboard()
        producer = RetiredOp(0, Opcode.ADD, "alu", (), (1,))
        consumer = RetiredOp(1, Opcode.ADD, "alu", (1,), (2,))
        overwriter = RetiredOp(2, Opcode.ADD, "alu", (), (1,))
        assert board.ready(producer) == 0
        board.commit(producer, 5)
        assert board.ready(consumer) == 5        # RAW
        assert board.ready(overwriter) == 5      # WAW
        independent = RetiredOp(3, Opcode.ADD, "alu", (3,), (4,))
        assert board.ready(independent) == 0

    def test_dataflow_critical_path_is_chain_length(self):
        chain = [RetiredOp(i, Opcode.ADD, "alu", (i,), (i + 1,))
                 for i in range(5)]
        assert dataflow_critical_path(chain, [1] * 5) == 5
        forks = [RetiredOp(i, Opcode.ADD, "alu", (), (i + 1,))
                 for i in range(5)]
        assert dataflow_critical_path(forks, [1] * 5) == 1
        with pytest.raises(ValueError):
            dataflow_critical_path(chain, [1])


def alu(pc, reads, writes):
    return RetiredOp(pc, Opcode.ADD, "alu", tuple(reads), tuple(writes))


class TestScheduler:
    W1 = UarchSpec("w1-test", issue_width=1, charge_cache=False)
    W2 = UarchSpec("w2-test", issue_width=2, charge_cache=False)

    def test_independent_pair_dual_issues(self):
        # One unit per class: a dual pairing needs different units
        # (AGU beside the memory port here, as in the paper's datapath).
        ops = [alu(0, (1,), (2,)),
               RetiredOp(1, Opcode.LW, "load", (("m", 9),), (4,),
                         ((9, False),))]
        # w1: alu at 0, load at 1, load data ready at 3 (1 + interlock).
        # w2: both at 0, load data ready at 2 — the pairing saves a cycle.
        assert retime(ops, self.W1, None).cycles == 3
        assert retime(ops, self.W2, None).cycles == 2
        assert retime(ops, self.W2, None).stalls["structural"] == 0

    def test_two_alu_ops_share_one_alu(self):
        ops = [alu(0, (1,), (2,)), alu(1, (3,), (4,))]
        result = retime(ops, self.W2, None)
        assert result.cycles == 2
        assert result.stalls["structural"] == 1

    def test_dependent_pair_cannot_pair(self):
        ops = [alu(0, (1,), (2,)), alu(1, (2,), (3,))]
        result = retime(ops, self.W2, None)
        assert result.cycles == 2
        assert result.stalls["raw"] == 1

    def test_same_unit_serialises(self):
        ops = [RetiredOp(i, Opcode.LW, "load", (("m", i),), (i + 1,),
                         ((i, False),)) for i in range(2)]
        result = retime(ops, self.W2, None)
        assert result.cycles >= 2
        assert result.stalls["structural"] >= 1
        assert result.unit_issues == {"lsu": 2}

    def test_taken_branch_redirects(self):
        penalty = PipelineConfig().branch_penalty
        taken = [RetiredOp(0, Opcode.BNE, "branch", (1,), (), (), True),
                 alu(3, (), (2,))]
        fallthrough = [RetiredOp(0, Opcode.BNE, "branch", (1,)),
                       alu(1, (), (2,))]
        assert (retime(taken, self.W1, None).cycles
                == retime(fallthrough, self.W1, None).cycles + penalty)
        assert retime(taken, self.W1, None).stalls["branch"] == penalty

    def test_load_latency_stalls_dependent(self):
        load = RetiredOp(0, Opcode.LW, "load", (("m", 7),), (1,),
                         ((7, False),))
        use = alu(1, (1,), (2,))
        result = retime([load, use], self.W1, None)
        # load completes at 1 + (1 + load_use_stall); the use issues then.
        assert result.cycles == 2 + PipelineConfig().load_use_stall

    def test_blocking_cache_charges_and_holds_port(self):
        charged = UarchSpec("c-test", issue_width=1, charge_cache=True)
        ops = [RetiredOp(0, Opcode.LW, "load", (("m", 0),), (1,),
                         ((0, False),)),
               RetiredOp(1, Opcode.LW, "load", (("m", 512),), (2,),
                         ((512, False),))]
        config = CacheConfig()
        cold = retime(ops, charged, config)
        warm = retime(ops, self.W1, config)   # counted but not charged
        assert cold.dcache_misses == warm.dcache_misses == 2
        assert cold.cycles > warm.cycles
        assert cold.stalls["cache"] == 2 * config.miss_penalty


class TestRecorder:
    SOURCE = """
        li r1, 5
        lw r2, 100(r0)
        add r3, r1, r2
        mul r4, r3, r3
        sw r4, 101(r0)
        bne r1, r0, 7
        halt
        halt
    """

    def test_trace_matches_retirement(self):
        program = assemble(self.SOURCE)
        machine = Machine(MainMemory(1024))
        ops = record_trace(machine, program)
        assert len(ops) == machine.stats.instructions
        assert [op.opcode for op in ops] == [
            Opcode.ADDI, Opcode.LW, Opcode.ADD, Opcode.MUL, Opcode.SW,
            Opcode.BNE, Opcode.HALT,
        ]
        lw, mul, sw, bne = ops[1], ops[3], ops[4], ops[5]
        assert lw.mem == ((100, False),) and ("m", 100) in lw.reads
        assert mul.kind == "mul"
        assert sw.mem == ((101, True),) and ("m", 101) in sw.writes
        assert bne.taken

    def test_recording_is_pure_observation(self):
        program = assemble(self.SOURCE)
        recorded = Machine(MainMemory(1024))
        record_trace(recorded, program)
        twin = Machine(MainMemory(1024))
        twin.run_interpreted(program)
        assert recorded.registers == twin.registers
        assert recorded.stats.as_dict() == twin.stats.as_dict()
        assert "step" not in recorded.__dict__   # wrapper removed

    def test_wrapper_removed_on_error(self):
        machine = Machine(MainMemory(64), max_instructions=10)
        from repro.sim import RunawayProgram
        with pytest.raises(RunawayProgram):
            record_trace(machine, assemble("loop: j loop"))
        assert "step" not in machine.__dict__

    def test_double_instrumentation_rejected(self):
        machine = Machine(MainMemory(64))
        machine.step = lambda instr: None
        with pytest.raises(ValueError):
            record_trace(machine, assemble("halt"))

    def test_fft_recording_preserves_oracle(self):
        ops, machine, x = fft_trace(64)
        assert np.allclose(machine.read_output(), np.fft.fft(x), atol=1e-6)
        twin = FFTASIP(64)
        twin.load_input(x)
        twin.run_interpreted(generate_fft_program(64))
        assert np.array_equal(machine.read_output(), twin.read_output())
        assert machine.stats.as_dict() == twin.stats.as_dict()
        assert len(ops) == twin.stats.instructions

    def test_fft_custom_resources(self):
        ops, _, _ = fft_trace(64)
        kinds = {op.kind for op in ops}
        assert {"ldin", "but4", "stout"} <= kinds
        ldin = next(op for op in ops if op.kind == "ldin")
        assert len(ldin.mem) == 2
        assert sum(1 for r in ldin.writes
                   if isinstance(r, tuple) and r[0] == "crf") == 2
        but4 = next(op for op in ops if op.kind == "but4")
        read_banks = {r[1] for r in but4.reads
                      if isinstance(r, tuple) and r[0] == "crf"}
        write_banks = {w[1] for w in but4.writes
                       if isinstance(w, tuple) and w[0] == "crf"}
        # double-banked CRF: BUT4 reads active, writes shadow
        assert read_banks and write_banks and not read_banks & write_banks


class TestSandwich:
    def test_fft_sandwich_holds(self):
        ops, _, _ = fft_trace(64)
        critical, dual, single = sandwich_cycles(ops)
        assert critical <= dual <= single
        assert dual < single   # LDIN/STOUT<->BUT4 overlap buys something

    def test_misses_are_width_invariant(self):
        ops, _, _ = fft_trace(64)
        results = [retime(ops, get_uarch(name))
                   for name in ("single-issue", "dual-issue")]
        assert len({r.dcache_misses for r in results}) == 1
        assert len({r.dcache_hits for r in results}) == 1

    def test_retime_is_deterministic(self):
        ops, _, _ = fft_trace(32)
        a = retime(ops, get_uarch("dual-issue"))
        b = retime(ops, get_uarch("dual-issue"))
        assert a == b

    def test_width_one_uncharged_matches_oracle_cycles(self):
        # With no blocking cache and the oracle's own penalties, the
        # overlay at width 1 can never beat the oracle's cycle count.
        ops, machine, _ = fft_trace(64)
        result = retime(ops, get_uarch("base-300mhz"))
        assert result.cycles >= machine.stats.cycles

    def test_critical_path_below_every_width(self):
        ops, _, _ = fft_trace(32)
        floor = critical_path_cycles(ops)
        for width in (1, 2, 3, 4):
            spec = UarchSpec(f"w{width}-sweep", issue_width=width)
            assert floor <= retime(ops, spec).cycles

    def test_cache_timeline_counts_like_the_oracle(self):
        ops, machine, _ = fft_trace(64)
        _, hits, misses = cache_timeline(ops)
        assert misses == machine.stats.dcache_misses
        assert hits == machine.stats.dcache_hits


class TestTelemetry:
    def test_replay_span_and_stall_events(self):
        from repro import telemetry

        ops, _, _ = fft_trace(32)
        with telemetry.trace("uarch-test") as tracer:
            retime(ops, get_uarch("dual-issue"))
        spans = tracer.finished()
        replay = [span for span in spans if span.name == "uarch.replay"]
        assert replay, [span.name for span in spans]
        assert replay[0].attributes["width"] == 2
        event_names = [event[0] for event in replay[0].events]
        assert any(name.startswith("uarch.stall.") for name in event_names)


class TestStudy:
    def test_study_rows_and_pricing(self):
        rows = run_uarch_study(64, widths=(1, 2))
        assert len(rows) == 4   # 2 widths x 2 cache geometries
        by_config = {row["config"]: row for row in rows}
        w1 = by_config["w1/32kB-4way"]
        w2 = by_config["w2/32kB-4way"]
        assert w1["floor_cycles"] <= w2["cycles"] <= w1["cycles"]
        assert w2["speedup"] >= 1.0 and w1["speedup"] == 1.0
        assert w2["gates"] > w1["gates"]
        assert w2["power_mw"] > w1["power_mw"]
        for row in rows:
            assert row["clock_mhz"] <= 300.0
            assert row["time_us"] > 0 and row["energy_uj"] > 0

    def test_smaller_cache_misses_more(self):
        rows = run_uarch_study(64, widths=(1,))
        by_cache = {row["cache"]: row for row in rows}
        assert (by_cache["8kB-2way"]["dcache_misses"]
                >= by_cache["32kB-4way"]["dcache_misses"])

    def test_table2_extension_rows(self):
        rows = table2_extension_rows(64, widths=(1, 2))
        assert set(rows) == {"proposed_w1", "proposed_w2"}
        w1, w2 = rows["proposed_w1"], rows["proposed_w2"]
        assert w2.cycles <= w1.cycles
        assert (w1.loads, w1.stores, w1.misses) == \
               (w2.loads, w2.stores, w2.misses)

    def test_study_rejects_bad_widths(self):
        with pytest.raises(ValueError):
            run_uarch_study(64, widths=())
        with pytest.raises(ValueError):
            run_uarch_study(64, widths=(0, 1))


class TestFuzzFamily:
    def test_uarch_family_registered_and_passes(self):
        from repro.verify import FUZZ_KINDS, fuzz_backends

        assert "uarch" in FUZZ_KINDS
        report = fuzz_backends(6, seed=2009, kinds=("uarch",))
        assert report.ok, report.summary()
