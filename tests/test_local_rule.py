"""Local address-changing rule L_j and the Fig. 2 walkthrough."""

import pytest
from hypothesis import given, strategies as st

from repro.addressing.bitops import bit_reverse
from repro.addressing.local import (
    final_bit_reverse,
    local_permutation,
    local_switch,
    stage_input_addresses,
)


class TestFig2Example:
    """The paper's 8-point example: def -> edf -> efd."""

    def test_stage1_is_natural(self):
        assert stage_input_addresses(3, 1) == list(range(8))

    def test_stage2_is_edf(self):
        # position bits (d,e,f) read address (e,d,f)
        expected = [
            ((r >> 1) & 1) << 2 | ((r >> 2) & 1) << 1 | (r & 1)
            for r in range(8)
        ]
        assert stage_input_addresses(3, 2) == expected

    def test_stage3_is_efd(self):
        # position bits (d,e,f) read address (e,f,d) — a left rotation
        expected = [
            ((r >> 1) & 1) << 2 | (r & 1) << 1 | ((r >> 2) & 1)
            for r in range(8)
        ]
        assert stage_input_addresses(3, 3) == expected

    def test_final_r_step_is_full_reversal(self):
        assert final_bit_reverse(3) == [
            bit_reverse(r, 3) for r in range(8)
        ]


class TestLocalSwitch:
    def test_rejects_stage_one(self):
        with pytest.raises(ValueError):
            local_switch(0, 3, 1)

    def test_rejects_stage_beyond_p(self):
        with pytest.raises(ValueError):
            local_switch(0, 3, 4)

    @given(st.integers(2, 8), st.data())
    def test_is_involution(self, p, data):
        stage = data.draw(st.integers(2, p))
        addr = data.draw(st.integers(0, (1 << p) - 1))
        once = local_switch(addr, p, stage)
        assert local_switch(once, p, stage) == addr

    @given(st.integers(2, 8), st.data())
    def test_permutation(self, p, data):
        stage = data.draw(st.integers(2, p))
        perm = local_permutation(p, stage)
        assert sorted(perm) == list(range(1 << p))


class TestStageInputAddresses:
    @given(st.integers(1, 8), st.data())
    def test_always_a_permutation(self, p, data):
        stage = data.draw(st.integers(1, p))
        addrs = stage_input_addresses(p, stage)
        assert sorted(addrs) == list(range(1 << p))

    @given(st.integers(2, 8), st.data())
    def test_accumulates_one_switch_per_stage(self, p, data):
        stage = data.draw(st.integers(2, p))
        previous = stage_input_addresses(p, stage - 1)
        current = stage_input_addresses(p, stage)
        assert current == [local_switch(a, p, stage) for a in previous]

    def test_stage_bounds(self):
        with pytest.raises(ValueError):
            stage_input_addresses(3, 0)
        with pytest.raises(ValueError):
            stage_input_addresses(3, 4)
