"""The base scalar core: functional semantics and timing behaviours."""

import pytest

from repro.isa import Opcode, ProgramBuilder, assemble
from repro.sim import (
    CacheConfig,
    Machine,
    MainMemory,
    PipelineConfig,
    RunawayProgram,
    UnsupportedInstruction,
)


def make_machine(**kwargs):
    return Machine(MainMemory(1024), **kwargs)


def run_source(source, machine=None):
    machine = machine or make_machine()
    stats = machine.run(assemble(source))
    return machine, stats


class TestAluSemantics:
    def test_arithmetic(self):
        m, _ = run_source("""
            li r1, 6
            li r2, 7
            mul r3, r1, r2
            sub r4, r3, r1
            halt
        """)
        assert m.read_reg(3) == 42
        assert m.read_reg(4) == 36

    def test_logic_and_shifts(self):
        m, _ = run_source("""
            li r1, 0b1100
            andi r2, r1, 0b1010
            ori  r3, r1, 0b0011
            xori r4, r1, 0b1111
            sll  r5, r1, 2
            srl  r6, r1, 2
            halt
        """)
        assert m.read_reg(2) == 0b1000
        assert m.read_reg(3) == 0b1111
        assert m.read_reg(4) == 0b0011
        assert m.read_reg(5) == 0b110000
        assert m.read_reg(6) == 0b11

    def test_sra_sign_extends(self):
        m, _ = run_source("li r1, -8\nsra r2, r1, 1\nhalt")
        assert m.read_reg(2) == -4

    def test_slt(self):
        m, _ = run_source("li r1, -1\nslt r2, r1, r0\nslti r3, r1, -5\nhalt")
        assert m.read_reg(2) == 1
        assert m.read_reg(3) == 0

    def test_r0_is_hardwired_zero(self):
        m, _ = run_source("addi r0, r0, 99\nhalt")
        assert m.read_reg(0) == 0

    def test_32bit_wraparound(self):
        m, _ = run_source("""
            lui r1, 0x7fff
            ori r1, r1, 0xffff
            addi r1, r1, 1
            halt
        """)
        assert m.read_reg(1) == -(2 ** 31)

    def test_mulh(self):
        m, _ = run_source("""
            lui r1, 0x4000
            lui r2, 0x0004
            mulh r3, r1, r2
            halt
        """)
        assert m.read_reg(3) == (0x40000000 * 0x40000) >> 32


class TestControlFlow:
    def test_countdown_loop(self):
        m, stats = run_source("""
            li r1, 5
            li r2, 0
        loop:
            add r2, r2, r1
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        """)
        assert m.read_reg(2) == 15
        assert stats.taken_branches == 4

    def test_jal_jr(self):
        m, _ = run_source("""
            jal sub
            halt
        sub:
            li r2, 42
            jr ra
        """)
        assert m.read_reg(2) == 42

    def test_bge_blt(self):
        m, _ = run_source("""
            li r1, 3
            bge r1, r0, a
            li r2, 111
        a:  blt r0, r1, b
            li r3, 222
        b:  halt
        """)
        assert m.read_reg(2) == 0
        assert m.read_reg(3) == 0


class TestMemoryAndCache:
    def test_load_store(self):
        m, stats = run_source("""
            li r1, 77
            sw r1, 100(r0)
            lw r2, 100(r0)
            halt
        """)
        assert m.read_reg(2) == 77
        assert stats.loads == 1
        assert stats.stores == 1

    def test_miss_counting(self):
        _, stats = run_source("""
            lw r1, 0(r0)
            lw r2, 0(r0)
            lw r3, 256(r0)
            halt
        """)
        assert stats.dcache_misses == 2  # cold, hit, new line
        assert stats.dcache_hits == 1

    def test_miss_penalty_charged_when_enabled(self):
        source = "lw r1, 0(r0)\nhalt"
        _, free = run_source(source, make_machine())
        _, charged = run_source(
            source, make_machine(charge_cache_latency=True)
        )
        penalty = CacheConfig().miss_penalty
        assert charged.cycles == free.cycles + penalty

    def test_no_cache_mode(self):
        _, stats = run_source(
            "lw r1, 0(r0)\nhalt", make_machine(use_cache=False)
        )
        assert stats.dcache_misses == 0


class TestTimingModel:
    def test_load_use_stall(self):
        no_stall = run_source("lw r1, 0(r0)\nnop\nadd r2, r1, r1\nhalt")[1]
        stall = run_source("lw r1, 0(r0)\nadd r2, r1, r1\nnop\nhalt")[1]
        assert stall.cycles == no_stall.cycles + 1
        assert stall.stall_cycles == 1

    def test_taken_branch_penalty(self):
        taken = run_source("li r1, 1\nbne r1, r0, 3\nnop\nhalt")[1]
        fallthrough = run_source("li r1, 0\nbne r1, r0, 3\nnop\nhalt")[1]
        penalty = PipelineConfig().branch_penalty
        assert taken.cycles == fallthrough.cycles + penalty - 1
        # (-1: the taken path skips the nop)

    def test_mul_extra_cycle(self):
        add = run_source("add r1, r0, r0\nhalt")[1]
        mul = run_source("mul r1, r0, r0\nhalt")[1]
        assert mul.cycles == add.cycles + PipelineConfig().mul_extra


class TestHazardConfigTiming:
    """Direct exact-cycle checks of the in-order hazard model.

    Each hazard class — taken-branch redirect, load-use interlock,
    multi-cycle multiply — is pinned to an absolute cycle count under an
    explicit :class:`PipelineConfig`, including zero-penalty configs, on
    both the predecoded fast path and the interpreted oracle.
    """

    @staticmethod
    def _cycles(source, **pipeline):
        program = assemble(source)
        fast = Machine(MainMemory(1024), pipeline=PipelineConfig(**pipeline))
        fast.run(program)
        interp = Machine(MainMemory(1024),
                         pipeline=PipelineConfig(**pipeline))
        interp.run_interpreted(program)
        assert fast.stats.cycles == interp.stats.cycles
        assert fast.stats.stall_cycles == interp.stats.stall_cycles
        return fast.stats

    BRANCH = "li r1, 1\nbne r1, r0, 3\nhalt\nhalt"

    @pytest.mark.parametrize("penalty", [0, 1, 2, 5])
    def test_branch_redirect_penalty(self, penalty):
        # li + bne + the halt the branch lands on = 3 issue cycles.
        stats = self._cycles(self.BRANCH, branch_penalty=penalty)
        assert stats.cycles == 3 + penalty
        assert stats.taken_branches == 1

    def test_untaken_branch_never_pays(self):
        source = "li r1, 1\nbeq r1, r0, 3\nhalt\nhalt"
        for penalty in (0, 4):
            stats = self._cycles(source, branch_penalty=penalty)
            assert stats.cycles == 3
            assert stats.taken_branches == 0

    LOAD_USE = "lw r1, 100(r0)\nadd r2, r1, r1\nhalt"

    @pytest.mark.parametrize("stall", [0, 1, 3])
    def test_load_use_interlock(self, stall):
        stats = self._cycles(self.LOAD_USE, load_use_stall=stall)
        assert stats.cycles == 3 + stall
        assert stats.stall_cycles == stall

    def test_interlock_needs_true_dependence(self):
        # The consumer reads r3, not the loaded r1: no stall even with a
        # huge configured penalty.
        source = "lw r1, 100(r0)\nadd r2, r3, r3\nhalt"
        stats = self._cycles(source, load_use_stall=7)
        assert stats.cycles == 3
        assert stats.stall_cycles == 0

    @pytest.mark.parametrize("extra", [0, 1, 4])
    def test_multiply_extra_cycles(self, extra):
        stats = self._cycles("mul r1, r0, r0\nmulh r2, r0, r0\nhalt",
                             mul_extra=extra)
        assert stats.cycles == 3 + 2 * extra

    def test_all_penalties_zero_is_one_cycle_per_instruction(self):
        source = ("li r1, 1\nlw r2, 100(r0)\nadd r3, r2, r2\n"
                  "mul r4, r3, r3\nbne r1, r0, 6\nhalt\nhalt")
        stats = self._cycles(source, branch_penalty=0, load_use_stall=0,
                             mul_extra=0)
        assert stats.cycles == stats.instructions == 6


class TestGuards:
    def test_runaway_protection(self):
        machine = Machine(MainMemory(64), max_instructions=100)
        with pytest.raises(RunawayProgram):
            machine.run(assemble("loop: j loop"))

    def test_custom_ops_unsupported_on_base_core(self):
        with pytest.raises(UnsupportedInstruction):
            run_source("but4 r1, r2\nhalt")

    def test_pc_out_of_range(self):
        from repro.sim.errors import SimulationError

        b = ProgramBuilder()
        b.emit(Opcode.J, imm=50)
        with pytest.raises(SimulationError):
            make_machine().run(b.build())

    def test_float_values_flow_through_alu(self):
        machine = make_machine()
        machine.memory.write_word(10, 2.5)
        _, stats = run_source(
            "lw r1, 10(r0)\nnop\nmul r2, r1, r1\nhalt", machine
        )
        assert machine.read_reg(2) == 6.25
