"""The base scalar core: functional semantics and timing behaviours."""

import pytest

from repro.isa import Opcode, ProgramBuilder, assemble
from repro.sim import (
    CacheConfig,
    Machine,
    MainMemory,
    PipelineConfig,
    RunawayProgram,
    UnsupportedInstruction,
)


def make_machine(**kwargs):
    return Machine(MainMemory(1024), **kwargs)


def run_source(source, machine=None):
    machine = machine or make_machine()
    stats = machine.run(assemble(source))
    return machine, stats


class TestAluSemantics:
    def test_arithmetic(self):
        m, _ = run_source("""
            li r1, 6
            li r2, 7
            mul r3, r1, r2
            sub r4, r3, r1
            halt
        """)
        assert m.read_reg(3) == 42
        assert m.read_reg(4) == 36

    def test_logic_and_shifts(self):
        m, _ = run_source("""
            li r1, 0b1100
            andi r2, r1, 0b1010
            ori  r3, r1, 0b0011
            xori r4, r1, 0b1111
            sll  r5, r1, 2
            srl  r6, r1, 2
            halt
        """)
        assert m.read_reg(2) == 0b1000
        assert m.read_reg(3) == 0b1111
        assert m.read_reg(4) == 0b0011
        assert m.read_reg(5) == 0b110000
        assert m.read_reg(6) == 0b11

    def test_sra_sign_extends(self):
        m, _ = run_source("li r1, -8\nsra r2, r1, 1\nhalt")
        assert m.read_reg(2) == -4

    def test_slt(self):
        m, _ = run_source("li r1, -1\nslt r2, r1, r0\nslti r3, r1, -5\nhalt")
        assert m.read_reg(2) == 1
        assert m.read_reg(3) == 0

    def test_r0_is_hardwired_zero(self):
        m, _ = run_source("addi r0, r0, 99\nhalt")
        assert m.read_reg(0) == 0

    def test_32bit_wraparound(self):
        m, _ = run_source("""
            lui r1, 0x7fff
            ori r1, r1, 0xffff
            addi r1, r1, 1
            halt
        """)
        assert m.read_reg(1) == -(2 ** 31)

    def test_mulh(self):
        m, _ = run_source("""
            lui r1, 0x4000
            lui r2, 0x0004
            mulh r3, r1, r2
            halt
        """)
        assert m.read_reg(3) == (0x40000000 * 0x40000) >> 32


class TestControlFlow:
    def test_countdown_loop(self):
        m, stats = run_source("""
            li r1, 5
            li r2, 0
        loop:
            add r2, r2, r1
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        """)
        assert m.read_reg(2) == 15
        assert stats.taken_branches == 4

    def test_jal_jr(self):
        m, _ = run_source("""
            jal sub
            halt
        sub:
            li r2, 42
            jr ra
        """)
        assert m.read_reg(2) == 42

    def test_bge_blt(self):
        m, _ = run_source("""
            li r1, 3
            bge r1, r0, a
            li r2, 111
        a:  blt r0, r1, b
            li r3, 222
        b:  halt
        """)
        assert m.read_reg(2) == 0
        assert m.read_reg(3) == 0


class TestMemoryAndCache:
    def test_load_store(self):
        m, stats = run_source("""
            li r1, 77
            sw r1, 100(r0)
            lw r2, 100(r0)
            halt
        """)
        assert m.read_reg(2) == 77
        assert stats.loads == 1
        assert stats.stores == 1

    def test_miss_counting(self):
        _, stats = run_source("""
            lw r1, 0(r0)
            lw r2, 0(r0)
            lw r3, 256(r0)
            halt
        """)
        assert stats.dcache_misses == 2  # cold, hit, new line
        assert stats.dcache_hits == 1

    def test_miss_penalty_charged_when_enabled(self):
        source = "lw r1, 0(r0)\nhalt"
        _, free = run_source(source, make_machine())
        _, charged = run_source(
            source, make_machine(charge_cache_latency=True)
        )
        penalty = CacheConfig().miss_penalty
        assert charged.cycles == free.cycles + penalty

    def test_no_cache_mode(self):
        _, stats = run_source(
            "lw r1, 0(r0)\nhalt", make_machine(use_cache=False)
        )
        assert stats.dcache_misses == 0


class TestTimingModel:
    def test_load_use_stall(self):
        no_stall = run_source("lw r1, 0(r0)\nnop\nadd r2, r1, r1\nhalt")[1]
        stall = run_source("lw r1, 0(r0)\nadd r2, r1, r1\nnop\nhalt")[1]
        assert stall.cycles == no_stall.cycles + 1
        assert stall.stall_cycles == 1

    def test_taken_branch_penalty(self):
        taken = run_source("li r1, 1\nbne r1, r0, 3\nnop\nhalt")[1]
        fallthrough = run_source("li r1, 0\nbne r1, r0, 3\nnop\nhalt")[1]
        penalty = PipelineConfig().branch_penalty
        assert taken.cycles == fallthrough.cycles + penalty - 1
        # (-1: the taken path skips the nop)

    def test_mul_extra_cycle(self):
        add = run_source("add r1, r0, r0\nhalt")[1]
        mul = run_source("mul r1, r0, r0\nhalt")[1]
        assert mul.cycles == add.cycles + PipelineConfig().mul_extra


class TestGuards:
    def test_runaway_protection(self):
        machine = Machine(MainMemory(64), max_instructions=100)
        with pytest.raises(RunawayProgram):
            machine.run(assemble("loop: j loop"))

    def test_custom_ops_unsupported_on_base_core(self):
        with pytest.raises(UnsupportedInstruction):
            run_source("but4 r1, r2\nhalt")

    def test_pc_out_of_range(self):
        from repro.sim.errors import SimulationError

        b = ProgramBuilder()
        b.emit(Opcode.J, imm=50)
        with pytest.raises(SimulationError):
            make_machine().run(b.build())

    def test_float_values_flow_through_alu(self):
        machine = make_machine()
        machine.memory.write_word(10, 2.5)
        _, stats = run_source(
            "lw r1, 10(r0)\nnop\nmul r2, r1, r1\nhalt", machine
        )
        assert machine.read_reg(2) == 6.25
