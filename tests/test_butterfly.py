"""The Butterfly Unit: single butterflies, BU ops and column execution."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.butterfly import BUOperands, ButterflyUnit, radix2_butterfly

finite = st.floats(-100, 100, allow_nan=False)
cplx = st.builds(complex, finite, finite)


class TestRadix2Butterfly:
    @given(cplx, cplx, cplx)
    def test_definition(self, a, b, w):
        s, d = radix2_butterfly(a, b, w)
        assert s == a + w * b
        assert d == a - w * b

    @given(cplx, cplx)
    def test_sum_invariant(self, a, b):
        """s + d == 2a regardless of twiddle operand b pairing."""
        s, d = radix2_butterfly(a, b, 1j)
        assert abs((s + d) - 2 * a) < 1e-9

    def test_unit_twiddle_is_dft2(self):
        s, d = radix2_butterfly(3 + 1j, 1 - 1j, 1.0)
        assert s == 4 + 0j
        assert d == 2 + 2j


class TestBUOperands:
    def test_rejects_mismatched_lanes(self):
        with pytest.raises(ValueError):
            BUOperands(first=(1,), second=(1, 2), coefficients=(1,))

    def test_rejects_too_many_lanes(self):
        with pytest.raises(ValueError):
            BUOperands(
                first=(1,) * 5, second=(1,) * 5, coefficients=(1,) * 5
            )


class TestButterflyUnit:
    def test_counts_operations(self):
        bu = ButterflyUnit()
        ops = BUOperands(first=(1, 2), second=(3, 4),
                         coefficients=(1.0, 1.0))
        bu.execute(ops)
        bu.execute(ops)
        assert bu.op_count == 2
        bu.reset_stats()
        assert bu.op_count == 0

    def test_execute_vectorised(self):
        bu = ButterflyUnit()
        ops = BUOperands(
            first=(1 + 0j, 2 + 0j, 3 + 0j, 4 + 0j),
            second=(1 + 0j, 1 + 0j, 1 + 0j, 1 + 0j),
            coefficients=(1 + 0j, -1 + 0j, 1j, -1j),
        )
        sums, diffs = bu.execute(ops)
        assert sums == (2 + 0j, 1 + 0j, 3 + 1j, 4 - 1j)
        assert diffs == (0j, 3 + 0j, 3 - 1j, 4 + 1j)

    def test_execute_column_is_half_split_stage(self):
        bu = ButterflyUnit()
        column = np.array([1, 2, 3, 4, 5, 6, 7, 8], dtype=complex)
        coeffs = np.ones(4, dtype=complex)
        out = bu.execute_column(column, coeffs)
        assert np.allclose(out[:4], column[:4] + column[4:])
        assert np.allclose(out[4:], column[:4] - column[4:])
        assert bu.op_count == 1  # one 8-point op

    def test_execute_column_large_uses_multiple_ops(self):
        bu = ButterflyUnit()
        column = np.arange(32, dtype=complex)
        out = bu.execute_column(column, np.ones(16, dtype=complex))
        assert bu.op_count == 4  # 16 butterflies / 4 lanes
        assert np.allclose(out[:16], column[:16] + column[16:])

    def test_execute_column_tiny_group(self):
        bu = ButterflyUnit()
        out = bu.execute_column(
            np.array([5 + 0j, 3 + 0j]), np.array([1 + 0j])
        )
        assert np.allclose(out, [8, 2])

    def test_coefficient_count_checked(self):
        bu = ButterflyUnit()
        with pytest.raises(ValueError):
            bu.execute_column(np.zeros(8, dtype=complex),
                              np.ones(3, dtype=complex))
