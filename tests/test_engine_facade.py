"""The unified facade: registry, backend parity, shims, lifecycle.

The load-bearing guarantee: every registered backend, fed identical
vectors through the *same* uniform API, produces bit-identical Q1.15
spectra (overflow counts included) and float spectra within rounding
noise — so callers can swap backends freely and the old entry points
can delegate without behaviour change.
"""

import warnings

import numpy as np
import pytest

import repro
from repro import BackendSpec, register_backend
from repro.core.registry import backend_specs, get_backend, unregister_backend
from repro.engines import TransformResult, normalize_precision

ALL_BACKENDS = sorted(repro.backend_names())


def random_blocks(symbols, n, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return scale * (
        rng.standard_normal((symbols, n))
        + 1j * rng.standard_normal((symbols, n))
    )


def build(n, name, precision="float"):
    workers = 2 if backend_specs()[name].supports_workers else None
    return repro.engine(n, backend=name, precision=precision,
                        workers=workers)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert ALL_BACKENDS == [
            "asip", "asip-batch", "compiled", "reference", "sharded"
        ]

    def test_unknown_backend_lists_menu(self):
        with pytest.raises(ValueError, match="compiled"):
            repro.engine(64, backend="quantum")

    def test_unknown_precision_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            repro.engine(64, precision="q7")

    def test_precision_aliases(self):
        assert normalize_precision("fixed") == "q15"
        assert normalize_precision(True) == "q15"
        assert normalize_precision(None) == "float"
        assert normalize_precision("FLOAT") == "float"

    def test_workers_rejected_on_serial_backends(self):
        for name in ("compiled", "reference", "asip", "asip-batch"):
            with pytest.raises(ValueError, match="workers"):
                repro.engine(64, backend=name, workers=2)

    def test_duplicate_registration_is_loud(self):
        spec = get_backend("compiled")
        with pytest.raises(ValueError, match="already registered"):
            register_backend(spec)

    def test_custom_backend_plugs_in(self):
        class NumpyBackend:
            machine = None
            sim_stats = None
            fx = None

            def __init__(self, n):
                self.n = n

            def transform_many(self, blocks):
                return np.fft.fft(blocks, axis=1), [0] * len(blocks)

            def close(self):
                pass

        register_backend(BackendSpec(
            name="numpy-test",
            factory=lambda n, fixed_point, workers, batch: NumpyBackend(n),
            description="plain numpy (test double)",
            precisions=("float",),
        ))
        try:
            assert "numpy-test" in repro.backend_names()
            x = random_blocks(1, 32, seed=1)[0]
            with repro.engine(32, backend="numpy-test") as eng:
                result = eng.transform(x)
            assert np.allclose(result.spectrum, np.fft.fft(x))
            assert result.backend == "numpy-test"
            # declared float-only: q15 must be refused up front
            with pytest.raises(ValueError, match="q15"):
                repro.engine(32, backend="numpy-test", precision="q15")
        finally:
            unregister_backend("numpy-test")


class TestBackendParity:
    @pytest.mark.parametrize("n", [16, 64])
    def test_q15_bit_identical_across_backends(self, n):
        blocks = random_blocks(6, n, seed=n, scale=0.3)
        reference = None
        for name in ALL_BACKENDS:
            with build(n, name, precision="q15") as eng:
                result = eng.transform_many(blocks)
            assert result.precision == "q15"
            if reference is None:
                reference = result
            else:
                assert np.array_equal(
                    result.spectrum, reference.spectrum
                ), name
                assert (result.overflow_count
                        == reference.overflow_count), name

    def test_q15_overflow_counts_identical_when_saturating(self):
        n = 64
        blocks = random_blocks(8, n, seed=7, scale=0.9)
        reference = None
        for name in ALL_BACKENDS:
            with build(n, name, precision="q15") as eng:
                # Per-stage scaling off: the butterflies saturate.  The
                # 8-symbol batch stays below the sharded engine's
                # parallel threshold, so its serial (patched) fx runs.
                eng.fx.scale_stages = False
                result = eng.transform_many(blocks)
            assert result.overflow_count > 0, name
            if reference is None:
                reference = result
            else:
                assert np.array_equal(
                    result.spectrum, reference.spectrum
                ), name
                assert (result.overflow_count
                        == reference.overflow_count), name

    @pytest.mark.parametrize("n", [16, 64])
    def test_float_agreement_across_backends(self, n):
        blocks = random_blocks(6, n, seed=n)
        reference = None
        for name in ALL_BACKENDS:
            with build(n, name) as eng:
                result = eng.transform_many(blocks)
            if reference is None:
                reference = result.spectrum
                assert np.allclose(
                    reference, np.fft.fft(blocks, axis=1), atol=1e-8
                )
            else:
                assert np.allclose(
                    result.spectrum, reference, atol=1e-9
                ), name

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_inverse_roundtrip(self, name):
        n = 32
        x = random_blocks(1, n, seed=5)[0]
        with build(n, name) as eng:
            spectrum = eng.transform(x).spectrum
            back = eng.inverse(spectrum).spectrum
        assert np.allclose(back, x, atol=1e-8)

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_stream_equals_batch(self, name):
        n, symbols = 32, 10
        blocks = random_blocks(symbols, n, seed=3)
        with build(n, name) as eng:
            streamed = eng.stream(iter(blocks), batch=4, verify=True)
        with build(n, name) as eng:
            batched = eng.transform_many(blocks)
        assert np.allclose(streamed.spectrum, batched.spectrum, atol=1e-12)
        assert streamed.cycles == batched.cycles

    def test_asip_and_batch_cycles_agree(self):
        n, symbols = 64, 5
        blocks = random_blocks(symbols, n, seed=9)
        with repro.engine(n, backend="asip") as serial:
            serial_result = serial.transform_many(blocks)
        with repro.engine(n, backend="asip-batch") as batched:
            batched_result = batched.transform_many(blocks)
        assert serial_result.cycles == batched_result.cycles
        assert all(c > 0 for c in serial_result.cycles)
        assert (serial_result.stats.as_dict()
                == batched_result.stats.as_dict())


class TestUniformResults:
    def test_result_shape_single_vs_batch(self):
        x = random_blocks(1, 32, seed=2)[0]
        with repro.engine(32) as eng:
            single = eng.transform(x)
            batch = eng.transform_many(x[None, :])
        assert single.spectrum.shape == (32,)
        assert single.n_symbols == 1
        assert batch.spectrum.shape == (1, 32)
        assert single.cycles == [0]
        assert single.stats is None
        assert np.array_equal(np.asarray(single), single.spectrum)

    def test_emitted_fields_match_registry_declaration(self):
        x = random_blocks(1, 32, seed=4)[0]
        for name, spec in backend_specs().items():
            with build(32, name) as eng:
                result = eng.transform(x)
            if spec.emits_sim_stats:
                assert result.stats is not None
                assert result.stats.cycles == result.total_cycles > 0
            else:
                assert result.stats is None
                assert result.total_cycles == 0

    def test_stats_are_per_call_deltas(self):
        x = random_blocks(1, 32, seed=6)[0]
        with repro.engine(32, backend="asip") as eng:
            first = eng.transform(x)
            second = eng.transform(x)
        # One persistent machine: cumulative stats advance, but each
        # result carries only its own run.  (The data cache stays warm
        # across calls, so only the hit/miss split may shift.)
        for counter in ("cycles", "instructions", "loads", "stores"):
            assert (getattr(first.stats, counter)
                    == getattr(second.stats, counter))
        assert (first.stats.dcache_accesses
                == second.stats.dcache_accesses)
        assert eng.stats.cycles == first.stats.cycles * 2

    def test_q15_result_flags(self):
        x = random_blocks(1, 16, seed=8, scale=0.2)[0]
        with repro.engine(16, precision="fixed") as eng:
            result = eng.transform(x)
        assert result.precision == "q15"
        assert result.fixed_point
        assert eng.fixed_point


class TestLifecycle:
    def test_context_manager_closes_pool(self):
        with repro.engine(64, backend="sharded", workers=2) as eng:
            eng.transform_many(random_blocks(4, 64))
            impl = eng.impl
        assert impl.sharded._pool is None

    def test_closed_engine_refuses_work(self):
        eng = repro.engine(32)
        eng.close()
        eng.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            eng.transform(np.zeros(32))
        with pytest.raises(RuntimeError, match="closed"):
            eng.stream(np.zeros((2, 32)))

    def test_closed_sharded_engine_never_respawns_pool(self):
        eng = repro.engine(64, backend="sharded", workers=2)
        eng.close()
        with pytest.raises(RuntimeError, match="closed"):
            eng.stream(random_blocks(4, 64))
        assert eng.impl.sharded._pool is None

    def test_validation(self):
        with repro.engine(32) as eng:
            with pytest.raises(ValueError):
                eng.transform(np.zeros(16))
            with pytest.raises(ValueError):
                eng.transform_many(np.zeros((2, 16)))


class TestDeprecationShims:
    def test_array_fft_warns_and_matches_facade(self):
        x = random_blocks(1, 64, seed=11)[0]
        with repro.engine(64) as eng:
            want = eng.transform(x).spectrum
        with pytest.warns(DeprecationWarning, match="repro.engine"):
            got = repro.array_fft(x)
        assert np.array_equal(got, want)

    def test_array_fft_fixed_point_bit_identical(self):
        x = random_blocks(1, 64, seed=12, scale=0.3)[0]
        with repro.engine(64, precision="q15") as eng:
            want = eng.transform(x).spectrum
        with pytest.warns(DeprecationWarning):
            got = repro.array_fft(x, fixed_point=True)
        assert np.array_equal(got, want)

    def test_array_fft_batch_and_workers(self):
        blocks = random_blocks(8, 32, seed=13)
        with pytest.warns(DeprecationWarning):
            serial = repro.array_fft(blocks)
        with pytest.warns(DeprecationWarning):
            sharded = repro.array_fft(blocks, workers=2)
        assert np.array_equal(serial, sharded)

    def test_simulate_fft_warns_with_unchanged_behaviour(self):
        from repro.asip import simulate_fft

        x = random_blocks(1, 64, seed=14)[0]
        with pytest.warns(DeprecationWarning, match="repro.engine"):
            result = simulate_fft(x)
        with repro.engine(64, backend="asip") as eng:
            facade = eng.transform(x)
        # Fresh machine per shim call: absolute stats equal the delta.
        assert np.array_equal(result.spectrum, facade.spectrum)
        assert result.stats.as_dict() == facade.stats.as_dict()
        assert result.cycles == facade.total_cycles
        assert result.asip.n_points == 64

    def test_simulate_fft_q15_bit_identical(self):
        from repro.asip import simulate_fft

        x = random_blocks(1, 32, seed=15, scale=0.25)[0]
        with pytest.warns(DeprecationWarning):
            result = simulate_fft(x, fixed_point=True)
        with repro.engine(32, backend="asip", precision="q15") as eng:
            facade = eng.transform(x)
        assert np.array_equal(result.spectrum, facade.spectrum)


class TestOfdmLinkOnFacade:
    def test_backend_selection_rules(self):
        from repro.ofdm import OfdmLink

        with OfdmLink(64) as link:
            assert link.backend == "compiled"
        with OfdmLink(64, use_asip=True) as link:
            assert link.backend == "asip-batch"
        with OfdmLink(64, workers=2) as link:
            assert link.backend == "sharded"
        with OfdmLink(64, backend="asip") as link:
            assert link.backend == "asip"
            assert link.use_asip

    def test_asip_burst_runs_one_persistent_machine(self):
        from repro.ofdm import OfdmLink

        with OfdmLink(64, snr_db=35.0, use_asip=True, seed=2) as link:
            machine = link.engine.machine
            results = link.run_symbols(6)
            assert link.engine.machine is machine  # no per-symbol rebuild
        cycles = [r.fft_cycles for r in results]
        assert len(set(cycles)) == 1 and cycles[0] > 0
        assert all(r.bit_errors == 0 for r in results)

    def test_asip_batch_matches_serial_asip_link(self):
        from repro.ofdm import OfdmLink

        with OfdmLink(64, snr_db=30.0, backend="asip", seed=3) as serial, \
                OfdmLink(64, snr_db=30.0, backend="asip-batch",
                         seed=3) as batched:
            a = serial.run_symbols(4)
            b = batched.run_symbols(4)
        for ra, rb in zip(a, b):
            assert np.array_equal(ra.tx_bits, rb.tx_bits)
            assert np.allclose(ra.equalised, rb.equalised, atol=1e-12)
            assert ra.fft_cycles == rb.fft_cycles

    def test_measure_ber_sweep_shards_and_matches_serial(self):
        from repro.ofdm import OfdmLink

        snrs = [4.0, 12.0, 30.0]
        with OfdmLink(32, scheme="16qam", seed=5) as serial:
            want = serial.measure_ber_sweep(snrs, symbols=6)
        with OfdmLink(32, scheme="16qam", seed=5, workers=2) as sharded:
            got = sharded.measure_ber_sweep(snrs, symbols=6)
        assert got == want
        assert list(got) == snrs
        assert got[4.0] >= got[30.0]

    def test_ber_sweep_helper(self):
        from repro.analysis import ber_sweep

        sweep = ber_sweep(32, [6.0, 30.0], symbols=4, scheme="16qam",
                          seed=1)
        assert set(sweep) == {6.0, 30.0}
        assert sweep[6.0] >= sweep[30.0]


class TestTransformResultType:
    def test_is_dataclass_with_uniform_fields(self):
        x = random_blocks(1, 16, seed=0)[0]
        with repro.engine(16) as eng:
            result = eng.transform(x)
        assert isinstance(result, TransformResult)
        assert result.backend == "compiled"
        assert result.n_points == 16
        assert result.total_cycles == 0
        assert result.overflow_count == 0
