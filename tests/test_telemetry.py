"""Telemetry subsystem: spans, metrics, exporters, regression checks.

The acceptance spine of :mod:`repro.telemetry`:

* the shared nearest-rank ``percentile`` (now the single
  implementation behind the serve tier's latency quantiles) holds its
  edge cases;
* spans nest per thread, carry attributes/events, and propagate across
  thread boundaries via ``current_span``/``attach`` — including the
  real serve path, where a request span opened in
  ``SessionServer.submit`` must parent the chunk/engine spans executed
  on the session's watchdog thread;
* the disabled path allocates nothing: ``span()`` hands back one
  cached no-op context manager;
* exported Chrome trace-event files validate (sorted ``ts``,
  non-negative ``dur``, complete ``X`` events) and the simulator's
  instruction timeline merges into the same file;
* ``BENCH_engine.json`` writes are atomic and the span-aggregate
  regression check reads the recorded stage history back.
"""

import json
import os
import threading

import numpy as np
import pytest

import repro
from repro import telemetry
from repro.core import CircuitBreaker
from repro.telemetry import (
    ConsoleExporter,
    Counter,
    Histogram,
    NULL_SPAN,
    Tracer,
    atomic_write_json,
    compare_with_history,
    get_exporter,
    percentile,
    span_aggregates,
    validate_trace_events,
)
from repro.telemetry.regress import compare_aggregates, stage_history


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50.0) == 0.0
        assert percentile([], 0.0) == 0.0
        assert percentile([], 100.0) == 0.0

    def test_single_sample_any_q(self):
        for q in (0.0, 1.0, 50.0, 99.0, 100.0):
            assert percentile([7.5], q) == 7.5

    def test_q0_is_min_q100_is_max(self):
        data = [5.0, 1.0, 9.0, 3.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 100.0) == 9.0

    def test_nearest_rank_ties(self):
        # The pinned rule (moved verbatim from the serve tier):
        # rank(q) = round(q/100 * n + 0.5) clamped to [1, n], with
        # Python's banker's rounding breaking the .5 ties — so on
        # [10, 20, 30, 40] both q=25 and q=50 land on the 2nd sample
        # (1.5 and 2.5 both round to 2) while q=75 rounds up to the
        # 4th (3.5 -> 4).
        data = [40.0, 10.0, 30.0, 20.0]
        assert percentile(data, 25.0) == 20.0
        assert percentile(data, 50.0) == 20.0
        assert percentile(data, 75.0) == 40.0
        assert percentile(data, 99.0) == 40.0

    def test_input_order_is_irrelevant(self):
        data = list(range(1, 101))
        shuffled = data[::2] + data[1::2]
        for q in (1.0, 50.0, 90.0, 99.0):
            assert percentile(data, q) == percentile(shuffled, q)

    def test_serve_reexport_is_the_same_function(self):
        from repro.serve.metrics import percentile as serve_percentile

        assert serve_percentile is percentile


class TestMetricsPrimitives:
    def test_counter(self):
        counter = Counter("requests")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_histogram_snapshot(self):
        hist = Histogram(name="lat", window=8)
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["min"] == 1.0 and snap["max"] == 4.0
        assert snap["mean"] == pytest.approx(2.5)
        assert snap["p50"] == 2.0
        assert len(hist) == 4

    def test_histogram_window_rolls_but_count_totals(self):
        hist = Histogram(window=4)
        for value in range(10):
            hist.observe(float(value))
        assert hist.count == 10
        assert hist.values() == [6.0, 7.0, 8.0, 9.0]
        assert hist.percentile(0.0) == 6.0

    def test_histogram_rejects_bad_window(self):
        with pytest.raises(ValueError):
            Histogram(window=0)


class TestSpans:
    def test_disabled_by_default_and_cached_noop(self):
        assert not telemetry.enabled()
        ctx_a = telemetry.span("anything", key="value")
        ctx_b = telemetry.span("other")
        assert ctx_a is ctx_b  # one cached context, zero allocation
        with ctx_a as span:
            assert span is NULL_SPAN
            assert not span.is_recording
            span.set("ignored", 1)
            span.add_event("ignored")
        assert telemetry.current_span() is None
        telemetry.event("dropped")  # no-op, no error

    def test_nesting_attributes_and_parentage(self):
        with telemetry.trace("unit") as tracer:
            with telemetry.span("outer", layer="top") as outer:
                assert telemetry.current_span() is outer
                with telemetry.span("inner") as inner:
                    inner.set("k", 2)
                    telemetry.event("tick", n=1)
            assert telemetry.current_span() is None
        assert not telemetry.enabled()
        spans = {record.name: record for record in tracer.finished()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None
        assert spans["outer"].attributes["layer"] == "top"
        assert spans["inner"].attributes["k"] == 2
        assert spans["inner"].events[0][0] == "tick"
        assert spans["inner"].duration <= spans["outer"].duration

    def test_exception_sets_error_attribute(self):
        with telemetry.trace() as tracer:
            with pytest.raises(RuntimeError):
                with telemetry.span("doomed"):
                    raise RuntimeError("boom")
        (record,) = tracer.finished()
        assert record.attributes["error"] == "RuntimeError"
        assert record.end is not None

    def test_install_stacking_restores_previous(self):
        outer, inner = Tracer("outer"), Tracer("inner")
        telemetry.install(outer)
        try:
            telemetry.install(inner)
            assert telemetry.active_tracer() is inner
            telemetry.uninstall(inner)
            assert telemetry.active_tracer() is outer
        finally:
            telemetry.uninstall(outer)
        assert not telemetry.enabled()

    def test_attach_reparents_worker_thread_spans(self):
        with telemetry.trace() as tracer:
            with telemetry.span("request") as request:
                parent = telemetry.current_span()

                def worker():
                    with telemetry.attach(parent):
                        with telemetry.span("chunk"):
                            pass

                thread = threading.Thread(target=worker)
                thread.start()
                thread.join()
        spans = {record.name: record for record in tracer.finished()}
        assert spans["chunk"].parent_id == spans["request"].span_id
        assert spans["chunk"].thread_id != spans["request"].thread_id

    def test_tracer_event_outside_spans_is_orphan(self):
        with telemetry.trace() as tracer:
            telemetry.event("lonely", reason="no span open")
        (orphan,) = tracer.orphan_events()
        assert orphan[0] == "lonely"
        assert orphan[2]["reason"] == "no span open"


class TestLayerInstrumentation:
    def test_engine_transform_spans(self):
        blocks = np.ones((3, 16), dtype=complex)
        with telemetry.trace() as tracer:
            with repro.engine(16, backend="compiled") as eng:
                eng.transform_many(blocks)
        rows = [r for r in tracer.finished() if r.name == "engine.transform"]
        assert rows and rows[0].attributes["symbols"] == 3
        assert rows[0].attributes["backend"] == "compiled"

    def test_pipeline_stage_spans_and_stage_seconds_compat(self):
        untraced = repro.run_scenario("uwb-ofdm", symbols=2, n_points=32)
        with telemetry.trace() as tracer:
            traced = repro.run_scenario("uwb-ofdm", symbols=2, n_points=32)
        # The compat view keeps its schema: same stages, positive times.
        assert set(traced.metrics["stage_seconds"]) == \
            set(untraced.metrics["stage_seconds"])
        assert all(v >= 0 for v in traced.metrics["stage_seconds"].values())
        names = {record.name for record in tracer.finished()}
        assert "pipeline.run" in names
        stage_keys = {record.attributes["stage"]
                      for record in tracer.finished()
                      if record.name.startswith("stage.")}
        assert stage_keys == set(traced.metrics["stage_seconds"])
        # Engine transforms nest under their stage span.
        by_id = {r.span_id: r for r in tracer.finished()}
        engine_rows = [r for r in tracer.finished()
                       if r.name == "engine.transform"]
        assert engine_rows
        assert all(by_id[r.parent_id].name.startswith("stage.")
                   for r in engine_rows)

    def test_viterbi_subphase_spans(self):
        with telemetry.trace() as tracer:
            repro.run_scenario("uwb-ofdm-coded", symbols=2, n_points=64)
        names = {record.name for record in tracer.finished()}
        assert {"viterbi.branch-metrics", "viterbi.acs",
                "viterbi.traceback"} <= names

    def test_breaker_state_changes_emit_events(self):
        clock = [0.0]
        breaker = CircuitBreaker(backoff_initial=1.0,
                                 clock=lambda: clock[0])
        with telemetry.trace() as tracer:
            assert breaker.record_failure("injected") is True
            assert not breaker.allow_attempt()
            clock[0] = 2.0
            assert breaker.allow_attempt()  # half-open probe
            breaker.record_success()
        names = [orphan[0] for orphan in tracer.orphan_events()]
        assert names == ["breaker.open", "breaker.half-open",
                         "breaker.closed"]
        opened = tracer.orphan_events()[0]
        assert opened[2]["fresh"] is True
        assert opened[2]["reason"] == "injected"


class TestServeTracePropagation:
    def test_submit_span_parents_watchdog_chunk_spans(self, tmp_path):
        """A request span crosses into the execution watchdog thread.

        With ``exec_timeout`` set, the engine call runs on a watchdog
        thread; the span opened in ``SessionServer.submit`` must still
        parent the chunk/pool/engine spans recorded over there, and the
        exported trace-event file must validate.
        """
        rng = np.random.default_rng(3)
        blocks = rng.standard_normal((4, 16)) + 1j * rng.standard_normal(
            (4, 16)
        )
        with telemetry.trace("serve-unit") as tracer:
            with repro.SessionServer(batch=2, exec_timeout=5.0) as server:
                server.open_session("alice", 16)
                server.submit("alice", blocks, deadline=5.0)
                list(server.results("alice"))
        spans = tracer.finished()
        by_id = {record.span_id: record for record in spans}
        requests = [r for r in spans if r.name == "serve.request"]
        assert len(requests) == 1
        assert requests[0].attributes["tenant"] == "alice"
        assert requests[0].attributes["symbols"] == 4
        assert requests[0].attributes["deadline"] == 5.0

        def root_of(record):
            while record.parent_id is not None:
                record = by_id[record.parent_id]
            return record

        engine_rows = [r for r in spans if r.name == "engine.transform"]
        assert engine_rows
        # The watchdog executes on its own thread, yet every engine
        # span still chains up to the submitting request span.
        assert any(r.thread_id != requests[0].thread_id
                   for r in engine_rows)
        assert all(root_of(r) is requests[0] for r in engine_rows)
        chunk_rows = [r for r in spans if r.name == "session.chunk"]
        assert chunk_rows
        assert all(root_of(r) is requests[0] for r in chunk_rows)

        out = tmp_path / "serve_trace.json"
        get_exporter("chrome-trace").factory().export(tracer, out)
        count = validate_trace_events(out.read_text())
        assert count >= len(spans)


class TestExporters:
    def _tracer(self):
        with telemetry.trace() as tracer:
            with telemetry.span("outer", n=8):
                with telemetry.span("inner"):
                    telemetry.event("mark", hit=True)
        return tracer

    def test_chrome_trace_renders_and_validates(self):
        tracer = self._tracer()
        exporter = get_exporter("chrome-trace").factory()
        payload = json.loads(exporter.render(tracer))
        count = validate_trace_events(payload)
        assert count == len(payload["traceEvents"])
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        inner = next(e for e in complete if e["name"] == "inner")
        assert inner["args"]["parent_id"] == next(
            e for e in complete if e["name"] == "outer"
        )["args"]["span_id"]
        metas = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert metas and metas[0]["name"] == "thread_name"

    def test_extra_events_merge_ts_sorted(self):
        tracer = self._tracer()
        exporter = get_exporter("chrome-trace").factory()
        extra = [{"name": "instr", "cat": "sim", "ph": "X", "ts": 0.5,
                  "dur": 1.0, "pid": 1, "tid": "asip", "args": {}}]
        events = exporter.events(tracer, extra_events=extra)
        body = [e for e in events if e["ph"] != "M"]
        timestamps = [e["ts"] for e in body]
        assert timestamps == sorted(timestamps)
        assert any(e["name"] == "instr" for e in body)

    def test_jsonl_one_object_per_span(self):
        tracer = self._tracer()
        text = get_exporter("jsonl").factory().render(tracer)
        rows = [json.loads(line) for line in text.splitlines()]
        assert [row["name"] for row in rows] == ["outer", "inner"]
        assert rows[1]["parent_id"] == rows[0]["span_id"]
        assert rows[1]["events"][0]["name"] == "mark"

    def test_console_tree_aggregates(self):
        tracer = self._tracer()
        text = ConsoleExporter().render(tracer)
        assert "outer" in text and "inner" in text
        # Nested name indented under its parent.
        outer_line = next(l for l in text.splitlines() if "outer" in l)
        inner_line = next(l for l in text.splitlines() if "inner" in l)
        assert len(inner_line) - len(inner_line.lstrip()) > \
            len(outer_line) - len(outer_line.lstrip())

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_trace_events([{"name": "x", "ph": "X", "pid": 1,
                                    "tid": 1, "ts": 0.0, "dur": -1.0}])
        with pytest.raises(ValueError):
            validate_trace_events([
                {"name": "a", "ph": "i", "pid": 1, "tid": 1, "ts": 2.0},
                {"name": "b", "ph": "i", "pid": 1, "tid": 1, "ts": 1.0},
            ])
        with pytest.raises(ValueError):
            validate_trace_events([{"name": "open", "ph": "B", "pid": 1,
                                    "tid": 1, "ts": 0.0}])

    def test_sim_instruction_timeline_merges(self):
        from repro.asip import generate_fft_program
        from repro.asip.fft_asip import FFTASIP
        from repro.sim.trace import ExecutionTrace

        machine = FFTASIP(16)
        trace = ExecutionTrace(capacity=4096)
        machine.step = trace.wrap(machine)
        machine.load_input(np.ones(16, dtype=complex))
        machine.run_interpreted(generate_fft_program(16))
        events = trace.trace_events(tid="asip-16")
        assert events
        assert all(e["ph"] == "X" and e["dur"] >= 1.0 for e in events)
        validate_trace_events(events)
        # Merges into a traced run's export on its own lane.
        tracer = self._tracer()
        exporter = get_exporter("chrome-trace").factory()
        merged = exporter.events(tracer, extra_events=events)
        assert validate_trace_events(merged) >= len(events)


class TestRegress:
    def test_atomic_write_json_round_trip(self, tmp_path):
        target = tmp_path / "bench.json"
        atomic_write_json(target, {"a": 1})
        atomic_write_json(target, {"a": 2})
        assert json.loads(target.read_text()) == {"a": 2}
        # No stray tmp files left behind.
        assert os.listdir(tmp_path) == ["bench.json"]

    def test_atomic_write_failure_leaves_old_file(self, tmp_path):
        target = tmp_path / "bench.json"
        atomic_write_json(target, {"ok": True})
        with pytest.raises(TypeError):
            atomic_write_json(target, {"bad": object()})
        assert json.loads(target.read_text()) == {"ok": True}
        assert os.listdir(tmp_path) == ["bench.json"]

    def test_span_aggregates(self):
        with telemetry.trace() as tracer:
            for _ in range(3):
                with telemetry.span("stage.fft"):
                    pass
        rows = span_aggregates(tracer)
        assert rows["stage.fft"]["count"] == 3
        assert rows["stage.fft"]["max_s"] <= rows["stage.fft"]["total_s"]

    def test_compare_aggregates_thresholds(self):
        current = {"fft": {"count": 1, "total_s": 0.050, "max_s": 0.050},
                   "tiny": {"count": 1, "total_s": 1e-4, "max_s": 1e-4},
                   "steady": 0.010}
        baseline = {"fft": 0.010, "tiny": 1e-6, "steady": 0.009}
        flagged = compare_aggregates(current, baseline, threshold=2.0)
        assert [flag.name for flag in flagged] == ["fft"]  # tiny ignored
        assert flagged[0].ratio == pytest.approx(5.0)

    def test_compare_with_history_round_trip(self, tmp_path):
        bench = tmp_path / "BENCH_engine.json"
        atomic_write_json(bench, {
            "cli_run": {"history": [{"rows": [
                {"scenario": "unit", "stage_seconds": {"fft": 0.010}},
                {"scenario": "unit", "stage_seconds": {"fft": 0.014}},
                {"scenario": "other", "stage_seconds": {"fft": 9.0}},
            ]}]},
        })
        history = stage_history(bench, "unit")
        assert history["fft"]["runs"] == 2
        assert history["fft"]["seconds"] == pytest.approx(0.012)
        with telemetry.trace() as tracer:
            with telemetry.span("stage.fft"):
                pass
        report = compare_with_history(tracer, "unit", bench)
        assert report.checked == 1 and report.ok  # sub-ms, never flagged
        assert "within threshold" in report.describe()

    def test_compare_with_history_missing_baseline(self, tmp_path):
        report = compare_with_history([], "ghost",
                                      tmp_path / "nothing.json")
        assert report.missing_baseline
        assert "no recorded stage history" in report.describe()


class TestCli:
    def test_run_trace_flag_writes_valid_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "run_trace.json"
        assert main(["run", "uwb-ofdm", "--symbols", "2", "--size", "32",
                     "--trace", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert f"trace -> {out}" in stdout
        payload = json.loads(out.read_text())
        validate_trace_events(payload)
        names = {e["name"] for e in payload["traceEvents"]
                 if e["ph"] == "X"}
        assert {"pipeline.run", "engine.transform"} <= names
        assert not telemetry.enabled()  # CLI uninstalled its tracer

    def test_trace_command_with_instructions(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.json"
        assert main(["trace", "uwb-ofdm", "--symbols", "2", "--size", "32",
                     "--out", str(out), "--instructions", "16",
                     "--regress", str(tmp_path / "none.json")]) == 0
        stdout = capsys.readouterr().out
        assert "span tree" in stdout
        assert "no recorded stage history" in stdout
        payload = json.loads(out.read_text())
        validate_trace_events(payload)
        lanes = {e["tid"] for e in payload["traceEvents"]}
        assert "asip-16" in lanes  # the simulator's instruction lane

    def test_trace_unknown_exporter_exits_with_menu(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["trace", "uwb-ofdm", "--symbols", "2", "--size", "32",
                  "--out", str(tmp_path / "t.json"),
                  "--exporter", "bogus"])
