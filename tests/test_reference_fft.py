"""Reference FFT algorithms against numpy and each other."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fft import (
    bit_reversed_indices,
    fft_dif,
    fft_dit,
    ifft,
    load_store_count,
    naive_dft,
    twiddle,
    twiddles,
)

SIZES = st.sampled_from([2, 4, 8, 16, 32, 64, 128])


def random_vector(n, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


class TestAgainstNumpy:
    @given(SIZES, st.integers(0, 1000))
    @settings(deadline=None, max_examples=30)
    def test_dit(self, n, seed):
        x = random_vector(n, seed)
        assert np.allclose(fft_dit(x), np.fft.fft(x))

    @given(SIZES, st.integers(0, 1000))
    @settings(deadline=None, max_examples=30)
    def test_dif(self, n, seed):
        x = random_vector(n, seed)
        assert np.allclose(fft_dif(x), np.fft.fft(x))

    @given(st.sampled_from([2, 4, 8, 16, 32]), st.integers(0, 1000))
    @settings(deadline=None, max_examples=20)
    def test_naive_dft(self, n, seed):
        x = random_vector(n, seed)
        assert np.allclose(naive_dft(x), np.fft.fft(x))

    @given(SIZES, st.integers(0, 1000))
    @settings(deadline=None, max_examples=20)
    def test_ifft_roundtrip(self, n, seed):
        x = random_vector(n, seed)
        assert np.allclose(ifft(fft_dit(x)), x)


class TestAnalyticalCases:
    def test_impulse_gives_flat_spectrum(self):
        x = np.zeros(16, dtype=complex)
        x[0] = 1.0
        assert np.allclose(fft_dit(x), np.ones(16))

    def test_dc_gives_impulse(self):
        x = np.ones(16, dtype=complex)
        expected = np.zeros(16, dtype=complex)
        expected[0] = 16.0
        assert np.allclose(fft_dit(x), expected)

    def test_single_tone(self):
        n, k = 32, 5
        x = np.exp(2j * np.pi * k * np.arange(n) / n)
        spectrum = fft_dif(x)
        assert abs(spectrum[k] - n) < 1e-9
        others = np.delete(spectrum, k)
        assert np.max(np.abs(others)) < 1e-9

    def test_linearity(self):
        x = random_vector(64, 1)
        y = random_vector(64, 2)
        assert np.allclose(
            fft_dit(2 * x + 3j * y), 2 * fft_dit(x) + 3j * fft_dit(y)
        )

    def test_parseval(self):
        x = random_vector(128, 3)
        spectrum = fft_dit(x)
        assert np.isclose(
            np.sum(np.abs(x) ** 2), np.sum(np.abs(spectrum) ** 2) / 128
        )


class TestHelpers:
    def test_twiddles_count_default(self):
        assert len(twiddles(16)) == 8

    def test_twiddle_wraps(self):
        assert np.isclose(twiddle(8, 9), twiddle(8, 1))

    def test_bit_reversed_indices_is_permutation(self):
        idx = bit_reversed_indices(64)
        assert sorted(idx) == list(range(64))

    def test_load_store_count(self):
        assert load_store_count(1024) == 2 * 1024 * 10

    def test_rejects_non_power_sizes(self):
        with pytest.raises(ValueError):
            fft_dit(np.zeros(12))
