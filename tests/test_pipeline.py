"""The composable pipeline API: stage registry, graphs, parity."""

import numpy as np
import pytest

import repro
from repro.core import ArrayFFT
from repro.ofdm import MultipathChannel, OfdmLink
from repro.pipelines import (
    DEFAULT_OFDM_CHAIN,
    SPECTRUM_CHAIN,
    Pipeline,
    PipelineGraphError,
    Stage,
    StageSpec,
    build_stage,
    get_stage,
    pipeline,
    register_stage,
    stage_names,
    stage_specs,
    unregister_stage,
)

PARITY_BACKENDS = ("compiled", "asip-batch", "sharded")


def _channel():
    return MultipathChannel.exponential_profile(
        n_taps=3, decay=0.4, rng=np.random.default_rng(2)
    )


class TestStageRegistry:
    def test_builtins_registered(self):
        names = stage_names()
        for name in DEFAULT_OFDM_CHAIN:
            assert name in names
        assert "block-source" in names

    def test_unknown_stage_lists_menu(self):
        with pytest.raises(KeyError, match="transform"):
            get_stage("nope")
        with pytest.raises(ValueError, match="registered stages"):
            get_stage("nope")

    def test_duplicate_registration_is_loud(self):
        spec = stage_specs()["transform"]
        with pytest.raises(ValueError, match="already registered"):
            register_stage(spec)
        register_stage(spec, replace=True)  # explicit replace is fine

    def test_register_and_unregister_custom(self):
        class Doubler(Stage):
            def run(self, ctx, data):
                return data * 2

        register_stage(StageSpec(name="doubler", factory=Doubler,
                                 consumes="any", produces="same"))
        try:
            stage = build_stage("doubler")
            assert stage.name == "doubler"
            assert stage.consumes == "any"
        finally:
            unregister_stage("doubler")
        with pytest.raises(KeyError):
            get_stage("doubler")

    def test_bad_kind_declaration(self):
        with pytest.raises(ValueError, match="unknown consumes"):
            register_stage(StageSpec(name="bad", factory=object,
                                     consumes="frequencies"))


class TestGraphValidation:
    def test_incompatible_chain_fails_at_build(self):
        with pytest.raises(PipelineGraphError, match="consumes"):
            pipeline(16, ["source", "transform"])  # bits into an FFT

    def test_unknown_stage_name_in_chain(self):
        with pytest.raises(KeyError, match="registered stages"):
            pipeline(16, ["source", "wat"])

    def test_empty_chain(self):
        with pytest.raises(PipelineGraphError, match="at least one"):
            pipeline(16, [])

    def test_entry_kind_enforced_at_run(self):
        pipe = pipeline(16, ["modulate", "ifft", "transform", "metrics"])
        with pytest.raises(ValueError, match="pass data="):
            pipe.run(symbols=2)

    def test_bad_entry_type(self):
        with pytest.raises(PipelineGraphError, match="not a registered"):
            pipeline(16, [42])


class TestPipelineRun:
    def test_default_chain_result_shape(self):
        with pipeline(32, snr_db=30.0, seed=1) as pipe:
            result = pipe.run(symbols=3)
        assert result.symbols == 3
        assert result.spectrum.shape == (3, 32)
        assert result.tx_bits.shape == result.rx_bits.shape
        assert list(result.stage_outputs) == list(DEFAULT_OFDM_CHAIN)
        assert result.transform.backend == "compiled"
        assert 0.0 <= result.ber <= 1.0
        assert result.metrics["total_bits"] == 3 * 32 * 2  # qpsk
        assert result.evm_percent >= 0.0

    def test_runs_reproduce_bit_for_bit(self):
        with pipeline(16, snr_db=20.0, seed=7) as pipe:
            a = pipe.run(symbols=2)
            b = pipe.run(symbols=2)
            c = pipe.run(symbols=2, seed=8)
        assert np.array_equal(a.spectrum, b.spectrum)
        assert np.array_equal(a.tx_bits, b.tx_bits)
        assert not np.array_equal(a.tx_bits, c.tx_bits)

    def test_explicit_data_injection(self):
        with pipeline(16, ["block-source", "transform", "metrics"]) as pipe:
            rng = np.random.default_rng(0)
            blocks = rng.standard_normal((4, 16)) \
                + 1j * rng.standard_normal((4, 16))
            result = pipe.run(data=blocks)
        assert np.allclose(result.spectrum, np.fft.fft(blocks, axis=1),
                           atol=1e-8)

    def test_result_array_protocol(self):
        with pipeline(16, SPECTRUM_CHAIN, seed=0) as pipe:
            result = pipe.run(symbols=2)
        assert np.asarray(result).shape == (2, 16)

    def test_closed_pipeline_refuses_work(self):
        pipe = pipeline(16)
        pipe.run(symbols=1)
        pipe.close()
        pipe.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pipe.run(symbols=1)

    def test_describe_names_chain_and_backend(self):
        pipe = pipeline(64, backend="asip-batch", name="demo")
        text = pipe.describe()
        assert "demo" in text
        assert "source -> modulate" in text
        assert "backend=asip-batch" in text

    def test_workers_defaults_to_sharded(self):
        pipe = pipeline(16, workers=2)
        assert pipe.backend == "sharded"

    def test_unknown_scheme_is_loud(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            pipeline(16, scheme="513qam")


class TestStageSwapping:
    def test_with_stage_by_name(self):
        class NullEqualizer(Stage):
            consumes = "spectrum"
            produces = "spectrum"

            def run(self, ctx, data):
                ctx.equalised = data / ctx.n_points
                return ctx.equalised

        base = pipeline(16, snr_db=40.0, seed=3)
        swapped = base.with_stage("equalize", NullEqualizer())
        assert "nullequalizer" in swapped.stage_names
        assert "equalize" in base.stage_names  # original untouched
        with base, swapped:
            a = base.run(symbols=2)
            b = swapped.run(symbols=2)
        # No channel on this pipeline, so the null equaliser only skips
        # the frequency-response division: same scale, same result.
        assert np.array_equal(a.equalised, b.equalised)

    def test_with_stage_unknown_target(self):
        with pytest.raises(PipelineGraphError, match="no stage named"):
            pipeline(16).with_stage("resample", "transform")

    def test_with_stage_index_out_of_range(self):
        with pytest.raises(PipelineGraphError, match="out of range"):
            pipeline(16).with_stage(99, "transform")

    def test_with_options_swaps_backend(self):
        base = pipeline(16, snr_db=25.0, seed=11)
        other = base.with_options(backend="reference")
        with base, other:
            a = base.run(symbols=2)
            b = other.run(symbols=2)
        assert a.transform.backend == "compiled"
        assert b.transform.backend == "reference"
        assert np.allclose(a.spectrum, b.spectrum, atol=1e-9)


class TestOfdmLinkParity:
    """Pipeline runs are bit-identical to the hand-wired OfdmLink."""

    @pytest.mark.parametrize("backend", PARITY_BACKENDS)
    def test_multipath_link_parity(self, backend):
        channel = _channel()
        with pipeline(64, scheme="16qam", channel=channel, snr_db=25.0,
                      backend=backend, seed=5) as pipe:
            result = pipe.run(symbols=4)
        with OfdmLink(64, scheme="16qam", channel=_channel(),
                      snr_db=25.0, seed=5, backend=backend) as link:
            link_results = link.run_symbols(4)
        assert np.array_equal(
            result.equalised,
            np.stack([r.equalised for r in link_results]),
        )
        assert np.array_equal(
            result.rx_bits, np.stack([r.rx_bits for r in link_results])
        )
        link_errors = sum(r.bit_errors for r in link_results)
        assert result.metrics["bit_errors"] == link_errors
        assert result.ber == link_errors / result.metrics["total_bits"]
        if backend == "asip-batch":
            assert result.transform.cycles == [
                r.fft_cycles for r in link_results
            ]

    @pytest.mark.parametrize("backend", PARITY_BACKENDS)
    def test_awgn_link_parity(self, backend):
        with pipeline(32, scheme="qpsk", snr_db=15.0, backend=backend,
                      seed=9) as pipe:
            result = pipe.run(symbols=6)
        with OfdmLink(32, scheme="qpsk", snr_db=15.0, seed=9,
                      backend=backend) as link:
            link_results = link.run_symbols(6)
        assert np.array_equal(
            result.rx_bits, np.stack([r.rx_bits for r in link_results])
        )
        assert result.metrics["bit_errors"] == sum(
            r.bit_errors for r in link_results
        )


class TestQ15SpectralParity:
    """Q1.15 spectral chains are bit-identical to the hand-wired path."""

    def test_bit_identical_across_backends(self):
        rng = np.random.default_rng(0)
        blocks = 0.6 * (rng.standard_normal((6, 32))
                        + 1j * rng.standard_normal((6, 32)))
        oracle = ArrayFFT(32, fixed_point=True)
        before = oracle.fx.overflow_count
        reference = oracle.transform_many(blocks)
        ref_overflow = oracle.fx.overflow_count - before
        for backend in PARITY_BACKENDS:
            with pipeline(32, SPECTRUM_CHAIN, backend=backend,
                          precision="q15") as pipe:
                result = pipe.run(data=blocks)
            assert np.array_equal(result.spectrum, reference), backend
            assert result.overflow_count == ref_overflow, backend
            assert result.metrics["overflow_count"] == ref_overflow

    def test_source_scale_headroom(self):
        with pipeline(32, SPECTRUM_CHAIN, precision="q15",
                      source_scale=0.25, seed=4) as pipe:
            result = pipe.run(symbols=3)
        scale = np.abs(result.stage_outputs["block-source"]).max()
        assert scale < 1.0
        reference = np.fft.fft(
            result.stage_outputs["block-source"], axis=1
        ) / 32
        assert np.allclose(result.spectrum, reference, atol=0.05)


class TestEngineRegistryErrors:
    def test_unknown_backend_lists_menu(self):
        with pytest.raises(KeyError, match="asip-batch"):
            repro.engine(16, backend="bogus")
        with pytest.raises(ValueError, match="registered backends"):
            repro.engine(16, backend="bogus")

    def test_unknown_backend_via_pipeline(self):
        with pytest.raises(repro.UnknownNameError, match="bogus"):
            pipeline(16, backend="bogus").run(symbols=1)
