"""Serving tier: pool leasing, admission control, deadlines, healing.

The acceptance spine of the serve subsystem:

* the engine pool caches by ``(n_points, backend, precision)`` and its
  dispose path quarantines poisoned engines;
* admission sheds with ``ServerOverloaded`` *before* queuing anything
  and per-tenant backpressure stays per-tenant;
* deadlines propagate down to the execution watchdog, and a tenant
  whose chunk times out is retired without touching its neighbours;
* every ``repro.verify.faults`` class injected into a live server stays
  localised to the injected tenant;
* the sharded engine's circuit breaker heals a failed pool *under a
  live server* — serial-fallback results stay bit-identical, then a
  half-open probe restores parallel execution.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

import repro
from repro.core import ArrayFFT, CircuitBreaker
from repro.core.parallel import available_workers
from repro.serve import (
    EnginePool,
    ServerClosed,
    ServerOverloaded,
    SessionServer,
    TenantFailed,
    UnknownTenant,
    run_load,
)
from repro.serve.metrics import TenantMetrics, percentile
from repro.sessions import SessionBackpressure, SessionExecutionTimeout
from repro.verify import engine_stall, pool_failure, worker_shard_corruption


def _blocks(symbols, n, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return scale * (rng.standard_normal((symbols, n))
                    + 1j * rng.standard_normal((symbols, n)))


class TestEnginePool:
    def test_leases_share_one_engine_per_key(self):
        with EnginePool() as pool:
            a = pool.lease(16)
            b = pool.lease(16)
            c = pool.lease(32)
            assert a.engine is b.engine
            assert a.engine is not c.engine
            stats = pool.stats()
            assert stats["built"] == 2 and stats["reused"] == 1
            assert stats["live"] == 2
            a.close(), b.close(), c.close()

    def test_release_keeps_entry_cached(self):
        with EnginePool() as pool:
            pool.lease(16).close()
            again = pool.lease(16)
            assert pool.stats()["reused"] == 1
            again.close()

    def test_dispose_evicts_and_rebuilds_fresh(self):
        with EnginePool() as pool:
            a = pool.lease(16)
            poisoned = a.engine
            a.close(dispose=True)
            assert pool.stats()["disposed"] == 1
            b = pool.lease(16)
            assert b.engine is not poisoned
            assert pool.stats()["built"] == 2
            b.close()

    def test_dispose_waits_for_last_lease(self):
        with EnginePool() as pool:
            a = pool.lease(16)
            b = pool.lease(16)
            a.close(dispose=True)  # evicted, but b still holds it
            # The survivor keeps executing on the evicted entry.
            result = b.transform_many(_blocks(2, 16, seed=1))
            assert result.n_symbols == 2
            b.close()

    def test_released_lease_refuses_execution(self):
        with EnginePool() as pool:
            lease = pool.lease(16)
            lease.close()
            with pytest.raises(RuntimeError, match="released"):
                lease.transform_many(_blocks(1, 16))

    def test_on_chunk_callback_times_every_chunk(self):
        seen = []
        with EnginePool() as pool:
            lease = pool.lease(16, on_chunk=lambda r, s: seen.append((r, s)))
            lease.transform_many(_blocks(3, 16, seed=2))
            lease.close()
        assert len(seen) == 1
        result, seconds = seen[0]
        assert result.n_symbols == 3 and seconds >= 0.0

    def test_closed_pool_refuses_leases(self):
        pool = EnginePool()
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.lease(16)

    def test_breaker_snapshots_cover_sharded_entries(self):
        with EnginePool() as pool:
            compiled = pool.lease(16)
            sharded = pool.lease(16, backend="sharded", workers=2)
            snaps = pool.breaker_snapshots()
            assert list(snaps) == ["16xshardedxfloat"]
            assert snaps["16xshardedxfloat"]["state"] == "closed"
            compiled.close(), sharded.close()


class TestSessionServerBasics:
    def test_round_trip_matches_oracle(self):
        blocks = _blocks(10, 16, seed=3)
        with SessionServer(batch=4) as server:
            server.open_session("alice", 16)
            assert server.submit("alice", blocks) == 10
            tail = server.drain("alice") + server.close_session("alice")
            got = np.concatenate([r.spectrum for r in tail])
        assert np.allclose(got, np.fft.fft(blocks, axis=1), atol=1e-6)

    def test_tenants_share_the_pooled_engine(self):
        with SessionServer(batch=2) as server:
            a = server.open_session("a", 16)
            b = server.open_session("b", 16)
            assert a.lease.engine is b.lease.engine
            assert server.pool.stats()["built"] == 1

    def test_live_tenant_name_is_unique(self):
        with SessionServer() as server:
            server.open_session("alice", 16)
            with pytest.raises(ValueError, match="live"):
                server.open_session("alice", 16)

    def test_name_reusable_after_close(self):
        blocks = _blocks(2, 16, seed=4)
        with SessionServer(batch=2) as server:
            server.open_session("alice", 16)
            server.submit("alice", blocks)
            server.close_session("alice")
            server.open_session("alice", 32)  # fresh life, new key
            server.submit("alice", _blocks(2, 32, seed=5))
            assert server.tenants == ["alice"]

    def test_unknown_tenant_raises(self):
        with SessionServer() as server:
            with pytest.raises(UnknownTenant):
                server.submit("ghost", _blocks(1, 16))
            with pytest.raises(UnknownTenant):
                server.drain("ghost")

    def test_closed_server_refuses_everything(self):
        server = SessionServer()
        server.open_session("alice", 16)
        server.close()
        with pytest.raises(ServerClosed):
            server.open_session("bob", 16)
        with pytest.raises(ServerClosed):
            server.submit("alice", _blocks(1, 16))

    def test_results_iterator_and_flush(self):
        blocks = _blocks(3, 16, seed=6)
        with SessionServer(batch=2) as server:
            server.open_session("alice", 16)
            server.submit("alice", blocks)
            server.flush("alice")
            chunks = list(server.results("alice"))
        assert [c.n_symbols for c in chunks] == [2, 1]

    def test_health_snapshot_shape(self):
        with SessionServer(batch=2) as server:
            server.open_session("alice", 16)
            server.submit("alice", _blocks(2, 16, seed=7))
            health = server.health()
        assert health["closed"] is False
        assert health["buffered"] == 2  # undrained chunk
        assert health["tenants"]["alice"]["symbols_in"] == 2
        assert health["tenants"]["alice"]["chunks"] == 1
        assert health["pool"]["built"] == 1
        assert health["breakers"] == {}


class TestAdmissionControl:
    def test_global_budget_sheds_loudly(self):
        blocks = _blocks(4, 16, seed=8)
        with SessionServer(batch=4, global_budget=6) as server:
            server.open_session("alice", 16)
            server.open_session("bob", 16)
            server.submit("alice", blocks)  # 4 buffered (undrained)
            with pytest.raises(ServerOverloaded, match="shed"):
                server.submit("bob", blocks)  # 4 + 4 > 6
            health = server.health()
            # The whole request was shed before anything queued.
            assert health["tenants"]["bob"]["symbols_in"] == 0
            assert health["tenants"]["bob"]["shed"] == 4
            assert health["buffered"] == 4
            # Draining the neighbour frees budget; bob is admitted.
            server.drain("alice")
            assert server.submit("bob", blocks) == 4

    def test_adaptive_budget_tracks_capacities(self):
        with SessionServer(batch=2, capacity=4) as server:
            server.open_session("alice", 16)
            assert server.health()["budget"] == 8  # 2 * 4
            server.open_session("bob", 16)
            assert server.health()["budget"] == 16
            server.close_session("bob")
            assert server.health()["budget"] == 8

    def test_per_tenant_backpressure_stays_per_tenant(self):
        with SessionServer(batch=2, capacity=2) as server:
            server.open_session("alice", 16)
            server.open_session("bob", 16)
            server.submit("alice", _blocks(2, 16, seed=9))
            # Alice's buffer is full: her deadline expires in
            # SessionBackpressure, counted against her alone.
            with pytest.raises(SessionBackpressure, match="after waiting"):
                server.submit("alice", _blocks(1, 16, seed=10),
                              deadline=0.05)
            health = server.health()
            assert health["tenants"]["alice"]["backpressure"] == 1
            assert health["tenants"]["bob"]["backpressure"] == 0
            # Bob is untouched and still serving.
            assert server.submit("bob", _blocks(2, 16, seed=11)) == 2

    def test_deadline_met_when_consumer_drains(self):
        with SessionServer(batch=2, capacity=2) as server:
            server.open_session("alice", 16)
            server.submit("alice", _blocks(2, 16, seed=12))

            def drain_soon():
                time.sleep(0.05)
                server.drain("alice")

            helper = threading.Thread(target=drain_soon)
            helper.start()
            try:
                fed = server.submit("alice", _blocks(1, 16, seed=13),
                                    deadline=5.0)
            finally:
                helper.join(timeout=5.0)
            assert fed == 1


class TestDeadlineWatchdog:
    def test_stalled_tenant_fails_and_neighbour_survives(self):
        blocks = _blocks(4, 16, seed=14)
        with SessionServer(batch=4, exec_timeout=0.2) as server:
            stalled = server.open_session("stalled", 16)
            server.open_session("clean", 16)
            with engine_stall(stalled.lease, seconds=30.0):
                started = time.perf_counter()
                with pytest.raises(SessionExecutionTimeout, match="deadline"):
                    server.submit("stalled", blocks, deadline=5.0)
                assert time.perf_counter() - started < 10.0
                # The clean tenant keeps serving during the stall.
                server.submit("clean", blocks)
            tail = server.close_session("clean")
            got = np.concatenate([r.spectrum for r in tail])
            assert np.allclose(got, np.fft.fft(blocks, axis=1), atol=1e-6)
            # The stalled tenant is retired: poisoned engine disposed,
            # later submits refused with the recorded reason.
            health = server.health()
            assert health["tenants"]["stalled"]["state"] == "failed"
            assert health["tenants"]["stalled"]["timeouts"] == 1
            assert server.pool.stats()["disposed"] == 1
            with pytest.raises(TenantFailed, match="deadline"):
                server.submit("stalled", blocks)

    def test_failed_tenant_tail_stays_drainable(self):
        with SessionServer(batch=2) as server:
            server.open_session("alice", 16)
            server.submit("alice", _blocks(2, 16, seed=15))  # chunk done
            server.fail_tenant("alice", "operator says so")
            tail = server.drain("alice")
            assert [r.n_symbols for r in tail] == [2]
            with pytest.raises(TenantFailed, match="operator"):
                server.submit("alice", _blocks(1, 16))

    def test_fresh_session_after_failure_gets_fresh_engine(self):
        with SessionServer(batch=2, exec_timeout=0.2) as server:
            first = server.open_session("alice", 16)
            poisoned = first.lease.engine
            with engine_stall(first.lease, seconds=30.0):
                with pytest.raises(SessionExecutionTimeout):
                    server.submit("alice", _blocks(2, 16, seed=16))
            # The name is reusable and the pool built a clean engine.
            reborn = server.open_session("alice", 16)
            assert reborn.lease.engine is not poisoned
            blocks = _blocks(2, 16, seed=17)
            server.submit("alice", blocks)
            got = np.concatenate(
                [r.spectrum for r in server.close_session("alice")]
            )
            assert np.allclose(got, np.fft.fft(blocks, axis=1), atol=1e-6)


class TestFaultSurvival:
    """Every verify.faults class against a live server: localised."""

    def test_pool_failure_localised_to_sharded_tenant(self):
        blocks = _blocks(8, 16, seed=18)
        with SessionServer(batch=8) as server:
            shard = server.open_session(
                "shard", 16, backend="sharded", workers=2,
                min_parallel_symbols=1,
            )
            server.open_session("clean", 16)
            with pool_failure(shard.lease.engine.impl.sharded):
                with pytest.warns(RuntimeWarning, match="falling back"):
                    server.submit("shard", blocks)
                server.submit("clean", blocks)
            shard_tail = server.close_session("shard")
            clean_tail = server.close_session("clean")
            health = server.health()
        want = np.fft.fft(blocks, axis=1)
        # Serial fallback: numerically correct, marked degraded.
        got = np.concatenate([r.spectrum for r in shard_tail])
        assert np.allclose(got, want, atol=1e-6)
        assert shard_tail[0].degraded
        assert health["tenants"]["shard"]["degraded_transitions"] == 1
        # The injected tenant's degradation never leaks next door.
        got = np.concatenate([r.spectrum for r in clean_tail])
        assert np.allclose(got, want, atol=1e-6)
        assert not clean_tail[0].degraded
        assert health["tenants"]["clean"]["degraded_transitions"] == 0

    def test_worker_shard_corruption_localised(self):
        blocks = _blocks(4, 16, seed=19)
        with SessionServer(batch=4) as server:
            shard = server.open_session(
                "shard", 16, backend="sharded", workers=2,
            )
            server.open_session("clean", 16)
            with worker_shard_corruption(shard.lease.engine.impl.sharded,
                                         symbol=1):
                server.submit("shard", blocks)
                server.submit("clean", blocks)
            shard_tail = server.close_session("shard")
            clean_tail = server.close_session("clean")
        want = np.fft.fft(blocks, axis=1)
        got_shard = np.concatenate([r.spectrum for r in shard_tail])
        got_clean = np.concatenate([r.spectrum for r in clean_tail])
        # Exactly the injected tenant's injected symbol diverges.
        assert not np.allclose(got_shard[1], want[1], atol=1e-6)
        assert np.allclose(np.delete(got_shard, 1, axis=0),
                           np.delete(want, 1, axis=0), atol=1e-6)
        assert np.allclose(got_clean, want, atol=1e-6)

    def test_engine_stall_localised(self):
        from repro.verify import demonstrate_fault

        fault, result = demonstrate_fault("engine-stall")
        assert fault.kind == "engine-stall"
        assert not result.ok  # the watchdog caught it
        assert result.report.location["tenant"] == "stalled"


class TestBreakerUnderLiveServer:
    """Pool self-healing end-to-end through the serving tier."""

    def test_serial_fallback_then_probe_restores_parallel(self):
        n, symbols = 16, 6
        blocks = _blocks(symbols, n, seed=20)
        want = ArrayFFT(n).transform_many(blocks)
        with SessionServer(batch=symbols) as server:
            tenant = server.open_session(
                "alice", n, backend="sharded", workers=2,
                min_parallel_symbols=1, breaker_backoff_initial=0.05,
            )
            sharded = tenant.lease.engine.impl.sharded

            class ExplodingPool:
                def map(self, *args, **kwargs):
                    raise RuntimeError("worker died")

                def shutdown(self, **kwargs):
                    pass

            sharded._pool = ExplodingPool()
            with pytest.warns(RuntimeWarning, match="falling back"):
                server.submit("alice", blocks)
            (broken,) = server.drain("alice")
            # Degraded but bit-identical to the serial oracle.
            assert broken.degraded
            assert np.array_equal(broken.spectrum, want)
            assert sharded.breaker.state != CircuitBreaker.CLOSED
            # Past the backoff the next chunk is the half-open probe:
            # it spawns a fresh pool and restores parallel execution.
            time.sleep(0.06)
            server.submit("alice", blocks)
            (healed,) = server.drain("alice")
            assert not healed.degraded
            assert np.array_equal(healed.spectrum, want)
            assert sharded.breaker.state == CircuitBreaker.CLOSED
            assert sharded._pool is not None
            health = server.health()
            snap = health["breakers"]["16xshardedxfloat"]
            assert snap["opened"] == 1 and snap["recovered"] == 1
            assert health["tenants"]["alice"]["degraded_transitions"] == 1

    @pytest.mark.skipif(
        available_workers() < 2,
        reason="worker-kill recovery needs >= 2 CPUs (mirrors the "
               "sharded bench gate)",
    )
    def test_sigkilled_worker_under_live_server_self_heals(self):
        n, symbols = 16, 6
        blocks = _blocks(symbols, n, seed=21)
        want = ArrayFFT(n).transform_many(blocks)
        with SessionServer(batch=symbols) as server:
            tenant = server.open_session(
                "alice", n, backend="sharded", workers=2,
                min_parallel_symbols=1, breaker_backoff_initial=0.05,
            )
            sharded = tenant.lease.engine.impl.sharded
            server.submit("alice", blocks)  # spins the pool up
            (warm,) = server.drain("alice")
            assert not warm.degraded and np.array_equal(warm.spectrum, want)
            victim = next(iter(sharded._pool._processes))
            os.kill(victim, signal.SIGKILL)
            with pytest.warns(RuntimeWarning, match="falling back"):
                server.submit("alice", blocks)
            (fallen,) = server.drain("alice")
            # Serial fallback under the live server: bit-identical.
            assert fallen.degraded
            assert np.array_equal(fallen.spectrum, want)
            time.sleep(0.06)
            server.submit("alice", blocks)
            (healed,) = server.drain("alice")
            assert not healed.degraded
            assert np.array_equal(healed.spectrum, want)
            assert sharded.breaker.recovered_count == 1


class TestMetrics:
    def test_percentile_nearest_rank(self):
        assert percentile([], 99.0) == 0.0
        assert percentile([5.0], 50.0) == 5.0
        data = list(range(1, 101))
        assert percentile(data, 50.0) == 50
        assert percentile(data, 99.0) == 100
        assert percentile(data, 100.0) == 100

    def test_tenant_metrics_flow(self):
        class FakeResult:
            n_symbols = 4
            degraded = False

        metrics = TenantMetrics("alice")
        metrics.record_admitted(4)
        metrics.record_chunk(FakeResult(), 0.010)
        snap = metrics.snapshot()
        assert snap["symbols_in"] == snap["symbols_out"] == 4
        assert snap["chunks"] == 1
        assert snap["latency_p50_ms"] == pytest.approx(10.0)
        assert snap["state"] == "active"

    def test_degraded_transitions_count_edges(self):
        class Result:
            n_symbols = 1

            def __init__(self, degraded):
                self.degraded = degraded

        metrics = TenantMetrics("alice")
        for flag in (False, True, True, False, True):
            metrics.record_chunk(Result(flag), 0.001)
        snap = metrics.snapshot()
        assert snap["degraded_chunks"] == 3
        assert snap["degraded_transitions"] == 2


class TestHealthConcurrency:
    #: exact per-tenant snapshot schema — frozen; dashboards parse it.
    TENANT_KEYS = {
        "tenant", "state", "symbols_in", "symbols_out", "chunks",
        "symbols_per_s", "latency_p50_ms", "latency_p99_ms", "shed",
        "backpressure", "timeouts", "degraded_chunks",
        "degraded_transitions", "failure_reason",
    }

    def test_health_hammer_during_live_load(self):
        """``health()`` from another thread never returns a torn snapshot.

        A hammer thread polls ``server.health()`` in a tight loop while
        ``run_load`` drives concurrent tenants through the same server;
        every snapshot it collects must be internally consistent — full
        per-tenant schema, counters that never exceed their upper
        bounds, ordered quantiles — not a dict caught mid-mutation.
        """
        snapshots, failures = [], []
        stop = threading.Event()

        def hammer(server):
            while not stop.is_set():
                try:
                    snapshots.append(server.health())
                except Exception as exc:  # pragma: no cover - the failure
                    failures.append(repr(exc))
                    return

        with SessionServer(batch=4) as server:
            poller = threading.Thread(
                target=hammer, args=(server,), name="health-hammer",
            )
            poller.start()
            try:
                measure = run_load(tenants=4, symbols=24, n_points=32,
                                   batch=4, feed_size=4, seed=11,
                                   server=server)
            finally:
                stop.set()
                poller.join(timeout=10.0)
        assert not poller.is_alive()
        assert not failures, failures
        assert measure["ok"], (measure["errors"], measure["mismatches"])
        assert snapshots, "hammer never completed a snapshot"
        for health in snapshots:
            assert set(health) >= {"closed", "buffered", "tenants", "pool"}
            for name, tenant in health["tenants"].items():
                assert set(tenant) == self.TENANT_KEYS, name
                assert tenant["symbols_out"] <= tenant["symbols_in"]
                assert tenant["chunks"] * 4 >= tenant["symbols_out"]
                assert (tenant["latency_p50_ms"]
                        <= tenant["latency_p99_ms"] + 1e-9)
                assert tenant["degraded_chunks"] >= \
                    tenant["degraded_transitions"]
        # The last snapshots saw real traffic, not just empty registries.
        final = snapshots[-1]["tenants"]
        assert sum(t["symbols_in"] for t in final.values()) > 0


class TestLoadGenerator:
    def test_run_load_smoke_verifies_against_oracle(self):
        measure = run_load(tenants=3, symbols=8, n_points=16, batch=4,
                           feed_size=2, seed=5)
        assert measure["ok"], (measure["errors"], measure["mismatches"])
        assert measure["shed"] == 0
        assert measure["timeouts"] == 0
        assert measure["sessions_per_s"] > 0
        assert measure["pool_built"] == 1
        assert measure["pool_reused"] == 2

    def test_serve_fuzz_fixed_seed_smoke(self):
        from repro.verify import fuzz_backends

        report = fuzz_backends(4, kinds=("serve",), seed=2024)
        assert report.ok, report.summary()
        assert report.cases == 4


class TestExports:
    def test_serve_errors_exported_from_top_level(self):
        assert repro.ServerOverloaded is ServerOverloaded
        assert repro.ServerClosed is ServerClosed
        assert repro.TenantFailed is TenantFailed
        assert repro.SessionServer is SessionServer
        assert repro.SessionBackpressure is SessionBackpressure
        assert repro.SessionClosed is not None
        assert issubclass(repro.ServerOverloaded, repro.ServeError)
