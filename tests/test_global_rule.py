"""The global address-changing rule P_j and its label-flow derivation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.addressing.bitops import bit_reverse
from repro.addressing.global_rule import (
    column_labels,
    global_permutation,
    relocate_rule,
)

PS = st.integers(2, 7)


class TestColumnLabels:
    @given(PS, st.data())
    @settings(deadline=None, max_examples=20)
    def test_labels_are_a_permutation(self, p, data):
        stage = data.draw(st.integers(1, p))
        labels = column_labels(p, stage)
        assert sorted(labels) == list(range(1 << p))

    def test_stage1_labels_natural(self):
        assert column_labels(4, 1) == list(range(16))

    @given(PS, st.data())
    @settings(deadline=None, max_examples=20)
    def test_pairing_invariant_holds_at_every_stage(self, p, data):
        """column_labels raises AssertionError if any stage's module pairs
        labels that do not differ in exactly bit (p - j) — running it to
        the last stage exercises the invariant for every stage."""
        stage = data.draw(st.integers(2, p))
        column_labels(p, stage)  # must not raise

    def test_half_split_halves_partition_by_stage_bit(self):
        """Within a stage column, the sum half holds the bit-(p-j)-clear
        label of each pair and the difference half the set one."""
        p = 5
        for stage in range(1, p + 1):
            labels = column_labels(p, stage)
            half = (1 << p) // 2
            bit = p - stage
            for m in range(half):
                assert (labels[m] >> bit) & 1 == 0
                assert (labels[m + half] >> bit) & 1 == 1


class TestGlobalPermutation:
    def test_inverse_relation_with_labels(self):
        p = 4
        for stage in range(1, p + 1):
            labels = column_labels(p, stage)
            perm = global_permutation(p, stage)
            for position, label in enumerate(labels):
                assert perm[label] == position

    def test_output_stage_is_bitrev(self):
        assert global_permutation(5, 6) == [
            bit_reverse(u, 5) for u in range(32)
        ]


class TestRelocateRule:
    """The paper's verbal rule, kept as a documented artefact.

    It is compared against the operationally-derived P_j: the verbal
    statement is ambiguous about bit-indexing, and for most stages it
    does not coincide with the executable permutation — we record that
    (rather than silently replacing the paper's text)."""

    def test_is_permutation(self):
        for p in (3, 4, 5):
            for stage in range(1, p + 1):
                image = {
                    relocate_rule(a, p, stage) for a in range(1 << p)
                }
                assert image == set(range(1 << p))

    def test_degenerate_small_width(self):
        assert relocate_rule(1, 1, 1) == 1

    @given(st.integers(2, 6), st.data())
    def test_preserves_other_bit_order(self, p, data):
        """Removing the moved bit from source and destination leaves the
        same residual bit string."""
        stage = data.draw(st.integers(1, p))
        addr = data.draw(st.integers(0, (1 << p) - 1))
        moved_src = p - 2  # LSB position of the relocated bit
        out = relocate_rule(addr, p, stage)
        dst = min(stage, p - 1)

        def strip(value, position):
            bits = [(value >> k) & 1 for k in range(p)][::-1]
            bits.pop(p - 1 - position)
            return bits

        assert strip(addr, moved_src) == strip(out, dst)
