"""The Fig. 3 matrix formulation, executed: the proof as tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.addressing.bitops import bit_reverse
from repro.addressing.global_rule import column_labels, global_permutation
from repro.addressing.matrices import (
    dft_matrix,
    gather_matrix,
    global_matrix,
    is_butterfly_stage,
    machine_matrix,
    module_matrix,
    original_stage_matrix,
    permutation_matrix,
    verify_stage_identity,
)

PS = st.integers(2, 6)


class TestMachineEqualsDFT:
    """The central correctness claim: the address-changed fixed-module
    pipeline computes the natural-order DFT."""

    @given(PS)
    @settings(deadline=None, max_examples=5)
    def test_machine_matrix_is_dft(self, p):
        assert np.allclose(machine_matrix(p), dft_matrix(1 << p))

    def test_large_case(self):
        assert np.allclose(machine_matrix(7), dft_matrix(128))


class TestStageIdentity:
    """P_{j+1} B_j = L_{j+1} A_j P_j for every stage (Fig. 3)."""

    @given(PS, st.data())
    @settings(deadline=None, max_examples=15)
    def test_identity_holds(self, p, data):
        stage = data.draw(st.integers(1, p))
        assert verify_stage_identity(p, stage)

    @given(PS, st.data())
    @settings(deadline=None, max_examples=15)
    def test_derived_b_is_inplace_butterfly(self, p, data):
        stage = data.draw(st.integers(1, p))
        b = original_stage_matrix(p, stage)
        assert is_butterfly_stage(b) == (1 << (p - stage))


class TestGlobalPermutation:
    @given(PS, st.data())
    @settings(deadline=None, max_examples=15)
    def test_is_permutation(self, p, data):
        stage = data.draw(st.integers(1, p + 1))
        perm = global_permutation(p, stage)
        assert sorted(perm) == list(range(1 << p))

    @given(PS)
    @settings(deadline=None, max_examples=5)
    def test_stage_one_is_identity(self, p):
        assert global_permutation(p, 1) == list(range(1 << p))

    @given(PS)
    @settings(deadline=None, max_examples=5)
    def test_final_stage_is_bit_reverse(self, p):
        assert global_permutation(p, p + 1) == [
            bit_reverse(u, p) for u in range(1 << p)
        ]

    @given(PS, st.data())
    @settings(deadline=None, max_examples=15)
    def test_pairs_differ_in_stage_bit(self, p, data):
        """The invariant that *is* the AC rule's correctness: stage j's
        module combines labels differing exactly in bit p - j."""
        stage = data.draw(st.integers(1, p))
        labels = column_labels(p, stage)
        half = (1 << p) // 2
        for m in range(half):
            assert labels[m] ^ labels[m + half] == 1 << (p - stage)

    def test_stage_bounds(self):
        with pytest.raises(ValueError):
            global_permutation(3, 0)
        with pytest.raises(ValueError):
            global_permutation(3, 5)


class TestOperators:
    def test_permutation_matrix_semantics(self):
        mat = permutation_matrix([2, 0, 1])
        x = np.array([10.0, 20.0, 30.0])
        assert np.allclose(mat @ x, [30.0, 10.0, 20.0])

    def test_gather_matrix_is_orthogonal(self):
        g = gather_matrix(4, 3)
        assert np.allclose(g @ g.T, np.eye(16))

    def test_module_matrix_row_structure(self):
        a = module_matrix(3, 2)
        # every row of the fixed module touches exactly two columns
        for row in np.abs(a) > 1e-12:
            assert row.sum() == 2

    def test_is_butterfly_stage_rejects_dense(self):
        assert is_butterfly_stage(dft_matrix(4)) is None

    def test_is_butterfly_stage_rejects_non_inplace(self):
        # rows read the right pairs but land in the wrong places
        mat = np.zeros((4, 4))
        mat[0, 0] = mat[0, 2] = 1
        mat[1, 0] = mat[1, 2] = 1
        mat[2, 1] = mat[2, 3] = 1
        mat[3, 1] = mat[3, 3] = 1
        assert is_butterfly_stage(mat) is None
