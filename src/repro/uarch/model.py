"""Issue-width / functional-unit timing model over a retired trace.

``sim/machine.py`` stays the bit-exact architectural oracle; this module
only *re-times* what the oracle already executed.  :func:`retime` walks a
:func:`~repro.uarch.replay.record_trace` op list through a greedy
in-order scheduler: up to ``issue_width`` instructions issue per cycle,
each on its functional unit (``alu`` — the scalar ALU doubling as the
AGU, ``mul``, ``lsu`` — the 64-bit memory port LDIN/STOUT/LW/SW share,
``bu`` — the butterfly unit), no earlier than the
:class:`~repro.uarch.hazards.Scoreboard` clears its read/write hazards.
Dual issue therefore buys exactly the overlaps the paper's datapath
allows — AGU arithmetic beside BUT4, LDIN/STOUT beside BUT4 — while
same-unit ops still serialise.  Cache timing replays the recorded
address trace through a fresh :class:`~repro.sim.cache.DataCache`
*once, in retirement order*, so hit/miss outcomes (and hence the
per-op miss extras) are identical across issue widths by construction;
a blocking miss holds the memory port and stalls dependents.

Three invariants follow (asserted for every fuzzed program by the
``uarch`` verify family):

* the oracle's architectural results are untouched (the overlay never
  executes);
* misses are width-invariant (single shared replay order);
* the cycle sandwich — :func:`critical_path_cycles` (pure dataflow,
  infinite width) ≤ wider issue ≤ narrower issue, because the greedy
  in-order schedule is monotone in ``issue_width`` and every schedule
  honours the same hazards and latencies the critical path uses.

Configurations live in the package's eighth name registry
(:func:`register_uarch` / :func:`get_uarch` / :func:`uarch_names` /
:func:`uarch_specs`) with the same sorted
:class:`~repro.core.registry.UnknownNameError` menus as the other seven.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import telemetry
from ..core.registry import UnknownNameError
from ..sim.cache import CacheConfig, DataCache
from ..sim.pipeline import PipelineConfig
from .hazards import Scoreboard, dataflow_critical_path

__all__ = [
    "UarchSpec",
    "UarchResult",
    "register_uarch",
    "unregister_uarch",
    "get_uarch",
    "uarch_names",
    "uarch_specs",
    "cache_timeline",
    "retime",
    "critical_path_cycles",
    "sandwich_cycles",
]

#: functional unit per RetiredOp kind
_UNIT = {
    "alu": "alu", "branch": "alu", "jump": "alu", "nop": "alu",
    "mul": "mul",
    "load": "lsu", "store": "lsu", "ldin": "lsu", "stout": "lsu",
    "but4": "bu",
}


@dataclass(frozen=True)
class UarchSpec:
    """One overlay configuration: issue width + pipeline penalties.

    ``pipeline`` reuses the oracle's frozen
    :class:`~repro.sim.pipeline.PipelineConfig` as the single source of
    timing truth — the overlay derives every per-op latency from it.
    ``charge_cache`` selects blocking-cache timing (miss extras from the
    replayed address trace enter latencies and hold the memory port);
    with it off the cache still counts hits/misses but never stalls,
    matching the oracle's default accounting.
    """

    name: str
    description: str = ""
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    issue_width: int = 1
    charge_cache: bool = True

    def __post_init__(self):
        if self.issue_width < 1:
            raise ValueError(
                f"issue_width must be >= 1, got {self.issue_width}"
            )


@dataclass(frozen=True)
class UarchResult:
    """Cycle count and stall/occupancy breakdown of one retiming."""

    name: str
    issue_width: int
    charge_cache: bool
    instructions: int
    cycles: int
    stalls: dict
    unit_issues: dict
    dcache_hits: int
    dcache_misses: int

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


# --- the eighth name registry ---------------------------------------------

_REGISTRY: dict = {}
_BOOTSTRAPPED = False


def register_uarch(spec: UarchSpec, replace: bool = False) -> None:
    """Register ``spec`` under ``spec.name`` (loud on duplicates)."""
    if not isinstance(spec, UarchSpec):
        raise TypeError(f"expected a UarchSpec, got {type(spec).__name__}")
    _bootstrap()
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"uarch config {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec


def unregister_uarch(name: str) -> None:
    """Remove a config (primarily for tests registering throwaways)."""
    _REGISTRY.pop(name, None)


def _bootstrap() -> None:
    """Register the built-in presets on first use."""
    global _BOOTSTRAPPED
    if _BOOTSTRAPPED:
        return
    _BOOTSTRAPPED = True
    for preset in (
        UarchSpec(
            "base-300mhz",
            "the oracle's single-issue timing as a preset: default "
            "pipeline penalties, cache counted but never stalling",
            charge_cache=False,
        ),
        UarchSpec(
            "no-interlock",
            "idealised single issue: no branch/load-use/multiply "
            "penalties, non-blocking cache",
            pipeline=PipelineConfig(
                branch_penalty=0, load_use_stall=0, mul_extra=0
            ),
            charge_cache=False,
        ),
        UarchSpec(
            "single-issue",
            "one instruction per cycle with a blocking data cache "
            "(the study baseline)",
        ),
        UarchSpec(
            "dual-issue",
            "two instructions per cycle across alu/mul/lsu/bu units "
            "(AGU beside BUT4, LDIN/STOUT beside BUT4), blocking cache",
            issue_width=2,
        ),
    ):
        _REGISTRY.setdefault(preset.name, preset)


def get_uarch(name: str) -> UarchSpec:
    """Look up a uarch config by name; raises with the sorted menu."""
    _bootstrap()
    spec = _REGISTRY.get(name)
    if spec is None:
        raise UnknownNameError(
            f"unknown uarch config {name!r}; registered uarch configs: "
            f"{', '.join(uarch_names())}"
        )
    return spec


def uarch_names() -> list:
    """Sorted names of every registered uarch config."""
    _bootstrap()
    return sorted(_REGISTRY)


def uarch_specs() -> dict:
    """Name-sorted snapshot of the registry (name -> :class:`UarchSpec`)."""
    _bootstrap()
    return {name: _REGISTRY[name] for name in sorted(_REGISTRY)}


# --- timing ----------------------------------------------------------------

_DEFAULT_CACHE = object()   # sentinel: "the oracle's 32 KB default"


def _resolve_cache(cache_config):
    if cache_config is _DEFAULT_CACHE:
        return CacheConfig()
    return cache_config


def _latency(kind: str, pipeline: PipelineConfig) -> int:
    """Result latency of one op in cycles, cache extras excluded.

    Loads carry ``1 + load_use_stall`` so a dependent issuing the next
    cycle waits exactly the oracle's load-use interlock; BUT4 and
    LDIN/STOUT latencies come straight from the pipeline's
    ``but4_latency`` / ``custom_mem_latency`` occupancy figures.
    """
    if kind == "mul":
        return 1 + pipeline.mul_extra
    if kind == "load":
        return 1 + pipeline.load_use_stall
    if kind == "but4":
        return max(1, pipeline.but4_latency)
    if kind in ("ldin", "stout"):
        return max(1, pipeline.custom_mem_latency)
    return 1


def cache_timeline(ops, cache_config=_DEFAULT_CACHE):
    """Replay the recorded address trace once, in retirement order.

    Returns ``(extras, hits, misses)`` where ``extras[i]`` is op *i*'s
    worst-beat latency beyond one hit (the same beyond-overlap charge
    the oracle's ``_probe_cache_pair`` uses).  Every retiming shares
    this single replay, which is what makes miss counts — and the
    extras entering the sandwich latencies — identical across widths.
    """
    config = _resolve_cache(cache_config)
    if config is None:
        return [0] * len(ops), 0, 0
    dcache = DataCache(config)
    hit_latency = config.hit_latency
    extras = []
    for op in ops:
        worst = 0
        for address, is_write in op.mem:
            latency = dcache.access(address, is_write) - hit_latency
            if latency > worst:
                worst = latency
        extras.append(worst)
    return extras, dcache.hits, dcache.misses


def retime(ops, spec: UarchSpec, cache_config=_DEFAULT_CACHE) -> UarchResult:
    """Re-time a retired trace under ``spec``; the trace is untouched.

    Greedy in-order issue: each op starts at the earliest cycle allowed
    by (a) at most ``issue_width`` issues per cycle, (b) its scoreboard
    hazards, (c) its functional unit being free.  A taken branch or
    jump redirects the front end, so the next op issues no earlier than
    ``branch_penalty`` cycles after the redirect slot.  With
    ``charge_cache``, a missing memory op holds the ``lsu`` port for
    its miss extra (blocking cache).
    """
    pipeline = spec.pipeline
    width = spec.issue_width
    charge = spec.charge_cache
    extras, hits, misses = cache_timeline(ops, cache_config)
    board = Scoreboard()
    unit_free = {}
    unit_issues = {}
    stalls = {"raw": 0, "structural": 0, "branch": 0, "cache": 0}
    cycle = 0
    slots = 0
    finish = 0
    with telemetry.span(
        "uarch.replay", config=spec.name, width=width, instructions=len(ops)
    ):
        for op, extra in zip(ops, extras):
            extra = extra if charge else 0
            t = cycle + 1 if slots >= width else cycle
            ready = board.ready(op)
            if ready > t:
                stalls["raw"] += ready - t
                t = ready
            unit = _UNIT[op.kind]
            free = unit_free.get(unit, 0)
            if free > t:
                stalls["structural"] += free - t
                t = free
            if t > cycle:
                cycle = t
                slots = 0
            slots += 1
            unit_issues[unit] = unit_issues.get(unit, 0) + 1
            # A blocking miss occupies the port past its issue slot.
            occupancy = 1 + (extra if op.mem else 0)
            unit_free[unit] = cycle + occupancy
            completion = cycle + _latency(op.kind, pipeline) + extra
            board.commit(op, completion)
            if completion > finish:
                finish = completion
            if cycle + 1 > finish:
                finish = cycle + 1
            stalls["cache"] += extra
            if op.taken:
                stalls["branch"] += pipeline.branch_penalty
                cycle = cycle + 1 + pipeline.branch_penalty
                slots = 0
        for kind, cycles in stalls.items():
            if cycles:
                telemetry.event(
                    f"uarch.stall.{kind}", config=spec.name, cycles=cycles
                )
    return UarchResult(
        name=spec.name,
        issue_width=width,
        charge_cache=charge,
        instructions=len(ops),
        cycles=finish,
        stalls=stalls,
        unit_issues=unit_issues,
        dcache_hits=hits,
        dcache_misses=misses,
    )


def critical_path_cycles(ops, pipeline: PipelineConfig = None,
                         cache_config=_DEFAULT_CACHE,
                         charge_cache: bool = True) -> int:
    """Dataflow lower bound: hazards and latencies only, infinite width.

    Uses the same per-op latencies (including the shared cache-replay
    extras when ``charge_cache``) as :func:`retime`, so it bounds every
    retiming of the same trace from below.
    """
    pipeline = pipeline or PipelineConfig()
    extras, _, _ = cache_timeline(ops, cache_config)
    if not charge_cache:
        extras = [0] * len(ops)
    latencies = [
        _latency(op.kind, pipeline) + extra
        for op, extra in zip(ops, extras)
    ]
    return dataflow_critical_path(ops, latencies)


def sandwich_cycles(ops, cache_config=_DEFAULT_CACHE) -> tuple:
    """``(critical_path, dual_issue, single_issue)`` for one trace.

    The sandwich invariant requires ``critical_path <= dual_issue <=
    single_issue``; the verify family and the quick bench assert it on
    every program they touch.
    """
    single = get_uarch("single-issue")
    dual = get_uarch("dual-issue")
    return (
        critical_path_cycles(ops, single.pipeline, cache_config),
        retime(ops, dual, cache_config).cycles,
        retime(ops, single, cache_config).cycles,
    )
