"""repro.uarch — scoreboarded issue-width timing overlay over the oracle.

``sim/machine.py`` remains the bit-exact architectural oracle; this
package re-times its retired-instruction trace under configurable issue
widths, functional-unit sets and blocking-cache geometries:

* :mod:`repro.uarch.replay`  — record the oracle's retirement trace
  (exact operands, CRF banks, memory beats) via the instrumented-step
  seam;
* :mod:`repro.uarch.hazards` — the scoreboard tracking register / CRF /
  memory-word read-write hazards, plus the dataflow critical path;
* :mod:`repro.uarch.model`   — the greedy in-order issue model and the
  uarch config registry (``base-300mhz``, ``no-interlock``,
  ``single-issue``, ``dual-issue``);
* :mod:`repro.uarch.study`   — the cycles-vs-issue-width sweep priced
  through the ``hw/`` area/power/timing models (``python -m repro
  uarch --study``).

The guaranteed sandwich — dataflow critical path ≤ dual-issue ≤
single-issue — is fuzz-asserted by the ``uarch`` verify family.
"""

from .hazards import Scoreboard, dataflow_critical_path
from .model import (
    UarchResult,
    UarchSpec,
    cache_timeline,
    critical_path_cycles,
    get_uarch,
    register_uarch,
    retime,
    sandwich_cycles,
    uarch_names,
    uarch_specs,
    unregister_uarch,
)
from .replay import RetiredOp, record_trace
from .study import (
    DUAL_ISSUE_CORE_OVERHEAD,
    STUDY_CACHES,
    record_fft_trace,
    run_uarch_study,
    table2_extension_rows,
)

__all__ = [
    "RetiredOp",
    "record_trace",
    "Scoreboard",
    "dataflow_critical_path",
    "UarchSpec",
    "UarchResult",
    "register_uarch",
    "unregister_uarch",
    "get_uarch",
    "uarch_names",
    "uarch_specs",
    "cache_timeline",
    "retime",
    "critical_path_cycles",
    "sandwich_cycles",
    "DUAL_ISSUE_CORE_OVERHEAD",
    "STUDY_CACHES",
    "record_fft_trace",
    "run_uarch_study",
    "table2_extension_rows",
]
