"""Cycles-vs-issue-width design study, priced through the ``hw/`` models.

Extends the paper's Table II along the axis the paper leaves implicit:
what does a second issue slot buy the proposed ASIP, and what does it
cost?  One oracle run per point count records the retirement trace
(:func:`record_fft_trace`); :func:`run_uarch_study` then re-times that
single trace for every requested issue width × cache geometry and prices
each design point — gates from :class:`~repro.hw.area.AreaModel` plus a
dual-issue front-end/bypass overhead on the base core, clock from
:class:`~repro.hw.timing.TimingModel` (capped at the paper's 300 MHz),
power scaled by the area ratio from :class:`~repro.hw.power.PowerModel`.
Every sweep asserts the sandwich invariant before reporting, so a row
can never claim a speedup the hazard model does not actually permit.

:func:`table2_extension_rows` feeds
:func:`repro.baselines.table2.run_table2_extended` — overlay rows carry
the *oracle's* load/store counters (the overlay never re-executes, so
the architectural event counts are by construction the proposed row's)
with the re-timed cycles and the replayed miss count.
"""

from __future__ import annotations

import numpy as np

from ..hw.area import AreaModel
from ..hw.power import PowerModel
from ..hw.timing import TimingModel
from ..sim.cache import CacheConfig
from .model import (
    critical_path_cycles,
    get_uarch,
    retime,
    uarch_names,
)
from .replay import record_trace

__all__ = [
    "DUAL_ISSUE_CORE_OVERHEAD",
    "STUDY_CACHES",
    "record_fft_trace",
    "run_uarch_study",
    "table2_extension_rows",
]

#: extra base-core gates per additional issue slot (second decoder,
#: scoreboard ports, result bypassing) — a conservative RISC figure.
DUAL_ISSUE_CORE_OVERHEAD = 0.15

#: the cache axis of the sweep: the paper's 32 KB cache and a quarter-size
#: variant that actually pressures the blocking-miss path.
STUDY_CACHES = (
    ("32kB-4way", CacheConfig()),
    ("8kB-2way", CacheConfig(sets=128, ways=2)),
)


def record_fft_trace(n_points: int = 1024, seed: int = 2009):
    """One oracle FFT run, recorded.  Returns ``(ops, machine)``.

    The machine is returned post-run so callers can read its
    architectural counters (loads/stores) and plan parameters; its
    output is checked against ``numpy.fft`` so a recording bug can
    never masquerade as a timing result.
    """
    from ..asip import FFTASIP, generate_fft_program

    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n_points) + 1j * rng.standard_normal(n_points)
    machine = FFTASIP(n_points)
    machine.load_input(x)
    ops = record_trace(machine, generate_fft_program(n_points))
    if not np.allclose(machine.read_output(), np.fft.fft(x), atol=1e-6):
        raise AssertionError(
            "recorded oracle run produced a wrong spectrum"
        )
    return ops, machine


def _price(cycles: int, issue_width: int, group_size: int) -> dict:
    """Gates / clock / time / power / energy for one design point."""
    area = AreaModel(group_size)
    core_gates = AreaModel.BASE_CORE_GATES * (
        1 + DUAL_ISSUE_CORE_OVERHEAD * (issue_width - 1)
    )
    gates = core_gates + area.breakdown().total
    clock_mhz = min(300.0, TimingModel(group_size).max_clock_mhz())
    time_us = cycles / clock_mhz
    # Dynamic power scales with the switched area; widen the core, pay
    # proportionally on the PowerModel's single-issue total.
    base_gates = AreaModel.BASE_CORE_GATES + area.breakdown().total
    power_mw = (
        PowerModel(area, clock_mhz=clock_mhz).breakdown().total
        * gates / base_gates
    )
    return {
        "gates": int(round(gates)),
        "clock_mhz": round(clock_mhz, 1),
        "time_us": round(time_us, 2),
        "power_mw": round(power_mw, 2),
        "energy_uj": round(power_mw * time_us / 1000.0, 3),
    }


def run_uarch_study(n_points: int = 1024, seed: int = 2009,
                    widths=(1, 2), caches=STUDY_CACHES) -> list:
    """The sweep: one row dict per (cache geometry × issue width).

    Each cache group also carries the dataflow critical-path floor in
    its rows' ``floor_cycles`` and per-row speedups over that group's
    single-issue baseline.  Raises ``AssertionError`` if any point
    violates the sandwich invariant.
    """
    widths = tuple(sorted(set(widths)))
    if not widths or widths[0] < 1:
        raise ValueError(f"widths must be >= 1, got {widths!r}")
    ops, machine = record_fft_trace(n_points, seed)
    group_size = machine.plan.split.P
    single = get_uarch("single-issue")
    rows = []
    for cache_label, cache_config in caches:
        floor = critical_path_cycles(ops, single.pipeline, cache_config)
        by_width = {}
        for width in widths:
            spec = (
                single if width == 1
                else get_uarch("dual-issue") if width == 2
                else type(single)(
                    name=f"issue-{width}",
                    description=f"{width}-wide sweep point",
                    pipeline=single.pipeline,
                    issue_width=width,
                )
            )
            by_width[width] = retime(ops, spec, cache_config)
        baseline = by_width[min(widths)]
        for width in widths:
            result = by_width[width]
            if not floor <= result.cycles <= baseline.cycles:
                raise AssertionError(
                    f"sandwich violated at width {width} / {cache_label}: "
                    f"{floor} <= {result.cycles} <= {baseline.cycles}"
                )
            row = {
                "config": f"w{width}/{cache_label}",
                "issue_width": width,
                "cache": cache_label,
                "n_points": n_points,
                "instructions": result.instructions,
                "cycles": result.cycles,
                "cpi": round(result.cpi, 3),
                "floor_cycles": floor,
                "speedup": round(baseline.cycles / result.cycles, 3),
                "dcache_misses": result.dcache_misses,
                "stall_raw": result.stalls["raw"],
                "stall_structural": result.stalls["structural"],
                "stall_branch": result.stalls["branch"],
                "stall_cache": result.stalls["cache"],
            }
            row.update(_price(result.cycles, width, group_size))
            rows.append(row)
    return rows


def table2_extension_rows(n_points: int = 1024, seed: int = 2009,
                          widths=(1, 2)) -> dict:
    """Overlay rows for the extended Table II, keyed ``proposed_w<N>``.

    Cycle counts are the overlay's (blocking 32 KB cache); loads and
    stores are the oracle's architectural counters, identical across
    widths because the overlay only re-times.
    """
    from ..baselines.table2 import Table2Row

    ops, machine = record_fft_trace(n_points, seed)
    stats = machine.stats
    rows = {}
    for width in sorted(set(widths)):
        spec = get_uarch("single-issue" if width == 1 else "dual-issue") \
            if width in (1, 2) else None
        if spec is None:
            spec = get_uarch("single-issue")
            spec = type(spec)(
                name=f"issue-{width}", description="",
                pipeline=spec.pipeline, issue_width=width,
            )
        result = retime(ops, spec)
        rows[f"proposed_w{width}"] = Table2Row(
            f"Proposed ASIP ({width}-issue overlay, blocking cache)",
            result.cycles, stats.loads, stats.stores,
            result.dcache_misses,
        )
    return rows


def study_config_names() -> list:
    """Registered config menu, re-exported for CLI listings."""
    return uarch_names()
