"""Scoreboard: read-write hazard tracking over a retired-instruction trace.

The overlay re-times a program *after* the architectural oracle has
executed it, so every operand value — and therefore every register, CRF
entry and memory word an instruction touched — is known exactly.  The
scoreboard exploits that: each :class:`~repro.uarch.replay.RetiredOp`
carries its resource read/write sets as hashable tags

* ``int``                     — an architectural register (r0 filtered out),
* ``("crf", bank, entry)``    — one physical CRF entry in one bank,
* ``("m", word_address)``     — one data-memory word,

and the scoreboard simply maps each tag to the completion cycle of its
last writer.  An instruction is *ready* no earlier than the completion of
every producer it reads (RAW) and every earlier writer of a resource it
overwrites (WAW — the overlay retires in order with single-cycle
occupancy per result, so WAR can never bite and is not tracked).

Because the tags are exact (trace-driven, not decoded from operand
fields), CRF hazards distinguish the two banks: LDIN writes and BUT4
reads target the active bank while BUT4 writes land in the shadow bank,
so a butterfly never falsely depends on the loads of the *next* stage —
exactly the overlap the paper's double-banked CRF buys.
"""

from __future__ import annotations

__all__ = ["Scoreboard", "dataflow_critical_path"]


class Scoreboard:
    """Completion-cycle map per resource, queried in retirement order."""

    __slots__ = ("_ready",)

    def __init__(self):
        self._ready = {}

    def ready(self, op) -> int:
        """Earliest cycle ``op`` may issue, given prior writers.

        The max over the completion cycles of the last writer of every
        resource in the op's read set (RAW) and write set (WAW); zero
        when the op depends on nothing in flight.
        """
        board = self._ready
        ready = 0
        for resource in op.reads:
            t = board.get(resource, 0)
            if t > ready:
                ready = t
        for resource in op.writes:
            t = board.get(resource, 0)
            if t > ready:
                ready = t
        return ready

    def commit(self, op, completion: int) -> None:
        """Record ``op``'s results becoming visible at ``completion``."""
        board = self._ready
        for resource in op.writes:
            board[resource] = completion

    def reset(self) -> None:
        self._ready.clear()


def dataflow_critical_path(ops, latencies) -> int:
    """Length in cycles of the pure dependency chain through ``ops``.

    Ignores issue width, functional units and in-order issue entirely:
    each op starts the moment its scoreboard hazards clear and completes
    ``latencies[i]`` cycles later.  This is the dataflow lower bound of
    the sandwich invariant — no legal schedule that honours the same
    hazards and per-op latencies finishes any instruction earlier, so no
    overlay cycle count may come in below it.
    """
    if len(ops) != len(latencies):
        raise ValueError(
            f"got {len(ops)} ops but {len(latencies)} latencies"
        )
    board = Scoreboard()
    path = 0
    for op, latency in zip(ops, latencies):
        completion = board.ready(op) + latency
        board.commit(op, completion)
        if completion > path:
            path = completion
    return path
