"""Retirement-trace recording: turn an oracle run into re-timeable ops.

The overlay never re-executes anything.  :func:`record_trace` patches a
recording wrapper over ``machine.step`` — the same instance-attribute
seam :class:`repro.sim.trace.ExecutionTrace` uses — which forces
``Machine.run`` onto the interpreted path, observes every retired
instruction with the machine's *pre-step* state in hand, and delegates
to the original bound ``step`` for the actual architectural work.  The
machine therefore finishes in exactly the state a plain run produces
(the ``uarch`` verify family asserts this bit-for-bit), and the recorded
:class:`RetiredOp` list is the program's ground-truth dynamic schedule:
resolved branch directions, effective memory addresses, CRF banks and
entries — everything the timing model needs and nothing it must guess.

Resource tags follow :mod:`repro.uarch.hazards`: plain ints for
registers, ``("crf", bank, entry)`` for CRF entries (bank sampled
pre-step, so BUT4 writes tag the shadow bank), ``("m", word)`` for data
memory.  ``mem`` additionally keeps the ordered ``(word, is_write)``
beat list so the cache replay sees the identical access stream the
oracle's :class:`~repro.sim.cache.DataCache` saw.
"""

from __future__ import annotations

from ..isa.instructions import Instruction, Opcode

__all__ = ["RetiredOp", "record_trace"]


class RetiredOp:
    """One retired instruction with exact operand resources.

    ``kind`` classifies the op for latency/unit assignment ("alu",
    "mul", "load", "store", "branch", "jump", "ldin", "stout", "but4",
    "nop"); ``taken`` records whether the oracle actually redirected the
    PC (always True for jumps, resolved per-instance for branches).
    """

    __slots__ = ("pc", "opcode", "kind", "reads", "writes", "mem", "taken")

    def __init__(self, pc, opcode, kind, reads=(), writes=(), mem=(),
                 taken=False):
        self.pc = pc
        self.opcode = opcode
        self.kind = kind
        self.reads = reads
        self.writes = writes
        self.mem = mem
        self.taken = taken

    def __repr__(self):  # pragma: no cover - debugging aid
        flag = " taken" if self.taken else ""
        return (f"RetiredOp(pc={self.pc}, {self.opcode}, {self.kind},"
                f" reads={self.reads}, writes={self.writes},"
                f" mem={self.mem}{flag})")


_ALU_R_OPS = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.MULH, Opcode.AND,
    Opcode.OR, Opcode.XOR, Opcode.SLT, Opcode.SLLV,
})
_ALU_I_OPS = frozenset({
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLTI,
    Opcode.SLL, Opcode.SRL, Opcode.SRA,
})
_BRANCH_OPS = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE})


def _regs(*numbers):
    """Register tags with r0 (hardwired zero) and duplicates dropped."""
    seen = []
    for number in numbers:
        if number and number not in seen:
            seen.append(number)
    return tuple(seen)


def _pre_op(machine, instr: Instruction) -> RetiredOp:
    """Build the RetiredOp for ``instr`` from the machine's pre-step state."""
    op = instr.opcode
    pc = machine.pc
    if op in _ALU_R_OPS:
        kind = "mul" if op in (Opcode.MUL, Opcode.MULH) else "alu"
        return RetiredOp(pc, op, kind, _regs(instr.rs, instr.rt),
                         _regs(instr.rd))
    if op in _ALU_I_OPS:
        return RetiredOp(pc, op, "alu", _regs(instr.rs), _regs(instr.rt))
    if op is Opcode.LUI:
        return RetiredOp(pc, op, "alu", (), _regs(instr.rt))
    if op is Opcode.LW:
        address = machine.read_reg(instr.rs) + instr.imm
        return RetiredOp(pc, op, "load",
                         _regs(instr.rs) + (("m", address),),
                         _regs(instr.rt), ((address, False),))
    if op is Opcode.SW:
        address = machine.read_reg(instr.rs) + instr.imm
        return RetiredOp(pc, op, "store", _regs(instr.rs, instr.rt),
                         (("m", address),), ((address, True),))
    if op in _BRANCH_OPS:
        return RetiredOp(pc, op, "branch", _regs(instr.rs, instr.rt))
    if op is Opcode.J:
        return RetiredOp(pc, op, "jump")
    if op is Opcode.JAL:
        return RetiredOp(pc, op, "jump", (), _regs(31))
    if op is Opcode.JR:
        return RetiredOp(pc, op, "jump", _regs(instr.rs))
    if op is Opcode.LDIN:
        return _pre_ldin(machine, instr, pc)
    if op is Opcode.STOUT:
        return _pre_stout(machine, instr, pc)
    if op is Opcode.BUT4:
        return _pre_but4(machine, instr, pc)
    # NOP / HALT (and anything the oracle will reject itself).
    return RetiredOp(pc, op, "nop")


def _pre_ldin(machine, instr, pc) -> RetiredOp:
    from ..asip.fft_asip import GROUP_SIZE_REG, STRIDE_REG
    size = machine._group_size()
    stride = machine._stride()
    mem = machine.read_reg(instr.rs)
    crf = machine.read_reg(instr.rt)
    bank = machine.crf.active_bank
    second = mem + stride
    return RetiredOp(
        pc, instr.opcode, "ldin",
        _regs(instr.rs, instr.rt, STRIDE_REG, GROUP_SIZE_REG)
        + (("m", mem), ("m", second)),
        _regs(instr.rs, instr.rt)
        + (("crf", bank, crf % size), ("crf", bank, (crf + 1) % size)),
        ((mem, False), (second, False)),
    )


def _pre_stout(machine, instr, pc) -> RetiredOp:
    from ..asip.fft_asip import GROUP_SIZE_REG, STOUT_STRIDE_REG
    size = machine._group_size()
    stride = machine._stride(STOUT_STRIDE_REG)
    crf = machine.read_reg(instr.rs)
    mem = machine.read_reg(instr.rt)
    bank = machine.crf.active_bank
    second = mem + stride
    return RetiredOp(
        pc, instr.opcode, "stout",
        _regs(instr.rs, instr.rt, STOUT_STRIDE_REG, GROUP_SIZE_REG)
        + (("crf", bank, crf % size), ("crf", bank, (crf + 1) % size)),
        _regs(instr.rs, instr.rt) + (("m", mem), ("m", second)),
        ((mem, True), (second, True)),
    )


def _pre_but4(machine, instr, pc) -> RetiredOp:
    from ..asip.fft_asip import GROUP_SIZE_REG
    machine._group_size()   # idempotent: (re)configures the AC logic
    module = machine.read_reg(instr.rs)
    stage = machine.read_reg(instr.rt)
    addresses = machine.ac.addresses(module, stage)
    bank = machine.crf.active_bank
    shadow = 1 - bank
    reads = tuple(
        ("crf", bank, entry)
        for entry in addresses.crf_reads_first + addresses.crf_reads_second
    )
    writes = tuple(
        ("crf", shadow, entry)
        for entry in addresses.crf_writes_first + addresses.crf_writes_second
    )
    return RetiredOp(
        pc, instr.opcode, "but4",
        _regs(instr.rs, instr.rt, GROUP_SIZE_REG) + reads,
        writes,
    )


def record_trace(machine, program) -> list:
    """Run ``program`` on ``machine``, returning its RetiredOp trace.

    The machine executes through the interpreted path (the patched
    ``step`` declines the predecoded fast path and batch fusion) and
    ends in exactly the architectural state of an unrecorded run; the
    wrapper is removed again even if execution raises.
    """
    if "step" in machine.__dict__:
        raise ValueError("machine.step is already instrumented")
    ops = []
    append = ops.append
    original_step = machine.step
    stats = machine.stats

    def recording_step(instr):
        op = _pre_op(machine, instr)
        taken_before = stats.taken_branches
        original_step(instr)
        op.taken = stats.taken_branches != taken_before
        append(op)

    machine.step = recording_step
    try:
        machine.run(program)
    finally:
        machine.__dict__.pop("step", None)
    return ops
