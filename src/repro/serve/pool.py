"""Shared engine pool: cached facade engines leased to tenant sessions.

Compiled plans, ROM tables and worker pools are expensive to build and
cheap to share: the pool caches one facade :class:`~repro.engines.Engine`
per ``(n_points, backend, precision)`` key and hands out
:class:`EngineLease` proxies.  A lease looks like an engine to
:class:`~repro.sessions.StreamSession` (``transform_many`` /
``n_points`` / ``batch`` / ``close``), but:

* execution is serialised per pooled engine (engines are not
  thread-safe) — two tenants on the same key interleave chunk-at-a-time
  under the entry's lock;
* every chunk is timed and reported through the lease's ``on_chunk``
  callback (the serve tier's metrics feed);
* ``close()`` releases the lease; ``close(dispose=True)`` — the
  supervisor's poisoned-engine path — also evicts the entry from the
  cache and closes the engine once the last lease drops, so the next
  lease on that key builds a fresh engine.
"""

from __future__ import annotations

import threading
import time

from ..engines import engine as build_engine

from .. import telemetry

__all__ = ["EngineLease", "EnginePool"]


class _PoolEntry:
    """One cached engine plus its sharing state."""

    def __init__(self, key: tuple, engine):
        self.key = key
        self.engine = engine
        # Serialises chunk execution across every lease on this entry:
        # facade engines are not thread-safe.
        self.exec_lock = threading.Lock()
        self.leases = 0
        self.evicted = False


class EngineLease:
    """A tenant's serialised, metered handle on one pooled engine."""

    def __init__(self, pool: "EnginePool", entry: _PoolEntry,
                 on_chunk=None):
        self._pool = pool
        self._entry = entry
        self._on_chunk = on_chunk
        self._released = False

    # The engine surface StreamSession consumes -------------------------

    @property
    def n_points(self) -> int:
        return self._entry.engine.n_points

    @property
    def backend(self) -> str:
        return self._entry.engine.backend

    @property
    def precision(self) -> str:
        return self._entry.engine.precision

    @property
    def batch(self):
        return self._entry.engine.batch

    @property
    def degraded(self) -> bool:
        """Live degradation reading of the pooled engine."""
        return bool(getattr(self._entry.engine, "degraded", False))

    @property
    def key(self) -> tuple:
        """The pool cache key this lease is pinned to."""
        return self._entry.key

    @property
    def engine(self):
        """The shared pooled engine (introspection / fault injection)."""
        return self._entry.engine

    def transform_many(self, blocks):
        if self._released:
            raise RuntimeError("lease was released; open a new session")
        start = time.perf_counter()
        with telemetry.span("pool.execute") as pool_span:
            with self._entry.exec_lock:
                if pool_span.is_recording:
                    pool_span.set("key", str(self._entry.key))
                    pool_span.set(
                        "lock_wait_ms",
                        round((time.perf_counter() - start) * 1e3, 3),
                    )
                result = self._entry.engine.transform_many(blocks)
        seconds = time.perf_counter() - start
        if self._on_chunk is not None:
            self._on_chunk(result, seconds)
        return result

    def _verify_chunk(self, chunk, spectrum, symbols_before) -> None:
        self._entry.engine._verify_chunk(chunk, spectrum, symbols_before)

    def close(self, dispose: bool = False) -> None:
        """Release the lease (idempotent).

        ``dispose=True`` marks the engine poisoned: the entry leaves
        the cache immediately (new leases build fresh) and the engine
        is closed once its last lease is gone.
        """
        if self._released:
            if dispose:
                self._pool._dispose(self._entry)
            return
        self._released = True
        self._pool._release(self._entry, dispose=dispose)

    def __repr__(self) -> str:
        state = "released" if self._released else "live"
        return f"EngineLease({self._entry.key}, {state})"


class EnginePool:
    """Cache of facade engines keyed by ``(n_points, backend, precision)``.

    ``engine_options`` are forwarded to every :func:`repro.engine`
    build (e.g. ``workers=``, ``min_parallel_symbols=``, breaker
    backoff knobs) — the serve tier uses this to give sharded tenants
    fast-healing breakers.
    """

    def __init__(self, **engine_options):
        self.engine_options = engine_options
        self._lock = threading.Lock()
        self._entries: dict = {}
        self._closed = False
        self.built = 0
        self.reused = 0
        self.disposed = 0

    def lease(self, n_points: int, backend: str = "compiled",
              precision: str = "float", on_chunk=None,
              **overrides) -> EngineLease:
        """Lease the cached engine for a key, building it on first use."""
        key = (int(n_points), backend, precision)
        with self._lock:
            if self._closed:
                raise RuntimeError("engine pool is closed")
            entry = self._entries.get(key)
            if entry is None:
                options = dict(self.engine_options)
                options.update(overrides)
                eng = build_engine(
                    n_points, backend=backend, precision=precision,
                    **options,
                )
                entry = self._entries[key] = _PoolEntry(key, eng)
                self.built += 1
            else:
                self.reused += 1
            entry.leases += 1
        return EngineLease(self, entry, on_chunk=on_chunk)

    # Lease bookkeeping ---------------------------------------------------

    def _release(self, entry: _PoolEntry, dispose: bool = False) -> None:
        close_engine = False
        with self._lock:
            entry.leases = max(entry.leases - 1, 0)
            if dispose:
                self._evict_locked(entry)
            close_engine = entry.evicted and entry.leases == 0
        if close_engine:
            self._close_engine(entry)

    def _dispose(self, entry: _PoolEntry) -> None:
        with self._lock:
            self._evict_locked(entry)
            close_engine = entry.leases == 0
        if close_engine:
            self._close_engine(entry)

    def _evict_locked(self, entry: _PoolEntry) -> None:
        if not entry.evicted:
            entry.evicted = True
            self.disposed += 1
            if self._entries.get(entry.key) is entry:
                del self._entries[entry.key]

    @staticmethod
    def _close_engine(entry: _PoolEntry) -> None:
        try:
            entry.engine.close()
        except Exception:  # poisoned engines may fail their own teardown
            pass

    # Introspection / lifecycle ------------------------------------------

    def stats(self) -> dict:
        """Cache-efficiency counters plus live keys."""
        with self._lock:
            return {
                "built": self.built,
                "reused": self.reused,
                "disposed": self.disposed,
                "live": len(self._entries),
                "keys": sorted(self._entries),
            }

    def breaker_snapshots(self) -> dict:
        """Breaker state per live sharded entry (empty otherwise)."""
        with self._lock:
            entries = list(self._entries.values())
        out = {}
        for entry in entries:
            sharded = getattr(entry.engine.impl, "sharded", None)
            breaker = getattr(sharded, "breaker", None)
            if breaker is not None:
                out["x".join(map(str, entry.key))] = breaker.snapshot()
        return out

    def close(self) -> None:
        """Close every cached engine (idempotent)."""
        with self._lock:
            self._closed = True
            entries, self._entries = list(self._entries.values()), {}
        for entry in entries:
            entry.evicted = True
            self._close_engine(entry)

    def __enter__(self) -> "EnginePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
