"""Threaded load generator for the serving tier.

:func:`run_load` drives ``tenants`` concurrent producer threads through
one :class:`~repro.serve.server.SessionServer` — each tenant feeds its
own random symbol stream under a deadline, drains its own results, and
verifies the merged spectrum against a serial ``np.fft.fft`` oracle.
The return value is the flat measurement dict ``python -m repro serve
--bench`` records into ``BENCH_engine.json``: sessions/s, aggregate
symbols/s, p50/p99 chunk latency and the shed/backpressure counts.

At *nominal* load (every tenant within its own session capacity and a
consumer that drains) the admission controller must shed nothing —
asserted by the quick-bench floor in
``tests/test_engine_speed_quick.py``.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from .errors import ServeError
from .server import SessionServer

__all__ = ["run_load"]


def _tenant_worker(server, name, blocks, feed_size, deadline, errors,
                   mismatches):
    """Feed / drain / verify one tenant's whole stream."""
    try:
        drained = []
        for lo in range(0, len(blocks), feed_size):
            server.submit(name, blocks[lo:lo + feed_size],
                          deadline=deadline)
            drained.extend(server.drain(name))
        drained.extend(server.close_session(name))
        got = np.concatenate([r.spectrum for r in drained]) \
            if drained else np.empty((0, blocks.shape[1]))
        want = np.fft.fft(blocks, axis=1)
        if got.shape != want.shape or not np.allclose(got, want, atol=1e-6):
            mismatches.append(name)
    except (ServeError, Exception) as exc:  # noqa: BLE001 - report, don't die
        errors.append((name, f"{type(exc).__name__}: {exc}"))


def run_load(tenants: int = 8, symbols: int = 64, n_points: int = 64,
             *, backend: str = "compiled", precision: str = "float",
             batch: int = 8, capacity: int = None, feed_size: int = 4,
             deadline: float = 10.0, exec_timeout: float = None,
             global_budget: int = None, seed: int = 0,
             server: SessionServer = None) -> dict:
    """Drive ``tenants`` concurrent sessions; return the measurements.

    Every tenant runs the same-size workload (``symbols`` blocks of
    ``n_points``) on the same pool key, so the pool builds one engine
    and the cache-reuse counter should read ``tenants - 1``.  Pass a
    prepared ``server`` to load an existing instance (faults injected,
    custom pool) — it is *not* closed for you then.
    """
    rng = np.random.default_rng(seed)
    own_server = server is None
    if own_server:
        server = SessionServer(
            batch=batch, capacity=capacity, exec_timeout=exec_timeout,
            global_budget=global_budget,
        )
    errors, mismatches, threads = [], [], []
    streams = {}
    try:
        for index in range(tenants):
            name = f"tenant-{index}"
            streams[name] = (
                rng.standard_normal((symbols, n_points))
                + 1j * rng.standard_normal((symbols, n_points))
            )
            server.open_session(name, n_points, backend=backend,
                                precision=precision, batch=batch,
                                capacity=capacity)
        start = time.perf_counter()
        for name, blocks in streams.items():
            worker = threading.Thread(
                target=_tenant_worker,
                args=(server, name, blocks, feed_size, deadline, errors,
                      mismatches),
                name=f"loadgen-{name}", daemon=True,
            )
            worker.start()
            threads.append(worker)
        for worker in threads:
            worker.join()
        elapsed = max(time.perf_counter() - start, 1e-9)
        totals = server.metrics.totals()
        pool = server.pool.stats()
        return {
            "tenants": tenants,
            "symbols_per_tenant": symbols,
            "n_points": n_points,
            "backend": backend,
            "precision": precision,
            "batch": batch,
            "seconds": elapsed,
            "sessions_per_s": tenants / elapsed,
            "symbols_per_s": totals["symbols_out"] / elapsed,
            "latency_p50_ms": totals["latency_p50_ms"],
            "latency_p99_ms": totals["latency_p99_ms"],
            "shed": totals["shed"],
            "backpressure": totals["backpressure"],
            "timeouts": totals["timeouts"],
            "degraded_transitions": totals["degraded_transitions"],
            "pool_built": pool["built"],
            "pool_reused": pool["reused"],
            "errors": errors,
            "mismatches": mismatches,
            "ok": not errors and not mismatches,
        }
    finally:
        if own_server:
            server.close()
