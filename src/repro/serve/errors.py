"""Structured errors of the serving tier.

All serve errors derive from :class:`ServeError`, so callers can catch
the tier with one clause; the split matters operationally:

* :class:`ServerOverloaded` — admission control shed the request (the
  global buffered-symbol budget would be exceeded).  Retriable after
  draining; nothing was queued.
* :class:`TenantFailed` — the tenant was retired by the supervisor (a
  chunk deadline expired, its engine was disposed).  Its finished tail
  stays drainable; new work needs a new session.
* :class:`UnknownTenant` / :class:`ServerClosed` — caller errors.
"""

from __future__ import annotations

__all__ = [
    "ServeError",
    "ServerClosed",
    "ServerOverloaded",
    "TenantFailed",
    "UnknownTenant",
]


class ServeError(RuntimeError):
    """Base class of every serving-tier error."""


class ServerClosed(ServeError):
    """Raised when using a server after :meth:`SessionServer.close`."""


class ServerOverloaded(ServeError):
    """Raised when admission control sheds a request.

    The global buffered-symbol budget was exhausted: accepting the
    request would let producers outrun consumers unboundedly.  Nothing
    was queued — the caller owns the retry (drain, back off, resubmit).
    """


class TenantFailed(ServeError):
    """Raised when submitting to a tenant the supervisor has retired."""


class UnknownTenant(ServeError):
    """Raised when naming a tenant the server has never opened."""
