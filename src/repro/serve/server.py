"""`SessionServer`: supervised multi-tenant session serving.

The serving tier stacks the repo's existing layers: named tenants each
own a :class:`~repro.sessions.StreamSession`, every session executes
through an :class:`~repro.serve.pool.EngineLease` on the shared
:class:`~repro.serve.pool.EnginePool`, and the server wraps the stack
with the three behaviours a multi-tenant deployment needs:

* **admission control** — :meth:`submit` sheds load with
  :class:`ServerOverloaded` once the server-wide buffered-symbol
  budget is reached, and counts per-tenant backpressure rejections.
  Nothing is ever silently queued past a bound.
* **deadline propagation** — a per-request ``deadline`` bounds the
  blocking feed (:class:`~repro.sessions.SessionBackpressure` when it
  expires), while the per-tenant ``exec_timeout`` arms the session's
  execution watchdog so a wedged engine raises
  :class:`~repro.sessions.SessionExecutionTimeout` instead of hanging.
* **supervision** — a tenant whose chunk times out is *failed*: its
  lease is disposed (the pooled engine is evicted as poisoned), its
  pending input is dropped via :meth:`StreamSession.abort`, its
  finished tail stays drainable, and every other tenant keeps running.
  Pool self-healing below this layer (the sharded engine's circuit
  breaker) restores parallel execution without the server doing
  anything.

Health lives in a :class:`~repro.serve.metrics.MetricsRegistry`;
:meth:`health` folds in pool cache stats and live breaker snapshots.
"""

from __future__ import annotations

import threading

import numpy as np

from ..sessions import (
    SessionBackpressure,
    SessionClosed,
    SessionExecutionTimeout,
    StreamSession,
)
from .errors import (
    ServerClosed,
    ServerOverloaded,
    TenantFailed,
    UnknownTenant,
)
from .metrics import MetricsRegistry
from .pool import EnginePool

from .. import telemetry

__all__ = ["SessionServer", "TenantState"]


class TenantState:
    """One tenant's session, lease, metrics and liveness flag."""

    def __init__(self, name: str, session: StreamSession, lease, metrics):
        self.name = name
        self.session = session
        self.lease = lease
        self.metrics = metrics
        self.failed = False
        self.failure_reason = None


class SessionServer:
    """Multiplex named tenant sessions over a shared engine pool.

    Parameters
    ----------
    global_budget:
        Server-wide bound on buffered symbols (pending + executing +
        undrained, summed over tenants).  ``None`` (default) derives
        the bound as ``2 *`` the summed session capacities — per-tenant
        backpressure then engages strictly before global shedding, so a
        nominal load on a draining consumer never sheds.
    batch, capacity:
        Session defaults for :meth:`open_session`.
    exec_timeout:
        Default per-chunk watchdog bound (seconds) for new sessions;
        ``None`` trusts the engines.
    backoff_initial, backoff_max:
        Producer wait-slice bounds forwarded to every session — the
        serve default (1 ms initial) reacts to drains an order of
        magnitude faster than the standalone-session default.
    pool:
        An :class:`EnginePool` to share (the server builds and owns one
        otherwise); ``engine_options`` go to the pool's engine builds.
    """

    DEFAULT_BACKOFF_INITIAL = 0.001
    DEFAULT_BACKOFF_MAX = 0.05

    def __init__(self, *, global_budget: int = None, batch: int = None,
                 capacity: int = None, exec_timeout: float = None,
                 backoff_initial: float = None, backoff_max: float = None,
                 pool: EnginePool = None, **engine_options):
        self.global_budget = (
            None if global_budget is None else max(int(global_budget), 1)
        )
        self.default_batch = batch
        self.default_capacity = capacity
        self.default_exec_timeout = exec_timeout
        self.backoff_initial = (
            self.DEFAULT_BACKOFF_INITIAL if backoff_initial is None
            else backoff_initial
        )
        self.backoff_max = (
            self.DEFAULT_BACKOFF_MAX if backoff_max is None else backoff_max
        )
        self._own_pool = pool is None
        self.pool = EnginePool(**engine_options) if pool is None else pool
        self.metrics = MetricsRegistry()
        self._tenants: dict = {}
        self._lock = threading.Lock()
        self._closed = False

    # Tenant lifecycle ----------------------------------------------------

    def open_session(self, tenant: str, n_points: int, *,
                     backend: str = "compiled", precision: str = "float",
                     batch: int = None, capacity: int = None,
                     verify: bool = False, exec_timeout: float = None,
                     **engine_overrides) -> TenantState:
        """Open (and register) a named tenant session.

        Tenant names are unique among *live* sessions; a failed or
        closed tenant's name may be reused — the old record's drainable
        tail is dropped at that point.
        """
        self._check_open()
        metrics = self.metrics.tenant(tenant)
        lease = self.pool.lease(
            n_points, backend=backend, precision=precision,
            on_chunk=metrics.record_chunk, **engine_overrides,
        )
        sess = StreamSession(
            lease,
            batch=batch if batch is not None else self.default_batch,
            capacity=(capacity if capacity is not None
                      else self.default_capacity),
            verify=verify,
            own_engine=False,
            backoff_initial=self.backoff_initial,
            backoff_max=self.backoff_max,
            exec_timeout=(exec_timeout if exec_timeout is not None
                          else self.default_exec_timeout),
        )
        state = TenantState(tenant, sess, lease, metrics)
        with self._lock:
            if self._closed:
                raise ServerClosed("server closed during open_session")
            existing = self._tenants.get(tenant)
            if existing is not None and not existing.failed \
                    and not existing.session.closed:
                raise ValueError(f"tenant {tenant!r} already has a live "
                                 f"session")
            self._tenants[tenant] = state
        return state

    def _check_open(self) -> None:
        if self._closed:
            raise ServerClosed("SessionServer is closed")

    def _tenant(self, name: str) -> TenantState:
        with self._lock:
            state = self._tenants.get(name)
        if state is None:
            raise UnknownTenant(f"no tenant named {name!r}")
        return state

    # Admission + submission ----------------------------------------------

    def _buffered_total(self) -> int:
        with self._lock:
            states = list(self._tenants.values())
        return sum(s.session.buffered_symbols for s in states)

    def _budget(self) -> int:
        if self.global_budget is not None:
            return self.global_budget
        with self._lock:
            states = [s for s in self._tenants.values()
                      if not s.session.closed]
        return max(2 * sum(s.session.capacity for s in states), 1)

    def submit(self, tenant: str, blocks, deadline: float = None) -> int:
        """Feed symbols to a tenant under admission control.

        Admission runs *before* anything is queued: over the global
        budget the whole request is shed with :class:`ServerOverloaded`
        (never partially accepted, never silently queued).  Admitted
        symbols feed with ``wait=True`` bounded by ``deadline`` seconds
        — a full per-tenant buffer blocks until the consumer drains or
        the deadline expires in :class:`SessionBackpressure`.  A chunk
        execution that trips the watchdog fails the whole tenant (see
        :meth:`fail_tenant`) and re-raises the structured timeout.
        """
        self._check_open()
        state = self._tenant(tenant)
        if state.failed:
            raise TenantFailed(
                f"tenant {tenant!r} was retired: {state.failure_reason}"
            )
        blocks = np.asarray(blocks, dtype=complex)
        count = 1 if blocks.ndim == 1 else len(blocks)
        # The per-tenant request span: chunk execution happens on this
        # thread inside feed() (and, under exec_timeout, on the watchdog
        # thread, which re-attaches this context), so session.chunk /
        # engine.transform spans nest under it across thread boundaries.
        with telemetry.span(
            "serve.request", tenant=tenant, symbols=count,
            deadline=deadline,
        ) as request_span:
            budget = self._budget()
            if self._buffered_total() + count > budget:
                state.metrics.record_shed(count)
                request_span.set("shed", True)
                raise ServerOverloaded(
                    f"global budget exhausted ({self._buffered_total()} "
                    f"buffered + {count} requested > {budget}); request "
                    f"shed"
                )
            try:
                fed = state.session.feed(
                    blocks, wait=True, timeout=deadline,
                )
            except SessionBackpressure:
                state.metrics.record_backpressure(count)
                request_span.set("backpressure", True)
                raise
            except SessionExecutionTimeout as exc:
                self.fail_tenant(tenant, str(exc))
                request_span.set("timeout", True)
                raise
            state.metrics.record_admitted(fed)
            return fed

    # Consumption ---------------------------------------------------------

    def drain(self, tenant: str, max_results: int = None) -> list:
        """Pop the tenant's finished chunks (allowed after close/fail)."""
        return self._tenant(tenant).session.drain(max_results=max_results)

    def results(self, tenant: str, wait: float = None):
        """The tenant session's :meth:`StreamSession.results` iterator."""
        return self._tenant(tenant).session.results(wait=wait)

    def flush(self, tenant: str) -> None:
        """Force the tenant's pending partial chunk through now."""
        state = self._tenant(tenant)
        try:
            state.session.flush()
        except SessionExecutionTimeout as exc:
            self.fail_tenant(tenant, str(exc))
            raise

    # Supervision ---------------------------------------------------------

    def fail_tenant(self, tenant: str, reason: str) -> None:
        """Retire a tenant whose engine is poisoned (idempotent).

        Disposes the lease (evicting the shared engine so *new* leases
        build fresh), drops the tenant's pending input, and keeps its
        finished chunks drainable.  Other tenants are untouched.
        """
        state = self._tenant(tenant)
        if state.failed:
            return
        state.failed = True
        state.failure_reason = reason
        state.metrics.record_timeout(reason)
        state.lease.close(dispose=True)
        state.session.abort()

    def close_session(self, tenant: str) -> list:
        """Flush + close one tenant; returns its undrained tail."""
        state = self._tenant(tenant)
        if not state.failed:
            try:
                state.session.close()
            except SessionExecutionTimeout as exc:
                self.fail_tenant(tenant, str(exc))
                raise
            state.lease.close()
            state.metrics.record_closed()
        return state.session.drain()

    # Introspection -------------------------------------------------------

    @property
    def tenants(self) -> list:
        """Names of every registered tenant (live, failed and closed)."""
        with self._lock:
            return sorted(self._tenants)

    def health(self) -> dict:
        """One dict: per-tenant metrics, pool cache stats, breakers."""
        return {
            "closed": self._closed,
            "budget": self._budget(),
            "buffered": self._buffered_total(),
            "tenants": self.metrics.snapshot(),
            "pool": self.pool.stats(),
            "breakers": self.pool.breaker_snapshots(),
        }

    # Lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close every live tenant, then the pool (if owned). Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            states = list(self._tenants.values())
        for state in states:
            if state.failed or state.session.closed:
                continue
            try:
                state.session.close()
            except SessionExecutionTimeout:
                state.failed = True
                state.failure_reason = "timeout during server close"
                state.lease.close(dispose=True)
                state.session.abort()
                continue
            state.lease.close()
            state.metrics.record_closed()
        if self._own_pool:
            self.pool.close()

    def __enter__(self) -> "SessionServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
