"""Per-tenant health metrics for the serving tier.

One :class:`TenantMetrics` per tenant accumulates throughput, chunk
latency quantiles, shed/timeout counts and degradation transitions; a
:class:`MetricsRegistry` holds them all and renders one consistent
snapshot for ``python -m repro serve`` and the load generator.  All
mutation goes through per-tenant locks, so the hot path (one append and
a few integer bumps per executed chunk) never contends across tenants.
"""

from __future__ import annotations

import threading
import time

# The quantile rule and the latency window live in the shared metrics
# core now; ``percentile`` stays re-exported here for compatibility.
from ..telemetry.metrics import Histogram, percentile

__all__ = ["TenantMetrics", "MetricsRegistry", "percentile"]


class TenantMetrics:
    """Rolling health counters for one named tenant."""

    #: chunk-latency samples kept for the quantiles (rolling window).
    LATENCY_WINDOW = 4096

    def __init__(self, tenant: str, clock=time.monotonic):
        self.tenant = tenant
        self._clock = clock
        self._lock = threading.Lock()
        self._started = clock()
        self._latencies = Histogram(
            name=f"{tenant}.chunk_latency", window=self.LATENCY_WINDOW,
        )
        self.symbols_in = 0
        self.symbols_out = 0
        self.chunks = 0
        self.shed_count = 0
        self.backpressure_count = 0
        self.timeout_count = 0
        self.degraded_chunks = 0
        #: healthy->degraded edges observed in this tenant's results.
        self.degraded_transitions = 0
        self._last_degraded = False
        self.state = "active"
        self.failure_reason = None

    # Recording (hot path) ------------------------------------------------

    def record_admitted(self, symbols: int) -> None:
        with self._lock:
            self.symbols_in += symbols

    def record_shed(self, symbols: int) -> None:
        with self._lock:
            self.shed_count += symbols

    def record_backpressure(self, symbols: int) -> None:
        with self._lock:
            self.backpressure_count += symbols

    def record_chunk(self, result, seconds: float) -> None:
        """Fold one executed chunk (a ``TransformResult``) in."""
        with self._lock:
            self.chunks += 1
            self.symbols_out += result.n_symbols
            self._latencies.observe(float(seconds))
            if result.degraded:
                self.degraded_chunks += 1
                if not self._last_degraded:
                    self.degraded_transitions += 1
            self._last_degraded = bool(result.degraded)

    def record_timeout(self, reason: str) -> None:
        with self._lock:
            self.timeout_count += 1
            self.state = "failed"
            self.failure_reason = reason

    def record_closed(self) -> None:
        with self._lock:
            if self.state == "active":
                self.state = "closed"

    # Reading -------------------------------------------------------------

    def snapshot(self) -> dict:
        """One self-consistent dict of everything above."""
        with self._lock:
            elapsed = max(self._clock() - self._started, 1e-9)
            lat = self._latencies.values()
            return {
                "tenant": self.tenant,
                "state": self.state,
                "symbols_in": self.symbols_in,
                "symbols_out": self.symbols_out,
                "chunks": self.chunks,
                "symbols_per_s": self.symbols_out / elapsed,
                "latency_p50_ms": percentile(lat, 50.0) * 1e3,
                "latency_p99_ms": percentile(lat, 99.0) * 1e3,
                "shed": self.shed_count,
                "backpressure": self.backpressure_count,
                "timeouts": self.timeout_count,
                "degraded_chunks": self.degraded_chunks,
                "degraded_transitions": self.degraded_transitions,
                "failure_reason": self.failure_reason,
            }


class MetricsRegistry:
    """All tenants' metrics behind one snapshot call."""

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: dict = {}

    def tenant(self, name: str) -> TenantMetrics:
        """Get (or create) the metrics record for ``name``."""
        with self._lock:
            metrics = self._tenants.get(name)
            if metrics is None:
                metrics = self._tenants[name] = TenantMetrics(
                    name, clock=self._clock,
                )
            return metrics

    def snapshot(self) -> dict:
        """``{tenant: snapshot_dict}`` for every tenant ever seen."""
        with self._lock:
            tenants = list(self._tenants.values())
        return {m.tenant: m.snapshot() for m in tenants}

    def totals(self) -> dict:
        """Aggregate counters across tenants (for the load generator)."""
        snaps = self.snapshot().values()
        lat50 = [s["latency_p50_ms"] for s in snaps if s["chunks"]]
        lat99 = [s["latency_p99_ms"] for s in snaps if s["chunks"]]
        return {
            "tenants": len(snaps),
            "symbols_in": sum(s["symbols_in"] for s in snaps),
            "symbols_out": sum(s["symbols_out"] for s in snaps),
            "shed": sum(s["shed"] for s in snaps),
            "backpressure": sum(s["backpressure"] for s in snaps),
            "timeouts": sum(s["timeouts"] for s in snaps),
            "degraded_transitions": sum(
                s["degraded_transitions"] for s in snaps
            ),
            "latency_p50_ms": max(lat50, default=0.0),
            "latency_p99_ms": max(lat99, default=0.0),
        }
