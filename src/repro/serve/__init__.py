"""repro.serve — supervised concurrent session serving.

The million-user tier over the streaming substrate::

    >>> from repro.serve import SessionServer
    >>> with SessionServer(batch=8) as server:
    ...     server.open_session("radio-a", 256)
    ...     server.submit("radio-a", blocks, deadline=0.5)
    ...     chunks = server.drain("radio-a")
    ...     server.health()["tenants"]["radio-a"]["latency_p99_ms"]

Layers (bottom-up):

* :mod:`repro.serve.pool` — cached engines keyed by ``(n_points,
  backend, precision)``, leased per tenant with serialised, metered
  execution;
* :mod:`repro.serve.server` — :class:`SessionServer`: admission
  control with load shedding, deadline propagation into the session
  watchdog, and supervision that fails one tenant without touching the
  rest (pool self-healing itself lives in
  :class:`repro.core.CircuitBreaker` under the sharded engine);
* :mod:`repro.serve.metrics` — the per-tenant health registry;
* :mod:`repro.serve.loadgen` — the ``python -m repro serve --bench``
  concurrent load generator.
"""

from .errors import (
    ServeError,
    ServerClosed,
    ServerOverloaded,
    TenantFailed,
    UnknownTenant,
)
from .loadgen import run_load
from .metrics import MetricsRegistry, TenantMetrics, percentile
from .pool import EngineLease, EnginePool
from .server import SessionServer, TenantState

__all__ = [
    "SessionServer",
    "TenantState",
    "EnginePool",
    "EngineLease",
    "MetricsRegistry",
    "TenantMetrics",
    "percentile",
    "run_load",
    "ServeError",
    "ServerClosed",
    "ServerOverloaded",
    "TenantFailed",
    "UnknownTenant",
]
