"""Text assembler for the FFT ASIP ISA.

Accepts the syntax produced by :meth:`Instruction.__str__` plus the usual
conveniences: labels (``name:``), comments (``# ...`` and ``; ...``),
register aliases, ``li``/``move`` pseudo-instructions, and decimal or hex
immediates.  Example::

    # r1 = number of groups
        li   r1, 8
    loop:
        but4 r2, r3
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
"""

from __future__ import annotations

from .instructions import BRANCH_OPCODES, Format, Instruction, Opcode
from .program import Program, ProgramBuilder
from .registers import name_to_number

__all__ = ["assemble", "AssemblyError"]

_OPCODES_BY_NAME = {op.value: op for op in Opcode}


class AssemblyError(ValueError):
    """Raised for syntax or semantic errors, with the line number."""

    def __init__(self, line_number: int, message: str):
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def _parse_int(token: str, line_number: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(line_number, f"bad immediate {token!r}") from None


def _reg(token: str, line_number: int) -> int:
    try:
        return name_to_number(token)
    except ValueError as exc:
        raise AssemblyError(line_number, str(exc)) from None


def _split_operands(rest: str) -> list:
    return [t.strip() for t in rest.split(",") if t.strip()]


def assemble(source: str, name: str = "") -> Program:
    """Assemble ``source`` text into a :class:`Program`."""
    builder = ProgramBuilder(name)
    for line_number, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].split(";", 1)[0].strip()
        if not line:
            continue
        while ":" in line:
            label, line = line.split(":", 1)
            if not label.strip():
                raise AssemblyError(line_number, "empty label")
            builder.label(label.strip())
            line = line.strip()
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        operands = _split_operands(rest)
        _assemble_one(builder, mnemonic, operands, line_number)
    return builder.build()


def _assemble_one(builder: ProgramBuilder, mnemonic: str, operands: list,
                  line_number: int) -> None:
    if mnemonic == "li":
        if len(operands) != 2:
            raise AssemblyError(line_number, "li needs rt, imm")
        builder.li(_reg(operands[0], line_number),
                   _parse_int(operands[1], line_number))
        return
    if mnemonic == "move":
        if len(operands) != 2:
            raise AssemblyError(line_number, "move needs rt, rs")
        builder.move(_reg(operands[0], line_number),
                     _reg(operands[1], line_number))
        return
    if mnemonic not in _OPCODES_BY_NAME:
        raise AssemblyError(line_number, f"unknown mnemonic {mnemonic!r}")
    opcode = _OPCODES_BY_NAME[mnemonic]
    fmt = Instruction(opcode=opcode).format

    if fmt is Format.NONE:
        builder.emit(opcode)
        return
    if opcode is Opcode.JR:
        builder.emit(opcode, rs=_reg(operands[0], line_number))
        return
    if fmt is Format.J:
        if operands[0].lstrip("-").isdigit():
            builder.emit(opcode, imm=_parse_int(operands[0], line_number))
        else:
            builder.branch(opcode, target=operands[0])
        return
    if opcode in (Opcode.LW, Opcode.SW):
        # rt, imm(rs)
        if len(operands) != 2 or "(" not in operands[1]:
            raise AssemblyError(line_number, f"{mnemonic} needs rt, imm(rs)")
        rt = _reg(operands[0], line_number)
        imm_part, rs_part = operands[1].split("(", 1)
        rs = _reg(rs_part.rstrip(") "), line_number)
        imm = _parse_int(imm_part or "0", line_number)
        builder.emit(opcode, rt=rt, rs=rs, imm=imm)
        return
    if opcode in BRANCH_OPCODES:
        if len(operands) != 3:
            raise AssemblyError(line_number, f"{mnemonic} needs rs, rt, target")
        rs = _reg(operands[0], line_number)
        rt = _reg(operands[1], line_number)
        if operands[2].lstrip("-").isdigit():
            builder.emit(opcode, rs=rs, rt=rt,
                         imm=_parse_int(operands[2], line_number))
        else:
            builder.branch(opcode, rs=rs, rt=rt, target=operands[2])
        return
    if fmt is Format.R:
        if opcode in (Opcode.BUT4, Opcode.LDIN) and len(operands) == 2:
            # but4/ldin rs, rt — the natural two-operand spelling
            builder.emit(
                opcode,
                rs=_reg(operands[0], line_number),
                rt=_reg(operands[1], line_number),
            )
            return
        if len(operands) != 3:
            raise AssemblyError(line_number, f"{mnemonic} needs 3 operands")
        builder.emit(
            opcode,
            rd=_reg(operands[0], line_number),
            rs=_reg(operands[1], line_number),
            rt=_reg(operands[2], line_number),
        )
        return
    if opcode is Opcode.STOUT:
        # stout rs, rt [, flag] — flag 1 selects the pre-rotating form
        if len(operands) not in (2, 3):
            raise AssemblyError(line_number, "stout needs rs, rt [, flag]")
        flag = _parse_int(operands[2], line_number) if len(operands) == 3 else 0
        builder.emit(
            opcode,
            rs=_reg(operands[0], line_number),
            rt=_reg(operands[1], line_number),
            imm=flag,
        )
        return
    # I format ALU: rt, rs, imm  (shift/lui use subsets)
    if opcode is Opcode.LUI:
        builder.emit(opcode, rt=_reg(operands[0], line_number),
                     imm=_parse_int(operands[1], line_number))
        return
    if len(operands) != 3:
        raise AssemblyError(line_number, f"{mnemonic} needs rt, rs, imm")
    builder.emit(
        opcode,
        rt=_reg(operands[0], line_number),
        rs=_reg(operands[1], line_number),
        imm=_parse_int(operands[2], line_number),
    )
