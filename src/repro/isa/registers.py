"""Register file conventions of the PISA-like base core.

32 general-purpose registers; ``r0`` is hard-wired to zero as in MIPS/PISA.
Symbolic aliases follow the usual RISC convention and are accepted by the
assembler alongside plain ``rN`` names.
"""

from __future__ import annotations

__all__ = ["REGISTER_COUNT", "ZERO", "RA", "SP", "name_to_number",
           "number_to_name", "ALIASES"]

REGISTER_COUNT = 32
ZERO = 0
RA = 31
SP = 29

ALIASES = {
    "zero": 0,
    "at": 1,
    "v0": 2, "v1": 3,
    "a0": 4, "a1": 5, "a2": 6, "a3": 7,
    "t0": 8, "t1": 9, "t2": 10, "t3": 11,
    "t4": 12, "t5": 13, "t6": 14, "t7": 15,
    "s0": 16, "s1": 17, "s2": 18, "s3": 19,
    "s4": 20, "s5": 21, "s6": 22, "s7": 23,
    "t8": 24, "t9": 25,
    "k0": 26, "k1": 27,
    "gp": 28, "sp": 29, "fp": 30, "ra": 31,
}

_NUMBER_TO_NAME = {v: k for k, v in ALIASES.items()}


def name_to_number(name: str) -> int:
    """Resolve a register name (``r7``, ``$7``, ``t0``) to its number."""
    token = name.strip().lower().lstrip("$")
    if token in ALIASES:
        return ALIASES[token]
    if token.startswith("r") and token[1:].isdigit():
        number = int(token[1:])
        if 0 <= number < REGISTER_COUNT:
            return number
    raise ValueError(f"unknown register {name!r}")


def number_to_name(number: int) -> str:
    """Symbolic name of register ``number`` (alias form)."""
    if not (0 <= number < REGISTER_COUNT):
        raise ValueError(f"register number out of range: {number}")
    return _NUMBER_TO_NAME[number]
