"""Program container and a small builder API used by the code generators.

A :class:`Program` is a resolved sequence of instructions plus the label
map.  :class:`ProgramBuilder` offers the ergonomic layer the FFT code
generators use: emit instructions, define labels, and patch branches in a
second pass — i.e. a tiny two-pass assembler working on objects instead of
text (the text assembler in :mod:`repro.isa.assembler` lowers onto this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .instructions import BRANCH_OPCODES, Format, Instruction, Opcode

__all__ = ["Program", "ProgramBuilder"]


@dataclass
class Program:
    """An executable instruction sequence with resolved branch targets."""

    instructions: list
    labels: dict = field(default_factory=dict)
    name: str = ""

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def listing(self) -> str:
        """Human-readable listing with labels interleaved."""
        by_index = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        lines = []
        for i, instr in enumerate(self.instructions):
            for label in by_index.get(i, []):
                lines.append(f"{label}:")
            lines.append(f"    {i:6d}  {instr}")
        return "\n".join(lines)


class ProgramBuilder:
    """Two-pass object-level assembler.

    Usage::

        b = ProgramBuilder("fft64")
        b.label("loop")
        b.emit(Opcode.ADDI, rt=1, rs=1, imm=-1)
        b.branch(Opcode.BNE, rs=1, rt=0, target="loop")
        program = b.build()
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._instructions = []
        self._labels = {}
        self._pending = []  # (index, label) pairs to patch

    def label(self, name: str) -> None:
        """Define ``name`` at the current position."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)

    def emit(self, opcode: Opcode, rd: int = 0, rs: int = 0, rt: int = 0,
             imm: int = 0) -> int:
        """Append an instruction; returns its index."""
        self._instructions.append(
            Instruction(opcode=opcode, rd=rd, rs=rs, rt=rt, imm=imm)
        )
        return len(self._instructions) - 1

    def branch(self, opcode: Opcode, rs: int = 0, rt: int = 0,
               target: str = "") -> int:
        """Append a branch/jump to label ``target`` (patched at build)."""
        if opcode not in BRANCH_OPCODES:
            raise ValueError(f"{opcode} is not a branch/jump")
        index = len(self._instructions)
        self._instructions.append(
            Instruction(opcode=opcode, rs=rs, rt=rt, imm=0, label=target)
        )
        self._pending.append((index, target))
        return index

    # Convenience emitters used heavily by the code generators ----------

    def li(self, rt: int, value: int) -> None:
        """Load a (possibly wide) immediate into ``rt``."""
        if -32768 <= value <= 32767:
            self.emit(Opcode.ADDI, rt=rt, rs=0, imm=value)
        else:
            self.emit(Opcode.LUI, rt=rt, imm=(value >> 16) & 0xFFFF)
            low = value & 0xFFFF
            if low:
                self.emit(Opcode.ORI, rt=rt, rs=rt, imm=low)

    def move(self, rt: int, rs: int) -> None:
        """Register copy via add-with-zero."""
        self.emit(Opcode.ADD, rd=rt, rs=rs, rt=0)

    def nop(self) -> None:
        """Pipeline filler."""
        self.emit(Opcode.NOP)

    def halt(self) -> None:
        """Terminate simulation."""
        self.emit(Opcode.HALT)

    def build(self) -> Program:
        """Resolve labels and return the immutable program."""
        resolved = list(self._instructions)
        for index, target in self._pending:
            if target not in self._labels:
                raise ValueError(f"undefined label {target!r}")
            old = resolved[index]
            resolved[index] = Instruction(
                opcode=old.opcode, rd=old.rd, rs=old.rs, rt=old.rt,
                imm=self._labels[target], label=target,
            )
        return Program(
            instructions=resolved, labels=dict(self._labels), name=self.name
        )
