"""Binary encoding/decoding of the 32-bit instruction words.

Layouts (MIPS-like):

* R format: ``[opcode:6][rs:5][rt:5][rd:5][unused:11]``
* I format: ``[opcode:6][rs:5][rt:5][imm:16]`` (imm is two's complement;
  branches store the absolute instruction index as a PC-relative offset)
* J format: ``[opcode:6][target:26]``

The paper contrasts its 32-bit encoding against the TI DSP's 256-bit
bundles and the ULIW design's 619-bit words; having a real encoder makes
the code-size numbers in the ablation benchmarks concrete.
"""

from __future__ import annotations

from .instructions import (
    BRANCH_OPCODES,
    Format,
    Instruction,
    Opcode,
)

__all__ = ["encode", "decode", "encode_program", "OPCODE_NUMBERS"]

OPCODE_NUMBERS = {op: i for i, op in enumerate(Opcode)}
_NUMBER_OPCODES = {i: op for op, i in OPCODE_NUMBERS.items()}

_REL_BRANCHES = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE}
)


def _to_u16(value: int) -> int:
    if not (-32768 <= value <= 65535):
        raise ValueError(f"immediate {value} does not fit in 16 bits")
    return value & 0xFFFF


def _from_s16(value: int) -> int:
    value &= 0xFFFF
    return value - 0x10000 if value & 0x8000 else value


def encode(instr: Instruction, index: int = 0) -> int:
    """Encode one instruction to its 32-bit word.

    ``index`` is the instruction's own position, needed to turn absolute
    branch targets into PC-relative offsets.
    """
    op = OPCODE_NUMBERS[instr.opcode] << 26
    fmt = instr.format
    if fmt is Format.NONE:
        return op
    if fmt is Format.J:
        target = instr.imm
        if not (0 <= target < (1 << 26)):
            raise ValueError(f"jump target {target} out of range")
        return op | target
    if fmt is Format.R:
        return (
            op
            | (instr.rs << 21)
            | (instr.rt << 16)
            | (instr.rd << 11)
        )
    imm = instr.imm
    if instr.opcode in _REL_BRANCHES:
        imm = instr.imm - (index + 1)
    return op | (instr.rs << 21) | (instr.rt << 16) | _to_u16(imm)


def decode(word: int, index: int = 0) -> Instruction:
    """Decode a 32-bit word back to an :class:`Instruction`."""
    opnum = (word >> 26) & 0x3F
    if opnum not in _NUMBER_OPCODES:
        raise ValueError(f"unknown opcode number {opnum}")
    opcode = _NUMBER_OPCODES[opnum]
    fmt = Instruction(opcode=opcode).format
    if fmt is Format.NONE:
        return Instruction(opcode=opcode)
    if fmt is Format.J:
        return Instruction(opcode=opcode, imm=word & 0x3FFFFFF)
    rs = (word >> 21) & 0x1F
    rt = (word >> 16) & 0x1F
    if fmt is Format.R:
        rd = (word >> 11) & 0x1F
        return Instruction(opcode=opcode, rd=rd, rs=rs, rt=rt)
    imm = _from_s16(word)
    if opcode in _REL_BRANCHES:
        imm = imm + index + 1
    return Instruction(opcode=opcode, rs=rs, rt=rt, imm=imm)


def encode_program(program) -> list:
    """Encode every instruction; returns the list of 32-bit words."""
    return [encode(instr, i) for i, instr in enumerate(program)]
