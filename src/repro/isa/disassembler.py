"""Disassembler: binary words or Instruction objects back to text."""

from __future__ import annotations

from .encoding import decode
from .instructions import Instruction

__all__ = ["disassemble_word", "disassemble", "round_trip"]


def disassemble_word(word: int, index: int = 0) -> str:
    """Disassemble one encoded 32-bit word."""
    return str(decode(word, index))


def disassemble(words) -> str:
    """Disassemble a sequence of encoded words into a listing."""
    lines = []
    for index, word in enumerate(words):
        lines.append(f"{index:6d}: {word:08x}  {disassemble_word(word, index)}")
    return "\n".join(lines)


def round_trip(instr: Instruction, index: int = 0) -> Instruction:
    """Encode then decode — used by the encoding tests."""
    from .encoding import encode

    return decode(encode(instr, index), index)
