"""PISA-like instruction set with the three FFT-specific custom ops."""

from .assembler import AssemblyError, assemble
from .disassembler import disassemble, disassemble_word
from .encoding import decode, encode, encode_program
from .instructions import (
    BRANCH_OPCODES,
    CUSTOM_OPCODES,
    MEMORY_OPCODES,
    Format,
    Instruction,
    Opcode,
)
from .program import Program, ProgramBuilder
from .registers import name_to_number, number_to_name

__all__ = [
    "Opcode",
    "Instruction",
    "Format",
    "CUSTOM_OPCODES",
    "MEMORY_OPCODES",
    "BRANCH_OPCODES",
    "Program",
    "ProgramBuilder",
    "assemble",
    "AssemblyError",
    "encode",
    "decode",
    "encode_program",
    "disassemble",
    "disassemble_word",
    "name_to_number",
    "number_to_name",
]
