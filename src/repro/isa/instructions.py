"""Instruction set of the FFT ASIP: PISA-like RISC base + three custom ops.

The base set is a compact MIPS/PISA-style load-store ISA — enough to write
real programs (loops, address arithmetic, complex multiplies) so the
simulated cycle counts reflect genuine software overheads, exactly as the
paper measures on its modified SimpleScalar.

The three application-specific instructions of Section III-B:

* ``BUT4 rs, rt``   — one Basic-Unit op; ``rs`` holds the module number
  (1-origin), ``rt`` the stage number.  All CRF/ROM addressing happens in
  the decoder's AC logic.
* ``LDIN rs, rt``   — load two complex points (64-bit bus) from memory
  address ``rs`` into CRF entry ``rt``.
* ``STOUT rs, rt``  — store two complex points from CRF entry ``rs`` to
  memory address ``rt``; the immediate flag selects the epoch-0 variant
  that applies the inter-epoch pre-rotation on the way out (the hardware
  realisation of Algorithm 1's line 15).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Opcode", "Instruction", "Format", "OPCODE_FORMAT",
           "CUSTOM_OPCODES", "MEMORY_OPCODES", "BRANCH_OPCODES"]


class Format(enum.Enum):
    """Encoding format families."""

    R = "R"       # rd, rs, rt
    I = "I"       # rt, rs, imm16
    J = "J"       # target26
    NONE = "NONE"  # no operands (nop, halt)


class Opcode(enum.Enum):
    """All opcodes understood by the machine."""

    # Arithmetic / logic (R format unless *I)
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    MULH = "mulh"     # high 32 bits of 32x32 multiply (fixed-point scaling)
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLT = "slt"
    SLLV = "sllv"
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLTI = "slti"
    LUI = "lui"
    # Memory
    LW = "lw"
    SW = "sw"
    # Control
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    J = "j"
    JAL = "jal"
    JR = "jr"
    NOP = "nop"
    HALT = "halt"
    # Application-specific (Section III-B)
    BUT4 = "but4"
    LDIN = "ldin"
    STOUT = "stout"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


OPCODE_FORMAT = {
    Opcode.ADD: Format.R, Opcode.SUB: Format.R, Opcode.MUL: Format.R,
    Opcode.MULH: Format.R, Opcode.AND: Format.R, Opcode.OR: Format.R,
    Opcode.XOR: Format.R, Opcode.SLT: Format.R, Opcode.SLLV: Format.R,
    Opcode.SLL: Format.I, Opcode.SRL: Format.I, Opcode.SRA: Format.I,
    Opcode.ADDI: Format.I, Opcode.ANDI: Format.I, Opcode.ORI: Format.I,
    Opcode.XORI: Format.I, Opcode.SLTI: Format.I, Opcode.LUI: Format.I,
    Opcode.LW: Format.I, Opcode.SW: Format.I,
    Opcode.BEQ: Format.I, Opcode.BNE: Format.I,
    Opcode.BLT: Format.I, Opcode.BGE: Format.I,
    Opcode.J: Format.J, Opcode.JAL: Format.J, Opcode.JR: Format.R,
    Opcode.NOP: Format.NONE, Opcode.HALT: Format.NONE,
    Opcode.BUT4: Format.R, Opcode.LDIN: Format.R, Opcode.STOUT: Format.I,
}

CUSTOM_OPCODES = frozenset({Opcode.BUT4, Opcode.LDIN, Opcode.STOUT})
MEMORY_OPCODES = frozenset({Opcode.LW, Opcode.SW})
BRANCH_OPCODES = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
     Opcode.J, Opcode.JAL, Opcode.JR}
)


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    Fields unused by an opcode's format are zero.  ``imm`` is a signed
    16-bit value for I-format and a 26-bit target for J-format; branch
    immediates hold *instruction index* targets (the assembler resolves
    labels to absolute indices, which a real encoder would re-encode as
    PC-relative offsets — :mod:`repro.isa.encoding` does exactly that).
    """

    opcode: Opcode
    rd: int = 0
    rs: int = 0
    rt: int = 0
    imm: int = 0
    label: str = ""

    def __post_init__(self):
        for field_name in ("rd", "rs", "rt"):
            v = getattr(self, field_name)
            if not (0 <= v < 32):
                raise ValueError(
                    f"{field_name}={v} out of register range in {self.opcode}"
                )

    @property
    def format(self) -> Format:
        """Encoding format of this instruction."""
        return OPCODE_FORMAT[self.opcode]

    @property
    def is_custom(self) -> bool:
        """True for BUT4 / LDIN / STOUT."""
        return self.opcode in CUSTOM_OPCODES

    def __str__(self) -> str:
        op = self.opcode.value
        fmt = self.format
        if fmt is Format.NONE:
            return op
        if self.opcode is Opcode.JR:
            return f"{op} r{self.rs}"
        if fmt is Format.R:
            return f"{op} r{self.rd}, r{self.rs}, r{self.rt}"
        if fmt is Format.J:
            return f"{op} {self.label or self.imm}"
        if self.opcode in (Opcode.LW, Opcode.SW):
            return f"{op} r{self.rt}, {self.imm}(r{self.rs})"
        if self.opcode is Opcode.STOUT:
            return f"{op} r{self.rs}, r{self.rt}, {self.imm}"
        if self.opcode in BRANCH_OPCODES:
            target = self.label or self.imm
            return f"{op} r{self.rs}, r{self.rt}, {target}"
        return f"{op} r{self.rt}, r{self.rs}, {self.imm}"
