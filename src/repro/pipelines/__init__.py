"""Composable pipeline API: declarative stage graphs over the facade.

``repro.pipeline(N, stages=[...])`` builds a validated stage chain
(each stage a registered, capability-described component — see
:mod:`repro.pipelines.registry`) executing batched through one
:func:`repro.engine` backend.  Scenario presets in
:mod:`repro.scenarios` resolve to these pipelines.
"""

from .graph import (
    CODED_OFDM_CHAIN,
    DEFAULT_OFDM_CHAIN,
    SPECTRUM_CHAIN,
    Pipeline,
    PipelineGraphError,
    PipelineResult,
    pipeline,
)
from .registry import (
    StageSpec,
    build_stage,
    get_stage,
    register_stage,
    stage_names,
    stage_specs,
    unregister_stage,
)
from .stages import PipelineContext, Stage

__all__ = [
    "pipeline",
    "Pipeline",
    "PipelineResult",
    "PipelineGraphError",
    "PipelineContext",
    "Stage",
    "StageSpec",
    "register_stage",
    "unregister_stage",
    "get_stage",
    "build_stage",
    "stage_names",
    "stage_specs",
    "DEFAULT_OFDM_CHAIN",
    "SPECTRUM_CHAIN",
    "CODED_OFDM_CHAIN",
]
