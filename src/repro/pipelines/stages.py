"""Built-in pipeline stages: the OFDM receive chain as components.

Each stage is a small object with one method, ``run(ctx, data)``, where
``ctx`` is the run's :class:`PipelineContext` (engines, rng, link
parameters, accumulated artefacts) and ``data`` is the output of the
previous stage.  The built-ins reproduce the hand-wired
:class:`~repro.ofdm.OfdmLink` datapath *operation for operation* — same
numpy calls, same rng draw order — so a pipeline run is bit-identical
to the link it replaces (asserted in ``tests/test_pipeline.py``).

Stage contract (also documented in DESIGN.md):

* ``run(ctx, data) -> data`` — pure with respect to the context's
  configuration; artefacts worth keeping (transform results, tx bits,
  reference symbols, metrics) are recorded on ``ctx``;
* ``consumes`` / ``produces`` — data-kind declarations used for graph
  validation (inherited from the registered :class:`StageSpec` when the
  instance does not override them);
* stages hold no engines of their own — the pipeline owns execution
  resources and passes them through the context, so swapping a backend
  never touches stage code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..engines import Engine, TransformResult
from ..ofdm.channel import MultipathChannel, awgn
from ..ofdm.modulation import Constellation
from .registry import StageSpec, register_stage

__all__ = [
    "PipelineContext",
    "Stage",
    "RandomBitsSource",
    "RandomBlocksSource",
    "ModulateStage",
    "IfftStage",
    "ChannelStage",
    "TransformStage",
    "EqualizeStage",
    "DemodulateStage",
    "MetricsStage",
]


@dataclass
class PipelineContext:
    """Everything a stage may need during one pipeline run.

    Engines and link parameters are installed by the owning
    :class:`~repro.pipelines.graph.Pipeline`; artefact fields
    (``tx_bits``, ``reference_symbols``, ``transform_result``,
    ``rx_bits``, ``metrics``) are filled in by stages as the data flows.
    """

    n_points: int
    symbols: int
    engine: Engine = None          # receiver transform engine
    tx_engine: Engine = None       # transmitter (algorithm-level) engine
    rng: np.random.Generator = None
    constellation: Constellation = None
    channel: MultipathChannel = None
    snr_db: float = None
    source_scale: float = 1.0
    code: object = None            # PuncturedCode for coded chains
    code_geometry: object = None   # BlockGeometry per OFDM symbol
    interleaver: object = None     # per-symbol bit permutation
    demapper: object = None        # SoftDemapper override (else by scheme)
    tx_bits: np.ndarray = None
    reference_symbols: np.ndarray = None
    transform_result: TransformResult = None
    equalised: np.ndarray = None
    rx_bits: np.ndarray = None
    tx_info_bits: np.ndarray = None
    rx_info_bits: np.ndarray = None
    coded_bits: np.ndarray = None  # pre-interleave coded symbol payloads
    llrs: np.ndarray = None        # deinterleaved per-bit LLRs
    metrics: dict = field(default_factory=dict)

    @property
    def bits_per_symbol(self) -> int:
        """Payload bits per OFDM symbol under the current constellation."""
        if self.constellation is None:
            raise ValueError("this pipeline has no constellation "
                             "(pass scheme= for a modulated chain)")
        return self.n_points * self.constellation.bits_per_symbol


class Stage:
    """Base class for pipeline stages (subclassing it is optional).

    Anything with ``run(ctx, data)`` (plus ``name`` / ``consumes`` /
    ``produces`` attributes, defaulted from the registry spec) is a
    valid stage.
    """

    name = None
    consumes = None
    produces = None

    def run(self, ctx: PipelineContext, data):
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name or '?'})"


class RandomBitsSource(Stage):
    """Draw one payload of random bits per symbol (OfdmLink's source).

    In a coded chain (``ctx.code`` set) the payload is the terminated
    code block's **information bits** — ``code_geometry.info_bits`` per
    OFDM symbol, drawn in the same one-draw-per-symbol order — and the
    downstream ``encode`` stage expands it to the coded capacity.

    Explicit input overrides the draw: ``Pipeline.run(data=bits)``
    passes a ``(symbols, payload)`` matrix straight through, so parity
    tests and replay runs can inject exact payloads.
    """

    def run(self, ctx: PipelineContext, data):
        payload = (ctx.code_geometry.info_bits if ctx.code is not None
                   else ctx.bits_per_symbol)
        if data is not None:
            bits = np.asarray(data, dtype=int)
            if bits.ndim != 2 or bits.shape[1] != payload:
                raise ValueError(
                    f"expected ({ctx.symbols}, {payload}) "
                    f"bits, got shape {bits.shape}"
                )
        else:
            # One draw per symbol, exactly OfdmLink.random_bits' order.
            bits = np.stack([
                ctx.rng.integers(0, 2, size=payload)
                for _ in range(ctx.symbols)
            ])
        if ctx.code is not None:
            ctx.tx_info_bits = bits
        else:
            ctx.tx_bits = bits
        return bits


class RandomBlocksSource(Stage):
    """Draw complex Gaussian time-domain blocks (spectral workloads).

    ``scale`` shrinks the draw for Q1.15 headroom (presets use 0.25,
    matching the CLI's streamed-input convention).  Explicit input
    passes through untouched.
    """

    def __init__(self, scale: float = None):
        self.scale = scale

    def run(self, ctx: PipelineContext, data):
        if data is not None:
            blocks = np.asarray(data, dtype=complex)
            if blocks.ndim != 2 or blocks.shape[1] != ctx.n_points:
                raise ValueError(
                    f"expected ({ctx.symbols}, {ctx.n_points}) blocks, "
                    f"got shape {blocks.shape}"
                )
            return blocks
        scale = ctx.source_scale if self.scale is None else self.scale
        shape = (ctx.symbols, ctx.n_points)
        return scale * (ctx.rng.standard_normal(shape)
                        + 1j * ctx.rng.standard_normal(shape))


class ModulateStage(Stage):
    """Map bit payloads onto subcarriers with the chain's constellation."""

    def run(self, ctx: PipelineContext, data):
        subcarriers = np.stack([
            ctx.constellation.map_bits(bits) for bits in np.asarray(data)
        ])
        ctx.reference_symbols = subcarriers
        return subcarriers


class IfftStage(Stage):
    """Transmitter IFFT: subcarriers to unit-power time-domain signals.

    Runs on the pipeline's algorithm-level transmitter engine (the
    receiver is what the paper's ASIP implements), exactly like
    ``OfdmLink._transmit_burst``.
    """

    def run(self, ctx: PipelineContext, data):
        return ctx.tx_engine.inverse_many(data).spectrum * ctx.n_points


class ChannelStage(Stage):
    """Multipath convolution (when taps are set) plus AWGN (when SNR is).

    Both halves broadcast over the whole ``(symbols, N)`` burst in one
    vectorised pass — the same call order as ``OfdmLink._channel_burst``,
    so the rng stream stays aligned with the hand-wired link.
    """

    def run(self, ctx: PipelineContext, data):
        signal = np.asarray(data, dtype=complex)
        if ctx.channel is not None:
            signal = ctx.channel.apply(signal)
        if ctx.snr_db is not None:
            signal = awgn(signal, ctx.snr_db, rng=ctx.rng)
        return signal


class TransformStage(Stage):
    """The receiver FFT: one batched facade pass over the burst.

    The heart of the pipeline — whatever backend the pipeline was built
    with (``compiled``, ``sharded``, ``asip-batch``, any registered
    extension) executes here, and the uniform
    :class:`~repro.engines.TransformResult` (cycles, SimStats delta,
    overflow delta) is recorded on the context for the metrics stage.
    """

    def run(self, ctx: PipelineContext, data):
        result = ctx.engine.transform_many(
            np.asarray(data, dtype=complex)
        )
        ctx.transform_result = result
        return result.spectrum


class EqualizeStage(Stage):
    """1/N spectrum scaling plus one-tap zero-forcing equalisation."""

    def run(self, ctx: PipelineContext, data):
        spectra = np.asarray(data, dtype=complex) / ctx.n_points
        if ctx.channel is not None:
            spectra = spectra / ctx.channel.frequency_response(ctx.n_points)
        ctx.equalised = spectra
        return spectra


class DemodulateStage(Stage):
    """Hard-decision demap of equalised subcarriers back to bits."""

    def run(self, ctx: PipelineContext, data):
        rx_bits = np.stack([
            ctx.constellation.unmap_symbols(row) for row in np.asarray(data)
        ])
        ctx.rx_bits = rx_bits
        return rx_bits


class MetricsStage(Stage):
    """Fold the run's artefacts into the metrics dictionary.

    Computes whatever the chain produced: BER/bit errors when tx and rx
    bits exist, EVM when equalised subcarriers and their references do,
    cycle accounting and the Q1.15 overflow delta when a transform ran.
    Pass-through for data (``consumes any / produces same``), so it can
    sit anywhere — canonically last.
    """

    def run(self, ctx: PipelineContext, data):
        metrics = ctx.metrics
        metrics["symbols"] = ctx.symbols
        if ctx.tx_bits is not None and ctx.rx_bits is not None:
            errors = int(np.sum(ctx.tx_bits != ctx.rx_bits))
            total = int(ctx.tx_bits.size)
            metrics["bit_errors"] = errors
            metrics["total_bits"] = total
            metrics["ber"] = errors / total if total else 0.0
        if (ctx.equalised is not None
                and ctx.reference_symbols is not None):
            error = np.sqrt(np.mean(
                np.abs(ctx.equalised - ctx.reference_symbols) ** 2
            ))
            metrics["evm_percent"] = float(100.0 * error)
        result = ctx.transform_result
        if result is not None:
            metrics["total_cycles"] = result.total_cycles
            metrics["cycles_per_symbol"] = (
                result.total_cycles / result.n_symbols
                if result.n_symbols else 0.0
            )
            metrics["overflow_count"] = result.overflow_count
            metrics["backend"] = result.backend
            metrics["precision"] = result.precision
        return data


def _register_builtin_stages() -> None:
    specs = [
        StageSpec(
            name="source", factory=RandomBitsSource,
            consumes="none", produces="bits",
            description="random bit payloads, one draw per symbol",
        ),
        StageSpec(
            name="block-source", factory=RandomBlocksSource,
            consumes="none", produces="signal",
            description="random complex time-domain blocks",
        ),
        StageSpec(
            name="modulate", factory=ModulateStage,
            consumes="bits", produces="symbols",
            description="constellation mapping onto subcarriers",
        ),
        StageSpec(
            name="ifft", factory=IfftStage,
            consumes="symbols", produces="signal",
            description="transmitter IFFT (algorithm-level engine)",
        ),
        StageSpec(
            name="channel", factory=ChannelStage,
            consumes="signal", produces="signal",
            description="multipath convolution + AWGN",
        ),
        StageSpec(
            name="transform", factory=TransformStage,
            consumes="signal", produces="spectrum",
            description="receiver FFT on the pipeline's facade backend",
        ),
        StageSpec(
            name="equalize", factory=EqualizeStage,
            consumes="spectrum", produces="spectrum",
            description="1/N scaling + one-tap equalisation",
        ),
        StageSpec(
            name="demodulate", factory=DemodulateStage,
            consumes="spectrum", produces="bits",
            description="hard-decision demapping to bits",
        ),
        StageSpec(
            name="metrics", factory=MetricsStage,
            consumes="any", produces="same",
            description="BER/EVM/cycle accounting into the result",
        ),
    ]
    for spec in specs:
        register_stage(spec, replace=True)


_register_builtin_stages()
