"""The declarative pipeline: a validated stage chain over one engine.

``repro.pipeline(N, ...)`` builds a :class:`Pipeline` — the top-level
composable API the scenario registry resolves to.  A pipeline owns

* a **stage chain** (names resolved through the stage registry, or
  ready-made stage objects), validated at build time so incompatible
  graphs fail before any work runs;
* the **facade engines** executing it: one receiver engine on the
  configured backend (any registered :func:`repro.engine` backend) and,
  for modulated chains, an algorithm-level transmitter engine — exactly
  the split :class:`~repro.ofdm.OfdmLink` uses, so results are
  bit-identical to the hand-wired link;
* the **link parameters** (constellation scheme, channel model, SNR,
  seed) stages read from the run context.

``Pipeline.run(symbols)`` pushes one burst through the chain — batched,
one facade pass per transform stage — and returns a
:class:`PipelineResult` carrying per-stage outputs, the uniform
:class:`~repro.engines.TransformResult`, and BER/EVM/cycle metrics.
Swapping any stage (:meth:`Pipeline.with_stage`) or any engine option
(:meth:`Pipeline.with_options`) yields a new pipeline without touching
call sites.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..coding import get_demapper, resolve_code, resolve_interleaver
from ..core.registry import get_backend
from ..engines import TransformResult
from ..engines import engine as build_engine
from ..ofdm.modulation import CONSTELLATIONS
from .registry import build_stage

from .. import telemetry
from .stages import PipelineContext

__all__ = [
    "DEFAULT_OFDM_CHAIN",
    "SPECTRUM_CHAIN",
    "CODED_OFDM_CHAIN",
    "PipelineGraphError",
    "PipelineResult",
    "Pipeline",
    "pipeline",
]

#: the canonical modulated receive chain (what OfdmLink hard-wired)
DEFAULT_OFDM_CHAIN = (
    "source", "modulate", "ifft", "channel",
    "transform", "equalize", "demodulate", "metrics",
)

#: plain spectral analysis: blocks in, verified spectra out
SPECTRUM_CHAIN = ("block-source", "transform", "metrics")

#: the coded receive chain: one terminated convolutional code block per
#: OFDM symbol, soft-decision demapping, batched Viterbi decode
CODED_OFDM_CHAIN = (
    "source", "encode", "interleave", "modulate", "ifft", "channel",
    "transform", "equalize", "soft-demodulate", "deinterleave",
    "decode", "coded-metrics",
)


class PipelineGraphError(ValueError):
    """An invalid stage chain (unknown stage or mismatched data kinds)."""


@dataclass
class PipelineResult:
    """Outcome of one :meth:`Pipeline.run` burst.

    ``stage_outputs`` maps each stage's name to the data it emitted, in
    chain order (repeated names get ``#2``-style suffixes);
    ``transform`` is the receiver FFT's uniform
    :class:`~repro.engines.TransformResult` (None for chains without a
    transform stage); ``metrics`` is the metrics stage's dictionary
    (BER, EVM, cycles, overflow — whatever the chain produced).
    """

    name: str
    n_points: int
    backend: str
    precision: str
    symbols: int
    output: object = None
    stage_outputs: dict = field(default_factory=dict)
    transform: TransformResult = None
    metrics: dict = field(default_factory=dict)
    tx_bits: np.ndarray = None
    rx_bits: np.ndarray = None
    equalised: np.ndarray = None

    @property
    def spectrum(self) -> np.ndarray:
        """The receiver FFT output (None without a transform stage)."""
        return self.transform.spectrum if self.transform else None

    @property
    def ber(self) -> float:
        """Bit error rate (None for chains without bits)."""
        return self.metrics.get("ber")

    @property
    def evm_percent(self) -> float:
        """Error-vector magnitude (None without reference symbols)."""
        return self.metrics.get("evm_percent")

    @property
    def total_cycles(self) -> int:
        """Summed simulated FFT cycles (0 on algorithm-level backends)."""
        return self.transform.total_cycles if self.transform else 0

    @property
    def overflow_count(self) -> int:
        """Q1.15 saturation delta of the receiver transform."""
        return self.transform.overflow_count if self.transform else 0

    def __array__(self, dtype=None, copy=None):
        out = np.asarray(self.output)
        return out.astype(dtype) if dtype is not None else out


def _resolve_stage(entry):
    """Turn a chain entry (name, (name, params), instance) into a stage."""
    if isinstance(entry, str):
        return build_stage(entry)
    if isinstance(entry, tuple) and len(entry) == 2 \
            and isinstance(entry[0], str):
        return build_stage(entry[0], **dict(entry[1]))
    if hasattr(entry, "run"):
        if getattr(entry, "name", None) is None:
            entry.name = type(entry).__name__.lower()
        for attr, default in (("consumes", "any"), ("produces", "same")):
            if getattr(entry, attr, None) is None:
                setattr(entry, attr, default)
        return entry
    raise PipelineGraphError(
        f"stage entry {entry!r} is not a registered name, a "
        f"(name, params) pair, or an object with run(ctx, data)"
    )


class Pipeline:
    """A validated, runnable stage chain bound to facade engines.

    Parameters
    ----------
    n_points:
        FFT size (subcarrier count for modulated chains).
    stages:
        Chain entries — registered stage names, ``(name, params)``
        pairs, or stage objects.  Defaults to
        :data:`DEFAULT_OFDM_CHAIN`.
    backend, precision, workers, batch:
        Receiver engine configuration, as for :func:`repro.engine`.
        ``backend`` defaults to ``"sharded"`` when ``workers >= 2``,
        else ``"compiled"`` (OfdmLink's rule).
    scheme, channel, snr_db:
        Link parameters the built-in stages read from the run context.
    source_scale:
        Amplitude of ``block-source`` draws (Q1.15 chains use < 1).
    seed:
        Default rng seed; each :meth:`run` starts a fresh
        ``default_rng(seed)`` so runs are reproducible in isolation.
    """

    def __init__(self, n_points: int, stages=None, *, backend: str = None,
                 precision: str = "float", workers: int = None,
                 batch: int = None, scheme: str = "qpsk", channel=None,
                 snr_db: float = None, source_scale: float = 1.0,
                 code=None, code_rate: str = "1/2", interleaver=None,
                 seed: int = 0, name: str = None, **engine_options):
        if scheme is not None and scheme not in CONSTELLATIONS:
            raise ValueError(
                f"unknown scheme {scheme!r}; known schemes: "
                f"{', '.join(sorted(CONSTELLATIONS))}"
            )
        sharded = workers is not None and workers >= 2
        if backend is None:
            backend = "sharded" if sharded else "compiled"
        self._config = dict(
            n_points=n_points, backend=backend, precision=precision,
            workers=workers, batch=batch, scheme=scheme, channel=channel,
            snr_db=snr_db, source_scale=source_scale, code=code,
            code_rate=code_rate, interleaver=interleaver, seed=seed,
            name=name, **engine_options,
        )
        # Resolve the coding configuration up front — unknown code /
        # rate / interleaver / demapper names fail at build time with
        # the registered menu, and the per-symbol block geometry is
        # fixed by (n_points, scheme) for the pipeline's lifetime.
        self._code = resolve_code(code, code_rate)
        self._interleaver = None
        self._code_geometry = None
        self._demapper = None
        if self._code is not None:
            if scheme is None:
                raise ValueError(
                    "a coded pipeline needs a constellation scheme"
                )
            capacity = n_points * CONSTELLATIONS[scheme].bits_per_symbol
            self._code_geometry = self._code.block_geometry(capacity)
            self._interleaver = resolve_interleaver(
                "block" if interleaver is None else interleaver, capacity
            )
            self._demapper = get_demapper(scheme)
        elif interleaver is not None:
            raise ValueError(
                "interleaver= needs a coded pipeline (pass code= too)"
            )
        self._stage_defs = list(
            stages if stages is not None else DEFAULT_OFDM_CHAIN
        )
        self._stages = [_resolve_stage(entry) for entry in self._stage_defs]
        self.input_kind = self._validate_chain()
        self._engine = None
        self._tx_engine = None
        self._closed = False

    # Introspection -------------------------------------------------------

    @property
    def n_points(self) -> int:
        """FFT size."""
        return self._config["n_points"]

    @property
    def backend(self) -> str:
        """Receiver engine backend name."""
        return self._config["backend"]

    @property
    def precision(self) -> str:
        """Receiver engine precision."""
        return self._config["precision"]

    @property
    def name(self) -> str:
        """The pipeline's name (the scenario that built it, if any)."""
        return self._config.get("name") or "pipeline"

    @property
    def stage_names(self) -> list:
        """Stage names in chain order."""
        return [stage.name for stage in self._stages]

    def describe(self) -> str:
        """Human-readable chain summary."""
        chain = " -> ".join(self.stage_names)
        coded = f", code={self._code.name}" if self._code else ""
        return (f"{self.name}: {chain} "
                f"(N={self.n_points}, backend={self.backend}, "
                f"precision={self.precision}{coded})")

    def __repr__(self) -> str:
        return f"Pipeline({self.describe()})"

    def _validate_chain(self) -> str:
        """Check stage-to-stage data-kind compatibility; entry kind out."""
        if not self._stages:
            raise PipelineGraphError("a pipeline needs at least one stage")
        first = self._stages[0]
        entry_kind = first.consumes
        current = entry_kind if entry_kind != "any" else "none"
        for stage in self._stages:
            wants = stage.consumes
            if wants not in ("any", current):
                raise PipelineGraphError(
                    f"stage {stage.name!r} consumes {wants!r} but the "
                    f"chain carries {current!r} at that point "
                    f"(chain: {' -> '.join(self.stage_names)})"
                )
            if stage.produces != "same":
                current = stage.produces
        return entry_kind

    # Engine lifecycle ----------------------------------------------------

    def _ensure_engines(self) -> None:
        if self._closed:
            raise RuntimeError(f"{self!r} is closed")
        if self._engine is not None:
            return
        cfg = self._config
        known = {"n_points", "backend", "precision", "workers", "batch",
                 "scheme", "channel", "snr_db", "source_scale", "code",
                 "code_rate", "interleaver", "seed", "name"}
        extra = {k: v for k, v in cfg.items() if k not in known}
        spec = get_backend(cfg["backend"])
        self._engine = build_engine(
            cfg["n_points"], backend=cfg["backend"],
            precision=cfg["precision"],
            workers=cfg["workers"] if spec.supports_workers else None,
            batch=cfg["batch"], **extra,
        )
        # The transmitter always runs host-side on an algorithm-level
        # engine (the receiver is what the paper's ASIP implements); a
        # non-simulated receiver engine doubles as the transmitter —
        # exactly OfdmLink's split.
        if self._engine.machine is None:
            self._tx_engine = self._engine
        else:
            sharded = cfg["workers"] is not None and cfg["workers"] >= 2
            self._tx_engine = build_engine(
                cfg["n_points"],
                backend="sharded" if sharded else "compiled",
                workers=cfg["workers"] if sharded else None,
            )

    @property
    def engine(self):
        """The receiver :class:`Engine` (built on first use)."""
        self._ensure_engines()
        return self._engine

    def close(self) -> None:
        """Release the engines (worker pools, machines); idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._engine is not None:
            self._engine.close()
        if self._tx_engine is not None and self._tx_engine is not self._engine:
            self._tx_engine.close()

    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # Swapping ------------------------------------------------------------

    def with_stage(self, target, replacement, **params) -> "Pipeline":
        """A new pipeline with one stage swapped, same configuration.

        ``target`` is a stage name or chain index; ``replacement`` is a
        registered stage name (``params`` forwarded to its factory) or
        a stage object.  The original pipeline is untouched.
        """
        names = self.stage_names
        if isinstance(target, str):
            if target not in names:
                raise PipelineGraphError(
                    f"no stage named {target!r} in this chain "
                    f"({' -> '.join(names)})"
                )
            index = names.index(target)
        else:
            index = int(target)
            if not -len(names) <= index < len(names):
                raise PipelineGraphError(
                    f"stage index {index} out of range for "
                    f"{len(names)}-stage chain"
                )
        defs = list(self._stage_defs)
        defs[index] = (replacement, params) if (
            isinstance(replacement, str) and params
        ) else replacement
        cfg = dict(self._config)
        n_points = cfg.pop("n_points")
        return Pipeline(n_points, defs, **cfg)

    def with_options(self, **overrides) -> "Pipeline":
        """A new pipeline with engine/link options overridden.

        Accepts the constructor's keyword options (``backend``,
        ``precision``, ``workers``, ``snr_db``, ...) — the stage chain
        is kept as declared, so the same graph runs anywhere.
        """
        cfg = dict(self._config)
        cfg.update(overrides)
        n_points = cfg.pop("n_points")
        return Pipeline(n_points, list(self._stage_defs), **cfg)

    # Execution -----------------------------------------------------------

    def run(self, symbols: int = None, data=None, seed: int = None,
            snr_db: float = None) -> PipelineResult:
        """Execute one burst through the chain; returns the result.

        ``symbols`` sets the burst size for source-fed chains; ``data``
        injects explicit input instead (its first axis is the burst).
        Each run uses a fresh ``default_rng`` (the pipeline's ``seed``
        unless overridden), so identical calls reproduce bit-for-bit.
        ``snr_db`` overrides the configured SNR for this run only —
        sweeps reuse one pipeline (and its engines) across noise
        points instead of rebuilding per point.
        """
        self._ensure_engines()
        if data is not None:
            data = np.asarray(data)
            count = len(data) if symbols is None else int(symbols)
        elif self.input_kind not in ("none", "any"):
            raise ValueError(
                f"this chain starts at {self.input_kind!r} input; "
                f"pass data= to run it"
            )
        else:
            count = 1 if symbols is None else int(symbols)
        if count < 1:
            raise ValueError("need at least one symbol")
        cfg = self._config
        ctx = PipelineContext(
            n_points=cfg["n_points"],
            symbols=count,
            engine=self._engine,
            tx_engine=self._tx_engine,
            rng=np.random.default_rng(
                cfg["seed"] if seed is None else seed
            ),
            constellation=(
                CONSTELLATIONS[cfg["scheme"]] if cfg["scheme"] else None
            ),
            channel=cfg["channel"],
            snr_db=cfg["snr_db"] if snr_db is None else float(snr_db),
            source_scale=cfg["source_scale"],
            code=self._code,
            code_geometry=self._code_geometry,
            interleaver=self._interleaver,
            demapper=self._demapper,
        )
        outputs = {}
        stage_seconds = {}
        with telemetry.span(
            "pipeline.run", pipeline=self.name, backend=self.backend,
            n_points=cfg["n_points"], symbols=count,
        ):
            for stage in self._stages:
                started = time.perf_counter()
                with telemetry.span(f"stage.{stage.name}") as stage_span:
                    data = stage.run(ctx, data)
                key = stage.name
                serial = 2
                while key in outputs:
                    key = f"{stage.name}#{serial}"
                    serial += 1
                # stage_seconds is a compat view: when tracing, it is
                # *derived from the span* so both reports agree exactly;
                # when disabled, the perf_counter fallback fills it.
                if stage_span.is_recording:
                    stage_span.set("stage", key)
                    elapsed = stage_span.duration
                else:
                    elapsed = time.perf_counter() - started
                outputs[key] = data
                stage_seconds[key] = elapsed
        # Per-stage wall clock rides in the metrics dictionary so every
        # consumer of the result (CLI --record rows, sweeps, benches)
        # sees where the run's time went.
        ctx.metrics["stage_seconds"] = stage_seconds
        return PipelineResult(
            name=self.name,
            n_points=cfg["n_points"],
            backend=self.backend,
            precision=self._engine.precision,
            symbols=count,
            output=data,
            stage_outputs=outputs,
            transform=ctx.transform_result,
            metrics=ctx.metrics,
            tx_bits=ctx.tx_bits,
            rx_bits=ctx.rx_bits,
            equalised=ctx.equalised,
        )


def pipeline(n_points: int, stages=None, **options) -> Pipeline:
    """Build a :class:`Pipeline` (the ``repro.pipeline`` entry point).

    See :class:`Pipeline` for parameters.  Examples::

        repro.pipeline(1024, scheme="qpsk", snr_db=20).run(symbols=8)
        repro.pipeline(256, repro.pipelines.SPECTRUM_CHAIN,
                       backend="asip-batch", precision="q15")
    """
    return Pipeline(n_points, stages, **options)
