"""Stage capability registry for the declarative pipeline API.

Mirrors :mod:`repro.core.registry` (the engine-backend registry) one
layer up: a :class:`StageSpec` declares a named, capability-described
pipeline component — what kind of data it consumes and produces, and a
factory building a fresh stage instance.  :class:`repro.Pipeline`
resolves stage names here and validates that consecutive stages chain
(``produces`` of one feeds ``consumes`` of the next), so an impossible
graph fails loudly at build time, not mid-run.

The registry is open: register a :class:`StageSpec` under a new name
and it is immediately reachable from ``repro.pipeline(stages=[...,
"<name>", ...])`` and every scenario preset that names it.  Unknown
names raise :class:`~repro.core.registry.UnknownNameError` listing the
registered menu.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.registry import UnknownNameError

__all__ = [
    "DATA_KINDS",
    "StageSpec",
    "register_stage",
    "unregister_stage",
    "get_stage",
    "build_stage",
    "stage_names",
    "stage_specs",
]

#: the data kinds flowing between stages.  "none" is the empty input a
#: source stage accepts; "llrs" is the soft-decision bit-likelihood
#: matrix the coded receive chain carries between the demapper and the
#: decoder; "any"/"same" are the wildcard consume/produce declarations
#: of pass-through stages (metrics, taps, ...).
DATA_KINDS = ("none", "bits", "symbols", "signal", "spectrum", "llrs")


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage's capability declaration.

    Parameters
    ----------
    name:
        Registry key (used in stage chains and scenario presets).
    factory:
        ``factory(**params)`` returning a fresh stage instance — an
        object with ``run(ctx, data) -> data`` (see DESIGN.md,
        "Composable pipeline API", for the full stage contract).
    consumes:
        Data kind the stage expects: one of :data:`DATA_KINDS` or
        ``"any"``.
    produces:
        Data kind the stage emits: one of :data:`DATA_KINDS` or
        ``"same"`` (pass-through).
    description:
        One-line human description (shown by the CLI).
    """

    name: str
    factory: object
    consumes: str = "any"
    produces: str = "same"
    description: str = ""


_REGISTRY: dict = {}


def register_stage(spec: StageSpec, replace: bool = False) -> None:
    """Register ``spec`` under ``spec.name`` (loud on duplicates)."""
    if not isinstance(spec, StageSpec):
        raise TypeError(f"expected a StageSpec, got {type(spec).__name__}")
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"stage {spec.name!r} is already registered")
    for attr in ("consumes", "produces"):
        kind = getattr(spec, attr)
        valid = DATA_KINDS + (("any",) if attr == "consumes" else ("same",))
        if kind not in valid:
            raise ValueError(
                f"stage {spec.name!r} declares unknown {attr} kind "
                f"{kind!r}; valid kinds are {list(valid)}"
            )
    _REGISTRY[spec.name] = spec


def unregister_stage(name: str) -> None:
    """Remove a stage (primarily for tests registering throwaways)."""
    _REGISTRY.pop(name, None)


def _bootstrap() -> None:
    """Load the built-in stages (registered on import): the OFDM chain
    from :mod:`.stages` and the coded chain from
    :mod:`repro.coding.stages`."""
    from . import stages  # noqa: F401  (registers on import)
    from ..coding import stages as coding_stages  # noqa: F401


def get_stage(name: str) -> StageSpec:
    """Look up a stage by name; raises with the registered menu."""
    spec = _REGISTRY.get(name)
    if spec is None:
        _bootstrap()
        spec = _REGISTRY.get(name)
    if spec is None:
        raise UnknownNameError(
            f"unknown stage {name!r}; registered stages: "
            f"{', '.join(stage_names())}"
        )
    return spec


def build_stage(name: str, **params):
    """Build a fresh stage instance from its registered spec.

    The instance inherits the spec's ``name`` / ``consumes`` /
    ``produces`` declarations unless it sets its own.
    """
    spec = get_stage(name)
    stage = spec.factory(**params)
    for attr, value in (("name", spec.name), ("consumes", spec.consumes),
                        ("produces", spec.produces)):
        if getattr(stage, attr, None) is None:
            setattr(stage, attr, value)
    return stage


def stage_names() -> list:
    """Sorted names of every registered stage."""
    if not _REGISTRY:
        _bootstrap()
    return sorted(_REGISTRY)


def stage_specs() -> dict:
    """Name-sorted snapshot of the registry (name -> :class:`StageSpec`).

    Sorted so listings, error menus and their tests are deterministic
    regardless of registration (import) order.
    """
    if not _REGISTRY:
        _bootstrap()
    return {name: _REGISTRY[name] for name in sorted(_REGISTRY)}
