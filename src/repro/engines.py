"""Unified engine facade: one entry point, pluggable backends.

The paper's pitch is *one* scalable FFT machine covering every WiMAX
point size; this module gives the reproduction one matching API surface.
:func:`engine` (exported as ``repro.engine``) returns an :class:`Engine`
bound to a registered backend:

========== ==========================================================
backend     implementation
========== ==========================================================
compiled    compiled-plan vectorised :class:`~repro.core.ArrayFFT`
            (the default)
reference   the readable per-butterfly oracle datapath
sharded     :class:`~repro.core.parallel.ShardedEngine` process pool
asip        instruction-level :class:`~repro.asip.FFTASIP`, one
            persistent machine, serial per-symbol execution
asip-batch  the same machine driven through
            :meth:`~repro.asip.FFTASIP.run_batch` in multi-symbol
            chunks
========== ==========================================================

Every call returns a uniform :class:`TransformResult` (spectrum,
per-symbol cycles, :class:`SimStats` delta, overflow-count delta,
backend name) instead of the historical mix of bare ndarrays, tuples
and side-channel counters.  Backends register through
:mod:`repro.core.registry`; anything implementing the backend contract
(DESIGN.md, "Unified engine facade") can be plugged in under a new name
without touching call sites.

Lifecycle: an :class:`Engine` is a context manager; ``with
repro.engine(...) as eng`` owns the backend's resources (worker pools,
simulated machines) and reaps them on exit.  ``close()`` is idempotent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .asip.codegen import generate_fft_program
from .asip.fft_asip import FFTASIP
from .core.array_fft import ArrayFFT
from .core.parallel import ShardedEngine
from .core.registry import (
    BackendSpec,
    backend_names,
    backend_specs,
    get_backend,
    register_backend,
)
from .sim.stats import SimStats

from . import telemetry

__all__ = [
    "Engine",
    "TransformResult",
    "engine",
    "shared_engine",
    "concat_results",
    "benchmark_backends",
    "normalize_precision",
    "backend_names",
    "backend_specs",
]


_PRECISION_ALIASES = {
    "float": "float",
    "float64": "float",
    "double": "float",
    "q15": "q15",
    "q1.15": "q15",
    "fixed": "q15",
    "fixed-point": "q15",
    "fixed_point": "q15",
}


def normalize_precision(precision) -> str:
    """Canonical precision name (``"float"`` or ``"q15"``).

    Accepts the canonical names, common aliases, and the booleans the
    old ``fixed_point=`` keyword arguments used.
    """
    if precision is True:
        return "q15"
    if precision is None or precision is False:
        return "float"
    name = _PRECISION_ALIASES.get(str(precision).lower())
    if name is None:
        raise ValueError(
            f"unknown precision {precision!r}; use 'float' or 'q15'"
        )
    return name


@dataclass
class TransformResult:
    """Uniform result of one facade call.

    ``spectrum`` is ``(N,)`` for single-symbol calls and
    ``(n_symbols, N)`` for batch/stream calls.  ``cycles`` always holds
    one entry per symbol — zeros for algorithm-level backends, simulated
    cycle counts for the ASIP ones (the registry's ``emits_cycles``
    flag says which).  ``stats`` is the :class:`SimStats` *delta* this
    call retired on the backend's machine (None for backends without
    one); ``overflow_count`` is the Q1.15 saturation-count delta (0 in
    float); ``degraded`` is True when the backend produced the result on
    a fallback path (e.g. the sharded pool died and the batch ran
    serially).
    """

    spectrum: np.ndarray
    backend: str
    precision: str
    n_points: int
    cycles: list = field(default_factory=list)
    stats: SimStats = None
    overflow_count: int = 0
    degraded: bool = False

    @property
    def n_symbols(self) -> int:
        """Symbols this result covers."""
        return 1 if self.spectrum.ndim == 1 else self.spectrum.shape[0]

    @property
    def total_cycles(self) -> int:
        """Summed simulated cycles (0 for algorithm-level backends)."""
        return int(sum(self.cycles))

    @property
    def fixed_point(self) -> bool:
        """True on the Q1.15 datapath."""
        return self.precision == "q15"

    def __array__(self, dtype=None, copy=None):
        out = np.asarray(self.spectrum)
        return out.astype(dtype) if dtype is not None else out


def _stats_snapshot(stats: SimStats) -> dict:
    if stats is None:
        return None
    snap = stats.as_dict()
    snap["taken_branches"] = stats.taken_branches
    return snap


def _stats_delta(before: dict, stats: SimStats) -> SimStats:
    if stats is None:
        return None
    custom = {
        key: value - before.get(f"op_{key}", 0)
        for key, value in stats.custom_ops.items()
        if value - before.get(f"op_{key}", 0)
    }
    return SimStats(
        cycles=stats.cycles - before["cycles"],
        instructions=stats.instructions - before["instructions"],
        loads=stats.loads - before["loads"],
        stores=stats.stores - before["stores"],
        dcache_hits=stats.dcache_hits - before["dcache_hits"],
        dcache_misses=stats.dcache_misses - before["dcache_misses"],
        branches=stats.branches - before["branches"],
        taken_branches=stats.taken_branches - before["taken_branches"],
        stall_cycles=stats.stall_cycles - before["stall_cycles"],
        custom_ops=custom,
    )


def _sum_sim_stats(deltas: list) -> SimStats:
    """Sum :class:`SimStats` deltas (None when no machine was involved)."""
    deltas = [delta for delta in deltas if delta is not None]
    if not deltas:
        return None
    total = SimStats()
    for delta in deltas:
        total.cycles += delta.cycles
        total.instructions += delta.instructions
        total.loads += delta.loads
        total.stores += delta.stores
        total.dcache_hits += delta.dcache_hits
        total.dcache_misses += delta.dcache_misses
        total.branches += delta.branches
        total.taken_branches += delta.taken_branches
        total.stall_cycles += delta.stall_cycles
        for key, value in delta.custom_ops.items():
            total.custom_ops[key] = total.custom_ops.get(key, 0) + value
    return total


def concat_results(results, *, engine: "Engine" = None, n_points: int = None,
                   backend: str = None, precision: str = None
                   ) -> TransformResult:
    """Merge per-chunk :class:`TransformResult`\\ s into one batch result.

    The canonical merge path for anything that executes a stream in
    chunks — :class:`~repro.sessions.StreamSession`, `Engine.stream`,
    and :func:`~repro.core.parallel.stream_sharded`'s worker shards all
    route through it.  Spectra concatenate along the symbol axis,
    per-symbol cycles concatenate, :class:`SimStats` deltas and Q1.15
    overflow deltas sum.  ``engine`` (or the explicit keywords) supplies
    the identity for an empty merge; mixed ``n_points`` is an error.
    """
    results = list(results)
    if engine is not None:
        n_points = engine.n_points
        backend = engine.backend
        precision = engine.precision
    if not results:
        if n_points is None:
            raise ValueError(
                "cannot merge zero results without engine= or n_points="
            )
        return TransformResult(
            spectrum=np.empty((0, n_points), dtype=complex),
            backend=backend, precision=precision, n_points=n_points,
        )
    first = results[0]
    n_points = first.n_points if n_points is None else n_points
    for result in results:
        if result.n_points != n_points:
            raise ValueError(
                f"cannot merge results of different sizes "
                f"({result.n_points} != {n_points})"
            )
    return TransformResult(
        spectrum=np.concatenate(
            [np.atleast_2d(result.spectrum) for result in results]
        ),
        backend=first.backend if backend is None else backend,
        precision=first.precision if precision is None else precision,
        n_points=n_points,
        cycles=[cycle for result in results for cycle in result.cycles],
        stats=_sum_sim_stats([result.stats for result in results]),
        overflow_count=sum(result.overflow_count for result in results),
        degraded=any(result.degraded for result in results),
    )


class Engine:
    """Uniform handle over one backend implementation.

    Built by :func:`engine`; all five built-in backends (and any
    registered extension) answer the same five calls —
    :meth:`transform`, :meth:`transform_many`, :meth:`inverse`,
    :meth:`inverse_many`, :meth:`stream` — and return
    :class:`TransformResult` objects.
    """

    def __init__(self, spec: BackendSpec, impl, n_points: int,
                 precision: str, batch: int = None):
        self.spec = spec
        self.impl = impl
        self.n_points = n_points
        self.precision = precision
        self.batch = batch
        self._closed = False

    # Introspection -------------------------------------------------------

    @property
    def backend(self) -> str:
        """Registered backend name."""
        return self.spec.name

    @property
    def fixed_point(self) -> bool:
        """True on the Q1.15 datapath."""
        return self.precision == "q15"

    @property
    def fx(self):
        """The backend's :class:`FixedPointContext` (None in float)."""
        return self.impl.fx

    @property
    def stats(self) -> SimStats:
        """Live cumulative :class:`SimStats` (None without a machine)."""
        return self.impl.sim_stats

    @property
    def machine(self):
        """The underlying :class:`FFTASIP` (None for array backends)."""
        return self.impl.machine

    @property
    def degraded(self) -> bool:
        """True while the backend is on a fallback path right now.

        Only the sharded backend ever degrades (circuit breaker open,
        batches running serially); it heals itself, so this is a live
        reading — per-result markers are on :class:`TransformResult`.
        """
        return bool(getattr(self.impl, "degraded", False))

    def __repr__(self) -> str:
        return (f"Engine(n_points={self.n_points}, "
                f"backend={self.backend!r}, precision={self.precision!r})")

    # Lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release backend resources (worker pools etc.); idempotent."""
        if not self._closed:
            self._closed = True
            self.impl.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # Uniform transform API -----------------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"{self!r} is closed")

    def _run_many(self, blocks: np.ndarray) -> TransformResult:
        self._ensure_open()
        if not telemetry.enabled():
            return self._run_many_inner(blocks)
        with telemetry.span(
            "engine.transform", backend=self.backend,
            precision=self.precision, n_points=self.n_points,
            symbols=len(blocks),
        ):
            return self._run_many_inner(blocks)

    def _run_many_inner(self, blocks: np.ndarray) -> TransformResult:
        fx = self.impl.fx
        stats = self.impl.sim_stats
        overflow_before = fx.overflow_count if fx is not None else 0
        stats_before = _stats_snapshot(stats)
        spectra, cycles = self.impl.transform_many(blocks)
        return TransformResult(
            spectrum=spectra,
            backend=self.backend,
            precision=self.precision,
            n_points=self.n_points,
            cycles=[int(c) for c in cycles],
            stats=_stats_delta(stats_before, stats),
            overflow_count=(
                fx.overflow_count - overflow_before if fx is not None else 0
            ),
            degraded=bool(getattr(self.impl, "degraded", False)),
        )

    def _as_batch(self, blocks) -> np.ndarray:
        blocks = np.asarray(blocks, dtype=complex)
        if blocks.ndim != 2 or blocks.shape[1] != self.n_points:
            raise ValueError(
                f"expected an (n_symbols, {self.n_points}) matrix, "
                f"got shape {blocks.shape}"
            )
        return blocks

    def transform(self, x) -> TransformResult:
        """Forward FFT of one N-point symbol."""
        x = np.asarray(x, dtype=complex)
        if x.ndim != 1 or len(x) != self.n_points:
            raise ValueError(
                f"engine is planned for N={self.n_points}, "
                f"got shape {x.shape}"
            )
        result = self._run_many(x[None, :])
        result.spectrum = result.spectrum[0]
        return result

    def transform_many(self, blocks) -> TransformResult:
        """Forward FFT of an ``(n_symbols, N)`` batch."""
        return self._run_many(self._as_batch(blocks))

    def inverse(self, spectrum) -> TransformResult:
        """Inverse FFT via the conjugation identity (one symbol).

        Every backend runs the inverse on its forward datapath through
        ``ifft(X) = conj(fft(conj(X))) / N``; in Q1.15 the forward
        transform already carries the ``1/N`` scaling, so no further
        division is applied — exactly :meth:`ArrayFFT.inverse`'s
        convention.
        """
        spectrum = np.asarray(spectrum, dtype=complex)
        result = self.transform(np.conj(spectrum))
        return self._finish_inverse(result)

    def inverse_many(self, spectra) -> TransformResult:
        """Batch inverse FFT of an ``(n_symbols, N)`` spectrum matrix."""
        spectra = self._as_batch(spectra)
        result = self._run_many(np.conj(spectra))
        return self._finish_inverse(result)

    def _finish_inverse(self, result: TransformResult) -> TransformResult:
        out = np.conj(result.spectrum)
        if not self.fixed_point:
            out = out / self.n_points
        result.spectrum = out
        return result

    def stream(self, blocks, batch: int = None,
               verify: bool = False) -> TransformResult:
        """Consume an iterable of blocks in chunks; one merged result.

        A convenience wrapper over the streaming-session substrate
        (:class:`repro.sessions.StreamSession`): the whole iterable is
        fed through one session in chunks of ``batch`` symbols (default:
        the engine's ``batch``, else 64) — for the ``asip-batch``
        backend each chunk is one :meth:`FFTASIP.run_batch` pass — and
        the per-chunk results merge into one :class:`TransformResult`
        via :func:`concat_results`.  With ``verify`` every chunk is
        checked against a batched ``np.fft.fft`` reference before the
        next executes.  Callers that need incremental consumption or
        backpressure should hold a session directly
        (:func:`repro.session`).
        """
        self._ensure_open()
        from .sessions import StreamSession

        sess = StreamSession(self, batch=batch, verify=verify)
        results = []
        for block in blocks:
            sess.feed(block)
            results.extend(sess.drain())
        sess.flush()
        results.extend(sess.drain())
        return concat_results(results, engine=self)

    def _verify_chunk(self, blocks: np.ndarray, outputs: np.ndarray,
                      symbols_before: int) -> None:
        scale = 1.0 / self.n_points if self.fixed_point else 1.0
        tolerance = 0.05 if self.fixed_point else 1e-6
        references = np.fft.fft(blocks, axis=1) * scale
        close = np.isclose(np.asarray(outputs), references, atol=tolerance)
        bad = ~np.all(close, axis=1)
        if bad.any():
            first_bad = symbols_before + int(np.argmax(bad)) + 1
            raise AssertionError(f"streamed symbol {first_bad} is wrong")


# Backend implementations ---------------------------------------------------
#
# The contract (also documented in DESIGN.md): a backend implementation
# exposes ``transform_many(blocks) -> (spectra, per_symbol_cycles)``,
# ``close()``, and the attributes ``fx`` (FixedPointContext or None),
# ``sim_stats`` (live SimStats or None) and ``machine`` (FFTASIP or
# None).  The Engine wrapper turns those into uniform TransformResults.


class _ArrayBackend:
    """Algorithm-level backends riding on :class:`ArrayFFT`."""

    machine = None
    sim_stats = None

    def __init__(self, n_points: int, fixed_point: bool, compiled: bool):
        self.fft = ArrayFFT(n_points, fixed_point=fixed_point,
                            compiled=compiled)

    @property
    def fx(self):
        return self.fft.fx

    def transform_many(self, blocks: np.ndarray) -> tuple:
        return self.fft.transform_many(blocks), [0] * len(blocks)

    def close(self) -> None:
        pass


class _ShardedBackend:
    """Process-pool sharded batches via :class:`ShardedEngine`."""

    machine = None
    sim_stats = None

    def __init__(self, n_points: int, fixed_point: bool, workers: int,
                 min_parallel_symbols: int = None,
                 breaker_backoff_initial: float = None,
                 breaker_backoff_max: float = None):
        self.sharded = ShardedEngine(
            n_points, fixed_point=fixed_point, workers=workers,
            min_parallel_symbols=min_parallel_symbols,
            breaker_backoff_initial=breaker_backoff_initial,
            breaker_backoff_max=breaker_backoff_max,
        )

    @property
    def fx(self):
        return self.sharded.engine.fx

    @property
    def degraded(self) -> bool:
        """True while the breaker is open and batches run serially."""
        return self.sharded.degraded

    def transform_many(self, blocks: np.ndarray) -> tuple:
        return self.sharded.transform_many(blocks), [0] * len(blocks)

    def close(self) -> None:
        self.sharded.close()


class _AsipBackend:
    """One persistent instruction-level machine, serial per symbol."""

    def __init__(self, n_points: int, fixed_point: bool,
                 cache_config=None, pipeline=None, **machine_options):
        self.machine = FFTASIP(
            n_points, cache_config=cache_config, pipeline=pipeline,
            fixed_point=fixed_point, **machine_options,
        )
        self.program = generate_fft_program(n_points, self.machine.plan)

    @property
    def fx(self):
        return self.machine.fx

    @property
    def sim_stats(self):
        return self.machine.stats

    def transform_many(self, blocks: np.ndarray) -> tuple:
        outputs = np.empty_like(blocks)
        cycles = []
        for k in range(len(blocks)):
            out, chunk_cycles = self.machine.run_batch(
                self.program, blocks[k:k + 1]
            )
            outputs[k] = out[0]
            cycles.extend(int(c) for c in chunk_cycles)
        return outputs, cycles

    def close(self) -> None:
        pass


class _AsipBatchBackend(_AsipBackend):
    """The persistent machine driven in multi-symbol run_batch chunks."""

    DEFAULT_BATCH = 64

    def __init__(self, n_points: int, fixed_point: bool, batch: int = None,
                 **options):
        super().__init__(n_points, fixed_point, **options)
        self.batch = max(int(batch), 1) if batch else self.DEFAULT_BATCH

    def transform_many(self, blocks: np.ndarray) -> tuple:
        outputs = np.empty_like(blocks)
        cycles = []
        for lo in range(0, len(blocks), self.batch):
            chunk = blocks[lo:lo + self.batch]
            out, chunk_cycles = self.machine.run_batch(self.program, chunk)
            outputs[lo:lo + len(out)] = out
            cycles.extend(int(c) for c in chunk_cycles)
        return outputs, cycles


# Facade entry points -------------------------------------------------------


def engine(n_points: int, *, backend: str = "compiled",
           precision: str = "float", workers: int = None,
           batch: int = None, **options) -> Engine:
    """Build an :class:`Engine` for ``n_points`` on a named backend.

    Parameters
    ----------
    n_points:
        FFT size (any power of two >= 4).
    backend:
        Registered backend name (see :func:`repro.backend_names`).
    precision:
        ``"float"`` (default) or ``"q15"`` (``"fixed"`` is accepted as
        an alias), checked against the backend's declared support.
    workers:
        Process-pool size for backends declaring worker support
        (``"sharded"``); passing ``workers >= 2`` to any other backend
        is an error rather than a silent serial run.
    batch:
        Chunk size for batched/streamed execution (``asip-batch`` and
        :meth:`Engine.stream`).
    options:
        Backend-specific extras forwarded to the factory (e.g.
        ``cache_config=``/``pipeline=`` for the ASIP backends).
    """
    spec = get_backend(backend)
    resolved = normalize_precision(precision)
    if not spec.supports_precision(resolved):
        raise ValueError(
            f"backend {backend!r} does not support precision "
            f"{resolved!r} (supports: {', '.join(spec.precisions)})"
        )
    if workers is not None and workers >= 2 and not spec.supports_workers:
        raise ValueError(
            f"backend {backend!r} does not take workers; use "
            f"backend='sharded' for process-pool sharding"
        )
    impl = spec.factory(
        n_points, fixed_point=(resolved == "q15"), workers=workers,
        batch=batch, **options,
    )
    return Engine(spec, impl, n_points, resolved, batch)


def benchmark_backends(n_points: int, symbols: int,
                       precisions=("float", "q15"), backends=None,
                       workers: int = None, reps: int = 1,
                       seed: int = 0) -> list:
    """Time each (backend, precision) pair on one shared symbol batch.

    The single source for per-backend facade benchmarking — both
    ``python -m repro bench`` and the engine-speed perf gate call it.
    Each pair gets one warm-up pass (tables, pools, predecode) and the
    best of ``reps`` timed ``transform_many`` passes.  Cross-backend
    parity is enforced on the way: bit-identical Q1.15 spectra and
    overflow deltas, float agreement to rounding noise — divergence
    raises ``AssertionError`` (an explicit raise, so the check survives
    ``python -O``).  Returns one row dict per pair.
    """
    import time

    names = list(backends) if backends else backend_names()
    rows = []
    for precision in precisions:
        resolved = normalize_precision(precision)
        fixed = resolved == "q15"
        rng = np.random.default_rng(seed + n_points + fixed)
        blocks = rng.standard_normal((symbols, n_points)) \
            + 1j * rng.standard_normal((symbols, n_points))
        if fixed:
            blocks *= 0.3
        reference = None
        reference_overflow = None
        for name in names:
            spec = get_backend(name)
            if not spec.supports_precision(resolved):
                continue
            eng_workers = workers if spec.supports_workers else None
            with engine(n_points, backend=name, precision=resolved,
                        workers=eng_workers) as eng:
                result = eng.transform_many(blocks)  # warm
                best = None
                for _ in range(max(int(reps), 1)):
                    started = time.perf_counter()
                    result = eng.transform_many(blocks)
                    elapsed = time.perf_counter() - started
                    best = elapsed if best is None else min(best, elapsed)
            if reference is None:
                reference = result.spectrum
                reference_overflow = result.overflow_count
            elif fixed:
                if not np.array_equal(result.spectrum, reference):
                    raise AssertionError(
                        f"backend {name!r} Q1.15 spectrum diverges from "
                        f"{names[0]!r}"
                    )
                if result.overflow_count != reference_overflow:
                    raise AssertionError(
                        f"backend {name!r} overflow delta "
                        f"{result.overflow_count} != {reference_overflow}"
                    )
            elif not np.allclose(result.spectrum, reference, atol=1e-9):
                raise AssertionError(
                    f"backend {name!r} float spectrum diverges from "
                    f"{names[0]!r}"
                )
            rows.append({
                "backend": name,
                "precision": resolved,
                "n": n_points,
                "symbols": symbols,
                "workers": eng_workers,
                "wall_ms": best * 1e3,
                "symbols_per_s": symbols / best if best else 0.0,
                "cycles_per_symbol": (
                    result.total_cycles / symbols if result.cycles else 0
                ),
                "overflow": result.overflow_count,
            })
    return rows


# One-shot wrappers (array_fft & friends) reuse engines across calls:
# plan compilation, pre-rotation stores and worker pools are expensive,
# and FFT sizes are powers of two so the cache stays tiny.
_SHARED_CACHE: dict = {}
_SHARED_CACHE_LIMIT = 32


def shared_engine(n_points: int, backend: str = "compiled",
                  precision: str = "float", workers: int = None) -> Engine:
    """A cached facade engine keyed on ``(N, backend, precision, workers)``.

    Used by the one-shot deprecation shims; long-lived callers should
    own their engine via :func:`engine` (and its context manager).
    """
    resolved = normalize_precision(precision)
    key = (n_points, backend, resolved, workers)
    cached = _SHARED_CACHE.get(key)
    if cached is None:
        if len(_SHARED_CACHE) >= _SHARED_CACHE_LIMIT:
            for old in _SHARED_CACHE.values():
                old.close()
            _SHARED_CACHE.clear()
        cached = _SHARED_CACHE[key] = engine(
            n_points, backend=backend, precision=resolved, workers=workers
        )
    return cached


# Built-in backend registration --------------------------------------------


def _no_workers(name: str, workers) -> None:
    if workers is not None and workers >= 2:
        raise ValueError(f"backend {name!r} does not take workers")


def _make_compiled(n_points, fixed_point, workers=None, batch=None):
    _no_workers("compiled", workers)
    return _ArrayBackend(n_points, fixed_point, compiled=True)


def _make_reference(n_points, fixed_point, workers=None, batch=None):
    _no_workers("reference", workers)
    return _ArrayBackend(n_points, fixed_point, compiled=False)


def _make_sharded(n_points, fixed_point, workers=None, batch=None,
                  min_parallel_symbols=None, breaker_backoff_initial=None,
                  breaker_backoff_max=None):
    return _ShardedBackend(
        n_points, fixed_point, workers,
        min_parallel_symbols=min_parallel_symbols,
        breaker_backoff_initial=breaker_backoff_initial,
        breaker_backoff_max=breaker_backoff_max,
    )


def _make_asip(n_points, fixed_point, workers=None, batch=None,
               cache_config=None, pipeline=None, **machine_options):
    _no_workers("asip", workers)
    return _AsipBackend(n_points, fixed_point, cache_config=cache_config,
                        pipeline=pipeline, **machine_options)


def _make_asip_batch(n_points, fixed_point, workers=None, batch=None,
                     cache_config=None, pipeline=None, **machine_options):
    _no_workers("asip-batch", workers)
    return _AsipBatchBackend(n_points, fixed_point, batch=batch,
                             cache_config=cache_config, pipeline=pipeline,
                             **machine_options)


def _register_builtin_backends() -> None:
    specs = [
        BackendSpec(
            name="compiled", factory=_make_compiled,
            description="compiled-plan vectorised ArrayFFT (default)",
        ),
        BackendSpec(
            name="reference", factory=_make_reference,
            description="readable per-butterfly oracle datapath",
        ),
        BackendSpec(
            name="sharded", factory=_make_sharded,
            description="process-pool sharded batch ArrayFFT",
            supports_workers=True,
        ),
        BackendSpec(
            name="asip", factory=_make_asip,
            description="instruction-level ASIP, serial per symbol",
            emits_cycles=True, emits_sim_stats=True,
        ),
        BackendSpec(
            name="asip-batch", factory=_make_asip_batch,
            description="instruction-level ASIP, multi-symbol run_batch",
            emits_cycles=True, emits_sim_stats=True,
        ),
    ]
    for spec in specs:
        register_backend(spec, replace=True)


_register_builtin_backends()
