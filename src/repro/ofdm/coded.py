"""Coded OFDM link: the hand-wired chain with the codec wrapped in.

:class:`CodedOfdmLink` composes an :class:`~repro.ofdm.link.OfdmLink`
with the channel-coding layer (:mod:`repro.coding`): each OFDM symbol
carries one terminated K=7 convolutional code block, bit-interleaved
and soft-decision demapped, with the whole burst Viterbi-decoded in one
batched trellis pass.  It is the imperative twin of the declarative
``CODED_OFDM_CHAIN`` pipeline — same draw order, same datapath,
bit-identical results (asserted in ``tests/test_coded_pipeline.py``) —
for callers who want a live object rather than a stage graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .link import OfdmLink

__all__ = ["CodedLinkResult", "CodedOfdmLink"]


@dataclass
class CodedLinkResult:
    """Outcome of one coded OFDM burst through the link.

    ``tx_info_bits`` / ``rx_info_bits`` are ``(symbols, info_bits)``
    payload matrices; ``coded_bits`` is the pre-interleave coded
    payload; ``llrs`` the deinterleaved per-bit LLRs; ``equalised`` the
    equalised subcarriers; ``fft_cycles`` the per-symbol receiver FFT
    cycle counts (zeros on algorithm-level backends).
    """

    tx_info_bits: np.ndarray
    rx_info_bits: np.ndarray
    coded_bits: np.ndarray
    llrs: np.ndarray
    equalised: np.ndarray
    fft_cycles: tuple

    @property
    def symbols(self) -> int:
        """OFDM symbols (= code blocks) in the burst."""
        return len(self.tx_info_bits)

    @property
    def info_bit_errors(self) -> int:
        """Payload bit errors after decoding."""
        return int(np.sum(self.tx_info_bits != self.rx_info_bits))

    @property
    def coded_ber(self) -> float:
        """Post-decoder payload bit error rate."""
        total = self.tx_info_bits.size
        return self.info_bit_errors / total if total else 0.0

    @property
    def uncoded_ber(self) -> float:
        """Raw channel BER off the LLR signs, before decoding."""
        hard = (self.llrs < 0).astype(np.uint8)
        total = self.coded_bits.size
        return float(np.sum(hard != self.coded_bits)) / total if total \
            else 0.0

    @property
    def frame_errors(self) -> int:
        """Code blocks (one per OFDM symbol) decoded with any error."""
        return int(np.sum(np.any(self.tx_info_bits != self.rx_info_bits,
                                 axis=-1)))

    @property
    def frame_error_rate(self) -> float:
        """FER over the burst's code blocks."""
        return self.frame_errors / self.symbols if self.symbols else 0.0


class CodedOfdmLink:
    """An :class:`OfdmLink` behind the standard channel-coding layer.

    Parameters mirror the underlying link plus the codec
    configuration: ``code`` (registered name, a ``ConvolutionalCode``
    or a ready ``PuncturedCode``), ``rate`` (``"1/2"``/``"2/3"``/
    ``"3/4"``), and ``interleaver`` (registered name, ``(name,
    params)`` or an interleaver object; default ``"block"``).
    """

    def __init__(self, n_subcarriers: int, scheme: str = "qpsk",
                 code="conv-k7", rate: str = "1/2",
                 interleaver="block", **link_options):
        # Imported here, not at module top: repro.coding's demappers
        # pull in repro.ofdm.modulation, so a top-level import would be
        # circular through the package __init__.
        from ..coding import (
            get_demapper,
            resolve_code,
            resolve_interleaver,
        )

        self.link = OfdmLink(n_subcarriers, scheme=scheme, **link_options)
        self.code = resolve_code(code, rate)
        if self.code is None:
            raise ValueError("CodedOfdmLink needs a code (use OfdmLink "
                             "for uncoded chains)")
        capacity = self.link.bits_per_symbol
        self.geometry = self.code.block_geometry(capacity)
        # None means "the default", which — exactly like Pipeline's
        # coded default — is the block interleaver, so the two twins
        # stay bit-identical for the same configuration.
        self.interleaver = resolve_interleaver(
            "block" if interleaver is None else interleaver, capacity
        )
        self.demapper = get_demapper(scheme)

    @classmethod
    def from_scenario(cls, name: str, **overrides) -> "CodedOfdmLink":
        """Build a coded link from a registered coded scenario preset.

        The preset supplies geometry, scheme, channel, SNR and the
        codec configuration; keyword overrides win.  Presets without a
        ``code`` raise ``ValueError`` (use :class:`OfdmLink` instead).
        """
        from ..scenarios import get_scenario

        spec = get_scenario(name)
        if spec.code is None:
            raise ValueError(
                f"scenario {name!r} is uncoded; build it with "
                f"OfdmLink.from_scenario or repro.run_scenario instead"
            )
        options = dict(
            scheme=spec.scheme,
            code=spec.code,
            rate=spec.code_rate,
            interleaver=spec.interleaver,
            channel=spec.make_channel(),
            snr_db=spec.snr_db if spec.snr_db is not None else 30.0,
            seed=spec.seed,
            backend=spec.backend,
        )
        n_subcarriers = overrides.pop("n_subcarriers", spec.n_points)
        options.update(overrides)
        return cls(n_subcarriers, **options)

    # Delegation ----------------------------------------------------------

    @property
    def n(self) -> int:
        """Subcarrier count."""
        return self.link.n

    @property
    def info_bits_per_symbol(self) -> int:
        """Payload bits carried by one coded OFDM symbol."""
        return self.geometry.info_bits

    def close(self) -> None:
        """Release the underlying link's engines (idempotent)."""
        self.link.close()

    def __enter__(self) -> "CodedOfdmLink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # Datapath ------------------------------------------------------------

    def run_coded(self, symbols: int) -> CodedLinkResult:
        """Push a coded burst end to end; one code block per symbol."""
        if symbols < 1:
            raise ValueError("need at least one symbol")
        info = np.stack([
            self.link.rng.integers(0, 2, size=self.geometry.info_bits)
            for _ in range(symbols)
        ])
        coded = self.code.encode(info, capacity=self.link.bits_per_symbol)
        air = self.interleaver.interleave(coded)
        time_signals = self.link._transmit_burst(list(air))
        noisy = self.link._channel_burst(time_signals, self.link.snr_db)
        equalised, cycles = self.link.receive_many(noisy)
        llrs = self.interleaver.deinterleave(self.demapper.llrs(equalised))
        rx_info = np.asarray(
            self.code.decode(llrs[..., :self.geometry.coded_bits]),
            dtype=np.uint8,
        )
        return CodedLinkResult(
            tx_info_bits=info.astype(np.uint8),
            rx_info_bits=rx_info,
            coded_bits=coded,
            llrs=llrs,
            equalised=equalised,
            fft_cycles=cycles,
        )

    def measure_coded_ber(self, symbols: int = 8) -> dict:
        """Coded/uncoded BER and FER over one burst; returns a dict."""
        result = self.run_coded(symbols)
        return {
            "coded_ber": result.coded_ber,
            "uncoded_ber": result.uncoded_ber,
            "fer": result.frame_error_rate,
        }
