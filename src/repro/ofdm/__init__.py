"""OFDM substrate: the communication chain the paper's intro motivates."""

from .channel import MultipathChannel, awgn, ebn0_to_noise_sigma
from .coded import CodedLinkResult, CodedOfdmLink
from .link import LinkResult, OfdmLink
from .modulation import CONSTELLATIONS, Constellation, demodulate, modulate

__all__ = [
    "Constellation",
    "CONSTELLATIONS",
    "modulate",
    "demodulate",
    "awgn",
    "ebn0_to_noise_sigma",
    "MultipathChannel",
    "OfdmLink",
    "LinkResult",
    "CodedOfdmLink",
    "CodedLinkResult",
]
