"""End-to-end OFDM link: transmitter, channel, facade-backed receiver.

One :class:`OfdmLink` wires the substrate together: constellation mapping
onto N subcarriers, IFFT (host side — the transmitter), a channel model,
and a receiver whose FFT stage is any backend of the unified facade
(:func:`repro.engine`): the algorithm-level ``compiled``/``sharded``
engines (fast) or the full instruction-level ASIP simulation (exact
reproduction of the paper's datapath; ``asip-batch`` keeps **one
persistent machine** and pushes whole symbol bursts through
:meth:`~repro.asip.FFTASIP.run_batch`), followed by one-tap
equalisation and demapping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engines import engine as build_engine
from .channel import MultipathChannel, awgn
from .modulation import CONSTELLATIONS

__all__ = ["LinkResult", "OfdmLink"]


@dataclass
class LinkResult:
    """Outcome of one OFDM symbol through the link."""

    tx_bits: np.ndarray
    rx_bits: np.ndarray
    equalised: np.ndarray
    fft_cycles: int  # 0 when an algorithm-level engine was used

    @property
    def bit_errors(self) -> int:
        """Number of bit errors in the symbol."""
        return int(np.sum(self.tx_bits != self.rx_bits))

    @property
    def bit_error_rate(self) -> float:
        """BER for the symbol."""
        return self.bit_errors / len(self.tx_bits)

    def evm_percent(self, reference) -> float:
        """Error-vector magnitude of the equalised constellation."""
        reference = np.asarray(reference, dtype=complex)
        error = np.sqrt(np.mean(np.abs(self.equalised - reference) ** 2))
        return float(100.0 * error)


class OfdmLink:
    """An OFDM link with a pluggable facade-backed FFT receiver stage.

    Parameters
    ----------
    backend:
        Receiver FFT backend name (any registered facade backend).
        Defaults to ``"asip-batch"`` when ``use_asip`` is set,
        ``"sharded"`` when ``workers >= 2``, else ``"compiled"``.
    use_asip:
        Back-compatible switch selecting the instruction-level receiver
        (now the persistent ``asip-batch`` machine — one
        :meth:`FFTASIP.run_batch` pass per burst instead of a fresh
        simulator per symbol).
    workers:
        ``workers >= 2`` shards the batched transmitter IFFT and
        (non-ASIP) receiver FFT of :meth:`run_symbols` /
        :meth:`measure_ber` / :meth:`measure_ber_sweep` across a
        process pool; the engine falls back to serial execution for
        small bursts or when worker processes are unavailable, so
        results are identical either way.
    """

    def __init__(self, n_subcarriers: int, scheme: str = "qpsk",
                 channel: MultipathChannel = None, snr_db: float = 30.0,
                 use_asip: bool = False, seed: int = 0,
                 workers: int = None, backend: str = None):
        if scheme not in CONSTELLATIONS:
            raise ValueError(f"unknown scheme {scheme!r}")
        self.n = n_subcarriers
        self.constellation = CONSTELLATIONS[scheme]
        self.channel = channel
        self.snr_db = snr_db
        self.rng = np.random.default_rng(seed)
        sharded = workers is not None and workers >= 2
        if backend is None:
            backend = ("asip-batch" if use_asip
                       else "sharded" if sharded else "compiled")
        self.backend = backend
        self.use_asip = use_asip or backend in ("asip", "asip-batch")
        self.engine = build_engine(
            n_subcarriers, backend=backend,
            workers=workers if backend == "sharded" else None,
        )
        # The transmitter IFFT always runs host-side on an algorithm
        # engine (the receiver is what the paper's ASIP implements); a
        # non-simulated receiver engine doubles as the transmitter.
        if self.engine.machine is None:
            self._tx_engine = self.engine
        else:
            self._tx_engine = build_engine(
                n_subcarriers,
                backend="sharded" if sharded else "compiled",
                workers=workers if sharded else None,
            )

    @classmethod
    def from_scenario(cls, name: str, **overrides) -> "OfdmLink":
        """Build a link from a registered scenario preset.

        The preset supplies ``n_subcarriers`` / ``scheme`` / ``channel``
        / ``snr_db``; keyword overrides win (``backend=``, ``workers=``,
        ``seed=``, ``n_subcarriers=``, ...).  Scenarios whose stage
        chain is not the modulated OFDM shape (e.g. ``spectral``) have
        no link equivalent and raise ``ValueError``.
        """
        from ..scenarios import get_scenario

        spec = get_scenario(name)
        if spec.scheme is None:
            raise ValueError(
                f"scenario {name!r} is not a modulated OFDM workload; "
                f"run it through repro.pipeline()/run_scenario() instead"
            )
        options = dict(
            scheme=spec.scheme,
            channel=spec.make_channel(),
            snr_db=spec.snr_db if spec.snr_db is not None else 30.0,
            seed=spec.seed,
            backend=spec.backend,
        )
        n_subcarriers = overrides.pop("n_subcarriers", spec.n_points)
        options.update(overrides)
        return cls(n_subcarriers, **options)

    @property
    def bits_per_symbol(self) -> int:
        """Payload bits carried by one OFDM symbol."""
        return self.n * self.constellation.bits_per_symbol

    def close(self) -> None:
        """Release the engines' worker pools, if any (idempotent)."""
        self.engine.close()
        if self._tx_engine is not self.engine:
            self._tx_engine.close()

    def __enter__(self) -> "OfdmLink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def random_bits(self) -> np.ndarray:
        """A payload's worth of random bits."""
        return self.rng.integers(0, 2, size=self.bits_per_symbol)

    def transmit(self, bits) -> tuple:
        """Map and IFFT one symbol; returns (time_signal, subcarriers)."""
        subcarriers = self.constellation.map_bits(np.asarray(bits))
        time_signal = self._tx_engine.inverse(subcarriers).spectrum * self.n
        return time_signal, subcarriers

    def receive(self, time_signal) -> tuple:
        """FFT (any facade backend) + one-tap equalisation."""
        result = self.engine.transform(
            np.asarray(time_signal, dtype=complex)
        )
        return self._equalise(result.spectrum), result.cycles[0]

    def receive_many(self, time_signals) -> tuple:
        """Batched receive of an ``(n_symbols, N)`` block of time signals.

        All symbols run through one facade batch call — for the
        ``asip-batch`` backend that is one persistent
        :meth:`FFTASIP.run_batch` machine executing the whole burst.
        Returns ``(equalised_spectra, per_symbol_cycles)``.
        """
        time_signals = np.asarray(time_signals, dtype=complex)
        result = self.engine.transform_many(time_signals)
        return self._equalise(result.spectrum), result.cycles

    def _equalise(self, spectra: np.ndarray) -> np.ndarray:
        """Scale by 1/N and one-tap equalise (broadcasts over batches)."""
        spectra = spectra / self.n
        if self.channel is not None:
            spectra = spectra / self.channel.frequency_response(self.n)
        return spectra

    def run_symbol(self, bits=None) -> LinkResult:
        """Push one OFDM symbol end to end."""
        tx_bits = np.asarray(bits) if bits is not None else self.random_bits()
        time_signal, _ = self.transmit(tx_bits)
        if self.channel is not None:
            time_signal = self.channel.apply(time_signal)
        time_signal = awgn(time_signal, self.snr_db, rng=self.rng)
        equalised, cycles = self.receive(time_signal)
        rx_bits = self.constellation.unmap_symbols(equalised)
        return LinkResult(
            tx_bits=tx_bits,
            rx_bits=rx_bits,
            equalised=equalised,
            fft_cycles=cycles,
        )

    def run_symbols(self, count: int) -> list:
        """Push ``count`` OFDM symbols end to end with batched FFT passes.

        The transmitter IFFT and receiver FFT each run as one facade
        batch call over all symbols, amortising the compiled plan (or
        the simulated program pass) across the burst — the multi-symbol
        traffic path.
        """
        if count < 1:
            raise ValueError("need at least one symbol")
        payloads = [self.random_bits() for _ in range(count)]
        time_signals = self._transmit_burst(payloads)
        time_signals = self._channel_burst(time_signals, self.snr_db)
        equalised, cycles = self.receive_many(time_signals)
        return [
            LinkResult(
                tx_bits=payloads[k],
                rx_bits=self.constellation.unmap_symbols(equalised[k]),
                equalised=equalised[k],
                fft_cycles=cycles[k],
            )
            for k in range(count)
        ]

    def _transmit_burst(self, payloads: list) -> np.ndarray:
        subcarriers = np.stack(
            [self.constellation.map_bits(bits) for bits in payloads]
        )
        return self._tx_engine.inverse_many(subcarriers).spectrum * self.n

    def _channel_burst(self, time_signals: np.ndarray,
                       snr_db: float) -> np.ndarray:
        # Channel and noise are applied to the whole burst at once: one
        # FFT-based circular convolution and one rng draw per batch, with
        # per-symbol noise power (awgn measures power along the last
        # axis).
        if self.channel is not None:
            time_signals = self.channel.apply(time_signals)
        return awgn(time_signals, snr_db, rng=self.rng)

    def measure_ber(self, symbols: int = 10) -> float:
        """Average BER over several independent symbols (batched)."""
        if symbols < 1:
            raise ValueError("need at least one symbol")
        errors = 0
        total = 0
        for result in self.run_symbols(symbols):
            errors += result.bit_errors
            total += len(result.tx_bits)
        return errors / total

    def measure_ber_sweep(self, snr_dbs, symbols: int = 10) -> dict:
        """BER at each SNR point, the whole sweep batched as one burst.

        All ``len(snr_dbs) * symbols`` symbols are transmitted and
        received in **one** facade batch per direction, so a
        ``workers >= 2`` link shards the entire BER curve row-wise
        across its process pool (``ShardedEngine`` underneath) instead
        of running SNR points one by one — with the usual serial
        fallback when the pool is unavailable or the burst is small.
        Noise is drawn per SNR point (per-symbol noise power), then the
        receiver FFT runs over the concatenated burst.

        Returns ``{snr_db: ber}`` in the order given.
        """
        snr_dbs = [float(s) for s in snr_dbs]
        if not snr_dbs:
            raise ValueError("need at least one SNR point")
        if symbols < 1:
            raise ValueError("need at least one symbol")
        total = len(snr_dbs) * symbols
        payloads = [self.random_bits() for _ in range(total)]
        time_signals = self._transmit_burst(payloads)
        noisy = np.concatenate([
            self._channel_burst(
                time_signals[k * symbols:(k + 1) * symbols], snr
            )
            for k, snr in enumerate(snr_dbs)
        ])
        equalised, _ = self.receive_many(noisy)
        sweep = {}
        for k, snr in enumerate(snr_dbs):
            errors = 0
            for j in range(k * symbols, (k + 1) * symbols):
                rx = self.constellation.unmap_symbols(equalised[j])
                errors += int(np.sum(rx != payloads[j]))
            sweep[snr] = errors / (symbols * self.bits_per_symbol)
        return sweep
