"""End-to-end OFDM link: transmitter, channel, ASIP-backed receiver.

One :class:`OfdmLink` wires the substrate together: constellation mapping
onto N subcarriers, IFFT (host side — the transmitter), a channel model,
and a receiver whose FFT stage is either the algorithm-level
:class:`repro.core.ArrayFFT` (fast) or the full instruction-level ASIP
simulation (exact reproduction of the paper's datapath), followed by
one-tap equalisation and demapping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..asip.runner import simulate_fft
from ..core.array_fft import ArrayFFT
from .channel import MultipathChannel, awgn
from .modulation import CONSTELLATIONS

__all__ = ["LinkResult", "OfdmLink"]


@dataclass
class LinkResult:
    """Outcome of one OFDM symbol through the link."""

    tx_bits: np.ndarray
    rx_bits: np.ndarray
    equalised: np.ndarray
    fft_cycles: int  # 0 when the algorithm-level engine was used

    @property
    def bit_errors(self) -> int:
        """Number of bit errors in the symbol."""
        return int(np.sum(self.tx_bits != self.rx_bits))

    @property
    def bit_error_rate(self) -> float:
        """BER for the symbol."""
        return self.bit_errors / len(self.tx_bits)

    def evm_percent(self, reference) -> float:
        """Error-vector magnitude of the equalised constellation."""
        reference = np.asarray(reference, dtype=complex)
        error = np.sqrt(np.mean(np.abs(self.equalised - reference) ** 2))
        return float(100.0 * error)


class OfdmLink:
    """A single-symbol OFDM link with a pluggable FFT receiver stage."""

    def __init__(self, n_subcarriers: int, scheme: str = "qpsk",
                 channel: MultipathChannel = None, snr_db: float = 30.0,
                 use_asip: bool = False, seed: int = 0):
        if scheme not in CONSTELLATIONS:
            raise ValueError(f"unknown scheme {scheme!r}")
        self.n = n_subcarriers
        self.constellation = CONSTELLATIONS[scheme]
        self.channel = channel
        self.snr_db = snr_db
        self.use_asip = use_asip
        self.rng = np.random.default_rng(seed)
        self.engine = ArrayFFT(n_subcarriers)

    @property
    def bits_per_symbol(self) -> int:
        """Payload bits carried by one OFDM symbol."""
        return self.n * self.constellation.bits_per_symbol

    def random_bits(self) -> np.ndarray:
        """A payload's worth of random bits."""
        return self.rng.integers(0, 2, size=self.bits_per_symbol)

    def transmit(self, bits) -> tuple:
        """Map and IFFT one symbol; returns (time_signal, subcarriers)."""
        subcarriers = self.constellation.map_bits(np.asarray(bits))
        time_signal = self.engine.inverse(subcarriers) * self.n
        return time_signal, subcarriers

    def receive(self, time_signal) -> tuple:
        """FFT (ASIP or algorithm engine) + one-tap equalisation."""
        if self.use_asip:
            result = simulate_fft(np.asarray(time_signal, dtype=complex))
            spectrum = result.spectrum
            cycles = result.stats.cycles
        else:
            spectrum = self.engine.transform(time_signal)
            cycles = 0
        spectrum = spectrum / self.n
        if self.channel is not None:
            response = self.channel.frequency_response(self.n)
            spectrum = spectrum / response
        return spectrum, cycles

    def run_symbol(self, bits=None) -> LinkResult:
        """Push one OFDM symbol end to end."""
        tx_bits = np.asarray(bits) if bits is not None else self.random_bits()
        time_signal, _ = self.transmit(tx_bits)
        if self.channel is not None:
            time_signal = self.channel.apply(time_signal)
        time_signal = awgn(time_signal, self.snr_db, rng=self.rng)
        equalised, cycles = self.receive(time_signal)
        rx_bits = self.constellation.unmap_symbols(equalised)
        return LinkResult(
            tx_bits=tx_bits,
            rx_bits=rx_bits,
            equalised=equalised,
            fft_cycles=cycles,
        )

    def measure_ber(self, symbols: int = 10) -> float:
        """Average BER over several independent symbols."""
        if symbols < 1:
            raise ValueError("need at least one symbol")
        errors = 0
        total = 0
        for _ in range(symbols):
            result = self.run_symbol()
            errors += result.bit_errors
            total += len(result.tx_bits)
        return errors / total
