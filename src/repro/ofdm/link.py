"""End-to-end OFDM link: transmitter, channel, ASIP-backed receiver.

One :class:`OfdmLink` wires the substrate together: constellation mapping
onto N subcarriers, IFFT (host side — the transmitter), a channel model,
and a receiver whose FFT stage is either the algorithm-level
:class:`repro.core.ArrayFFT` (fast) or the full instruction-level ASIP
simulation (exact reproduction of the paper's datapath), followed by
one-tap equalisation and demapping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..asip.runner import simulate_fft
from ..core.array_fft import ArrayFFT
from ..core.parallel import ShardedEngine
from .channel import MultipathChannel, awgn
from .modulation import CONSTELLATIONS

__all__ = ["LinkResult", "OfdmLink"]


@dataclass
class LinkResult:
    """Outcome of one OFDM symbol through the link."""

    tx_bits: np.ndarray
    rx_bits: np.ndarray
    equalised: np.ndarray
    fft_cycles: int  # 0 when the algorithm-level engine was used

    @property
    def bit_errors(self) -> int:
        """Number of bit errors in the symbol."""
        return int(np.sum(self.tx_bits != self.rx_bits))

    @property
    def bit_error_rate(self) -> float:
        """BER for the symbol."""
        return self.bit_errors / len(self.tx_bits)

    def evm_percent(self, reference) -> float:
        """Error-vector magnitude of the equalised constellation."""
        reference = np.asarray(reference, dtype=complex)
        error = np.sqrt(np.mean(np.abs(self.equalised - reference) ** 2))
        return float(100.0 * error)


class OfdmLink:
    """An OFDM link with a pluggable FFT receiver stage.

    ``workers >= 2`` shards the batched transmitter IFFT and (non-ASIP)
    receiver FFT of :meth:`run_symbols` / :meth:`measure_ber` across a
    process pool (:class:`~repro.core.parallel.ShardedEngine`); the
    engine falls back to serial execution for small bursts or when
    worker processes are unavailable, so results are identical either
    way.
    """

    def __init__(self, n_subcarriers: int, scheme: str = "qpsk",
                 channel: MultipathChannel = None, snr_db: float = 30.0,
                 use_asip: bool = False, seed: int = 0,
                 workers: int = None):
        if scheme not in CONSTELLATIONS:
            raise ValueError(f"unknown scheme {scheme!r}")
        self.n = n_subcarriers
        self.constellation = CONSTELLATIONS[scheme]
        self.channel = channel
        self.snr_db = snr_db
        self.use_asip = use_asip
        self.rng = np.random.default_rng(seed)
        if workers is not None and workers >= 2:
            self.engine = ShardedEngine(n_subcarriers, workers=workers)
        else:
            self.engine = ArrayFFT(n_subcarriers)

    @property
    def bits_per_symbol(self) -> int:
        """Payload bits carried by one OFDM symbol."""
        return self.n * self.constellation.bits_per_symbol

    def close(self) -> None:
        """Release the engine's worker pool, if any (idempotent)."""
        close = getattr(self.engine, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "OfdmLink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def random_bits(self) -> np.ndarray:
        """A payload's worth of random bits."""
        return self.rng.integers(0, 2, size=self.bits_per_symbol)

    def transmit(self, bits) -> tuple:
        """Map and IFFT one symbol; returns (time_signal, subcarriers)."""
        subcarriers = self.constellation.map_bits(np.asarray(bits))
        time_signal = self.engine.inverse(subcarriers) * self.n
        return time_signal, subcarriers

    def receive(self, time_signal) -> tuple:
        """FFT (ASIP or algorithm engine) + one-tap equalisation."""
        if self.use_asip:
            result = simulate_fft(np.asarray(time_signal, dtype=complex))
            spectrum = result.spectrum
            cycles = result.stats.cycles
        else:
            spectrum = self.engine.transform(time_signal)
            cycles = 0
        return self._equalise(spectrum), cycles

    def receive_many(self, time_signals) -> tuple:
        """Batched receive of an ``(n_symbols, N)`` block of time signals.

        The non-ASIP path runs all symbols through one
        :meth:`ArrayFFT.transform_many` call; the ASIP path delegates to
        :meth:`receive` per symbol (instruction-level fidelity is the
        point there).  Returns ``(equalised_spectra, per_symbol_cycles)``.
        """
        time_signals = np.asarray(time_signals, dtype=complex)
        if self.use_asip:
            received = [self.receive(signal) for signal in time_signals]
            return (np.stack([spectrum for spectrum, _ in received]),
                    [cycles for _, cycles in received])
        spectra = self.engine.transform_many(time_signals)
        return self._equalise(spectra), [0] * len(time_signals)

    def _equalise(self, spectra: np.ndarray) -> np.ndarray:
        """Scale by 1/N and one-tap equalise (broadcasts over batches)."""
        spectra = spectra / self.n
        if self.channel is not None:
            spectra = spectra / self.channel.frequency_response(self.n)
        return spectra

    def run_symbol(self, bits=None) -> LinkResult:
        """Push one OFDM symbol end to end."""
        tx_bits = np.asarray(bits) if bits is not None else self.random_bits()
        time_signal, _ = self.transmit(tx_bits)
        if self.channel is not None:
            time_signal = self.channel.apply(time_signal)
        time_signal = awgn(time_signal, self.snr_db, rng=self.rng)
        equalised, cycles = self.receive(time_signal)
        rx_bits = self.constellation.unmap_symbols(equalised)
        return LinkResult(
            tx_bits=tx_bits,
            rx_bits=rx_bits,
            equalised=equalised,
            fft_cycles=cycles,
        )

    def run_symbols(self, count: int) -> list:
        """Push ``count`` OFDM symbols end to end with batched FFT passes.

        The transmitter IFFT and (non-ASIP) receiver FFT each run as one
        :class:`ArrayFFT` batch call over all symbols, amortising the
        compiled plan across the burst — the multi-symbol traffic path.
        """
        if count < 1:
            raise ValueError("need at least one symbol")
        payloads = [self.random_bits() for _ in range(count)]
        subcarriers = np.stack(
            [self.constellation.map_bits(bits) for bits in payloads]
        )
        time_signals = self.engine.inverse_many(subcarriers) * self.n
        # Channel and noise are applied to the whole burst at once: one
        # FFT-based circular convolution and one rng draw per batch, with
        # per-symbol noise power (awgn measures power along the last
        # axis).
        if self.channel is not None:
            time_signals = self.channel.apply(time_signals)
        time_signals = awgn(time_signals, self.snr_db, rng=self.rng)
        equalised, cycles = self.receive_many(time_signals)
        return [
            LinkResult(
                tx_bits=payloads[k],
                rx_bits=self.constellation.unmap_symbols(equalised[k]),
                equalised=equalised[k],
                fft_cycles=cycles[k],
            )
            for k in range(count)
        ]

    def measure_ber(self, symbols: int = 10) -> float:
        """Average BER over several independent symbols (batched)."""
        if symbols < 1:
            raise ValueError("need at least one symbol")
        errors = 0
        total = 0
        for result in self.run_symbols(symbols):
            errors += result.bit_errors
            total += len(result.tx_bits)
        return errors / total
