"""Channel models for the OFDM substrate: AWGN and multipath fading."""

from __future__ import annotations

import numpy as np

__all__ = ["awgn", "MultipathChannel", "ebn0_to_noise_sigma"]


def ebn0_to_noise_sigma(snr_db: float, signal_power: float = 1.0) -> float:
    """Per-complex-sample noise sigma for a target SNR in dB."""
    noise_power = signal_power / (10.0 ** (snr_db / 10.0))
    return float(np.sqrt(noise_power / 2.0))


def awgn(signal, snr_db: float, rng=None) -> np.ndarray:
    """Add complex white Gaussian noise at the given SNR.

    SNR is measured against the empirical signal power, so the function
    composes safely after IFFT scaling or channel gain.
    """
    signal = np.asarray(signal, dtype=complex)
    rng = rng or np.random.default_rng()
    power = float(np.mean(np.abs(signal) ** 2))
    if power == 0:
        return signal.copy()
    sigma = ebn0_to_noise_sigma(snr_db, power)
    noise = sigma * (
        rng.standard_normal(len(signal))
        + 1j * rng.standard_normal(len(signal))
    )
    return signal + noise


class MultipathChannel:
    """Static FIR multipath channel with known taps.

    Applied circularly (as a cyclic-prefix OFDM system sees it), so the
    per-subcarrier response is simply the tap DFT — which the receiver
    uses for one-tap equalisation.
    """

    def __init__(self, taps):
        self.taps = np.asarray(taps, dtype=complex)
        if len(self.taps) == 0:
            raise ValueError("channel needs at least one tap")

    def apply(self, signal) -> np.ndarray:
        """Circular convolution of ``signal`` with the channel taps."""
        signal = np.asarray(signal, dtype=complex)
        if len(self.taps) > len(signal):
            raise ValueError("channel longer than the OFDM symbol")
        padded = np.zeros(len(signal), dtype=complex)
        padded[: len(self.taps)] = self.taps
        return np.fft.ifft(np.fft.fft(signal) * np.fft.fft(padded))

    def frequency_response(self, n_points: int) -> np.ndarray:
        """Per-subcarrier complex gain for an ``n_points`` FFT."""
        padded = np.zeros(n_points, dtype=complex)
        padded[: len(self.taps)] = self.taps
        return np.fft.fft(padded)

    @staticmethod
    def exponential_profile(n_taps: int, decay: float = 0.5,
                            rng=None) -> "MultipathChannel":
        """Random Rayleigh taps with exponentially decaying power."""
        rng = rng or np.random.default_rng()
        powers = decay ** np.arange(n_taps)
        taps = np.sqrt(powers / 2) * (
            rng.standard_normal(n_taps) + 1j * rng.standard_normal(n_taps)
        )
        taps /= np.linalg.norm(taps)
        return MultipathChannel(taps)
