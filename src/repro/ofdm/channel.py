"""Channel models for the OFDM substrate: AWGN and multipath fading."""

from __future__ import annotations

import numpy as np

__all__ = ["awgn", "MultipathChannel", "ebn0_to_noise_sigma"]


def ebn0_to_noise_sigma(snr_db: float, signal_power=1.0):
    """Per-complex-sample noise sigma for a target SNR in dB.

    ``signal_power`` may be a scalar or an array of per-symbol powers;
    the result has the same shape (a float for scalar input).
    """
    noise_power = np.asarray(signal_power) / (10.0 ** (snr_db / 10.0))
    sigma = np.sqrt(noise_power / 2.0)
    return float(sigma) if sigma.ndim == 0 else sigma


def awgn(signal, snr_db: float, rng=None) -> np.ndarray:
    """Add complex white Gaussian noise at the given SNR.

    SNR is measured against the empirical signal power, so the function
    composes safely after IFFT scaling or channel gain.  A 2-D
    ``(n_symbols, N)`` batch is noised in one pass — a single rng draw
    per component for the whole batch — with the power (and therefore
    the noise sigma) measured per symbol, exactly as a per-symbol loop
    would.
    """
    signal = np.asarray(signal, dtype=complex)
    rng = rng or np.random.default_rng()
    power = np.mean(np.abs(signal) ** 2, axis=-1, keepdims=True)
    if not power.any():
        return signal.copy()
    sigma = ebn0_to_noise_sigma(snr_db, power)
    noise = sigma * (
        rng.standard_normal(signal.shape)
        + 1j * rng.standard_normal(signal.shape)
    )
    return signal + noise


class MultipathChannel:
    """Static FIR multipath channel with known taps.

    Applied circularly (as a cyclic-prefix OFDM system sees it), so the
    per-subcarrier response is simply the tap DFT — which the receiver
    uses for one-tap equalisation.
    """

    def __init__(self, taps):
        self.taps = np.asarray(taps, dtype=complex)
        if len(self.taps) == 0:
            raise ValueError("channel needs at least one tap")

    def apply(self, signal) -> np.ndarray:
        """Circular convolution of ``signal`` with the channel taps.

        Accepts one symbol or an ``(n_symbols, N)`` batch; the FFT-based
        convolution runs along the last axis, so a whole burst goes
        through in one vectorised pass.
        """
        signal = np.asarray(signal, dtype=complex)
        n = signal.shape[-1]
        if len(self.taps) > n:
            raise ValueError("channel longer than the OFDM symbol")
        padded = np.zeros(n, dtype=complex)
        padded[: len(self.taps)] = self.taps
        return np.fft.ifft(
            np.fft.fft(signal, axis=-1) * np.fft.fft(padded), axis=-1
        )

    def frequency_response(self, n_points: int) -> np.ndarray:
        """Per-subcarrier complex gain for an ``n_points`` FFT."""
        padded = np.zeros(n_points, dtype=complex)
        padded[: len(self.taps)] = self.taps
        return np.fft.fft(padded)

    @staticmethod
    def exponential_profile(n_taps: int, decay: float = 0.5,
                            rng=None) -> "MultipathChannel":
        """Random Rayleigh taps with exponentially decaying power."""
        rng = rng or np.random.default_rng()
        powers = decay ** np.arange(n_taps)
        taps = np.sqrt(powers / 2) * (
            rng.standard_normal(n_taps) + 1j * rng.standard_normal(n_taps)
        )
        taps /= np.linalg.norm(taps)
        return MultipathChannel(taps)
