"""Subcarrier constellation mapping for the OFDM substrate.

The paper motivates the ASIP with OFDM systems (MB-UWB, WiMAX); this
package provides the minimal transceiver around the FFT so the examples
and system-level tests exercise the ASIP inside a realistic signal chain.
Gray-coded BPSK/QPSK/16-QAM/64-QAM mappers with unit average power, plus
hard-decision demappers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Constellation", "CONSTELLATIONS", "modulate", "demodulate"]


def _gray_levels(bits_per_axis: int) -> np.ndarray:
    """Gray-ordered odd-integer PAM levels for one I/Q axis."""
    count = 1 << bits_per_axis
    levels = np.arange(count)
    gray = levels ^ (levels >> 1)
    amplitude = 2 * levels - (count - 1)
    out = np.empty(count)
    out[gray] = amplitude
    return out


class Constellation:
    """A square Gray-mapped QAM constellation with unit average power."""

    def __init__(self, name: str, bits_per_symbol: int):
        if bits_per_symbol < 1 or bits_per_symbol > 8:
            raise ValueError("bits per symbol must be in [1, 8]")
        self.name = name
        self.bits_per_symbol = bits_per_symbol
        if bits_per_symbol == 1:  # BPSK on the real axis
            points = np.array([1.0 + 0j, -1.0 + 0j])
        else:
            if bits_per_symbol % 2:
                raise ValueError(
                    "square QAM needs an even number of bits per symbol"
                )
            per_axis = bits_per_symbol // 2
            axis = _gray_levels(per_axis)
            points = (
                axis[:, None] + 1j * axis[None, :]
            ).reshape(-1)
            # index = (i_bits << per_axis) | q_bits
        self.points = points / np.sqrt(np.mean(np.abs(points) ** 2))

    def map_bits(self, bits: np.ndarray) -> np.ndarray:
        """Map a bit vector (length divisible by bits_per_symbol)."""
        bits = np.asarray(bits, dtype=int)
        if len(bits) % self.bits_per_symbol:
            raise ValueError(
                f"bit count {len(bits)} not divisible by "
                f"{self.bits_per_symbol}"
            )
        groups = bits.reshape(-1, self.bits_per_symbol)
        weights = 1 << np.arange(self.bits_per_symbol - 1, -1, -1)
        return self.points[groups @ weights]

    def unmap_symbols(self, symbols: np.ndarray) -> np.ndarray:
        """Hard-decision demap to the nearest constellation point."""
        symbols = np.asarray(symbols, dtype=complex)
        distances = np.abs(symbols[:, None] - self.points[None, :])
        indices = np.argmin(distances, axis=1)
        width = self.bits_per_symbol
        bits = (
            (indices[:, None] >> np.arange(width - 1, -1, -1)) & 1
        )
        return bits.reshape(-1)


CONSTELLATIONS = {
    "bpsk": Constellation("bpsk", 1),
    "qpsk": Constellation("qpsk", 2),
    "16qam": Constellation("16qam", 4),
    "64qam": Constellation("64qam", 6),
}


def modulate(bits, scheme: str = "qpsk") -> np.ndarray:
    """Map ``bits`` with the named constellation."""
    return CONSTELLATIONS[scheme].map_bits(bits)


def demodulate(symbols, scheme: str = "qpsk") -> np.ndarray:
    """Hard-decision demap with the named constellation."""
    return CONSTELLATIONS[scheme].unmap_symbols(symbols)
