"""Streaming driver: back-to-back transforms on one ASIP instance.

The paper reports per-transform cycle counts; a deployed receiver runs
symbols *continuously*.  This driver reuses one machine and one compiled
program across a stream of input blocks, measuring the steady-state rate
(program reload and data staging amortised away) and verifying every
block.  It also exposes the per-symbol cycle variance — constant by
construction in this design, which is itself a property worth asserting
(no data-dependent control flow anywhere in Algorithm 1).

Blocks are staged in multi-symbol chunks through
:meth:`repro.asip.FFTASIP.run_batch`, so the fused LDIN/BUT4/STOUT walks
execute over an ``(n_symbols, ...)`` batch axis in one numpy pass per
burst while retiring per-symbol cycles and counters exactly as the
serial loop does.  ``batch=1`` forces the serial loop (the benchmark
baseline); machines the batch path cannot reproduce exactly fall back to
it automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sim.cache import CacheConfig
from .fft_asip import FFTASIP
from .throughput import CLOCK_HZ, msamples_per_second, paper_mbps

__all__ = ["StreamStats", "StreamingFFT"]


@dataclass
class StreamStats:
    """Accumulated results of a streamed run."""

    n_points: int
    symbols: int = 0
    total_cycles: int = 0
    per_symbol_cycles: list = field(default_factory=list)

    @property
    def cycles_per_symbol(self) -> float:
        """Mean steady-state cycles per transform."""
        return self.total_cycles / self.symbols if self.symbols else 0.0

    @property
    def msamples_per_second(self) -> float:
        """Sustained sample throughput at the 300 MHz clock."""
        if not self.symbols:
            return 0.0
        return msamples_per_second(
            self.n_points * self.symbols, self.total_cycles, CLOCK_HZ
        )

    @property
    def mbps_paper_convention(self) -> float:
        """Table I's Mbps convention (6 bits per sample point)."""
        if not self.symbols:
            return 0.0
        return paper_mbps(
            self.n_points * self.symbols, self.total_cycles, CLOCK_HZ
        )

    @property
    def is_deterministic(self) -> bool:
        """True when every symbol took exactly the same cycle count."""
        return len(set(self.per_symbol_cycles)) <= 1

    def merge(self, other: "StreamStats") -> None:
        """Fold another shard's results into this one (sharded streams)."""
        if other.n_points != self.n_points:
            raise ValueError("cannot merge streams of different sizes")
        self.symbols += other.symbols
        self.total_cycles += other.total_cycles
        self.per_symbol_cycles.extend(other.per_symbol_cycles)


class StreamingFFT:
    """Run a stream of blocks through one compiled program.

    Since the sessions API landed this is a thin wrapper over
    :class:`repro.sessions.StreamSession`: the machine and program come
    from the unified facade's ``asip-batch`` backend (one persistent
    :class:`FFTASIP` plus its generated Algorithm-1 program), a session
    feeds and chunks the stream, and this driver folds the per-chunk
    :class:`~repro.engines.TransformResult`\\ s into the
    :class:`StreamStats` accounting (plus the bounded-buffer
    verification) the streaming benchmarks report.  New code should
    hold a session directly (:func:`repro.session`).
    """

    #: Symbols per batched execution pass through ``run_batch``.
    DEFAULT_BATCH = 64

    #: Symbols per batched verification pass — bounds the buffered input/
    #: output blocks on long streams while still amortising the reference
    #: FFT over a whole chunk.
    VERIFY_CHUNK = 256

    def __init__(self, n_points: int, fixed_point: bool = False,
                 cache_config: CacheConfig = None):
        from ..engines import engine as build_engine

        self.engine = build_engine(
            n_points, backend="asip-batch",
            precision="q15" if fixed_point else "float",
            cache_config=cache_config,
        )
        self.asip: FFTASIP = self.engine.machine
        self.program = self.engine.impl.program
        self.n_points = n_points
        self.fixed_point = fixed_point

    def process(self, blocks, verify: bool = True,
                batch: int = None) -> StreamStats:
        """Transform each block in ``blocks``; returns stream statistics.

        Blocks are buffered into chunks of ``batch`` symbols (default
        :attr:`DEFAULT_BATCH`) and executed through
        :meth:`FFTASIP.run_batch`; ``batch=1`` keeps the serial
        one-symbol-at-a-time loop.  With ``verify`` (default) every
        output is checked against numpy — a streamed run is only as good
        as its worst symbol.  References come from batched
        ``np.fft.fft`` calls over chunks of :attr:`VERIFY_CHUNK` symbols,
        so verification does not dominate streamed wall-clock while the
        buffered data stays bounded on arbitrarily long streams.
        """
        from ..sessions import StreamSession

        batch = self.DEFAULT_BATCH if batch is None else max(int(batch), 1)
        stats = StreamStats(n_points=self.n_points)
        inputs = []
        outputs = []

        def consume(results) -> None:
            for result in results:
                stats.symbols += result.n_symbols
                stats.total_cycles += result.total_cycles
                stats.per_symbol_cycles.extend(result.cycles)
                if verify:
                    outputs.extend(np.atleast_2d(result.spectrum))
                    if len(outputs) >= self.VERIFY_CHUNK:
                        self._verify_chunk(
                            inputs[:len(outputs)], outputs, stats.symbols
                        )
                        del inputs[:len(outputs)]
                        outputs.clear()

        session = StreamSession(self.engine, batch=batch)
        for block in blocks:
            if verify:
                # The session copies blocks on feed; keep our own copy
                # for the chunked reference check.
                inputs.append(np.array(block, dtype=complex))
            session.feed(block)
            consume(session.drain())
        session.flush()
        consume(session.drain())
        if verify and outputs:
            self._verify_chunk(inputs[:len(outputs)], outputs, stats.symbols)
        return stats

    def _verify_chunk(self, inputs: list, outputs: list,
                      symbols_so_far: int) -> None:
        """Check one chunk of outputs against a batched reference FFT."""
        scale = 1.0 / self.n_points if self.fixed_point else 1.0
        tolerance = 0.05 if self.fixed_point else 1e-6
        references = np.fft.fft(np.stack(inputs), axis=1) * scale
        close = np.isclose(np.stack(outputs), references, atol=tolerance)
        bad = ~np.all(close, axis=1)
        if bad.any():
            first_bad = symbols_so_far - len(inputs) + int(np.argmax(bad)) + 1
            raise AssertionError(f"streamed symbol {first_bad} is wrong")
