"""Streaming driver: back-to-back transforms on one ASIP instance.

The paper reports per-transform cycle counts; a deployed receiver runs
symbols *continuously*.  This driver reuses one machine and one compiled
program across a stream of input blocks, measuring the steady-state rate
(program reload and data staging amortised away) and verifying every
block.  It also exposes the per-symbol cycle variance — constant by
construction in this design, which is itself a property worth asserting
(no data-dependent control flow anywhere in Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sim.cache import CacheConfig
from .codegen import generate_fft_program
from .fft_asip import FFTASIP
from .throughput import CLOCK_HZ, msamples_per_second

__all__ = ["StreamStats", "StreamingFFT"]


@dataclass
class StreamStats:
    """Accumulated results of a streamed run."""

    n_points: int
    symbols: int = 0
    total_cycles: int = 0
    per_symbol_cycles: list = field(default_factory=list)

    @property
    def cycles_per_symbol(self) -> float:
        """Mean steady-state cycles per transform."""
        return self.total_cycles / self.symbols if self.symbols else 0.0

    @property
    def msamples_per_second(self) -> float:
        """Sustained sample throughput at the 300 MHz clock."""
        if not self.symbols:
            return 0.0
        return msamples_per_second(
            self.n_points * self.symbols, self.total_cycles, CLOCK_HZ
        )

    @property
    def is_deterministic(self) -> bool:
        """True when every symbol took exactly the same cycle count."""
        return len(set(self.per_symbol_cycles)) <= 1


class StreamingFFT:
    """Run a stream of blocks through one compiled program."""

    #: Symbols per batched verification pass — bounds the buffered input/
    #: output blocks on long streams while still amortising the reference
    #: FFT over a whole chunk.
    VERIFY_CHUNK = 256

    def __init__(self, n_points: int, fixed_point: bool = False,
                 cache_config: CacheConfig = None):
        self.asip = FFTASIP(
            n_points, fixed_point=fixed_point, cache_config=cache_config
        )
        self.program = generate_fft_program(n_points, self.asip.plan)
        self.n_points = n_points
        self.fixed_point = fixed_point

    def process(self, blocks, verify: bool = True) -> StreamStats:
        """Transform each block in ``blocks``; returns stream statistics.

        With ``verify`` (default) every output is checked against numpy —
        a streamed run is only as good as its worst symbol.  References
        come from batched ``np.fft.fft`` calls over chunks of
        :attr:`VERIFY_CHUNK` symbols instead of one call per block, so
        verification no longer dominates streamed-run wall-clock while
        the buffered data stays bounded on arbitrarily long streams.
        """
        stats = StreamStats(n_points=self.n_points)
        inputs = []
        outputs = []
        for block in blocks:
            block = np.asarray(block, dtype=complex)
            before = self.asip.stats.cycles
            self.asip.load_input(block)
            self.asip.run(self.program)
            spent = self.asip.stats.cycles - before
            stats.symbols += 1
            stats.total_cycles += spent
            stats.per_symbol_cycles.append(spent)
            if verify:
                # Copy: the caller may reuse one buffer per block, and
                # the chunk is only FFT'd after later blocks arrive.
                inputs.append(block.copy())
                outputs.append(self.asip.read_output())
                if len(inputs) >= self.VERIFY_CHUNK:
                    self._verify_chunk(inputs, outputs, stats.symbols)
                    inputs.clear()
                    outputs.clear()
        if verify and inputs:
            self._verify_chunk(inputs, outputs, stats.symbols)
        return stats

    def _verify_chunk(self, inputs: list, outputs: list,
                      symbols_so_far: int) -> None:
        """Check one chunk of outputs against a batched reference FFT."""
        scale = 1.0 / self.n_points if self.fixed_point else 1.0
        tolerance = 0.05 if self.fixed_point else 1e-6
        references = np.fft.fft(np.stack(inputs), axis=1) * scale
        close = np.isclose(np.stack(outputs), references, atol=tolerance)
        bad = ~np.all(close, axis=1)
        if bad.any():
            first_bad = symbols_so_far - len(inputs) + int(np.argmax(bad)) + 1
            raise AssertionError(f"streamed symbol {first_bad} is wrong")
