"""End-to-end convenience runner: simulate one FFT on the ASIP."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.cache import CacheConfig
from ..sim.pipeline import PipelineConfig
from ..sim.stats import SimStats
from .codegen import generate_fft_program
from .fft_asip import FFTASIP
from .throughput import ThroughputReport, throughput_report

__all__ = ["AsipRunResult", "simulate_fft"]


@dataclass
class AsipRunResult:
    """Everything one simulated FFT run produces."""

    n_points: int
    spectrum: np.ndarray
    stats: SimStats
    throughput: ThroughputReport
    asip: FFTASIP

    @property
    def cycles(self) -> int:
        """Total simulated cycles."""
        return self.stats.cycles


def simulate_fft(x, fixed_point: bool = False,
                 cache_config: CacheConfig = None,
                 pipeline: PipelineConfig = None) -> AsipRunResult:
    """Run the full ASIP pipeline on input ``x`` and return the result.

    Stages the input in the AI0 layout, generates and executes the
    Algorithm-1 program, and reads back the natural-order spectrum.  In
    fixed-point mode the spectrum is scaled by ``1/N`` (per-stage guard
    shifts) plus quantisation noise.
    """
    x = np.asarray(x, dtype=complex)
    n_points = len(x)
    asip = FFTASIP(
        n_points,
        cache_config=cache_config,
        pipeline=pipeline,
        fixed_point=fixed_point,
    )
    asip.load_input(x)
    program = generate_fft_program(n_points, asip.plan)
    stats = asip.run(program)
    spectrum = asip.read_output()
    return AsipRunResult(
        n_points=n_points,
        spectrum=spectrum,
        stats=stats,
        throughput=throughput_report(n_points, stats.cycles),
        asip=asip,
    )
