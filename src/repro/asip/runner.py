"""End-to-end convenience runner: simulate one FFT on the ASIP.

:func:`simulate_fft` is the historical entry point and is now a thin
**deprecation shim** over the unified facade: it builds a fresh
``backend="asip"`` engine through :func:`repro.engine`, runs one
transform, and repackages the uniform result as the familiar
:class:`AsipRunResult` — behaviour (spectra, stats, cycles) is
unchanged.  New code should use the facade directly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from ..sim.cache import CacheConfig
from ..sim.pipeline import PipelineConfig
from ..sim.stats import SimStats
from .fft_asip import FFTASIP
from .throughput import ThroughputReport, throughput_report

__all__ = ["AsipRunResult", "simulate_fft"]


@dataclass
class AsipRunResult:
    """Everything one simulated FFT run produces."""

    n_points: int
    spectrum: np.ndarray
    stats: SimStats
    throughput: ThroughputReport
    asip: FFTASIP

    @property
    def cycles(self) -> int:
        """Total simulated cycles."""
        return self.stats.cycles


def simulate_fft(x, fixed_point: bool = False,
                 cache_config: CacheConfig = None,
                 pipeline: PipelineConfig = None) -> AsipRunResult:
    """Run the full ASIP pipeline on input ``x`` and return the result.

    **Deprecated**: delegates to ``repro.engine(N, backend="asip")``.
    A fresh machine is still built per call, so the returned
    :class:`SimStats` are absolute for this one run, exactly as before.
    In fixed-point mode the spectrum is scaled by ``1/N`` (per-stage
    guard shifts) plus quantisation noise.
    """
    warnings.warn(
        "repro.asip.simulate_fft() is deprecated; use repro.engine(N, "
        "backend='asip') and Engine.transform(x) instead",
        DeprecationWarning, stacklevel=2,
    )
    from ..engines import engine

    x = np.asarray(x, dtype=complex)
    n_points = len(x)
    facade = engine(
        n_points, backend="asip",
        precision="q15" if fixed_point else "float",
        cache_config=cache_config, pipeline=pipeline,
    )
    result = facade.transform(x)
    machine = facade.machine
    return AsipRunResult(
        n_points=n_points,
        spectrum=result.spectrum,
        stats=machine.stats,
        throughput=throughput_report(n_points, machine.stats.cycles),
        asip=machine,
    )
