"""The FFT ASIP: machine, code generator, runner and throughput metrics."""

from .codegen import CodegenLayout, generate_fft_program
from .fft_asip import FFTASIP, GROUP_SIZE_REG, STOUT_STRIDE_REG, STRIDE_REG
from .runner import AsipRunResult, simulate_fft
from .streaming import StreamingFFT, StreamStats
from .throughput import (
    CLOCK_HZ,
    ThroughputReport,
    msamples_per_second,
    paper_mbps,
    throughput_report,
)

__all__ = [
    "FFTASIP",
    "STRIDE_REG",
    "STOUT_STRIDE_REG",
    "GROUP_SIZE_REG",
    "StreamingFFT",
    "StreamStats",
    "generate_fft_program",
    "CodegenLayout",
    "simulate_fft",
    "AsipRunResult",
    "CLOCK_HZ",
    "ThroughputReport",
    "throughput_report",
    "paper_mbps",
    "msamples_per_second",
]
