"""Code generator: Algorithm 1 lowered to FFT-ASIP assembly for any N.

The paper reprograms and recompiles the FFT per size; this module is that
compiler.  Structure per epoch (Algorithm 1):

    for each group d:
        LDIN  x (group_size / 2 ops, hardware post-increment)
        for each stage j:  BUT4(i, j) for i = 1 .. group_size/8
        STOUT x (group_size / 2 ops; epoch 0 uses the pre-rotating form)

Register conventions (see :mod:`repro.asip.fft_asip` for k0/k1 and the
STOUT stride register):

========  =====================================================
r3, r11   stage / module numbers beyond the constant pools
r4        LDIN memory cursor          r5   LDIN CRF cursor
r6        STOUT CRF cursor            r7   STOUT memory cursor
r8        group counter               r9   group count bound
r10       STOUT cursor rewind const
r12..r19  module-number constants 1..8
r20..r24  stage-number constants 1..5
r25       STOUT memory stride         r26 (k0) LDIN memory stride
r27 (k1)  group size
========  =====================================================

LDIN/BUT4/STOUT bursts are always fully unrolled (their addressing is
hardware-generated, so unrolling costs no registers).  For small N the
*group* loop is unrolled too, leaving only per-group cursor bookkeeping —
this is what keeps small-size overhead near zero, the property behind
Table I's mildly *decreasing* throughput: as N grows, the software group
loop returns and its control cost grows with the group count.
"""

from __future__ import annotations

from ..core.plan import ArrayFFTPlan, EpochPlan, build_plan
from ..isa.instructions import Opcode
from ..isa.program import Program, ProgramBuilder
from .fft_asip import GROUP_SIZE_REG, STOUT_STRIDE_REG, STRIDE_REG

__all__ = ["generate_fft_program", "CodegenLayout", "UNROLL_THRESHOLD"]

UNROLL_THRESHOLD = 512  # full group unroll for N up to this size

_MODULE_REG_BASE = 12
_MODULE_REG_COUNT = 8
_STAGE_REG_BASE = 20
_STAGE_REG_COUNT = 5

_R_SCRATCH2 = 3   # stage numbers beyond the constant pool
_R_LDIN_MEM = 4
_R_LDIN_CRF = 5
_R_STOUT_CRF = 6
_R_STOUT_MEM = 7
_R_GROUP = 8
_R_GROUP_BOUND = 9
_R_REWIND = 10
_R_SCRATCH = 11   # module numbers beyond the constant pool


class CodegenLayout:
    """Memory-map constants shared with :class:`repro.asip.FFTASIP`."""

    def __init__(self, n_points: int):
        self.input_base = 0
        self.scratch_base = n_points
        self.output_base = 2 * n_points


def generate_fft_program(n_points: int, plan: ArrayFFTPlan = None,
                         unroll_threshold: int = UNROLL_THRESHOLD) -> Program:
    """Build the N-point FFT program of Algorithm 1."""
    plan = plan or build_plan(n_points)
    if plan.n_points != n_points:
        raise ValueError(f"plan is for N={plan.n_points}, not {n_points}")
    layout = CodegenLayout(n_points)
    b = ProgramBuilder(f"array_fft_{n_points}")

    # Constant pools for BUT4 operands.
    module_regs = min(
        _MODULE_REG_COUNT, max(e.stages[0].modules for e in plan.epochs)
    )
    for k in range(module_regs):
        b.li(_MODULE_REG_BASE + k, k + 1)
    stage_regs = min(_STAGE_REG_COUNT, max(e.stage_count for e in plan.epochs))
    for k in range(stage_regs):
        b.li(_STAGE_REG_BASE + k, k + 1)

    unroll_groups = n_points <= unroll_threshold
    epoch0, epoch1 = plan.epochs
    state = {"group_size": None, "stout_stride": None}
    _emit_epoch(
        b, epoch0,
        ldin_base=layout.input_base,
        stout_base=layout.scratch_base, stout_stride=epoch1.group_size,
        prerotate=True, tag=0, unroll_groups=unroll_groups, state=state,
        reload_ldin_base=True,
    )
    _emit_epoch(
        b, epoch1,
        ldin_base=layout.scratch_base,
        stout_base=layout.output_base, stout_stride=epoch0.group_size,
        prerotate=False, tag=1, unroll_groups=unroll_groups, state=state,
        # Epoch 0's contiguous LDIN cursor ends exactly at the scratch
        # base, so epoch 1 inherits it without a reload.
        reload_ldin_base=False,
    )
    b.halt()
    return b.build()


def _emit_epoch(b: ProgramBuilder, epoch: EpochPlan, ldin_base: int,
                stout_base: int, stout_stride: int, prerotate: bool,
                tag: int, unroll_groups: bool, state: dict,
                reload_ldin_base: bool) -> None:
    size = epoch.group_size
    # Epoch configuration, skipping latches that already hold the value
    # (square N keeps the same group size and strides across epochs).
    if state["group_size"] != size:
        b.li(GROUP_SIZE_REG, size)
        state["group_size"] = size
    if state["stout_stride"] != stout_stride:
        b.li(STOUT_STRIDE_REG, stout_stride)
        state["stout_stride"] = stout_stride
    if reload_ldin_base:
        b.li(_R_LDIN_MEM, ldin_base)
        b.li(_R_LDIN_CRF, 0)
    b.li(_R_STOUT_MEM, stout_base)
    b.li(_R_STOUT_CRF, 0)

    if unroll_groups:
        for _ in range(epoch.group_count):
            _emit_group_body(b, epoch, prerotate)
        return

    b.li(_R_GROUP, 0)
    b.li(_R_GROUP_BOUND, epoch.group_count)
    b.label(f"epoch{tag}_group")
    _emit_group_body(b, epoch, prerotate)
    b.emit(Opcode.ADDI, rt=_R_GROUP, rs=_R_GROUP, imm=1)
    b.branch(Opcode.BNE, rs=_R_GROUP, rt=_R_GROUP_BOUND,
             target=f"epoch{tag}_group")


def _emit_group_body(b: ProgramBuilder, epoch: EpochPlan,
                     prerotate: bool) -> None:
    size = epoch.group_size
    # LDIN burst: group_size/2 ops; all addressing (post-increment, CRF
    # wrap, group-boundary sequencing) is generated by the decoder.
    for _ in range(max(size // 2, 1)):
        b.emit(Opcode.LDIN, rs=_R_LDIN_MEM, rt=_R_LDIN_CRF)
    # BUT4 grid: stages x modules, fully unrolled.
    for stage_plan in epoch.stages:
        stage_reg = _stage_reg(b, stage_plan.stage)
        for module in range(1, stage_plan.modules + 1):
            module_reg = _module_reg(b, module)
            b.emit(Opcode.BUT4, rs=module_reg, rt=stage_reg)
    # STOUT burst: strided dump, pre-rotating for epoch 0.
    for _ in range(max(size // 2, 1)):
        b.emit(Opcode.STOUT, rs=_R_STOUT_CRF, rt=_R_STOUT_MEM,
               imm=1 if prerotate else 0)


def _module_reg(b: ProgramBuilder, module: int) -> int:
    """Register holding the module number, materialising if off-pool."""
    if module <= _MODULE_REG_COUNT:
        return _MODULE_REG_BASE + module - 1
    b.li(_R_SCRATCH, module)
    return _R_SCRATCH


def _stage_reg(b: ProgramBuilder, stage: int) -> int:
    """Register holding the stage number, materialising if off-pool."""
    if stage <= _STAGE_REG_COUNT:
        return _STAGE_REG_BASE + stage - 1
    b.li(_R_SCRATCH2, stage)
    return _R_SCRATCH2