"""Throughput metrics (Table I's reporting conventions).

The ASIP clocks at 300 MHz (BU critical path 3.2 ns, Section IV).  Table
I's "Mbps" column is numerically consistent with **6 bits accounted per
sample point**: ``Mbps = 6 * N * f / cycles / 1e6`` reproduces all five
published rows from the published cycle counts to within rounding.  We
report samples/s as the physically unambiguous metric and provide the
paper's convention for direct row-by-row comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CLOCK_HZ", "ThroughputReport", "throughput_report",
           "paper_mbps", "msamples_per_second"]

CLOCK_HZ = 300_000_000
_PAPER_BITS_PER_POINT = 6


def msamples_per_second(n_points: int, cycles: int,
                        clock_hz: float = CLOCK_HZ) -> float:
    """Sample throughput in Msample/s."""
    if cycles <= 0:
        raise ValueError("cycle count must be positive")
    return n_points * clock_hz / cycles / 1e6


def paper_mbps(n_points: int, cycles: int, clock_hz: float = CLOCK_HZ) -> float:
    """Table I's Mbps convention (6 bits per sample point)."""
    return _PAPER_BITS_PER_POINT * msamples_per_second(
        n_points, cycles, clock_hz
    )


@dataclass(frozen=True)
class ThroughputReport:
    """One Table-I row."""

    n_points: int
    cycles: int
    msamples: float
    mbps_paper_convention: float

    def row(self) -> tuple:
        """(N, cycles, Msample/s, paper-Mbps) for table rendering."""
        return (
            self.n_points,
            self.cycles,
            round(self.msamples, 1),
            round(self.mbps_paper_convention, 1),
        )


def throughput_report(n_points: int, cycles: int,
                      clock_hz: float = CLOCK_HZ) -> ThroughputReport:
    """Build the throughput row for one simulated FFT run."""
    return ThroughputReport(
        n_points=n_points,
        cycles=cycles,
        msamples=msamples_per_second(n_points, cycles, clock_hz),
        mbps_paper_convention=paper_mbps(n_points, cycles, clock_hz),
    )
