"""The array-FFT ASIP: base core + BU, CRF, ROM and AC-logic extension.

Microarchitectural conventions (our concrete realisation of Section III,
recorded in DESIGN.md):

* **Memory layout** (point addresses; one 32-bit word per complex point,
  the 64-bit bus moves two points per beat):
  input at ``[0, N)`` in the paper's AI0 (corner-turned, group-contiguous)
  order, inter-epoch scratch at ``[N, 2N)`` laid out ``s*Q + l``, output
  at ``[2N, 3N)`` in natural spectral order.
* **LDIN rs, rt** loads points ``mem[rs], mem[rs + k0]`` into CRF entries
  ``rt, rt+1`` and post-increments ``rs += 2*k0``, ``rt += 2`` — the
  hardware post-increment that "removes all the address calculation
  instructions from the assembly code" (Section III-A).  ``k0`` (r26) is
  the memory point-stride configuration register.
* **STOUT rs, rt** stores CRF entries ``rs, rs+1`` to ``mem[rt],
  mem[rt + k0]`` with the same post-increment; ``imm = 1`` selects the
  epoch-0 variant that applies the inter-epoch pre-rotation ``W_N^{sl}``
  on the way out (Algorithm 1 line 15), with ``(s, l)`` decoded from the
  scratch-relative store address.
* **BUT4 rs, rt** executes one BU op for module ``reg[rs]`` and stage
  ``reg[rt]`` (both 1-origin).  All CRF/ROM addresses come from the AC
  logic.  Completing the last module of a stage swaps the ping-pong CRF
  banks.  ``k1`` (r27) holds the current epoch's group size; the decoder
  re-configures the AC logic when it changes.
"""

from __future__ import annotations

import numpy as np

from ..addressing.bitops import bit_reverse, bit_width_of
from ..addressing.coefficients import PreRotationStore
from ..core.fixed_point import FixedPointContext, quantize
from ..core.plan import ArrayFFTPlan, build_plan
from ..isa.instructions import Instruction, Opcode
from ..sim.ac_logic import AddressChangingLogic
from ..sim.bu_unit import BUFunctionalUnit
from ..sim.cache import CacheConfig
from ..sim.crf import CustomRegisterFile
from ..sim.errors import SimulationError
from ..sim.machine import Machine
from ..sim.memory import MainMemory
from ..sim.pipeline import PipelineConfig
from ..sim.rom import CoefficientROM

__all__ = ["FFTASIP", "STRIDE_REG", "STOUT_STRIDE_REG", "GROUP_SIZE_REG"]

STRIDE_REG = 26        # k0: LDIN memory point stride
STOUT_STRIDE_REG = 25  # STOUT memory point stride
GROUP_SIZE_REG = 27    # k1: current epoch group size (points)


class _QuantizedButterflyArithmetic:
    """Adapter running BU lanes through the Q1.15 datapath.

    CRF entries stay Python complex; every value written by LDIN or a
    butterfly lies on the Q1.15 grid, so re-quantising inputs is lossless
    and the sequence of operations is bit-true.
    """

    def __init__(self, context: FixedPointContext):
        self.context = context

    def butterfly(self, a: complex, b: complex, w: complex) -> tuple:
        s, d = self.context.butterfly(
            quantize(complex(a)), quantize(complex(b)), quantize(complex(w))
        )
        return s.to_complex(), d.to_complex()


class FFTASIP(Machine):
    """The paper's processor: PISA-like core with the FFT extension.

    Parameters
    ----------
    n_points:
        FFT size the datapath is provisioned for (CRF depth = P, ROM = P/2
        entries).  Programs for smaller sizes also run: the CRF is sized
        by the largest group.
    fixed_point:
        Selects the bit-true Q1.15 datapath (with per-stage scaling) or
        the idealised float datapath.
    """

    def __init__(self, n_points: int, cache_config: CacheConfig = None,
                 pipeline: PipelineConfig = None, fixed_point: bool = False,
                 memory_words: int = None):
        plan = build_plan(n_points)
        words = memory_words or max(4 * n_points, 4096)
        super().__init__(
            MainMemory(words, float_mode=not fixed_point),
            cache_config=cache_config,
            pipeline=pipeline or PipelineConfig(),
        )
        self.plan: ArrayFFTPlan = plan
        self.n_points = n_points
        self.fixed_point = fixed_point
        self.fx = FixedPointContext() if fixed_point else None
        arithmetic = _QuantizedButterflyArithmetic(self.fx) if fixed_point else None
        self.crf = CustomRegisterFile(plan.crf_entries)
        self.rom = CoefficientROM(plan.split.P)
        self.ac = AddressChangingLogic()
        self.bu = BUFunctionalUnit(arithmetic=arithmetic)
        self.prerotation = (
            PreRotationStore(n_points) if n_points >= 8
            else _SmallPreRotation(n_points)
        )
        self.input_base = 0
        self.scratch_base = n_points
        self.output_base = 2 * n_points
        self._configured_group_size = None
        # Hardware address sequencers for LDIN / STOUT: within-group point
        # count and the latched group start address (Section III-A: the
        # decoder generates the whole AO0/AI1 address walk; software only
        # issues the ops).
        self._flow = {"ldin": [0, 0], "stout": [0, 0]}

    # Data staging ---------------------------------------------------------

    def load_input(self, x) -> None:
        """Stage the input vector in the paper's AI0 memory order.

        Natural-order ``x`` is corner-turned so that epoch-0 group ``l``
        occupies the contiguous points ``[l*P, (l+1)*P)``: point
        ``l*P + m`` holds ``x[Q*m + l]``.
        """
        x = np.asarray(x, dtype=complex)
        if len(x) != self.n_points:
            raise ValueError(
                f"ASIP provisioned for N={self.n_points}, got {len(x)}"
            )
        split = self.plan.split
        for l in range(split.Q):
            for m in range(split.P):
                self.memory.write_complex(
                    self.input_base + l * split.P + m, complex(x[split.Q * m + l])
                )

    def read_output(self) -> np.ndarray:
        """Read back the natural-order spectrum from the output region."""
        return self.memory.read_complex_vector(self.output_base, self.n_points)

    # Custom instruction execution ------------------------------------------

    def execute_custom(self, instr: Instruction) -> int:
        if instr.opcode is Opcode.BUT4:
            return self._exec_but4(instr)
        if instr.opcode is Opcode.LDIN:
            return self._exec_ldin(instr)
        if instr.opcode is Opcode.STOUT:
            return self._exec_stout(instr)
        raise SimulationError(f"unexpected custom opcode {instr.opcode}")

    def _group_size(self) -> int:
        size = self.read_reg(GROUP_SIZE_REG)
        if size <= 0:
            raise SimulationError(
                "group-size register k1 not configured before custom op"
            )
        if size != self._configured_group_size:
            self.ac.configure(size)
            self._configured_group_size = size
            self._flow = {"ldin": [0, 0], "stout": [0, 0]}
        return size

    def _stride(self, register: int = STRIDE_REG) -> int:
        stride = self.read_reg(register)
        return stride if stride > 0 else 1

    def _exec_but4(self, instr: Instruction) -> int:
        self.stats.count_custom("but4")
        size = self._group_size()
        module = self.read_reg(instr.rs)
        stage = self.read_reg(instr.rt)
        addresses = self.ac.addresses(module, stage)
        self.bu.execute(addresses, self.crf, self.rom, size)
        if module == self.ac.modules_per_stage():
            self.crf.swap_banks()
        return self.pipeline.but4_latency - 1

    def _advance_cursor(self, kind: str, size: int, stride: int,
                        mem: int) -> int:
        """Hardware address sequencing for one 2-point LDIN/STOUT.

        Within a group of ``size`` points the cursor advances by
        ``2*stride``; completing a group rewinds to the next group's start
        (``group_start + 1`` for strided walks — the transpose pattern of
        AO0/AI1 — or ``group_start + size`` for contiguous ones).  The
        group start is latched from the software-visible cursor whenever a
        group begins, so software may reload the pointer register at any
        group boundary.
        """
        count, start = self._flow[kind]
        if count == 0:
            start = mem
        count += 2
        if count >= size:
            next_start = start + (1 if stride > 1 else size)
            self._flow[kind] = [0, next_start]
            return next_start
        self._flow[kind] = [count, start]
        return mem + 2 * stride

    def _exec_ldin(self, instr: Instruction) -> int:
        self.stats.count_custom("ldin")
        self.stats.loads += 1
        size = self._group_size()
        stride = self._stride()
        mem = self.read_reg(instr.rs)
        crf = self.read_reg(instr.rt)
        extra = 0
        for k in range(2):
            address = mem + k * stride
            extra = max(extra, self._probe_cache(address, is_write=False))
            value = self.memory.read_complex(address)
            if self.fixed_point:
                value = quantize(complex(value)).to_complex()
            self.crf.write((crf + k) % size, value)
        self.write_reg(instr.rs, self._advance_cursor("ldin", size, stride, mem))
        self.write_reg(instr.rt, (crf + 2) % size)
        return self.pipeline.custom_mem_latency - 1 + extra

    def _exec_stout(self, instr: Instruction) -> int:
        self.stats.count_custom("stout")
        self.stats.stores += 1
        size = self._group_size()
        stride = self._stride(STOUT_STRIDE_REG)
        crf = self.read_reg(instr.rs)
        mem = self.read_reg(instr.rt)
        prerotate = bool(instr.imm & 1)
        extra = 0
        for k in range(2):
            address = mem + k * stride
            extra = max(extra, self._probe_cache(address, is_write=True))
            value = self.crf.read((crf + k) % size)
            if prerotate:
                value = self._apply_prerotation(address, value)
            self.memory.write_complex(address, value)
        self.write_reg(instr.rs, (crf + 2) % size)
        self.write_reg(instr.rt, self._advance_cursor("stout", size, stride, mem))
        return self.pipeline.custom_mem_latency - 1 + extra

    def _apply_prerotation(self, address: int, value: complex) -> complex:
        split = self.plan.split
        rel = address - self.scratch_base
        if not (0 <= rel < self.n_points):
            raise SimulationError(
                f"pre-rotating STOUT targets {address}, outside the "
                f"scratch region [{self.scratch_base}, "
                f"{self.scratch_base + self.n_points})"
            )
        s, l = divmod(rel, split.Q)
        weight = self.prerotation.weight(s, l)
        if self.fixed_point:
            product = self.fx.multiply(
                quantize(complex(value)), quantize(complex(weight))
            )
            return product.to_complex()
        return value * weight

    def _probe_cache(self, point_address: int, is_write: bool) -> int:
        """Cache-account one point access; returns extra cycles beyond 1."""
        if self.dcache is None:
            return 0
        latency = self.dcache.access(point_address, is_write)
        if latency > self.dcache.config.hit_latency:
            self.stats.dcache_misses += 1
        else:
            self.stats.dcache_hits += 1
        if not self.charge_cache_latency:
            return 0
        return latency - self.dcache.config.hit_latency


class _SmallPreRotation:
    """Exact weights for N < 8 where the octant store degenerates."""

    def __init__(self, n_points: int):
        bit_width_of(n_points)
        self.n_points = n_points

    def weight(self, s: int, l: int) -> complex:
        angle = -2.0 * np.pi * ((s * l) % self.n_points) / self.n_points
        return complex(np.cos(angle), np.sin(angle))
