"""The array-FFT ASIP: base core + BU, CRF, ROM and AC-logic extension.

Microarchitectural conventions (our concrete realisation of Section III,
recorded in DESIGN.md):

* **Memory layout** (point addresses; one 32-bit word per complex point,
  the 64-bit bus moves two points per beat):
  input at ``[0, N)`` in the paper's AI0 (corner-turned, group-contiguous)
  order, inter-epoch scratch at ``[N, 2N)`` laid out ``s*Q + l``, output
  at ``[2N, 3N)`` in natural spectral order.
* **LDIN rs, rt** loads points ``mem[rs], mem[rs + k0]`` into CRF entries
  ``rt, rt+1`` and post-increments ``rs += 2*k0``, ``rt += 2`` — the
  hardware post-increment that "removes all the address calculation
  instructions from the assembly code" (Section III-A).  ``k0`` (r26) is
  the memory point-stride configuration register.
* **STOUT rs, rt** stores CRF entries ``rs, rs+1`` to ``mem[rt],
  mem[rt + k0]`` with the same post-increment; ``imm = 1`` selects the
  epoch-0 variant that applies the inter-epoch pre-rotation ``W_N^{sl}``
  on the way out (Algorithm 1 line 15), with ``(s, l)`` decoded from the
  scratch-relative store address.
* **BUT4 rs, rt** executes one BU op for module ``reg[rs]`` and stage
  ``reg[rt]`` (both 1-origin).  All CRF/ROM addresses come from the AC
  logic.  Completing the last module of a stage swaps the ping-pong CRF
  banks.  ``k1`` (r27) holds the current epoch's group size; the decoder
  re-configures the AC logic when it changes.
"""

from __future__ import annotations

import numpy as np

from ..addressing.bitops import bit_reverse, bit_width_of
from ..addressing.coefficients import PreRotationStore, prerotation_matrix
from ..core.fixed_point import (
    FixedComplex,
    FixedPointContext,
    fixed_to_complex_array,
    fixed_to_words_array,
    quantize,
    quantize_array,
    words_to_fixed_array,
)
from ..core.plan import ArrayFFTPlan, build_plan
from ..isa.instructions import Instruction, Opcode
from ..sim.ac_logic import AddressChangingLogic
from ..sim.bu_unit import BUFunctionalUnit
from ..sim.cache import CacheConfig
from ..sim.crf import CustomRegisterFile
from ..sim.errors import SimulationError
from ..sim.machine import Machine
from ..sim.memory import MainMemory
from ..sim.pipeline import PipelineConfig
from ..sim.rom import CoefficientROM

__all__ = ["FFTASIP", "STRIDE_REG", "STOUT_STRIDE_REG", "GROUP_SIZE_REG"]

STRIDE_REG = 26        # k0: LDIN memory point stride
STOUT_STRIDE_REG = 25  # STOUT memory point stride
GROUP_SIZE_REG = 27    # k1: current epoch group size (points)


class _QuantizedButterflyArithmetic:
    """Adapter running BU lanes through the Q1.15 datapath.

    CRF entries stay Python complex; every value written by LDIN or a
    butterfly lies on the Q1.15 grid, so re-quantising inputs is lossless
    and the sequence of operations is bit-true.
    """

    def __init__(self, context: FixedPointContext):
        self.context = context

    def butterfly(self, a: complex, b: complex, w: complex) -> tuple:
        s, d = self.context.butterfly(
            quantize(complex(a)), quantize(complex(b)), quantize(complex(w))
        )
        return s.to_complex(), d.to_complex()

    def butterfly_column(self, a, b, w) -> np.ndarray:
        """Vectorised lanes: returns the concatenated (sums, diffs) column.

        Bit-identical to running :meth:`butterfly` per lane — the array
        ops quantise, butterfly and back-convert through the same Q1.15
        grid and accumulate the same overflow counts.
        """
        ar, ai = quantize_array(a)
        br, bi = quantize_array(b)
        wr, wi = quantize_array(w)
        sr, si, dr, di = self.context.butterfly_arrays(ar, ai, br, bi, wr, wi)
        return fixed_to_complex_array(
            np.concatenate((sr, dr), axis=-1),
            np.concatenate((si, di), axis=-1),
        )


class FFTASIP(Machine):
    """The paper's processor: PISA-like core with the FFT extension.

    Parameters
    ----------
    n_points:
        FFT size the datapath is provisioned for (CRF depth = P, ROM = P/2
        entries).  Programs for smaller sizes also run: the CRF is sized
        by the largest group.
    fixed_point:
        Selects the bit-true Q1.15 datapath (with per-stage scaling) or
        the idealised float datapath.
    vectorized:
        When True (default), BUT4 runs through the whole-column fast path
        (cached AC index arrays, one CRF gather/scatter per op).  False
        keeps the scalar per-lane walk — the oracle the fast path is
        tested against, and the seed-equivalent benchmark baseline.
    int_datapath:
        Fixed-point only.  When True (default) the CRF stores Q1.15
        integers as struct-of-arrays components and BUT4 spans, LDIN and
        STOUT bursts run as int64 column operations — bit-identical to
        the scalar lanes (overflow counts included).  False keeps the
        complex-entry CRF with scalar Q1.15 lanes (the PR-1 baseline the
        engine-speed benchmark measures against).
    """

    def __init__(self, n_points: int, cache_config: CacheConfig = None,
                 pipeline: PipelineConfig = None, fixed_point: bool = False,
                 memory_words: int = None, vectorized: bool = True,
                 int_datapath: bool = True):
        plan = build_plan(n_points)
        words = memory_words or max(4 * n_points, 4096)
        super().__init__(
            MainMemory(words, float_mode=not fixed_point),
            cache_config=cache_config,
            pipeline=pipeline or PipelineConfig(),
        )
        self.plan: ArrayFFTPlan = plan
        self.n_points = n_points
        self.fixed_point = fixed_point
        self.vectorized = vectorized
        self.int_datapath = bool(fixed_point and int_datapath)
        self.fx = FixedPointContext() if fixed_point else None
        arithmetic = _QuantizedButterflyArithmetic(self.fx) if fixed_point else None
        self.crf = CustomRegisterFile(plan.crf_entries,
                                      int_mode=self.int_datapath)
        self.rom = CoefficientROM(plan.split.P)
        self.ac = AddressChangingLogic()
        self.bu = BUFunctionalUnit(arithmetic=arithmetic)
        self.prerotation = (
            PreRotationStore(n_points) if n_points >= 8
            else _SmallPreRotation(n_points)
        )
        # Pre-rotation weights flattened over the scratch layout (rel =
        # s*Q + l), built lazily on first use with the vectorised
        # symmetry reconstruction so STOUT's per-point lookup is a single
        # array index.  Values are bit-identical to per-(s, l)
        # ``prerotation.weight`` calls, and the lazy build keeps the
        # fault-injection seam: replacing ``self.prerotation`` before the
        # first run is honoured, as with ArrayFFT's compiled engine.
        self._prerot_flat = None
        self._prerot_fx = None
        self._prerot_components = None
        # Active multi-symbol batch (see run_batch); None in serial runs.
        self._batch = None
        self.input_base = 0
        self.scratch_base = n_points
        self.output_base = 2 * n_points
        self._configured_group_size = None
        self._modules_per_stage = None
        # AI0 corner-turn permutation: input point i holds
        # x[(i % P) * Q + i // P]; plan-static, shared by load_input and
        # the batch stager.
        idx = np.arange(n_points, dtype=np.int64)
        split = plan.split
        self._input_perm = (idx % split.P) * split.Q + idx // split.P
        # Hardware address sequencers for LDIN / STOUT: within-group point
        # count and the latched group start address (Section III-A: the
        # decoder generates the whole AO0/AI1 address walk; software only
        # issues the ops).
        self._flow = {"ldin": [0, 0], "stout": [0, 0]}

    # Data staging ---------------------------------------------------------

    def load_input(self, x) -> None:
        """Stage the input vector in the paper's AI0 memory order.

        Natural-order ``x`` is corner-turned so that epoch-0 group ``l``
        occupies the contiguous points ``[l*P, (l+1)*P)``: point
        ``l*P + m`` holds ``x[Q*m + l]``.
        """
        x = np.asarray(x, dtype=complex)
        if len(x) != self.n_points:
            raise ValueError(
                f"ASIP provisioned for N={self.n_points}, got {len(x)}"
            )
        self.memory.scatter_complex(
            self.input_base + np.arange(self.n_points),
            x[self._input_perm],
        )

    def read_output(self) -> np.ndarray:
        """Read back the natural-order spectrum from the output region."""
        return self.memory.read_complex_vector(self.output_base, self.n_points)

    # Multi-symbol batch execution ----------------------------------------

    def run_batch(self, program, blocks) -> tuple:
        """Run ``program`` over an ``(n_symbols, N)`` block batch.

        Fast path: all symbols are staged once and the program executes a
        *single* time with the data plane (memory data regions and CRF)
        carrying a leading symbol axis, so every fused LDIN/BUT4/STOUT
        walk moves all symbols in one numpy pass.  The scalar control
        plane (registers, branches, address sequencers) is shared — valid
        because the generated programs have no data-dependent control
        flow.  Statistics retire exactly as ``n_symbols`` serial runs:
        per-symbol counters scale by the batch size, and data-cache
        hit/miss counts replay the recorded address trace per symbol
        (with a fixed-point shortcut once the cache state converges).

        Returns ``(outputs, per_symbol_cycles)``.  Falls back to the
        serial per-symbol loop whenever exact batched semantics cannot be
        guaranteed: scalar-oracle configurations, instrumented machines,
        programs containing LW/SW, or charged cache latency.
        """
        blocks = np.asarray(blocks, dtype=complex)
        if blocks.ndim != 2 or blocks.shape[1] != self.n_points:
            raise ValueError(
                f"expected an (n_symbols, {self.n_points}) batch, "
                f"got shape {blocks.shape}"
            )
        n = blocks.shape[0]
        if n == 0:
            return blocks.copy(), []
        if n == 1 or not self._can_batch(program):
            outputs = np.empty_like(blocks)
            cycles = []
            for k in range(n):
                before = self.stats.cycles
                self.load_input(blocks[k])
                self.run(program)
                cycles.append(self.stats.cycles - before)
                outputs[k] = self.read_output()
            return outputs, cycles
        batch = self._stage_batch(blocks)
        serial_crf = self.crf
        stats = self.stats
        counters = ("cycles", "instructions", "loads", "stores",
                    "branches", "taken_branches", "stall_cycles")
        before = {name: getattr(stats, name) for name in counters}
        before_ops = dict(stats.custom_ops)
        self.crf = serial_crf.batched_clone(n)
        self._batch = batch
        try:
            self.run(program)
        except Exception:
            self.crf = serial_crf
            raise
        finally:
            self._batch = None
        batched_crf = self.crf
        self.crf = serial_crf
        # Dataflow guard: a column both read-while-unwritten and written
        # during the run means the program consumed state that, serially,
        # a previous symbol would have produced — the batch result would
        # silently diverge for symbols >= 2.  Generated FFT programs are
        # strictly write-before-read and never trip this.
        if bool(np.any(batch.suspect & batch.written)):
            raise SimulationError(
                "batched program reads data-region state carried across "
                "symbols; run it serially (run_batch with batch size 1 "
                "or Machine.run per symbol)"
            )
        # Retire the remaining n-1 symbols: with shared control flow each
        # symbol's counters repeat the measured run exactly.
        per_symbol = stats.cycles - before["cycles"]
        for name in counters:
            delta = getattr(stats, name) - before[name]
            setattr(stats, name, before[name] + n * delta)
        for key, value in stats.custom_ops.items():
            delta = value - before_ops.get(key, 0)
            if delta:
                stats.custom_ops[key] = before_ops.get(key, 0) + n * delta
        if self.dcache is not None and batch.trace:
            self._replay_cache_trace(batch.trace, n - 1)
        serial_crf.adopt_last_symbol(batched_crf)
        self._writeback_batch(batch)
        return self._batch_outputs(batch), [per_symbol] * n

    def _can_batch(self, program) -> bool:
        """Whether the batched fast path reproduces serial runs exactly."""
        if not self.vectorized:
            return False
        if self.fixed_point and not self.int_datapath:
            return False
        if self.charge_cache_latency:
            return False
        patched = ("step", "execute_custom", "load_input", "read_output",
                   "_exec_but4", "_exec_ldin", "_exec_stout")
        if any(name in self.__dict__ for name in patched):
            return False
        for index in range(len(program)):
            if program[index].opcode in (Opcode.LW, Opcode.SW):
                return False
        return True

    def _stage_batch(self, blocks: np.ndarray) -> "_SymbolBatch":
        """Stage every symbol's input in AI0 order over a batch axis."""
        n = blocks.shape[0]
        window = 3 * self.n_points
        batch = _SymbolBatch(n, window, self.fixed_point)
        # The input region is re-staged per symbol in the serial loop
        # too, so reads from it never depend on a previous symbol.
        batch.written[self.input_base:self.input_base + self.n_points] = True
        base_addresses = np.arange(window)
        src = self._input_perm
        if self.fixed_point:
            re0, im0 = words_to_fixed_array(
                self.memory.gather_words(base_addresses)
            )
            batch.re = np.tile(re0, (n, 1))
            batch.im = np.tile(im0, (n, 1))
            qr, qi = quantize_array(blocks)
            batch.re[:, :self.n_points] = qr[:, src]
            batch.im[:, :self.n_points] = qi[:, src]
        else:
            base = self.memory.gather_complex(base_addresses)
            batch.data = np.tile(base, (n, 1))
            batch.data[:, :self.n_points] = blocks[:, src]
        if self.dcache is None:
            batch.trace = None
        return batch

    def _writeback_batch(self, batch: "_SymbolBatch") -> None:
        """Leave scalar memory holding the last symbol's data regions —
        the end state of the equivalent serial loop."""
        addresses = np.arange(batch.window)
        if batch.fixed:
            self.memory.scatter_words(
                addresses, fixed_to_words_array(batch.re[-1], batch.im[-1])
            )
        else:
            self.memory.scatter_complex(addresses, batch.data[-1])

    def _batch_outputs(self, batch: "_SymbolBatch") -> np.ndarray:
        lo = self.output_base
        hi = lo + self.n_points
        if batch.fixed:
            return fixed_to_complex_array(
                batch.re[:, lo:hi], batch.im[:, lo:hi]
            )
        return batch.data[:, lo:hi].copy()

    def _replay_cache_trace(self, trace: list, repeats: int) -> None:
        """Account symbols 2..n of a batch on the data cache.

        The batched run accounted symbol 1's walk; every later symbol
        replays the identical address sequence.  Replay proceeds symbol
        by symbol until the cache state reaches a fixed point (typically
        after one replay), after which the remaining symbols' counts
        repeat exactly and are retired arithmetically.
        """
        dcache = self.dcache
        stats = self.stats
        access = dcache.access
        hit_latency = dcache.config.hit_latency
        previous = dcache.state_key()
        remaining = repeats
        while remaining > 0:
            hits = misses = 0
            writebacks_before = dcache.writebacks
            for address, is_write in trace:
                if access(address, is_write) > hit_latency:
                    misses += 1
                else:
                    hits += 1
            remaining -= 1
            stats.dcache_hits += hits
            stats.dcache_misses += misses
            state = dcache.state_key()
            if remaining and state == previous:
                stats.dcache_hits += hits * remaining
                stats.dcache_misses += misses * remaining
                dcache.hits += hits * remaining
                dcache.misses += misses * remaining
                dcache.writebacks += (
                    (dcache.writebacks - writebacks_before) * remaining
                )
                remaining = 0
            previous = state

    # Custom instruction execution ------------------------------------------

    def execute_custom(self, instr: Instruction) -> int:
        if instr.opcode is Opcode.BUT4:
            return self._exec_but4(instr)
        if instr.opcode is Opcode.LDIN:
            return self._exec_ldin(instr)
        if instr.opcode is Opcode.STOUT:
            return self._exec_stout(instr)
        raise SimulationError(f"unexpected custom opcode {instr.opcode}")

    def custom_executor(self, instr: Instruction):
        """Resolve the custom-op dispatch once at predecode time."""
        handlers = {
            Opcode.BUT4: self._exec_but4,
            Opcode.LDIN: self._exec_ldin,
            Opcode.STOUT: self._exec_stout,
        }
        executor = handlers.get(instr.opcode)
        if executor is None:
            raise SimulationError(f"unexpected custom opcode {instr.opcode}")
        return executor

    def _predecode_token(self):
        """Decoded handlers specialise on the vectorisation flag and on
        any instance-level patch of the custom-op executors (a patch
        between runs of the same program must rebuild the handlers)."""
        instance = self.__dict__
        return (
            self.vectorized,
            self.int_datapath,
            self._batch is not None,
            instance.get("_exec_but4"),
            instance.get("_exec_ldin"),
            instance.get("_exec_stout"),
        )

    def custom_burst_executor(self, program, start: int, end: int):
        """Fused executors for LDIN/STOUT/BUT4 runs (predecode hook).

        Generated programs issue these ops in long straight-line bursts
        whose addressing is hardware-sequenced, so the whole run can
        execute with the per-op loop state held in locals.  Architectural
        effects, statistics and cycle charges are identical to the per-op
        path; equivalence is asserted against :meth:`Machine.step`-based
        interpretation in the tests.
        """
        if not self.vectorized:
            return None
        if any(name in self.__dict__
               for name in ("_exec_but4", "_exec_ldin", "_exec_stout")):
            # An executor is instance-patched (instrumentation / fault
            # injection): decline fusion so every op flows through it.
            return None
        instrs = [program[i] for i in range(start, end)]
        op = instrs[0].opcode
        first = instrs[0]
        identical = all(
            i.rs == first.rs and i.rt == first.rt and i.imm == first.imm
            for i in instrs
        )
        if op is Opcode.LDIN and identical:
            return self._make_ldin_burst(first, len(instrs))
        if op is Opcode.STOUT and identical:
            return self._make_stout_burst(first, len(instrs))
        if op is Opcode.BUT4 and (not self.fixed_point or self.int_datapath):
            return self._make_but4_burst(instrs)
        return None

    def _make_ldin_burst(self, instr: Instruction, count: int):
        def burst(self=self, rs=instr.rs, rt=instr.rt, count=count):
            size = self._group_size()
            stride = self._stride()
            stats = self.stats
            ops = stats.custom_ops
            ops["ldin"] = ops.get("ldin", 0) + count
            stats.loads += count
            if (self._batch is not None or self.int_datapath
                    or not self.fixed_point):
                return self._ldin_burst_fast(rs, rt, count, size, stride)
            mem = self.read_reg(rs)
            crf_pos = self.read_reg(rt)
            crf = self.crf
            memory = self.memory
            fixed = self.fixed_point
            dcache = self.dcache
            charge = self.charge_cache_latency
            flow = self._flow["ldin"]
            extra_total = 0
            hits = misses = 0
            if dcache is not None:
                access = dcache.access
                hit_latency = dcache.config.hit_latency
            for _ in range(count):
                second_address = mem + stride
                if dcache is not None:
                    latency_a = access(mem, False)
                    latency_b = access(second_address, False)
                    hits += (latency_a == hit_latency) + (
                        latency_b == hit_latency
                    )
                    misses += (latency_a > hit_latency) + (
                        latency_b > hit_latency
                    )
                    if charge:
                        extra_total += max(latency_a, latency_b) - hit_latency
                first, second = memory.read_complex_pair(mem, second_address)
                if fixed:
                    first = quantize(complex(first)).to_complex()
                    second = quantize(complex(second)).to_complex()
                crf.write(crf_pos % size, first)
                crf.write((crf_pos + 1) % size, second)
                crf_pos = (crf_pos + 2) % size
                group_count, group_start = flow
                if group_count == 0:
                    group_start = mem
                group_count += 2
                if group_count >= size:
                    mem = group_start + (1 if stride > 1 else size)
                    flow[0] = 0
                    flow[1] = mem
                else:
                    flow[0] = group_count
                    flow[1] = group_start
                    mem += 2 * stride
            if dcache is not None:
                stats.dcache_hits += hits
                stats.dcache_misses += misses
            self.write_reg(rs, mem)
            self.write_reg(rt, crf_pos)
            return count * (self.pipeline.custom_mem_latency - 1) + extra_total
        return burst

    def _make_stout_burst(self, instr: Instruction, count: int):
        def burst(self=self, rs=instr.rs, rt=instr.rt,
                  prerotate=bool(instr.imm & 1), count=count):
            size = self._group_size()
            stride = self._stride(STOUT_STRIDE_REG)
            stats = self.stats
            ops = stats.custom_ops
            ops["stout"] = ops.get("stout", 0) + count
            stats.stores += count
            if (self._batch is not None or self.int_datapath
                    or not self.fixed_point):
                return self._stout_burst_fast(
                    rs, rt, prerotate, count, size, stride
                )
            crf_pos = self.read_reg(rs)
            mem = self.read_reg(rt)
            crf = self.crf
            memory = self.memory
            dcache = self.dcache
            charge = self.charge_cache_latency
            flow = self._flow["stout"]
            extra_total = 0
            hits = misses = 0
            if dcache is not None:
                access = dcache.access
                hit_latency = dcache.config.hit_latency
            for _ in range(count):
                second_address = mem + stride
                if dcache is not None:
                    latency_a = access(mem, True)
                    latency_b = access(second_address, True)
                    hits += (latency_a == hit_latency) + (
                        latency_b == hit_latency
                    )
                    misses += (latency_a > hit_latency) + (
                        latency_b > hit_latency
                    )
                    if charge:
                        extra_total += max(latency_a, latency_b) - hit_latency
                first = crf.read(crf_pos % size)
                second = crf.read((crf_pos + 1) % size)
                if prerotate:
                    first = self._apply_prerotation(mem, first)
                    second = self._apply_prerotation(second_address, second)
                memory.write_complex_pair(mem, second_address, first, second)
                crf_pos = (crf_pos + 2) % size
                group_count, group_start = flow
                if group_count == 0:
                    group_start = mem
                group_count += 2
                if group_count >= size:
                    mem = group_start + (1 if stride > 1 else size)
                    flow[0] = 0
                    flow[1] = mem
                else:
                    flow[0] = group_count
                    flow[1] = group_start
                    mem += 2 * stride
            if dcache is not None:
                stats.dcache_hits += hits
                stats.dcache_misses += misses
            self.write_reg(rs, crf_pos)
            self.write_reg(rt, mem)
            return count * (self.pipeline.custom_mem_latency - 1) + extra_total
        return burst

    def _make_but4_burst(self, instrs: list):
        operand_regs = [(i.rs, i.rt) for i in instrs]

        def burst(self=self, operand_regs=operand_regs, count=len(instrs)):
            size = self._group_size()
            stats = self.stats
            ops = stats.custom_ops
            ops["but4"] = ops.get("but4", 0) + count
            read_reg = self.read_reg
            modules_per_stage = self._modules_per_stage
            index = 0
            while index < count:
                rs, rt = operand_regs[index]
                module = read_reg(rs)
                stage = read_reg(rt)
                # Extend over consecutive modules of the same stage; the
                # whole span is one gather/butterfly/scatter column op.
                last_module = module
                span_end = index + 1
                while span_end < count:
                    rs2, rt2 = operand_regs[span_end]
                    if (read_reg(rt2) != stage
                            or read_reg(rs2) != last_module + 1):
                        break
                    last_module += 1
                    span_end += 1
                reads, rom_addresses, writes, lanes = self.ac.span_arrays(
                    module, last_module, stage
                )
                self.bu.execute_span(
                    reads, rom_addresses, writes, lanes,
                    span_end - index, self.crf, self.rom, size,
                )
                if last_module == modules_per_stage:
                    self.crf.swap_banks()
                index = span_end
            return count * (self.pipeline.but4_latency - 1)
        return burst

    # Vectorised LDIN/STOUT machinery -------------------------------------
    #
    # The fast paths (int-array Q1.15 serial bursts and the multi-symbol
    # batch axis) split each burst into three phases with identical
    # architectural effect to the per-op loop: (1) run the hardware
    # address sequencer for the whole burst, (2) account every cache beat
    # in op order, (3) move the data as whole-column numpy ops.  CRF
    # scatter chunks never exceed the group size, so positions within a
    # chunk are unique and scatter order equals the sequential writes.

    def _sequence_walk(self, kind: str, size: int, stride: int,
                       mem: int, count: int) -> tuple:
        """Address walk of ``count`` two-point ops; mutates the flow state.

        Returns ``(addresses, final_cursor)`` with ``addresses`` shaped
        ``(count, 2)`` — exactly the pairs the per-op loop would touch,
        with the flow state left as ``count`` calls of
        :meth:`_advance_cursor` would leave it.
        """
        flow = self._flow[kind]
        group_count, group_start = flow
        addresses = np.empty((count, 2), dtype=np.int64)
        for k in range(count):
            if group_count == 0:
                group_start = mem
            addresses[k, 0] = mem
            addresses[k, 1] = mem + stride
            group_count += 2
            if group_count >= size:
                mem = group_start + (1 if stride > 1 else size)
                group_count = 0
                group_start = mem
            else:
                mem += 2 * stride
        flow[0] = group_count
        flow[1] = group_start
        return addresses, mem

    def _account_cache_walk(self, addresses: np.ndarray,
                            is_write: bool) -> int:
        """Cache-account a burst's bus beats in op order; returns extra
        cycles (non-zero only with ``charge_cache_latency``)."""
        dcache = self.dcache
        if dcache is None:
            return 0
        batch = self._batch
        trace = batch.trace if batch is not None else None
        access = dcache.access
        hit_latency = dcache.config.hit_latency
        charge = self.charge_cache_latency
        hits = misses = 0
        extra = 0
        for first, second in addresses.tolist():
            if trace is not None:
                trace.append((first, is_write))
                trace.append((second, is_write))
            latency_a = access(first, is_write)
            latency_b = access(second, is_write)
            hits += (latency_a == hit_latency) + (latency_b == hit_latency)
            misses += (latency_a > hit_latency) + (latency_b > hit_latency)
            if charge:
                extra += max(latency_a, latency_b) - hit_latency
        self.stats.dcache_hits += hits
        self.stats.dcache_misses += misses
        return extra

    def _ldin_burst_fast(self, rs: int, rt: int, count: int,
                         size: int, stride: int) -> int:
        mem = self.read_reg(rs)
        crf_start = self.read_reg(rt)
        addresses, mem_final = self._sequence_walk(
            "ldin", size, stride, mem, count
        )
        extra = self._account_cache_walk(addresses, is_write=False)
        flat = addresses.reshape(-1)
        if self._batch is not None:
            self._check_window(flat, "LDIN")
        offsets = np.arange(2 * count, dtype=np.int64)
        for lo in range(0, 2 * count, size):
            chunk = slice(lo, min(lo + size, 2 * count))
            positions = (crf_start + offsets[chunk]) % size
            self._ldin_move(flat[chunk], positions)
        self.write_reg(rs, int(mem_final))
        self.write_reg(rt, int((crf_start + 2 * count) % size))
        return count * (self.pipeline.custom_mem_latency - 1) + extra

    def _ldin_move(self, flat: np.ndarray, positions: np.ndarray) -> None:
        """Move one chunk of LDIN points memory -> CRF as columns."""
        batch = self._batch
        if batch is not None:
            fresh = ~batch.written[flat]
            if fresh.any():
                batch.suspect[flat[fresh]] = True
            if batch.fixed:
                self.crf.write_many_fixed(
                    positions, batch.re[:, flat], batch.im[:, flat]
                )
            else:
                self.crf.write_many(positions, batch.data[:, flat])
            return
        if self.int_datapath:
            # Serial int-array path: unpacking the 16-bit fields IS the
            # read_complex + quantize round trip (every stored point is
            # on the Q1.15 grid).
            re, im = words_to_fixed_array(self.memory.gather_words(flat))
            self.crf.write_many_fixed(positions, re, im)
        else:
            self.crf.write_many(positions, self.memory.gather_complex(flat))

    def _stout_burst_fast(self, rs: int, rt: int, prerotate: bool,
                          count: int, size: int, stride: int) -> int:
        crf_start = self.read_reg(rs)
        mem = self.read_reg(rt)
        addresses, mem_final = self._sequence_walk(
            "stout", size, stride, mem, count
        )
        extra = self._account_cache_walk(addresses, is_write=True)
        flat = addresses.reshape(-1)
        if self._batch is not None:
            self._check_window(flat, "STOUT")
        offsets = np.arange(2 * count, dtype=np.int64)
        for lo in range(0, 2 * count, size):
            chunk = slice(lo, min(lo + size, 2 * count))
            positions = (crf_start + offsets[chunk]) % size
            self._stout_move(flat[chunk], positions, prerotate)
        self.write_reg(rs, int((crf_start + 2 * count) % size))
        self.write_reg(rt, int(mem_final))
        return count * (self.pipeline.custom_mem_latency - 1) + extra

    def _stout_move(self, flat: np.ndarray, positions: np.ndarray,
                    prerotate: bool) -> None:
        """Move one chunk of STOUT points CRF -> memory as columns."""
        batch = self._batch
        if batch is not None:
            batch.written[flat] = True
        crf = self.crf
        if crf.int_mode:
            re, im = crf.read_many_fixed(positions)
            if prerotate:
                rel = self._scratch_rel(flat)
                pre_re, pre_im = self._prerot_components
                re, im = self.fx.multiply_arrays(
                    re, im, pre_re[rel], pre_im[rel]
                )
            if batch is not None:
                batch.re[:, flat] = re
                batch.im[:, flat] = im
            else:
                self.memory.scatter_words(
                    flat, fixed_to_words_array(re, im)
                )
            return
        values = crf.read_many(positions)
        if prerotate:
            rel = self._scratch_rel(flat)
            values = values * self._prerotation_table()[rel]
        if batch is not None:
            batch.data[:, flat] = values
        else:
            self.memory.scatter_complex(flat, values)

    def _scratch_rel(self, flat: np.ndarray) -> np.ndarray:
        """Scratch-relative indices of pre-rotating STOUT addresses."""
        rel = flat - self.scratch_base
        if rel.size and (
            int(rel.min()) < 0 or int(rel.max()) >= self.n_points
        ):
            raise SimulationError(
                f"pre-rotating STOUT targets addresses outside the "
                f"scratch region [{self.scratch_base}, "
                f"{self.scratch_base + self.n_points})"
            )
        self._prerotation_table()  # ensure the weight tables exist
        return rel

    def _check_window(self, flat: np.ndarray, op: str) -> None:
        """Batched custom ops must stay inside the staged data regions."""
        window = self._batch.window
        if flat.size and (
            int(flat.min()) < 0 or int(flat.max()) >= window
        ):
            raise SimulationError(
                f"batched {op} touches memory outside the data regions "
                f"[0, {window}); run such programs serially"
            )

    def _group_size(self) -> int:
        size = self.read_reg(GROUP_SIZE_REG)
        if size <= 0:
            raise SimulationError(
                "group-size register k1 not configured before custom op"
            )
        if size != self._configured_group_size:
            self.ac.configure(size)
            self._configured_group_size = size
            self._modules_per_stage = self.ac.modules_per_stage()
            self._flow = {"ldin": [0, 0], "stout": [0, 0]}
        return size

    def _stride(self, register: int = STRIDE_REG) -> int:
        stride = self.read_reg(register)
        return stride if stride > 0 else 1

    def _exec_but4(self, instr: Instruction) -> int:
        self.stats.count_custom("but4")
        size = self._group_size()
        module = self.read_reg(instr.rs)
        stage = self.read_reg(instr.rt)
        # Whole-column fast path: float lanes, or Q1.15 on the int-array
        # CRF (bit-identical component ops).  The complex-entry Q1.15
        # configuration keeps the bit-true scalar lanes (4-lane numpy on
        # boxed values costs more in call overhead than it saves).
        if self.vectorized and (not self.fixed_point or self.int_datapath):
            reads, rom_addresses, writes, lanes = self.ac.index_arrays(
                module, stage
            )
            self.bu.execute_indices(
                reads, rom_addresses, writes, lanes,
                self.crf, self.rom, size,
            )
        else:
            addresses = self.ac.addresses(module, stage)
            self.bu.execute(addresses, self.crf, self.rom, size)
        if module == self._modules_per_stage:
            self.crf.swap_banks()
        return self.pipeline.but4_latency - 1

    def _advance_cursor(self, kind: str, size: int, stride: int,
                        mem: int) -> int:
        """Hardware address sequencing for one 2-point LDIN/STOUT.

        Within a group of ``size`` points the cursor advances by
        ``2*stride``; completing a group rewinds to the next group's start
        (``group_start + 1`` for strided walks — the transpose pattern of
        AO0/AI1 — or ``group_start + size`` for contiguous ones).  The
        group start is latched from the software-visible cursor whenever a
        group begins, so software may reload the pointer register at any
        group boundary.
        """
        count, start = self._flow[kind]
        if count == 0:
            start = mem
        count += 2
        if count >= size:
            next_start = start + (1 if stride > 1 else size)
            self._flow[kind] = [0, next_start]
            return next_start
        self._flow[kind] = [count, start]
        return mem + 2 * stride

    def _exec_ldin(self, instr: Instruction) -> int:
        self.stats.count_custom("ldin")
        self.stats.loads += 1
        size = self._group_size()
        stride = self._stride()
        mem = self.read_reg(instr.rs)
        crf = self.read_reg(instr.rt)
        # The two bus beats, unrolled (the 64-bit bus moves two points).
        second_address = mem + stride
        extra = self._probe_cache_pair(mem, second_address, is_write=False)
        if self._batch is not None:
            flat = np.array([mem, second_address], dtype=np.int64)
            self._check_window(flat, "LDIN")
            positions = np.array(
                [crf % size, (crf + 1) % size], dtype=np.int64
            )
            self._ldin_move(flat, positions)
        else:
            first, second = self.memory.read_complex_pair(
                mem, second_address
            )
            if self.fixed_point:
                first = quantize(complex(first)).to_complex()
                second = quantize(complex(second)).to_complex()
            self.crf.write(crf % size, first)
            self.crf.write((crf + 1) % size, second)
        self.write_reg(instr.rs, self._advance_cursor("ldin", size, stride, mem))
        self.write_reg(instr.rt, (crf + 2) % size)
        return self.pipeline.custom_mem_latency - 1 + extra

    def _exec_stout(self, instr: Instruction) -> int:
        self.stats.count_custom("stout")
        self.stats.stores += 1
        size = self._group_size()
        stride = self._stride(STOUT_STRIDE_REG)
        crf = self.read_reg(instr.rs)
        mem = self.read_reg(instr.rt)
        prerotate = bool(instr.imm & 1)
        second_address = mem + stride
        extra = self._probe_cache_pair(mem, second_address, is_write=True)
        if self._batch is not None:
            flat = np.array([mem, second_address], dtype=np.int64)
            self._check_window(flat, "STOUT")
            positions = np.array(
                [crf % size, (crf + 1) % size], dtype=np.int64
            )
            self._stout_move(flat, positions, prerotate)
        else:
            first = self.crf.read(crf % size)
            second = self.crf.read((crf + 1) % size)
            if prerotate:
                first = self._apply_prerotation(mem, first)
                second = self._apply_prerotation(second_address, second)
            self.memory.write_complex_pair(
                mem, second_address, first, second
            )
        self.write_reg(instr.rs, (crf + 2) % size)
        self.write_reg(instr.rt, self._advance_cursor("stout", size, stride, mem))
        return self.pipeline.custom_mem_latency - 1 + extra

    def _prerotation_table(self) -> np.ndarray:
        """The flat scratch-order weight table, built on first use."""
        if self._prerot_flat is None:
            split = self.plan.split
            self._prerot_flat = prerotation_matrix(
                self.prerotation, split.P, split.Q
            ).reshape(-1)
            if self.fixed_point:
                re, im = quantize_array(self._prerot_flat)
                self._prerot_components = (re, im)
                self._prerot_fx = [
                    FixedComplex(int(r), int(i)) for r, i in zip(re, im)
                ]
        return self._prerot_flat

    def _apply_prerotation(self, address: int, value: complex) -> complex:
        rel = address - self.scratch_base
        if not (0 <= rel < self.n_points):
            raise SimulationError(
                f"pre-rotating STOUT targets {address}, outside the "
                f"scratch region [{self.scratch_base}, "
                f"{self.scratch_base + self.n_points})"
            )
        # rel = s*Q + l indexes the flat weight table directly.
        table = self._prerotation_table()
        if self.fixed_point:
            product = self.fx.multiply(
                quantize(complex(value)), self._prerot_fx[rel]
            )
            return product.to_complex()
        return value * table[rel]

    def _probe_cache_pair(self, first: int, second: int,
                          is_write: bool) -> int:
        """Cache-account both beats of one LDIN/STOUT.

        Per access: miss counting always happens, and the miss penalty
        only enters the returned extra latency when
        ``charge_cache_latency`` is set (the two beats overlap, so the
        charge is the worst of the pair beyond one hit).
        """
        dcache = self.dcache
        if dcache is None:
            return 0
        batch = self._batch
        if batch is not None and batch.trace is not None:
            batch.trace.append((first, is_write))
            batch.trace.append((second, is_write))
        stats = self.stats
        hit_latency = dcache.config.hit_latency
        latency_a = dcache.access(first, is_write)
        latency_b = dcache.access(second, is_write)
        for latency in (latency_a, latency_b):
            if latency > hit_latency:
                stats.dcache_misses += 1
            else:
                stats.dcache_hits += 1
        if not self.charge_cache_latency:
            return 0
        return max(latency_a, latency_b) - hit_latency


class _SymbolBatch:
    """Data-plane state of one batched multi-symbol run.

    Holds the ``(n_symbols, 3N)`` view of the ASIP's data regions —
    complex for the float datapath, int64 Q1.15 component pairs for the
    fixed one — plus the recorded data-cache access trace of the shared
    address walk (None when the machine has no cache).
    """

    __slots__ = ("n", "window", "fixed", "data", "re", "im", "trace",
                 "written", "suspect")

    def __init__(self, n: int, window: int, fixed: bool):
        self.n = n
        self.window = window
        self.fixed = fixed
        self.data = None
        self.re = None
        self.im = None
        self.trace = []
        # Cross-symbol dataflow guard: ``written`` marks columns this run
        # has produced (the staged input counts — it is re-staged per
        # symbol either way); ``suspect`` marks columns read while still
        # unwritten.  A column in both sets means the program consumed
        # state a previous symbol would have produced — batching cannot
        # reproduce the serial loop for such programs.
        self.written = np.zeros(window, dtype=bool)
        self.suspect = np.zeros(window, dtype=bool)


class _SmallPreRotation:
    """Exact weights for N < 8 where the octant store degenerates."""

    def __init__(self, n_points: int):
        bit_width_of(n_points)
        self.n_points = n_points

    def weight(self, s: int, l: int) -> complex:
        angle = -2.0 * np.pi * ((s * l) % self.n_points) / self.n_points
        return complex(np.cos(angle), np.sin(angle))
