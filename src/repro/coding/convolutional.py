"""Convolutional encoding: the K=7 (133, 171) industry-standard code.

The code every OFDM standard the paper targets (802.11a, 802.16 WiMAX,
DVB-T) puts in front of the FFT is the rate-1/2, constraint-length-7
convolutional code with generator polynomials (133, 171) in octal,
punctured up to rates 2/3 and 3/4.  :class:`ConvolutionalCode` holds the
trellis (states, branch outputs, predecessor tables — everything the
Viterbi decoder needs) and two encoder datapaths mirroring the
oracle/compiled split in :mod:`repro.core`:

* :meth:`ConvolutionalCode.encode_reference` — the readable per-step
  shift-register walk, kept as the correctness oracle;
* :meth:`ConvolutionalCode.encode` — the vectorised path: each generator
  tap becomes one shifted-column XOR over the whole (batched) bit
  matrix, bit-identical to the oracle.

:class:`PuncturedCode` wraps a base code with a puncture pattern and
owns the **block geometry**: given an OFDM symbol's coded-bit capacity
it computes how many information bits fit (terminated with ``K - 1``
tail zeros), how many punctured coded bits come out, and how many zero
pad bits fill the remaining subcarrier positions.

The module also keeps the **code registry** — named codes reachable
from pipelines, scenarios and links — raising
:class:`~repro.core.registry.UnknownNameError` with the registered menu
on failed lookups, exactly like the backend/stage/scenario registries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.registry import UnknownNameError

__all__ = [
    "PUNCTURE_PATTERNS",
    "BlockGeometry",
    "ConvolutionalCode",
    "PuncturedCode",
    "register_code",
    "unregister_code",
    "get_code",
    "code_names",
    "code_specs",
    "resolve_code",
]

#: puncture patterns per rate: one ``(keep_y0, keep_y1)`` row per trellis
#: step of the puncturing period (the 802.11a / DVB-T conventions —
#: rate 2/3 transmits ``a0 b0 a1``, rate 3/4 transmits ``a0 b0 b1 a2``).
PUNCTURE_PATTERNS = {
    "1/2": ((1, 1),),
    "2/3": ((1, 1), (1, 0)),
    "3/4": ((1, 1), (0, 1), (1, 0)),
}


@dataclass(frozen=True)
class BlockGeometry:
    """How one terminated code block fills a coded-bit capacity.

    ``capacity`` coded positions hold ``coded_bits`` punctured encoder
    outputs (``steps`` trellis steps: ``info_bits`` payload bits plus
    the ``K - 1`` terminating tail zeros) followed by ``pad_bits``
    zero-fill positions that keep the OFDM grid full.
    """

    capacity: int
    info_bits: int
    steps: int
    coded_bits: int
    pad_bits: int


class ConvolutionalCode:
    """A rate-1/n binary convolutional code with its full trellis.

    Parameters
    ----------
    name:
        Registry key.
    polynomials:
        Generator polynomials as integers (write them in octal:
        ``(0o133, 0o171)``); bit ``K-1`` taps the current input bit,
        bit 0 the oldest delay element.
    """

    def __init__(self, name: str, polynomials):
        self.name = name
        self.polynomials = tuple(int(p) for p in polynomials)
        if len(self.polynomials) < 2:
            raise ValueError("a convolutional code needs >= 2 generators")
        self.constraint_length = max(p.bit_length() for p in self.polynomials)
        if self.constraint_length < 2:
            raise ValueError("constraint length must be >= 2")
        self.memory = self.constraint_length - 1
        self.n_outputs = len(self.polynomials)
        self.n_states = 1 << self.memory
        self._build_trellis()

    def _build_trellis(self) -> None:
        """Tabulate branch outputs and predecessors for the trellis.

        State ``s`` holds the ``memory`` most recent input bits, newest
        at the MSB; feeding bit ``u`` forms ``full = (u << memory) | s``
        whose parity against each generator is that branch's output, and
        the next state drops the oldest bit: ``full >> 1``.
        """
        m, s_count = self.memory, self.n_states
        full = (np.arange(2)[:, None] << m) | np.arange(s_count)[None, :]
        self.next_states = (full >> 1).T          # (states, input)
        outs = np.empty((s_count, 2, self.n_outputs), dtype=np.uint8)
        for j, poly in enumerate(self.polynomials):
            masked = full & poly
            bits = np.zeros_like(masked)
            for b in range(self.constraint_length):
                bits ^= (masked >> b) & 1
            outs[:, :, j] = bits.T
        self.outputs = outs                        # (states, input, n)
        # Decoder view: new state's MSB *is* the input bit; the two
        # predecessors differ only in the bit the shift dropped.
        ns = np.arange(s_count)
        mask = s_count - 1
        self.prev_states = np.stack(
            [((ns << 1) & mask) | x for x in (0, 1)], axis=1
        )                                          # (states, 2)
        self.input_bits = (ns >> (m - 1)).astype(np.uint8)
        self.branch_outputs = self.outputs[
            self.prev_states, self.input_bits[:, None]
        ]                                          # (states, 2, n)

    def __repr__(self) -> str:
        polys = ",".join(oct(p) for p in self.polynomials)
        return (f"ConvolutionalCode({self.name}: K={self.constraint_length},"
                f" g=({polys}))")

    # Encoding ------------------------------------------------------------

    def encode(self, bits) -> np.ndarray:
        """Encode (terminated) information bits; vectorised datapath.

        ``bits`` is ``(L,)`` or a ``(..., L)`` batch; each block gets
        ``memory`` tail zeros, so the encoder always ends in state 0.
        Returns the unpunctured output as ``(..., L + memory,
        n_outputs)`` per-step bit groups.  Each generator tap is one
        shifted-column XOR over the whole batch — bit-identical to
        :meth:`encode_reference` (asserted in ``tests/test_coding.py``).
        """
        u = np.asarray(bits, dtype=np.uint8) & 1
        steps = u.shape[-1] + self.memory
        tail = np.zeros(u.shape[:-1] + (self.memory,), dtype=np.uint8)
        x = np.concatenate([tail, u, tail], axis=-1)  # m-zero history + tail
        out = np.zeros(u.shape[:-1] + (steps, self.n_outputs),
                       dtype=np.uint8)
        for j, poly in enumerate(self.polynomials):
            acc = out[..., j]
            for i in range(self.constraint_length):
                if (poly >> (self.constraint_length - 1 - i)) & 1:
                    acc ^= x[..., self.memory - i:self.memory - i + steps]
        return out

    def encode_reference(self, bits) -> np.ndarray:
        """The per-step shift-register oracle (one block at a time)."""
        u = np.asarray(bits, dtype=np.uint8) & 1
        if u.ndim != 1:
            return np.stack(
                [self.encode_reference(row) for row in u.reshape(-1, u.shape[-1])]
            ).reshape(u.shape[:-1] + (u.shape[-1] + self.memory,
                                      self.n_outputs))
        state = 0
        out = np.empty((len(u) + self.memory, self.n_outputs),
                       dtype=np.uint8)
        for t, bit in enumerate(list(u) + [0] * self.memory):
            out[t] = self.outputs[state, bit]
            state = self.next_states[state, bit]
        assert state == 0  # termination drove the register home
        return out

    def punctured(self, rate: str = "1/2") -> "PuncturedCode":
        """This code behind the named puncture pattern."""
        return PuncturedCode(self, rate)


class PuncturedCode:
    """A convolutional code behind a standard puncture pattern.

    Exposes the whole block datapath the coded OFDM chain needs:
    :meth:`block_geometry` (how many info bits fill a coded capacity),
    :meth:`encode` (terminated, punctured, zero-padded to capacity),
    :meth:`depuncture` (LLRs back onto the full trellis grid — punctured
    positions carry LLR 0, i.e. "no information"), and :meth:`decode`
    (the Viterbi datapaths, see :mod:`repro.coding.viterbi`).
    """

    def __init__(self, base: ConvolutionalCode, rate: str = "1/2"):
        pattern = PUNCTURE_PATTERNS.get(rate)
        if pattern is None:
            raise UnknownNameError(
                f"unknown puncture rate {rate!r}; supported rates: "
                f"{', '.join(sorted(PUNCTURE_PATTERNS))}"
            )
        self.base = base
        self.rate = rate
        self.pattern = np.asarray(pattern, dtype=bool)
        self.period_steps = len(self.pattern)
        self.kept_per_period = int(self.pattern.sum())
        self._decoder = None

    @property
    def name(self) -> str:
        """Registry-style name, e.g. ``conv-k7 r3/4``."""
        return f"{self.base.name} r{self.rate}"

    def __repr__(self) -> str:
        return f"PuncturedCode({self.name})"

    def step_mask(self, steps: int) -> np.ndarray:
        """Boolean keep-mask over ``steps`` trellis steps, ``(steps, n)``."""
        reps = -(-steps // self.period_steps)
        return np.tile(self.pattern, (reps, 1))[:steps]

    def coded_length(self, steps: int) -> int:
        """Punctured output bits produced by ``steps`` trellis steps."""
        full, part = divmod(steps, self.period_steps)
        return (full * self.kept_per_period
                + int(self.pattern[:part].sum()))

    def block_geometry(self, capacity: int) -> BlockGeometry:
        """Fit one terminated block into ``capacity`` coded positions."""
        memory = self.base.memory
        # coded_length is monotone in steps; land near the answer and walk.
        steps = max(
            (capacity * self.period_steps) // self.kept_per_period
            + self.period_steps,
            memory + 1,
        )
        while steps > memory + 1 and self.coded_length(steps) > capacity:
            steps -= 1
        info = steps - memory
        coded = self.coded_length(steps)
        if info < 1 or coded > capacity:
            raise ValueError(
                f"capacity {capacity} too small for one terminated "
                f"{self.name} block (needs >= "
                f"{self.coded_length(memory + 2)} coded bits)"
            )
        return BlockGeometry(
            capacity=capacity, info_bits=info, steps=steps,
            coded_bits=coded, pad_bits=capacity - coded,
        )

    # Block datapath ------------------------------------------------------

    def encode(self, bits, capacity: int = None) -> np.ndarray:
        """Terminated + punctured encode of ``(..., L)`` info bits.

        Returns ``(..., coded_bits)`` punctured bits, or — when
        ``capacity`` is given — ``(..., capacity)`` with zero pad bits
        appended (the coded OFDM symbol payload).
        """
        u = np.asarray(bits, dtype=np.uint8) & 1
        steps = u.shape[-1] + self.base.memory
        grouped = self.base.encode(u)
        coded = grouped[..., self.step_mask(steps)]
        if capacity is None:
            return coded
        pad = capacity - coded.shape[-1]
        if pad < 0:
            raise ValueError(
                f"{coded.shape[-1]} coded bits exceed capacity {capacity}"
            )
        width = [(0, 0)] * (coded.ndim - 1) + [(0, pad)]
        return np.pad(coded, width)

    def depuncture(self, llrs) -> np.ndarray:
        """Spread ``(..., coded_bits)`` LLRs onto the ``(..., steps, n)``
        trellis grid; punctured positions get LLR 0 (no information)."""
        llrs = np.asarray(llrs, dtype=np.float64)
        coded = llrs.shape[-1]
        steps = self.base.memory + 1
        while self.coded_length(steps) < coded:
            steps += 1
        if self.coded_length(steps) != coded:
            raise ValueError(
                f"{coded} LLRs do not align with rate {self.rate} "
                f"puncturing (nearest block: {self.coded_length(steps)})"
            )
        grid = np.zeros(llrs.shape[:-1] + (steps, self.base.n_outputs))
        grid[..., self.step_mask(steps)] = llrs
        return grid

    def decode(self, llrs, reference: bool = False) -> np.ndarray:
        """Viterbi-decode ``(..., coded_bits)`` punctured LLRs.

        ``reference=True`` routes through the per-step oracle decoder;
        the default vectorised trellis is bit-identical to it.
        Returns the ``(..., info_bits)`` decoded payload (tail dropped).
        """
        from .viterbi import ViterbiDecoder

        if self._decoder is None:
            self._decoder = ViterbiDecoder(self.base)
        grid = self.depuncture(llrs)
        if reference:
            return self._decoder.decode_reference(grid)
        return self._decoder.decode(grid)


# Code registry -----------------------------------------------------------

_REGISTRY: dict = {}


def register_code(code: ConvolutionalCode, replace: bool = False) -> None:
    """Register ``code`` under ``code.name`` (loud on duplicates)."""
    if not isinstance(code, ConvolutionalCode):
        raise TypeError(
            f"expected a ConvolutionalCode, got {type(code).__name__}"
        )
    if not replace and code.name in _REGISTRY:
        raise ValueError(f"code {code.name!r} is already registered")
    _REGISTRY[code.name] = code


def unregister_code(name: str) -> None:
    """Remove a code (primarily for tests registering throwaways)."""
    _REGISTRY.pop(name, None)


def get_code(name: str) -> ConvolutionalCode:
    """Look up a code by name; raises with the registered menu."""
    code = _REGISTRY.get(name)
    if code is None:
        raise UnknownNameError(
            f"unknown code {name!r}; registered codes: "
            f"{', '.join(code_names())}"
        )
    return code


def code_names() -> list:
    """Sorted names of every registered code."""
    return sorted(_REGISTRY)


def code_specs() -> dict:
    """Name-sorted snapshot of the registry (name ->
    :class:`ConvolutionalCode`), deterministic regardless of
    registration order."""
    return {name: _REGISTRY[name] for name in sorted(_REGISTRY)}


def resolve_code(code, rate: str = "1/2"):
    """Normalise a code designator to a :class:`PuncturedCode`.

    Accepts ``None`` (returns None), a registered name, a
    :class:`ConvolutionalCode` (punctured at ``rate``) or a ready
    :class:`PuncturedCode` (returned as-is; ``rate`` ignored).
    """
    if code is None:
        return None
    if isinstance(code, PuncturedCode):
        return code
    if isinstance(code, ConvolutionalCode):
        return code.punctured(rate)
    return get_code(code).punctured(rate)


for _code in (
    ConvolutionalCode("conv-k7", (0o133, 0o171)),
    ConvolutionalCode("conv-k3", (0o5, 0o7)),
):
    register_code(_code, replace=True)
