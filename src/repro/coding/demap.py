"""Soft-decision demapping: per-bit LLRs from equalised subcarriers.

A hard-decision demapper throws away exactly the information the
Viterbi decoder feeds on, so the coded receive chain replaces it with a
**max-log LLR** demapper: for every transmitted bit, the squared
distance from the received point to the nearest constellation point
carrying that bit as 0 versus as 1.

**Sign convention** (shared with :mod:`repro.coding.viterbi`, recorded
in DESIGN.md): ``llr = d1 - d0``, so **positive LLR means bit 0 is more
likely** and ``llr < 0`` is the hard decision for bit 1.  With Gray
mapping the sign of a max-log LLR always agrees with nearest-point hard
demapping, which is what makes the chain's "uncoded BER" readable
straight off the LLR signs.  LLR magnitudes are in squared-distance
units; pass ``noise_var`` to scale onto the true log-likelihood grid
(``(d1 - d0) / noise_var`` — an affine scale the Viterbi decision is
invariant to, so the chain leaves it off by default).

The **demapper registry** mirrors the other registries — one entry per
constellation scheme, :class:`~repro.core.registry.UnknownNameError`
with the menu on failed lookups.  BPSK/QPSK/16-QAM are built in;
:class:`SoftDemapper` itself is generic over any
:class:`~repro.ofdm.modulation.Constellation`, so registering a new
scheme is one line.
"""

from __future__ import annotations

import numpy as np

from ..core.registry import UnknownNameError
from ..ofdm.modulation import CONSTELLATIONS, Constellation

__all__ = [
    "SoftDemapper",
    "register_demapper",
    "unregister_demapper",
    "get_demapper",
    "demapper_names",
    "demapper_specs",
]


class SoftDemapper:
    """Max-log per-bit LLRs for one Gray-mapped constellation."""

    def __init__(self, constellation: Constellation):
        self.constellation = constellation
        self.bits_per_symbol = constellation.bits_per_symbol
        points = constellation.points
        width = self.bits_per_symbol
        indices = np.arange(len(points))
        # (bits_per_symbol, n_points) masks: bit k of the point index,
        # MSB first — the same bit order Constellation.map_bits consumes.
        self._bit_is_one = np.stack([
            ((indices >> (width - 1 - k)) & 1).astype(bool)
            for k in range(width)
        ])
        self._points = points

    def __repr__(self) -> str:
        return f"SoftDemapper({self.constellation.name})"

    def llrs(self, symbols, noise_var: float = None) -> np.ndarray:
        """LLRs for ``(..., N)`` equalised symbols -> ``(..., N * w)``.

        The output bit order matches the mapper's input bit order, so
        ``llrs(map_bits(bits)) < 0`` recovers ``bits`` exactly in the
        noiseless case.  The whole batch demaps in one vectorised pass.
        """
        symbols = np.asarray(symbols, dtype=complex)
        # (..., N, points) squared distances, then per-bit min over the
        # bit-0 / bit-1 point subsets.
        dist = np.abs(symbols[..., None] - self._points) ** 2
        llr = np.empty(symbols.shape + (self.bits_per_symbol,))
        for k, ones in enumerate(self._bit_is_one):
            d0 = np.min(np.where(ones, np.inf, dist), axis=-1)
            d1 = np.min(np.where(ones, dist, np.inf), axis=-1)
            llr[..., k] = d1 - d0
        out = llr.reshape(symbols.shape[:-1] + (-1,))
        if noise_var is not None:
            out = out / float(noise_var)
        return out

    def hard_bits(self, llrs) -> np.ndarray:
        """Hard decisions from LLR signs (``llr < 0`` -> bit 1)."""
        return (np.asarray(llrs) < 0).astype(np.uint8)


# Demapper registry -------------------------------------------------------

_REGISTRY: dict = {}


def register_demapper(name: str, demapper: SoftDemapper,
                      replace: bool = False) -> None:
    """Register ``demapper`` under ``name`` (loud on duplicates)."""
    if not hasattr(demapper, "llrs"):
        raise TypeError(
            f"demapper for {name!r} has no llrs() method"
        )
    if not replace and name in _REGISTRY:
        raise ValueError(f"demapper {name!r} is already registered")
    _REGISTRY[name] = demapper


def unregister_demapper(name: str) -> None:
    """Remove a demapper (for tests registering throwaways)."""
    _REGISTRY.pop(name, None)


def get_demapper(name: str) -> SoftDemapper:
    """Look up a demapper by scheme name; raises with the menu."""
    demapper = _REGISTRY.get(name)
    if demapper is None:
        raise UnknownNameError(
            f"unknown demapper {name!r}; registered demappers: "
            f"{', '.join(demapper_names())}"
        )
    return demapper


def demapper_names() -> list:
    """Sorted names of every registered demapper."""
    return sorted(_REGISTRY)


def demapper_specs() -> dict:
    """Name-sorted snapshot of the registry (name -> demapper),
    deterministic regardless of registration order."""
    return {name: _REGISTRY[name] for name in sorted(_REGISTRY)}


for _scheme in ("bpsk", "qpsk", "16qam"):
    register_demapper(
        _scheme, SoftDemapper(CONSTELLATIONS[_scheme]), replace=True
    )
