"""Viterbi decoding: a readable oracle and a vectorised trellis.

Mirrors the oracle/compiled split of :mod:`repro.core`: the decoder
owns two datapaths over the same trellis tables and the fast one is
**bit-identical** to the slow one, ties included:

* :meth:`ViterbiDecoder.decode_reference` — the per-step, per-state
  add-compare-select walk, written for readability; the correctness
  oracle.
* :meth:`ViterbiDecoder.decode` — the numpy datapath: each trellis step
  is a handful of column operations over all ``2^(K-1)`` states at
  once (gather predecessor metrics, add branch metrics, compare,
  select), with an optional leading batch axis so a whole burst of
  independent blocks (one per OFDM symbol) decodes in one pass.

Both paths use the same floating-point operations in the same order
(two-term branch-metric sums, one metric add per branch), so their
results agree bit for bit; the tie rule is also shared: a branch from
the lower-indexed predecessor wins ties, and the reference applies
``cand1 > cand0`` exactly like the vectorised ``np.where``.

Metric convention: inputs are per-bit LLRs with **positive meaning
bit 0** (see :mod:`repro.coding.demap`); the branch metric is the
correlation ``sum((1 - 2*bit) * llr)``, maximised along the path.
Depunctured positions carry LLR 0 and contribute nothing.
"""

from __future__ import annotations

import numpy as np

from .convolutional import ConvolutionalCode

from .. import telemetry

__all__ = ["ViterbiDecoder"]


class ViterbiDecoder:
    """Maximum-likelihood decoder for one :class:`ConvolutionalCode`.

    Blocks are assumed **terminated** (the encoder appended ``K - 1``
    tail zeros), so the survivor path is traced back from state 0 and
    the tail bits are dropped from the returned payload.
    """

    def __init__(self, code: ConvolutionalCode):
        self.code = code
        # (states, 2) branch signs per output bit: +1 for bit 0, -1 for
        # bit 1 — the correlation weights of each predecessor branch.
        self._signs = 1.0 - 2.0 * code.branch_outputs.astype(np.float64)
        self._prev = code.prev_states
        self._state_mask = code.n_states - 1

    def decode(self, llr_steps) -> np.ndarray:
        """Vectorised decode of ``(..., steps, n)`` depunctured LLRs.

        Leading axes are independent blocks (the coded chain passes one
        block per OFDM symbol); every add-compare-select runs as column
        ops over all states and all blocks at once.  Returns
        ``(..., steps - memory)`` decoded info bits.
        """
        llr = np.asarray(llr_steps, dtype=np.float64)
        if llr.ndim < 2 or llr.shape[-1] != self.code.n_outputs:
            raise ValueError(
                f"expected (..., steps, {self.code.n_outputs}) LLRs, "
                f"got shape {llr.shape}"
            )
        squeeze = llr.ndim == 2
        if squeeze:
            llr = llr[None]
        lead = llr.shape[:-2]
        steps = llr.shape[-2]
        if steps <= self.code.memory:
            raise ValueError(
                f"need more than {self.code.memory} trellis steps, "
                f"got {steps}"
            )
        flat = llr.reshape(-1, steps, self.code.n_outputs)
        blocks = flat.shape[0]
        n_states = self.code.n_states
        metrics = np.full((blocks, n_states), -np.inf)
        metrics[:, 0] = 0.0
        decisions = np.empty((steps, blocks, n_states), dtype=np.uint8)
        # All branch metrics up front, one broadcast per output bit:
        # explicit two-term sums — elementwise the same float
        # operations, in the same order, as the reference walk — so
        # the sequential loop below is pure gather/add/compare/select.
        with telemetry.span("viterbi.branch-metrics", blocks=blocks,
                            steps=steps, states=n_states):
            signs = self._signs[None, None, :, :, :]  # (1,1,states,2,n)
            branch = (signs[..., 0]
                      * flat[:, :, 0, None, None])    # (blocks, T, S, 2)
            for j in range(1, self.code.n_outputs):
                branch = branch + signs[..., j] * flat[:, :, j, None, None]
        with telemetry.span("viterbi.acs", blocks=blocks, steps=steps,
                            states=n_states):
            for t in range(steps):
                cand = metrics[:, self._prev] + branch[:, t]
                choose = cand[..., 1] > cand[..., 0]  # (blocks, states)
                decisions[t] = choose
                metrics = np.where(choose, cand[..., 1], cand[..., 0])
        # Terminated blocks end in state 0; walk the survivor path back.
        with telemetry.span("viterbi.traceback", blocks=blocks,
                            steps=steps):
            state = np.zeros(blocks, dtype=np.intp)
            bits = np.empty((blocks, steps), dtype=np.uint8)
            rows = np.arange(blocks)
            shift = self.code.memory - 1
            for t in range(steps - 1, -1, -1):
                bits[:, t] = (state >> shift).astype(np.uint8)
                dropped = decisions[t, rows, state]
                state = ((state << 1) & self._state_mask) | dropped
            info = bits[:, :steps - self.code.memory]
        info = info.reshape(lead + (info.shape[-1],))
        return info[0] if squeeze else info

    def decode_reference(self, llr_steps) -> np.ndarray:
        """The per-step, per-state oracle walk (readable specification).

        Same metric convention, float operation order and tie rule as
        :meth:`decode`; batches are decoded row by row.
        """
        llr = np.asarray(llr_steps, dtype=np.float64)
        if llr.ndim > 2:
            flat = llr.reshape(-1, llr.shape[-2], llr.shape[-1])
            rows = [self.decode_reference(block) for block in flat]
            return np.stack(rows).reshape(
                llr.shape[:-2] + (rows[0].shape[-1],)
            )
        steps = llr.shape[0]
        n_states = self.code.n_states
        metrics = [0.0] + [-np.inf] * (n_states - 1)
        decisions = []
        for t in range(steps):
            step_llr = llr[t]
            new_metrics = [None] * n_states
            chosen = [0] * n_states
            for state in range(n_states):
                cand = []
                for x in (0, 1):
                    branch = self._signs[state, x, 0] * step_llr[0]
                    for j in range(1, self.code.n_outputs):
                        branch = branch + (
                            self._signs[state, x, j] * step_llr[j]
                        )
                    cand.append(metrics[self._prev[state, x]] + branch)
                pick = 1 if cand[1] > cand[0] else 0
                chosen[state] = pick
                new_metrics[state] = cand[pick]
            metrics = new_metrics
            decisions.append(chosen)
        state = 0
        bits = [0] * steps
        shift = self.code.memory - 1
        for t in range(steps - 1, -1, -1):
            bits[t] = state >> shift
            state = ((state << 1) & self._state_mask) | decisions[t][state]
        return np.asarray(bits[:steps - self.code.memory], dtype=np.uint8)
