"""Bit interleaving for the coded OFDM chain.

A burst error — a faded subcarrier clobbering several adjacent coded
bits — is what convolutional codes handle worst, so every coded OFDM
standard interleaves the coded bits across the symbol before mapping.
An interleaver here is a fixed permutation of one OFDM symbol's coded
payload: :meth:`interleave` applies it to bits (or anything — LLRs come
back through :meth:`deinterleave` on the receive side), broadcasting
over leading batch axes, so a whole burst permutes as one fancy-index.

The **interleaver registry** mirrors the other registries: named
factories ``factory(n, **params)`` building an interleaver for an
``n``-bit payload, with :class:`~repro.core.registry.UnknownNameError`
listing the menu on failed lookups.
"""

from __future__ import annotations

import numpy as np

from ..core.registry import UnknownNameError

__all__ = [
    "BlockInterleaver",
    "IdentityInterleaver",
    "register_interleaver",
    "unregister_interleaver",
    "get_interleaver",
    "interleaver_names",
    "interleaver_specs",
    "build_interleaver",
    "resolve_interleaver",
]


class BlockInterleaver:
    """Row-in, column-out block interleaver over ``n`` positions.

    Bits are written row-wise into a ``depth x (n / depth)`` matrix and
    read column-wise, so bits adjacent in the code stream land
    ``n / depth`` subcarrier-bit positions apart on the air.
    """

    name = "block"

    def __init__(self, n: int, depth: int = 8):
        n, depth = int(n), int(depth)
        if depth < 1 or n % depth:
            raise ValueError(
                f"block interleaver depth {depth} must divide the "
                f"{n}-bit payload"
            )
        self.n = n
        self.depth = depth
        self.permutation = (
            np.arange(n).reshape(depth, n // depth).T.reshape(-1)
        )
        self._inverse = np.argsort(self.permutation)

    def __repr__(self) -> str:
        return f"BlockInterleaver(n={self.n}, depth={self.depth})"

    def interleave(self, values) -> np.ndarray:
        """Permute the last axis into air order."""
        values = np.asarray(values)
        if values.shape[-1] != self.n:
            raise ValueError(
                f"expected {self.n} positions, got {values.shape[-1]}"
            )
        return values[..., self.permutation]

    def deinterleave(self, values) -> np.ndarray:
        """Invert :meth:`interleave` on the last axis."""
        values = np.asarray(values)
        if values.shape[-1] != self.n:
            raise ValueError(
                f"expected {self.n} positions, got {values.shape[-1]}"
            )
        return values[..., self._inverse]


class IdentityInterleaver(BlockInterleaver):
    """The no-op permutation (coded chains without interleaving)."""

    name = "identity"

    def __init__(self, n: int):
        super().__init__(n, depth=1)

    def __repr__(self) -> str:
        return f"IdentityInterleaver(n={self.n})"


# Interleaver registry ----------------------------------------------------

_REGISTRY: dict = {}


def register_interleaver(name: str, factory, replace: bool = False) -> None:
    """Register ``factory(n, **params)`` under ``name``."""
    if not callable(factory):
        raise TypeError(f"interleaver factory for {name!r} is not callable")
    if not replace and name in _REGISTRY:
        raise ValueError(f"interleaver {name!r} is already registered")
    _REGISTRY[name] = factory


def unregister_interleaver(name: str) -> None:
    """Remove an interleaver (for tests registering throwaways)."""
    _REGISTRY.pop(name, None)


def get_interleaver(name: str):
    """Look up an interleaver factory; raises with the registered menu."""
    factory = _REGISTRY.get(name)
    if factory is None:
        raise UnknownNameError(
            f"unknown interleaver {name!r}; registered interleavers: "
            f"{', '.join(interleaver_names())}"
        )
    return factory


def interleaver_names() -> list:
    """Sorted names of every registered interleaver."""
    return sorted(_REGISTRY)


def interleaver_specs() -> dict:
    """Name-sorted snapshot of the registry (name -> factory),
    deterministic regardless of registration order."""
    return {name: _REGISTRY[name] for name in sorted(_REGISTRY)}


def build_interleaver(name: str, n: int, **params):
    """Build the named interleaver for an ``n``-position payload."""
    return get_interleaver(name)(n, **params)


def resolve_interleaver(spec, n: int):
    """Normalise an interleaver designator for an ``n``-bit payload.

    Accepts ``None`` (identity), a registered name, a ``(name, params)``
    pair, or a ready interleaver object (``interleave``/``deinterleave``
    methods; returned as-is after a size check when it has ``n``).
    """
    if spec is None:
        return IdentityInterleaver(n)
    if isinstance(spec, str):
        return build_interleaver(spec, n)
    if isinstance(spec, tuple) and len(spec) == 2 \
            and isinstance(spec[0], str):
        return build_interleaver(spec[0], n, **dict(spec[1]))
    if hasattr(spec, "interleave") and hasattr(spec, "deinterleave"):
        if getattr(spec, "n", n) != n:
            raise ValueError(
                f"interleaver {spec!r} is sized for {spec.n} positions, "
                f"payload has {n}"
            )
        return spec
    raise TypeError(
        f"interleaver designator {spec!r} is not a name, a "
        f"(name, params) pair, or an interleaver object"
    )


register_interleaver("block", BlockInterleaver, replace=True)
register_interleaver("identity", IdentityInterleaver, replace=True)
