"""Channel coding: the codec layer in front of the OFDM substrate.

Real receivers built around the paper's FFT processor (UWB, WiMAX,
DVB-T) never run uncoded — a convolutional codec, bit interleaving and
soft-decision demapping sit between the payload and the subcarriers.
This package is that layer, structured like :mod:`repro.core`: every
datapath keeps a readable reference oracle and a vectorised fast path
gated to be bit-identical to it.

* :mod:`~repro.coding.convolutional` — the K=7 (133, 171) code (and a
  K=3 test code), standard puncturing to rates 1/2, 2/3, 3/4, and the
  terminated block geometry that fills an OFDM symbol's coded capacity;
* :mod:`~repro.coding.interleave` — block/identity bit interleavers as
  fixed per-symbol permutations;
* :mod:`~repro.coding.demap` — max-log per-bit LLR demappers for
  BPSK/QPSK/16-QAM (positive LLR = bit 0);
* :mod:`~repro.coding.viterbi` — the Viterbi decoder: per-step oracle
  plus the vectorised add-compare-select trellis (column ops over all
  64 states, batched over symbols);
* :mod:`~repro.coding.stages` — the registered pipeline stages
  (``encode``, ``interleave``, ``soft-demodulate``, ``deinterleave``,
  ``decode``, ``coded-metrics``) making coded links pure configuration.

Codes, interleavers and demappers each resolve through an open registry
raising :class:`~repro.core.registry.UnknownNameError` with the
registered menu, like every other registry in the package.
"""

from .convolutional import (
    PUNCTURE_PATTERNS,
    BlockGeometry,
    ConvolutionalCode,
    PuncturedCode,
    code_names,
    code_specs,
    get_code,
    register_code,
    resolve_code,
    unregister_code,
)
from .demap import (
    SoftDemapper,
    demapper_names,
    demapper_specs,
    get_demapper,
    register_demapper,
    unregister_demapper,
)
from .interleave import (
    BlockInterleaver,
    IdentityInterleaver,
    build_interleaver,
    get_interleaver,
    interleaver_names,
    interleaver_specs,
    register_interleaver,
    resolve_interleaver,
    unregister_interleaver,
)
from .viterbi import ViterbiDecoder

__all__ = [
    "PUNCTURE_PATTERNS",
    "BlockGeometry",
    "ConvolutionalCode",
    "PuncturedCode",
    "ViterbiDecoder",
    "SoftDemapper",
    "BlockInterleaver",
    "IdentityInterleaver",
    "register_code",
    "unregister_code",
    "get_code",
    "code_names",
    "code_specs",
    "resolve_code",
    "register_interleaver",
    "unregister_interleaver",
    "get_interleaver",
    "interleaver_names",
    "interleaver_specs",
    "build_interleaver",
    "resolve_interleaver",
    "register_demapper",
    "unregister_demapper",
    "get_demapper",
    "demapper_names",
    "demapper_specs",
]
