"""Coded pipeline stages: the channel-coding chain as components.

Registers the six stages that turn the canonical OFDM receive chain
into a coded link (``repro.pipelines.CODED_OFDM_CHAIN``)::

    source -> encode -> interleave -> modulate -> ifft -> channel ->
    transform -> equalize -> soft-demodulate -> deinterleave ->
    decode -> coded-metrics

Each OFDM symbol carries one terminated code block: the ``source``
stage draws ``BlockGeometry.info_bits`` payload bits per symbol,
``encode`` expands every row to the symbol's coded capacity
(termination tail, puncturing, zero pad — all vectorised over the
burst), and ``decode`` runs the whole burst through the vectorised
Viterbi trellis in one batched pass (``DecodeStage(reference=True)``
swaps in the per-step oracle).  ``coded-metrics`` extends the plain
metrics stage with coded/uncoded BER and per-block FER, so one result
carries both ends of the coding gain.

Stage contract, context fields and registration mirror
:mod:`repro.pipelines.stages`.
"""

from __future__ import annotations

import numpy as np

from ..pipelines.registry import StageSpec, register_stage
from ..pipelines.stages import MetricsStage, PipelineContext, Stage
from .demap import get_demapper

__all__ = [
    "EncodeStage",
    "InterleaveStage",
    "SoftDemodulateStage",
    "DeinterleaveStage",
    "DecodeStage",
    "CodedMetricsStage",
]


def _require_code(ctx: PipelineContext, stage: str):
    if ctx.code is None or ctx.code_geometry is None:
        raise ValueError(
            f"the {stage!r} stage needs a coded pipeline "
            f"(pass code= / code_rate= to repro.pipeline, or use a "
            f"coded scenario preset)"
        )
    return ctx.code


class EncodeStage(Stage):
    """Terminated convolutional encode of each symbol's payload row.

    ``(symbols, info_bits)`` in, ``(symbols, coded capacity)`` out:
    termination tail, puncturing and zero pad applied to the whole
    burst in one vectorised pass.
    """

    def run(self, ctx: PipelineContext, data):
        code = _require_code(ctx, "encode")
        bits = np.asarray(data, dtype=np.uint8)
        if ctx.tx_info_bits is None:
            ctx.tx_info_bits = bits
        coded = code.encode(bits, capacity=ctx.bits_per_symbol)
        ctx.coded_bits = coded
        return coded


class InterleaveStage(Stage):
    """Permute each coded symbol payload into air order."""

    def run(self, ctx: PipelineContext, data):
        _require_code(ctx, "interleave")
        air = ctx.interleaver.interleave(np.asarray(data))
        ctx.tx_bits = air
        return air


class SoftDemodulateStage(Stage):
    """Max-log LLR demap of equalised subcarriers (air bit order).

    The demapper resolves from the chain's constellation scheme through
    the demapper registry unless the pipeline installed an override on
    the context; an unregistered scheme raises ``UnknownNameError``
    with the menu.
    """

    def __init__(self, noise_var: float = None):
        self.noise_var = noise_var

    def run(self, ctx: PipelineContext, data):
        demapper = ctx.demapper or get_demapper(ctx.constellation.name)
        return demapper.llrs(np.asarray(data, dtype=complex),
                             noise_var=self.noise_var)


class DeinterleaveStage(Stage):
    """Invert the air permutation on the LLR matrix."""

    def run(self, ctx: PipelineContext, data):
        _require_code(ctx, "deinterleave")
        llrs = ctx.interleaver.deinterleave(np.asarray(data))
        ctx.llrs = llrs
        return llrs


class DecodeStage(Stage):
    """Viterbi-decode every symbol's code block in one batched pass.

    ``reference=True`` routes through the per-step oracle decoder (the
    readable specification) instead of the vectorised trellis — the two
    are bit-identical, so swapping is purely a speed choice.
    """

    def __init__(self, reference: bool = False):
        self.reference = reference

    def run(self, ctx: PipelineContext, data):
        code = _require_code(ctx, "decode")
        geometry = ctx.code_geometry
        llrs = np.asarray(data, dtype=np.float64)
        info = code.decode(llrs[..., :geometry.coded_bits],
                           reference=self.reference)
        info = np.asarray(info, dtype=np.uint8)
        ctx.rx_info_bits = info
        return info


class CodedMetricsStage(MetricsStage):
    """Plain metrics plus the coded link's quality figures.

    Adds to the base stage's EVM/cycle/overflow accounting:

    * ``coded_ber`` (also mirrored into ``ber`` — the link's payload
      error rate) with ``bit_errors`` / ``total_bits`` over info bits;
    * ``uncoded_ber`` — hard decisions straight off the LLR signs
      against the transmitted coded bits, i.e. the raw channel the
      decoder had to clean up;
    * ``fer`` / ``frame_errors`` — per code block (one per OFDM
      symbol);
    * the code geometry (``code``, ``code_rate``, ``info_bits_per_
      symbol``, ``coded_bits_per_symbol``, ``pad_bits``).
    """

    def run(self, ctx: PipelineContext, data):
        data = super().run(ctx, data)
        metrics = ctx.metrics
        code = ctx.code
        if code is not None:
            geometry = ctx.code_geometry
            metrics["code"] = code.name
            metrics["code_rate"] = code.rate
            metrics["info_bits_per_symbol"] = geometry.info_bits
            metrics["coded_bits_per_symbol"] = geometry.coded_bits
            metrics["pad_bits"] = geometry.pad_bits
        if ctx.tx_info_bits is not None and ctx.rx_info_bits is not None:
            wrong = ctx.tx_info_bits != ctx.rx_info_bits
            errors = int(np.sum(wrong))
            total = int(ctx.tx_info_bits.size)
            metrics["bit_errors"] = errors
            metrics["total_bits"] = total
            metrics["coded_ber"] = errors / total if total else 0.0
            metrics["ber"] = metrics["coded_ber"]
            frames = int(np.sum(np.any(wrong, axis=-1)))
            metrics["frame_errors"] = frames
            metrics["fer"] = (
                frames / len(wrong) if len(wrong) else 0.0
            )
        if ctx.llrs is not None and ctx.coded_bits is not None:
            hard = (np.asarray(ctx.llrs) < 0).astype(np.uint8)
            raw = int(np.sum(hard != ctx.coded_bits))
            metrics["uncoded_bit_errors"] = raw
            metrics["uncoded_ber"] = (
                raw / ctx.coded_bits.size if ctx.coded_bits.size else 0.0
            )
        return data


def _register_builtin_stages() -> None:
    specs = [
        StageSpec(
            name="encode", factory=EncodeStage,
            consumes="bits", produces="bits",
            description="terminated convolutional encode + puncture + pad",
        ),
        StageSpec(
            name="interleave", factory=InterleaveStage,
            consumes="bits", produces="bits",
            description="per-symbol bit interleaving into air order",
        ),
        StageSpec(
            name="soft-demodulate", factory=SoftDemodulateStage,
            consumes="spectrum", produces="llrs",
            description="max-log per-bit LLR demapping",
        ),
        StageSpec(
            name="deinterleave", factory=DeinterleaveStage,
            consumes="llrs", produces="llrs",
            description="invert the air permutation on LLRs",
        ),
        StageSpec(
            name="decode", factory=DecodeStage,
            consumes="llrs", produces="bits",
            description="batched vectorised Viterbi decode",
        ),
        StageSpec(
            name="coded-metrics", factory=CodedMetricsStage,
            consumes="any", produces="same",
            description="coded/uncoded BER + FER + base metrics",
        ),
    ]
    for spec in specs:
        register_stage(spec, replace=True)


_register_builtin_stages()
