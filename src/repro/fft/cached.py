"""Baas-style cached FFT (the epoch decomposition the paper builds on).

Reference [12] of the paper splits an N-point FFT into two epochs of
``sqrt(N)``-point FFTs so that the processor-memory traffic drops to one
exchange between epochs.  This module implements that decomposition at the
algorithm level (four-step / transpose form):

    X[k1 + P*k2] = sum_l W_Q^{l k2} * ( W_N^{l k1} *
                     sum_m x[Q*m + l] W_P^{m k1} )

with ``N = P*Q``.  The inner FFTs may be computed by any P-point engine;
by default the radix-2 DIT reference is used.  The array FFT of
:mod:`repro.core` plugs its modular engine into exactly this skeleton.
"""

from __future__ import annotations

import numpy as np

from ..addressing.epoch import EpochSplit, split_epochs
from .reference import fft_dit

__all__ = ["cached_fft", "epoch0_groups", "epoch1_groups", "prerotation_weights"]


def epoch0_groups(x: np.ndarray, split: EpochSplit):
    """Yield ``(l, group)`` pairs for epoch 0: group l = x[l::Q]."""
    for l in range(split.Q):
        yield l, x[l::split.Q]


def epoch1_groups(z: np.ndarray, split: EpochSplit):
    """Yield ``(s, group)`` pairs for epoch 1 from the scratch layout
    ``z[s*Q + l]`` produced by the epoch-0 dump."""
    for s in range(split.P):
        yield s, z[s * split.Q:(s + 1) * split.Q]


def prerotation_weights(split: EpochSplit, s: int) -> np.ndarray:
    """Pre-rotation weights ``W_N^{s l}`` for all groups l of output bin s."""
    l = np.arange(split.Q)
    return np.exp(-2j * np.pi * ((s * l) % split.N) / split.N)


def cached_fft(x, inner_fft=fft_dit, split: EpochSplit = None) -> np.ndarray:
    """Two-epoch cached FFT returning the natural-order spectrum.

    Parameters
    ----------
    x:
        Input vector, length a power of two >= 4.
    inner_fft:
        Engine used for the P- and Q-point group FFTs (natural order in
        and out).  Defaults to the radix-2 DIT reference.
    split:
        Optional explicit epoch split; defaults to the paper's
        ``0 <= p - q <= 1`` rule.
    """
    x = np.asarray(x, dtype=complex)
    if split is None:
        split = split_epochs(len(x))
    if split.N != len(x):
        raise ValueError(
            f"split is for N={split.N} but input has {len(x)} points"
        )
    P, Q, N = split.P, split.Q, split.N
    z = np.empty(N, dtype=complex)
    for l, group in epoch0_groups(x, split):
        spectrum = inner_fft(group)
        s = np.arange(P)
        weights = np.exp(-2j * np.pi * ((s * l) % N) / N)
        z[s * Q + l] = spectrum * weights
    out = np.empty(N, dtype=complex)
    for s, group in epoch1_groups(z, split):
        spectrum = inner_fft(group)
        out[s + P * np.arange(Q)] = spectrum
    return out
