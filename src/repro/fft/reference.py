"""Reference FFT algorithms: naive DFT and radix-2 Cooley-Tukey variants.

These are the textbook algorithms the paper's array structure is derived
from (Section II opens with the standard CT-FFT and its ``N log2 N``
load/store cost).  They serve three roles in the reproduction:

1. ground truth for the array FFT and the ASIP simulation,
2. the algorithm executed by the *standard software* baseline
   (implementation 1 of Table II), and
3. operand of the per-stage operator decomposition used by the matrix
   proof.
"""

from __future__ import annotations

import numpy as np

from ..addressing.bitops import bit_width_of
from .twiddle import bit_reversed_indices, twiddles

__all__ = [
    "naive_dft",
    "fft_dit",
    "fft_dif",
    "ifft",
    "dif_stage",
    "dit_stage",
    "load_store_count",
]


def naive_dft(x) -> np.ndarray:
    """O(N^2) direct DFT — the unambiguous ground truth."""
    x = np.asarray(x, dtype=complex)
    n = len(x)
    k = np.arange(n)
    return np.exp(-2j * np.pi * np.outer(k, k) / n) @ x


def fft_dit(x) -> np.ndarray:
    """Radix-2 decimation-in-time FFT (bit-reversed load, natural output)."""
    x = np.asarray(x, dtype=complex)
    n = len(x)
    stages = bit_width_of(n)
    data = x[bit_reversed_indices(n)].copy()
    for j in range(1, stages + 1):
        data = dit_stage(data, j)
    return data


def fft_dif(x) -> np.ndarray:
    """Radix-2 decimation-in-frequency FFT (natural load, bit-reversed
    intermediate, natural output after the final reorder)."""
    x = np.asarray(x, dtype=complex)
    n = len(x)
    stages = bit_width_of(n)
    data = x.copy()
    for j in range(1, stages + 1):
        data = dif_stage(data, j)
    return data[bit_reversed_indices(n)]


def ifft(x) -> np.ndarray:
    """Inverse FFT via conjugation (OFDM transmitters use the IFFT)."""
    x = np.asarray(x, dtype=complex)
    return np.conj(fft_dit(np.conj(x))) / len(x)


def dit_stage(data: np.ndarray, stage: int) -> np.ndarray:
    """One in-place DIT stage (1-origin) on a bit-reversed-loaded array.

    Stage ``j`` works on blocks of ``2**j``; the butterfly multiplies the
    second input by the twiddle before the add/subtract.
    """
    data = np.array(data, dtype=complex)
    n = len(data)
    stages = bit_width_of(n)
    if not (1 <= stage <= stages):
        raise ValueError(f"stage must be in [1, {stages}], got {stage}")
    block = 1 << stage
    half = block >> 1
    tw = twiddles(n)
    stride = n >> stage  # twiddle index step within a block
    for base in range(0, n, block):
        for t in range(half):
            a = data[base + t]
            b = data[base + t + half] * tw[t * stride]
            data[base + t] = a + b
            data[base + t + half] = a - b
    return data


def dif_stage(data: np.ndarray, stage: int) -> np.ndarray:
    """One in-place DIF stage (1-origin) on a natural-order array.

    Stage ``j`` works on blocks of ``N/2**(j-1)``; the twiddle multiplies
    the difference after the subtract.
    """
    data = np.array(data, dtype=complex)
    n = len(data)
    stages = bit_width_of(n)
    if not (1 <= stage <= stages):
        raise ValueError(f"stage must be in [1, {stages}], got {stage}")
    block = n >> (stage - 1)
    half = block >> 1
    tw = twiddles(n)
    stride = 1 << (stage - 1)
    for base in range(0, n, block):
        for t in range(half):
            a = data[base + t]
            b = data[base + t + half]
            data[base + t] = a + b
            data[base + t + half] = (a - b) * tw[t * stride]
    return data


def load_store_count(n_points: int) -> int:
    """The standard CT-FFT's total loads+stores: ``2 * N * log2(N)``.

    The paper quotes "a total of N * log2 N loads and stores" per kind;
    this helper returns the combined count used in the motivation
    discussion.
    """
    return 2 * n_points * bit_width_of(n_points)
