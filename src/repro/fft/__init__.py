"""Reference FFT algorithms and the cached-FFT epoch skeleton."""

from .cached import cached_fft, prerotation_weights
from .reference import (
    dif_stage,
    dit_stage,
    fft_dif,
    fft_dit,
    ifft,
    load_store_count,
    naive_dft,
)
from .twiddle import bit_reversed_indices, twiddle, twiddles

__all__ = [
    "naive_dft",
    "fft_dit",
    "fft_dif",
    "ifft",
    "dit_stage",
    "dif_stage",
    "load_store_count",
    "cached_fft",
    "prerotation_weights",
    "twiddles",
    "twiddle",
    "bit_reversed_indices",
]
