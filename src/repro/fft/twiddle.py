"""Twiddle-factor generation shared by all FFT implementations."""

from __future__ import annotations

import numpy as np

from ..addressing.bitops import bit_width_of

__all__ = ["twiddles", "twiddle", "bit_reversed_indices"]


def twiddles(n_points: int, count: int = None) -> np.ndarray:
    """Forward twiddles ``W_N^k = exp(-2 pi j k / N)`` for k = 0..count-1.

    ``count`` defaults to ``N/2``, the set used by a radix-2 FFT.
    """
    bit_width_of(n_points)
    if count is None:
        count = n_points // 2
    k = np.arange(count)
    return np.exp(-2j * np.pi * k / n_points)


def twiddle(n_points: int, exponent: int) -> complex:
    """Single forward twiddle ``W_N^exponent`` (exponent reduced mod N)."""
    bit_width_of(n_points)
    return complex(np.exp(-2j * np.pi * (exponent % n_points) / n_points))


def bit_reversed_indices(n_points: int) -> np.ndarray:
    """Index vector ``r`` with ``r[k]`` = bit-reverse of ``k``."""
    width = bit_width_of(n_points)
    out = np.zeros(n_points, dtype=np.int64)
    for k in range(n_points):
        v = k
        r = 0
        for _ in range(width):
            r = (r << 1) | (v & 1)
            v >>= 1
        out[k] = r
    return out
