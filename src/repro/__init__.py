"""repro — reproduction of the DATE'09 array-FFT ASIP (Guan, Lin, Fei).

The one front door is :func:`repro.engine`:

    >>> import repro
    >>> with repro.engine(1024, backend="asip-batch") as eng:
    ...     result = eng.transform_many(blocks)

It returns an :class:`~repro.engines.Engine` whose uniform calls
(``transform``, ``transform_many``, ``inverse``, ``inverse_many``,
``stream``) all yield :class:`~repro.engines.TransformResult` objects,
whatever backend runs underneath.  Backends plug in through
:mod:`repro.core.registry`.

Public API layers underneath the facade:

* :mod:`repro.core`       — the array-structured FFT (the contribution);
* :mod:`repro.addressing` — the address-changing and coefficient rules;
* :mod:`repro.fft`        — reference FFTs and the cached-FFT skeleton;
* :mod:`repro.isa`        — the PISA-like ISA with BUT4/LDIN/STOUT;
* :mod:`repro.sim`        — the instruction-set simulator substrate;
* :mod:`repro.asip`       — the FFT ASIP (code generator + machine);
* :mod:`repro.baselines`  — Table II comparison implementations;
* :mod:`repro.hw`         — gate-count / power / timing cost models;
* :mod:`repro.analysis`   — tables, sweeps and verification helpers.
"""

from .core import ArrayFFT, array_fft
from .core.registry import BackendSpec, register_backend
from .engines import (
    Engine,
    TransformResult,
    backend_names,
    backend_specs,
    engine,
)

__version__ = "2.0.0"

__all__ = [
    "engine",
    "Engine",
    "TransformResult",
    "BackendSpec",
    "register_backend",
    "backend_names",
    "backend_specs",
    "ArrayFFT",
    "array_fft",
    "__version__",
]
