"""repro — reproduction of the DATE'09 array-FFT ASIP (Guan, Lin, Fei).

Public API layers:

* :mod:`repro.core`       — the array-structured FFT (the contribution);
* :mod:`repro.addressing` — the address-changing and coefficient rules;
* :mod:`repro.fft`        — reference FFTs and the cached-FFT skeleton;
* :mod:`repro.isa`        — the PISA-like ISA with BUT4/LDIN/STOUT;
* :mod:`repro.sim`        — the instruction-set simulator substrate;
* :mod:`repro.asip`       — the FFT ASIP (code generator + machine);
* :mod:`repro.baselines`  — Table II comparison implementations;
* :mod:`repro.hw`         — gate-count / power / timing cost models;
* :mod:`repro.analysis`   — tables, sweeps and verification helpers.
"""

from .core import ArrayFFT, array_fft

__version__ = "1.0.0"

__all__ = ["ArrayFFT", "array_fft", "__version__"]
