"""repro — reproduction of the DATE'09 array-FFT ASIP (Guan, Lin, Fei).

Three front doors, one facade:

* :func:`repro.engine` — a uniform transform engine on any registered
  backend::

      >>> import repro
      >>> with repro.engine(1024, backend="asip-batch") as eng:
      ...     result = eng.transform_many(blocks)

* :func:`repro.pipeline` — a declarative stage graph (source ->
  modulate -> channel -> transform -> equalize -> demodulate ->
  metrics) executing batched through one engine; scenario presets
  resolve to these::

      >>> repro.run_scenario("uwb-ofdm", backend="asip-batch").ber

* :func:`repro.session` — a queue-fed streaming session with explicit
  lifecycle (feed/drain/flush/close) and bounded-buffer backpressure::

      >>> with repro.session(1024, backend="asip-batch") as sess:
      ...     sess.feed(block)
      ...     chunks = sess.drain()   # TransformResult per chunk

Everything resolves through open registries — engine backends
(:mod:`repro.core.registry`), pipeline stages
(:mod:`repro.pipelines.registry`), scenarios (:mod:`repro.scenarios`) —
so new implementations and workloads plug in by name without touching
call sites.

Public API layers underneath the facade:

* :mod:`repro.core`       — the array-structured FFT (the contribution);
* :mod:`repro.coding`     — the channel-coding layer (convolutional
  codec, interleavers, soft demappers, Viterbi) behind the coded
  scenario presets;
* :mod:`repro.addressing` — the address-changing and coefficient rules;
* :mod:`repro.fft`        — reference FFTs and the cached-FFT skeleton;
* :mod:`repro.isa`        — the PISA-like ISA with BUT4/LDIN/STOUT;
* :mod:`repro.sim`        — the instruction-set simulator substrate;
* :mod:`repro.asip`       — the FFT ASIP (code generator + machine);
* :mod:`repro.baselines`  — Table II comparison implementations;
* :mod:`repro.hw`         — gate-count / power / timing cost models;
* :mod:`repro.analysis`   — tables, sweeps and verification helpers;
* :mod:`repro.verify`     — differential co-execution, fault injection
  and seeded fuzzing across all of the above (``python -m repro
  verify``);
* :mod:`repro.serve`      — the supervised multi-tenant serving tier:
  named sessions over a shared engine pool with admission control,
  deadlines and self-healing (``python -m repro serve``);
* :mod:`repro.telemetry`  — unified tracing, metrics and profiling:
  nested spans across every layer above, Chrome trace-event /
  jsonl / console exporters and span-aggregate regression checks
  (``python -m repro trace``, ``--trace`` on run/serve/bench);
* :mod:`repro.uarch`      — the scoreboarded issue-width timing overlay
  over the exact machine: retirement-trace recording, dual-issue /
  blocking-cache re-timing with a guaranteed cycle sandwich, and the
  issue-width design study (``python -m repro uarch --study``).
"""

from .core import ArrayFFT, array_fft
from .core.registry import BackendSpec, UnknownNameError, register_backend
from .engines import (
    Engine,
    TransformResult,
    backend_names,
    backend_specs,
    concat_results,
    engine,
)
from .pipelines import (
    Pipeline,
    PipelineResult,
    StageSpec,
    pipeline,
    register_stage,
    stage_names,
)
from .scenarios import (
    ScenarioSpec,
    build_scenario,
    register_scenario,
    run_scenario,
    scenario_names,
)
from .sessions import (
    SessionBackpressure,
    SessionClosed,
    SessionExecutionTimeout,
    StreamSession,
    session,
)
from .serve import (
    ServeError,
    ServerClosed,
    ServerOverloaded,
    SessionServer,
    TenantFailed,
    UnknownTenant,
)
from . import telemetry
from .uarch import (
    UarchResult,
    UarchSpec,
    get_uarch,
    register_uarch,
    uarch_names,
    uarch_specs,
)

__version__ = "3.5.0"

__all__ = [
    "engine",
    "Engine",
    "TransformResult",
    "concat_results",
    "BackendSpec",
    "UnknownNameError",
    "register_backend",
    "backend_names",
    "backend_specs",
    "pipeline",
    "Pipeline",
    "PipelineResult",
    "StageSpec",
    "register_stage",
    "stage_names",
    "ScenarioSpec",
    "register_scenario",
    "scenario_names",
    "build_scenario",
    "run_scenario",
    "session",
    "StreamSession",
    "SessionBackpressure",
    "SessionClosed",
    "SessionExecutionTimeout",
    "SessionServer",
    "ServeError",
    "ServerClosed",
    "ServerOverloaded",
    "TenantFailed",
    "UnknownTenant",
    "ArrayFFT",
    "array_fft",
    "telemetry",
    "UarchSpec",
    "UarchResult",
    "register_uarch",
    "get_uarch",
    "uarch_names",
    "uarch_specs",
    "__version__",
]
