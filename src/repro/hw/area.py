"""Gate-count model of the custom hardware (paper Section IV).

The paper synthesised VHDL with Synopsys Design Compiler on TSMC 0.18 um
and reports, for the P = 32 (1024-point) configuration:

* BU + AC logic:          17,324 gates
* CRF + coefficient ROM:  15,764 gates
* base PISA core:        ~106,000 gates (including a 32 KB cache)

We cannot run Design Compiler; instead this is a component-level
NAND2-equivalent model whose two free technology constants (multiplier and
adder gate counts) are calibrated so the P = 32 configuration reproduces
the published totals within ~1%.  Everything else (complex-multiply
structure, register/ROM bit costs, AC mux tree) is structural, so the
model *extrapolates* to other P — which is what the scalability ablation
benchmarks exercise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..addressing.bitops import bit_width_of

__all__ = ["TechnologyConstants", "AreaModel", "AreaBreakdown"]


@dataclass(frozen=True)
class TechnologyConstants:
    """NAND2-equivalent gate counts of the leaf components (0.18 um).

    Calibrated against the paper's module totals; see module docstring.
    """

    mult16_gates: int = 1060     # 16x16 Booth multiplier
    add16_gates: int = 100       # 16-bit carry-lookahead adder
    register_bit_gates: float = 6.5   # flop + input mux + read mux share
    rom_bit_gates: float = 4.8   # synthesised coefficient table
    mux_bit_gates: float = 2.0   # 2:1 mux per bit
    counter_bit_gates: float = 8.0


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-module gate counts."""

    butterfly_unit: int
    ac_logic: int
    crf: int
    rom: int

    @property
    def bu_ac(self) -> int:
        """The paper's "BU and AC modules" aggregate."""
        return self.butterfly_unit + self.ac_logic

    @property
    def crf_rom(self) -> int:
        """The paper's "CRF and coefficient ROM" aggregate."""
        return self.crf + self.rom

    @property
    def total(self) -> int:
        """Total custom-hardware gates."""
        return self.bu_ac + self.crf_rom


class AreaModel:
    """Structural gate-count model parameterised by the group size P."""

    #: the paper's base core for context (106K gates with 32 KB cache)
    BASE_CORE_GATES = 106_000
    WORD_BITS = 32  # packed complex point: 16-bit re + 16-bit im

    def __init__(self, group_size: int = 32,
                 tech: TechnologyConstants = None, bu_lanes: int = 4):
        bit_width_of(group_size)
        self.group_size = group_size
        self.tech = tech or TechnologyConstants()
        self.bu_lanes = bu_lanes

    def butterfly_gates(self) -> int:
        """One radix-2 butterfly: 3-multiplier complex product + combine.

        ``(a + jb)(c + jd)`` via Karatsuba: 3 multiplies, 5 adds; then 4
        adds/subtracts form the sum and difference outputs.
        """
        t = self.tech
        complex_mult = 3 * t.mult16_gates + 5 * t.add16_gates
        combine = 4 * t.add16_gates
        return complex_mult + combine

    def bu_gates(self) -> int:
        """The 4-lane (8-point) Basic Unit."""
        return self.bu_lanes * self.butterfly_gates()

    def ac_gates(self) -> int:
        """Address-changing logic: switch network + stage/module decode.

        Per stage-selectable bit switch: a 2:1 mux layer across the
        2*log2(P)-bit address pairs of 8 read ports; plus the coefficient
        stride shifter and two small counters.
        """
        t = self.tech
        p = bit_width_of(self.group_size)
        read_port_muxes = 8 * p * p * t.mux_bit_gates
        coefficient_logic = p * 16 * t.mux_bit_gates
        counters = 2 * 8 * t.counter_bit_gates
        control = 300
        return int(read_port_muxes + coefficient_logic + counters + control)

    def crf_gates(self) -> int:
        """Double-banked P-entry register file of packed complex words."""
        bits = 2 * self.group_size * self.WORD_BITS
        return int(bits * self.tech.register_bit_gates)

    def rom_gates(self) -> int:
        """P/2-entry coefficient ROM."""
        bits = (self.group_size // 2) * self.WORD_BITS
        return int(bits * self.tech.rom_bit_gates)

    def breakdown(self) -> AreaBreakdown:
        """Full per-module gate counts."""
        return AreaBreakdown(
            butterfly_unit=self.bu_gates(),
            ac_logic=self.ac_gates(),
            crf=self.crf_gates(),
            rom=self.rom_gates(),
        )

    def overhead_fraction(self) -> float:
        """Custom hardware as a fraction of the base core (paper: ~31%,
        described as 'negligible'/'acceptable' accelerator cost)."""
        return self.breakdown().total / self.BASE_CORE_GATES
