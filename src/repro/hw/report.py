"""One-call hardware cost report (the Section IV paragraph as data)."""

from __future__ import annotations

from dataclasses import dataclass

from .area import AreaBreakdown, AreaModel
from .power import PowerBreakdown, PowerModel
from .timing import TimingModel

__all__ = ["HardwareReport", "hardware_report", "PAPER_HW"]

#: the paper's published hardware numbers (P = 32 configuration)
PAPER_HW = {
    "bu_ac_gates": 17_324,
    "crf_rom_gates": 15_764,
    "total_gates": 33_000,
    "base_core_gates": 106_000,
    "bu_critical_path_ns": 3.2,
    "clock_mhz": 300.0,
    "bu_ac_power_mw": 17.68,
}


@dataclass(frozen=True)
class HardwareReport:
    """Area, power and timing of one custom-hardware configuration."""

    group_size: int
    area: AreaBreakdown
    power: PowerBreakdown
    bu_critical_path_ns: float
    max_clock_mhz: float
    overhead_fraction: float

    def rows(self) -> list:
        """(metric, modelled, paper) triples for table rendering."""
        return [
            ("BU + AC gates", self.area.bu_ac, PAPER_HW["bu_ac_gates"]),
            ("CRF + ROM gates", self.area.crf_rom,
             PAPER_HW["crf_rom_gates"]),
            ("Total custom gates", self.area.total,
             PAPER_HW["total_gates"]),
            ("BU critical path (ns)", round(self.bu_critical_path_ns, 2),
             PAPER_HW["bu_critical_path_ns"]),
            ("Max clock (MHz)", round(self.max_clock_mhz),
             PAPER_HW["clock_mhz"]),
            ("BU + AC power (mW)", round(self.power.bu_ac, 2),
             PAPER_HW["bu_ac_power_mw"]),
        ]


def hardware_report(group_size: int = 32,
                    clock_mhz: float = 300.0) -> HardwareReport:
    """Build the full hardware cost report for one configuration."""
    area_model = AreaModel(group_size)
    timing = TimingModel(group_size)
    power = PowerModel(area_model, clock_mhz=clock_mhz)
    return HardwareReport(
        group_size=group_size,
        area=area_model.breakdown(),
        power=power.breakdown(),
        bu_critical_path_ns=timing.bu_critical_path_ns(),
        max_clock_mhz=timing.max_clock_mhz(),
        overhead_fraction=area_model.overhead_fraction(),
    )
