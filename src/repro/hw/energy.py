"""Energy-per-transform: the composite metric behind 'energy-efficient'.

The paper argues ASIPs beat wide-issue DSPs on energy (the TI core's
256-bit instructions are "not energy-efficient for domain-specific
applications").  Combining the calibrated power model with measured cycle
counts gives energy per FFT — the figure of merit a battery-powered
OFDM receiver actually optimises.
"""

from __future__ import annotations

from dataclasses import dataclass

from .area import AreaModel
from .power import PowerModel

__all__ = ["EnergyReport", "energy_per_fft_nj"]


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting for one transform."""

    n_points: int
    cycles: int
    power_mw: float
    clock_mhz: float

    @property
    def time_us(self) -> float:
        """Transform latency in microseconds."""
        return self.cycles / self.clock_mhz

    @property
    def energy_nj(self) -> float:
        """Custom-hardware energy for one transform in nanojoules."""
        return self.power_mw * self.time_us

    @property
    def nj_per_point(self) -> float:
        """Energy per transformed sample point."""
        return self.energy_nj / self.n_points


def energy_per_fft_nj(n_points: int, cycles: int, group_size: int = 32,
                      clock_mhz: float = 300.0) -> EnergyReport:
    """Build the energy report from a measured cycle count.

    Uses the full custom-hardware power (BU + AC + CRF + ROM) at the
    configured clock; the base core's power is outside the paper's
    reported scope and excluded consistently.
    """
    if cycles <= 0:
        raise ValueError("cycle count must be positive")
    power = PowerModel(
        AreaModel(group_size), clock_mhz=clock_mhz
    ).breakdown()
    return EnergyReport(
        n_points=n_points,
        cycles=cycles,
        power_mw=power.total,
        clock_mhz=clock_mhz,
    )
