"""Critical-path / clock-frequency model (paper Section IV).

The paper reports a 3.2 ns BU critical path on TSMC 0.18 um ("the
processor can work at a clock speed of up to 300 MHz") and a negligible
AC path.  The BU path is structural: one 16-bit multiply, two adder
levels (complex-product combine, then butterfly add/sub), and the output
mux; the leaf delays are the calibrated technology constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..addressing.bitops import bit_width_of

__all__ = ["DelayConstants", "TimingModel"]


@dataclass(frozen=True)
class DelayConstants:
    """Leaf-component delays in ns (TSMC 0.18 um class)."""

    mult16_ns: float = 2.2
    add16_ns: float = 0.4
    mux_ns: float = 0.2
    register_setup_ns: float = 0.15
    switch_level_ns: float = 0.12  # one AC mux level


class TimingModel:
    """Critical-path estimates for the custom modules."""

    def __init__(self, group_size: int = 32, delays: DelayConstants = None):
        bit_width_of(group_size)
        self.group_size = group_size
        self.delays = delays or DelayConstants()

    def bu_critical_path_ns(self) -> float:
        """Multiplier -> two adder levels -> output mux (paper: 3.2 ns)."""
        d = self.delays
        return d.mult16_ns + 2 * d.add16_ns + d.mux_ns

    def ac_critical_path_ns(self) -> float:
        """The AC switch tree: log2(P) mux levels (paper: negligible)."""
        levels = bit_width_of(self.group_size)
        return levels * self.delays.switch_level_ns

    def critical_path_ns(self) -> float:
        """Clock-limiting path across the custom hardware."""
        return max(
            self.bu_critical_path_ns(),
            self.ac_critical_path_ns() + self.delays.register_setup_ns,
        )

    def max_clock_mhz(self) -> float:
        """Maximum clock implied by the critical path."""
        return 1000.0 / self.critical_path_ns()
