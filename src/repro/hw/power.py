"""Dynamic power model (paper Section IV: BU + AC draw 17.68 mW @300 MHz).

Classic activity-weighted gate model: ``P = k * gates * activity * f``
with one technology constant ``k`` (nW per gate per MHz at 1.8 V)
calibrated so the P = 32 BU+AC configuration reproduces the published
17.68 mW.  Storage modules get a lower activity factor (only a handful of
entries toggle per cycle), which is why the paper can omit them.
"""

from __future__ import annotations

from dataclasses import dataclass

from .area import AreaModel

__all__ = ["PowerConstants", "PowerModel", "PowerBreakdown"]


@dataclass(frozen=True)
class PowerConstants:
    """Calibrated power coefficients."""

    nw_per_gate_mhz: float = 4.38  # dynamic, at 1.8 V / 0.18 um
    compute_activity: float = 0.80  # BU datapath toggles almost fully
    control_activity: float = 0.40  # AC logic
    storage_activity: float = 0.08  # CRF/ROM: few entries active per cycle


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-module dynamic power in mW."""

    butterfly_unit: float
    ac_logic: float
    crf: float
    rom: float

    @property
    def bu_ac(self) -> float:
        """The paper's reported aggregate."""
        return self.butterfly_unit + self.ac_logic

    @property
    def total(self) -> float:
        """All custom hardware."""
        return self.bu_ac + self.crf + self.rom


class PowerModel:
    """Activity-weighted dynamic power for the custom hardware."""

    def __init__(self, area: AreaModel = None,
                 constants: PowerConstants = None,
                 clock_mhz: float = 300.0):
        self.area = area or AreaModel()
        self.constants = constants or PowerConstants()
        self.clock_mhz = clock_mhz

    def _mw(self, gates: int, activity: float) -> float:
        k = self.constants.nw_per_gate_mhz
        return gates * activity * k * self.clock_mhz * 1e-6

    def breakdown(self) -> PowerBreakdown:
        """Per-module power at the configured clock."""
        c = self.constants
        a = self.area.breakdown()
        return PowerBreakdown(
            butterfly_unit=self._mw(a.butterfly_unit, c.compute_activity),
            ac_logic=self._mw(a.ac_logic, c.control_activity),
            crf=self._mw(a.crf, c.storage_activity),
            rom=self._mw(a.rom, c.storage_activity),
        )
