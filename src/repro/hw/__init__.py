"""Hardware cost models: gate count, power, critical path."""

from .area import AreaBreakdown, AreaModel, TechnologyConstants
from .energy import EnergyReport, energy_per_fft_nj
from .power import PowerBreakdown, PowerConstants, PowerModel
from .report import PAPER_HW, HardwareReport, hardware_report
from .timing import DelayConstants, TimingModel

__all__ = [
    "AreaModel",
    "AreaBreakdown",
    "TechnologyConstants",
    "PowerModel",
    "PowerBreakdown",
    "PowerConstants",
    "TimingModel",
    "DelayConstants",
    "HardwareReport",
    "hardware_report",
    "PAPER_HW",
    "EnergyReport",
    "energy_per_fft_nj",
]
