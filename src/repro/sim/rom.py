"""On-chip coefficient ROM for the intra-epoch twiddles.

Holds ``W_P^k`` for ``k = 0 .. P/2 - 1`` (Section II-C).  When the ASIP
serves two epochs with different group sizes (P and Q), the ROM is built
for the larger size P and the Q-point epoch indexes it with a stride of
``P/Q`` — exploiting ``W_Q^k = W_P^{k P/Q}`` so no second ROM is needed.
"""

from __future__ import annotations

import numpy as np

from ..addressing.bitops import bit_width_of
from ..addressing.coefficients import rom_table
from ..core.fixed_point import quantize_array

__all__ = ["CoefficientROM"]


class CoefficientROM:
    """Read-only twiddle store with access counting."""

    def __init__(self, points: int):
        bit_width_of(points)
        self.points = points
        self._table = rom_table(points)
        self._fixed = None  # lazily quantised (re, im) component tables
        self.reads = 0

    def __len__(self) -> int:
        return len(self._table)

    def read(self, address: int) -> complex:
        """Read ``W_P^address``."""
        if not (0 <= address < len(self._table)):
            raise IndexError(
                f"ROM address {address} out of range [0, {len(self._table)})"
            )
        self.reads += 1
        return complex(self._table[address])

    def read_for_size(self, address: int, group_points: int) -> complex:
        """Read a twiddle of a smaller FFT size via stride addressing.

        ``W_group^address == W_P^{address * (P / group)}``.
        """
        if group_points > self.points:
            raise ValueError(
                f"group size {group_points} exceeds ROM size {self.points}"
            )
        stride = self.points // group_points
        return self.read(address * stride)

    def read_many_for_size(self, addresses: np.ndarray, group_points: int,
                           count: int = None) -> np.ndarray:
        """Gather several stride-addressed twiddles at once.

        Counts one read per address, like repeated :meth:`read_for_size`
        calls; ``count`` overrides the tally for batched execution, where
        one gather serves ``n_symbols * len(addresses)`` architectural
        reads.
        """
        if group_points > self.points:
            raise ValueError(
                f"group size {group_points} exceeds ROM size {self.points}"
            )
        stride = self.points // group_points
        self.reads += len(addresses) if count is None else count
        return self._table[addresses * stride]

    def read_many_fixed_for_size(self, addresses: np.ndarray,
                                 group_points: int,
                                 count: int = None) -> tuple:
        """Gather stride-addressed twiddles as Q1.15 ``(re, im)`` columns.

        Component ``k`` equals ``quantize(read_for_size(addresses[k]))``
        exactly — the value the scalar Q1.15 BUT4 path feeds the BU.
        """
        if group_points > self.points:
            raise ValueError(
                f"group size {group_points} exceeds ROM size {self.points}"
            )
        if self._fixed is None:
            self._fixed = quantize_array(self._table)
        stride = self.points // group_points
        self.reads += len(addresses) if count is None else count
        indices = addresses * stride
        return self._fixed[0][indices], self._fixed[1][indices]

    def as_array(self) -> np.ndarray:
        """Copy of the full table (for verification)."""
        return self._table.copy()
