"""Pipeline timing model for the 5-stage in-order base core.

The simulator is functionally exact and *timing-approximate*: every
instruction issues in one cycle, with added cycles for the classic
in-order hazards — taken-branch redirect, load-use interlock, multi-cycle
multiply — plus the data-cache latency returned by the cache model.  This
is the same modelling level as SimpleScalar's sim-cache/sim-profile flows
the paper used, and it is what makes the cycle counts respond to the
things the paper's design changes: instruction count, loads/stores, and
cache misses.

Named parameter presets (``base-300mhz``, ``no-interlock``, ...) live in
the uarch config registry — :func:`pipeline_preset` resolves one by
name, and :func:`repro.uarch.register_uarch` adds new ones — while this
frozen dataclass stays the single source of timing truth for both the
oracle and the :mod:`repro.uarch` overlay.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PipelineConfig", "pipeline_preset"]


@dataclass(frozen=True)
class PipelineConfig:
    """Timing parameters of the base core.

    Defaults model a single-issue 5-stage RISC at 300 MHz: 2-cycle taken
    branch redirect (resolve in EX), 1-cycle load-use interlock, 2-cycle
    pipelined multiplier, single-cycle BU (its 3.2 ns critical path is the
    clock-limiting stage, Section IV).
    """

    branch_penalty: int = 2
    load_use_stall: int = 1
    mul_extra: int = 1
    but4_latency: int = 1
    custom_mem_latency: int = 1

    def __post_init__(self):
        for name in ("branch_penalty", "load_use_stall", "mul_extra",
                     "but4_latency", "custom_mem_latency"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


def pipeline_preset(name: str) -> PipelineConfig:
    """The :class:`PipelineConfig` of a registered uarch preset.

    Resolves through the :mod:`repro.uarch` config registry (imported
    lazily — the registry depends on this module, not vice versa), so
    ``pipeline_preset("no-interlock")`` and any user-registered configs
    work without constructing parameter sets by hand.  Unknown names
    raise :class:`~repro.core.registry.UnknownNameError` with the
    sorted menu.
    """
    from ..uarch.model import get_uarch

    return get_uarch(name).pipeline
