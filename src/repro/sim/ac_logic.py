"""Address-Changing (AC) logic — the decoder-side address generator.

Section III's key architectural point: BUT4 carries only (module, stage)
operands and *all* register-file and ROM addresses are produced by
combinational logic in the decoder.  This module is that logic.  It is a
thin, stateless wrapper over the addressing rules, organised exactly as
the hardware consumes them: per BUT4 op, 8 CRF read addresses, 4 ROM
addresses, and 8 CRF write addresses (natural positions of the ping-pong
output column).

The generator is sized by the epoch's group size at `configure` time —
modelling the stage/epoch configuration registers the real decoder would
latch from the program.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..addressing.bitops import bit_width_of
from ..addressing.coefficients import rom_coefficient_index
from ..addressing.local import stage_input_addresses

__all__ = ["BUAddresses", "AddressChangingLogic"]


@dataclass(frozen=True)
class BUAddresses:
    """All addresses for one BUT4(module, stage) operation."""

    crf_reads_first: tuple    # 4 addresses of the sum-side inputs
    crf_reads_second: tuple   # 4 addresses of the twiddled inputs
    rom_addresses: tuple      # 4 coefficient addresses
    crf_writes_first: tuple   # 4 output positions (sums)
    crf_writes_second: tuple  # 4 output positions (differences)


class AddressChangingLogic:
    """Per-epoch configured AC address generator."""

    LANES = 4

    def __init__(self):
        self._group_size = None
        self._p = None
        self._read_tables = {}
        self._index_cache = {}

    def configure(self, group_size: int) -> None:
        """Latch the group size of the current epoch (P or Q)."""
        self._p = bit_width_of(group_size)
        self._group_size = group_size
        self._read_tables = {
            stage: stage_input_addresses(self._p, stage)
            for stage in range(1, self._p + 1)
        }
        self._index_cache = {}

    @property
    def group_size(self) -> int:
        """Currently configured group size."""
        if self._group_size is None:
            raise RuntimeError("AC logic not configured for an epoch yet")
        return self._group_size

    def modules_per_stage(self) -> int:
        """Number of BUT4 ops per stage (``max(P/8, 1)``)."""
        return max(self.group_size // 8, 1)

    def lanes_for_module(self, module: int) -> int:
        """Butterfly lanes used by ``module`` (4, or fewer for tiny groups)."""
        half = self.group_size // 2
        base = self.LANES * (module - 1)
        return max(0, min(self.LANES, half - base))

    def addresses(self, module: int, stage: int) -> BUAddresses:
        """Generate every address consumed by ``BUT4(module, stage)``.

        ``module`` and ``stage`` are 1-origin, as in the paper.
        """
        size = self.group_size
        half = size // 2
        if not (1 <= stage <= self._p):
            raise ValueError(
                f"stage must be in [1, {self._p}], got {stage}"
            )
        if not (1 <= module <= self.modules_per_stage()):
            raise ValueError(
                f"module must be in [1, {self.modules_per_stage()}], "
                f"got {module}"
            )
        reads = self._read_tables[stage]
        base = self.LANES * (module - 1)
        lanes = self.lanes_for_module(module)
        first_pos = tuple(base + k for k in range(lanes))
        second_pos = tuple(base + half + k for k in range(lanes))
        return BUAddresses(
            crf_reads_first=tuple(reads[m] for m in first_pos),
            crf_reads_second=tuple(reads[m] for m in second_pos),
            rom_addresses=tuple(
                rom_coefficient_index(size, stage, m) for m in first_pos
            ),
            crf_writes_first=first_pos,
            crf_writes_second=second_pos,
        )

    def index_arrays(self, module: int, stage: int) -> tuple:
        """The addresses of ``BUT4(module, stage)`` as cached index arrays.

        Returns ``(reads, rom, writes, lanes)`` where ``reads``/``writes``
        concatenate the first/second halves of :meth:`addresses` into one
        gather/scatter array each.  The tables only depend on (module,
        stage) for a configured epoch, so the whole BUT4 grid is lowered
        once and every later op is a dictionary hit — the vectorised
        counterpart of the decoder's combinational address generation.
        """
        key = (module, stage)
        cached = self._index_cache.get(key)
        if cached is None:
            a = self.addresses(module, stage)
            cached = (
                np.array(a.crf_reads_first + a.crf_reads_second,
                         dtype=np.intp),
                np.array(a.rom_addresses, dtype=np.intp),
                np.array(a.crf_writes_first + a.crf_writes_second,
                         dtype=np.intp),
                len(a.crf_reads_first),
            )
            self._check_indices(cached)
            self._index_cache[key] = cached
        return cached

    @staticmethod
    def _check_indices(arrays: tuple) -> None:
        """One-time guard: gather tables must never contain negatives
        (a negative would silently wrap in the vectorised CRF/ROM
        gathers where the scalar oracle raises)."""
        reads, rom, writes, _ = arrays
        for table in (reads, rom, writes):
            if len(table) and table.min() < 0:
                raise IndexError(
                    f"AC index table contains a negative address: {table}"
                )

    def span_arrays(self, module_first: int, module_last: int,
                    stage: int) -> tuple:
        """Combined index arrays for modules ``first..last`` of one stage.

        Returns ``(reads, rom, writes, lanes)`` with all first-half
        indices (and then all second-half indices) of the modules
        concatenated, so a whole run of consecutive BUT4s executes as one
        gather/butterfly/scatter.  Per-module counting is unaffected: the
        array lengths equal the sums over :meth:`index_arrays`.
        """
        key = (module_first, module_last, stage)
        cached = self._index_cache.get(key)
        if cached is None:
            parts = [
                self.addresses(module, stage)
                for module in range(module_first, module_last + 1)
            ]
            firsts = [a.crf_reads_first for a in parts]
            seconds = [a.crf_reads_second for a in parts]
            cached = (
                np.array(sum(firsts, ()) + sum(seconds, ()), dtype=np.intp),
                np.array(sum((a.rom_addresses for a in parts), ()),
                         dtype=np.intp),
                np.array(
                    sum((a.crf_writes_first for a in parts), ())
                    + sum((a.crf_writes_second for a in parts), ()),
                    dtype=np.intp,
                ),
                sum(len(f) for f in firsts),
            )
            self._check_indices(cached)
            self._index_cache[key] = cached
        return cached
