"""The base instruction-set simulator (PISA-like scalar core).

Executes :class:`repro.isa.Program` objects with functional exactness and
the approximate-but-responsive timing model of
:mod:`repro.sim.pipeline`.  The three custom opcodes trap to
:meth:`Machine.execute_custom`, which the plain base core rejects —
the FFT ASIP of :mod:`repro.asip.fft_asip` subclasses this machine and
implements them against its CRF/BU/ROM/AC hardware.
"""

from __future__ import annotations

from ..isa.instructions import Instruction, Opcode
from ..isa.program import Program
from .cache import CacheConfig, DataCache
from .errors import RunawayProgram, SimulationError, UnsupportedInstruction
from .memory import MainMemory
from .pipeline import PipelineConfig
from .stats import SimStats

__all__ = ["Machine"]

_WORD_MASK = 0xFFFFFFFF


def _wrap32(value):
    """Wrap integer results to signed 32-bit; floats pass through."""
    if isinstance(value, float):
        return value
    value &= _WORD_MASK
    return value - 0x100000000 if value & 0x80000000 else value


class Machine:
    """Single-issue in-order scalar core with a data cache.

    Parameters
    ----------
    memory:
        Main data memory (word addressed).
    cache_config:
        Data-cache geometry/timing; pass None for the default 32 KB cache
        or ``cache=False``-style behaviour via ``use_cache=False``.
    pipeline:
        Timing parameters.
    max_instructions:
        Runaway guard: the run aborts with :class:`RunawayProgram` if HALT
        is not reached within this budget.
    """

    def __init__(self, memory: MainMemory, cache_config: CacheConfig = None,
                 pipeline: PipelineConfig = None, use_cache: bool = True,
                 charge_cache_latency: bool = False,
                 max_instructions: int = 50_000_000):
        self.memory = memory
        self.dcache = DataCache(cache_config) if use_cache else None
        self.charge_cache_latency = charge_cache_latency
        self.pipeline = pipeline or PipelineConfig()
        self.max_instructions = max_instructions
        self.registers = [0] * 32
        self.pc = 0
        self.stats = SimStats()
        self.halted = False
        self._last_load_reg = None

    # Register helpers ----------------------------------------------------

    def read_reg(self, number: int):
        """Read a GPR (r0 reads as zero)."""
        return 0 if number == 0 else self.registers[number]

    def write_reg(self, number: int, value) -> None:
        """Write a GPR (writes to r0 are discarded)."""
        if number != 0:
            self.registers[number] = _wrap32(value)

    # Memory helpers with cache accounting --------------------------------

    def data_access(self, word_address: int, is_write: bool) -> int:
        """Account one data access; returns its latency in cycles.

        Miss counting always happens; the miss *penalty* only enters the
        returned latency when ``charge_cache_latency`` is set.  The default
        matches the paper's SimpleScalar methodology, where Table I/II
        cycle counts and data-cache miss counts are separate columns.
        """
        if is_write:
            self.stats.stores += 1
        else:
            self.stats.loads += 1
        if self.dcache is None:
            return 1
        latency = self.dcache.access(word_address, is_write)
        if latency > self.dcache.config.hit_latency:
            self.stats.dcache_misses += 1
        else:
            self.stats.dcache_hits += 1
        if not self.charge_cache_latency:
            return self.dcache.config.hit_latency
        return latency

    # Execution -----------------------------------------------------------

    def run(self, program: Program) -> SimStats:
        """Run ``program`` from instruction 0 until HALT; returns stats."""
        self.pc = 0
        self.halted = False
        self._last_load_reg = None
        length = len(program)
        while not self.halted:
            if not (0 <= self.pc < length):
                raise SimulationError(
                    f"PC {self.pc} outside program of length {length}"
                )
            instr = program[self.pc]
            self.step(instr)
            if self.stats.instructions > self.max_instructions:
                raise RunawayProgram(
                    f"exceeded {self.max_instructions} instructions"
                )
        return self.stats

    def step(self, instr: Instruction) -> None:
        """Execute one instruction, updating state, stats and PC."""
        self.stats.instructions += 1
        cost = 1
        next_pc = self.pc + 1
        op = instr.opcode

        # Load-use interlock from the previous instruction's load.
        if self._last_load_reg is not None and self._uses(
            instr, self._last_load_reg
        ):
            cost += self.pipeline.load_use_stall
            self.stats.stall_cycles += self.pipeline.load_use_stall
        self._last_load_reg = None

        if op is Opcode.NOP:
            pass
        elif op is Opcode.HALT:
            self.halted = True
        elif op in _ALU_R:
            a, b = self.read_reg(instr.rs), self.read_reg(instr.rt)
            self.write_reg(instr.rd, _ALU_R[op](a, b))
            if op in (Opcode.MUL, Opcode.MULH):
                cost += self.pipeline.mul_extra
        elif op in _ALU_I:
            a = self.read_reg(instr.rs)
            self.write_reg(instr.rt, _ALU_I[op](a, instr.imm))
        elif op is Opcode.LUI:
            self.write_reg(instr.rt, (instr.imm & 0xFFFF) << 16)
        elif op is Opcode.LW:
            address = self.read_reg(instr.rs) + instr.imm
            cost += self.data_access(address, is_write=False) - 1
            self.write_reg(instr.rt, self.memory.read_word(address))
            self._last_load_reg = instr.rt
        elif op is Opcode.SW:
            address = self.read_reg(instr.rs) + instr.imm
            cost += self.data_access(address, is_write=True) - 1
            self.memory.write_word(address, self.read_reg(instr.rt))
        elif op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
            self.stats.branches += 1
            taken = _BRANCH_TAKEN[op](
                self.read_reg(instr.rs), self.read_reg(instr.rt)
            )
            if taken:
                next_pc = instr.imm
                cost += self.pipeline.branch_penalty
                self.stats.taken_branches += 1
        elif op is Opcode.J:
            self.stats.branches += 1
            self.stats.taken_branches += 1
            next_pc = instr.imm
            cost += self.pipeline.branch_penalty
        elif op is Opcode.JAL:
            self.stats.branches += 1
            self.stats.taken_branches += 1
            self.write_reg(31, self.pc + 1)
            next_pc = instr.imm
            cost += self.pipeline.branch_penalty
        elif op is Opcode.JR:
            self.stats.branches += 1
            self.stats.taken_branches += 1
            next_pc = self.read_reg(instr.rs)
            cost += self.pipeline.branch_penalty
        elif instr.is_custom:
            cost += self.execute_custom(instr)
        else:  # pragma: no cover - enum is exhaustive
            raise UnsupportedInstruction(f"cannot execute {instr}")

        self.stats.cycles += cost
        self.pc = next_pc

    def execute_custom(self, instr: Instruction) -> int:
        """Execute a custom opcode; returns *extra* cycles beyond issue.

        The plain base core has no FFT extension hardware.
        """
        raise UnsupportedInstruction(
            f"{instr.opcode} requires the FFT extension hardware"
        )

    @staticmethod
    def _uses(instr: Instruction, reg: int) -> bool:
        if reg == 0:
            return False
        op = instr.opcode
        if op in _ALU_R or op is Opcode.JR:
            return reg in (instr.rs, instr.rt)
        if op in _ALU_I or op is Opcode.LW:
            return reg == instr.rs
        if op is Opcode.SW or op in (
            Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE
        ):
            return reg in (instr.rs, instr.rt)
        return False


def _shift_amount(value) -> int:
    return int(value) & 31


_ALU_R = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.MULH: lambda a, b: (int(a) * int(b)) >> 32,
    Opcode.AND: lambda a, b: int(a) & int(b),
    Opcode.OR: lambda a, b: int(a) | int(b),
    Opcode.XOR: lambda a, b: int(a) ^ int(b),
    Opcode.SLT: lambda a, b: 1 if a < b else 0,
    Opcode.SLLV: lambda a, b: int(a) << _shift_amount(b),
}

_ALU_I = {
    Opcode.ADDI: lambda a, imm: a + imm,
    Opcode.ANDI: lambda a, imm: int(a) & (imm & 0xFFFF),
    Opcode.ORI: lambda a, imm: int(a) | (imm & 0xFFFF),
    Opcode.XORI: lambda a, imm: int(a) ^ (imm & 0xFFFF),
    Opcode.SLTI: lambda a, imm: 1 if a < imm else 0,
    Opcode.SLL: lambda a, imm: int(a) << _shift_amount(imm),
    Opcode.SRL: lambda a, imm: (int(a) & _WORD_MASK) >> _shift_amount(imm),
    Opcode.SRA: lambda a, imm: int(a) >> _shift_amount(imm),
}

_BRANCH_TAKEN = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLT: lambda a, b: a < b,
    Opcode.BGE: lambda a, b: a >= b,
}
