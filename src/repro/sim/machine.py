"""The base instruction-set simulator (PISA-like scalar core).

Executes :class:`repro.isa.Program` objects with functional exactness and
the approximate-but-responsive timing model of
:mod:`repro.sim.pipeline`.  The three custom opcodes trap to
:meth:`Machine.execute_custom`, which the plain base core rejects —
the FFT ASIP of :mod:`repro.asip.fft_asip` subclasses this machine and
implements them against its CRF/BU/ROM/AC hardware.
"""

from __future__ import annotations

from ..isa.instructions import Instruction, Opcode
from ..isa.program import Program
from .cache import CacheConfig, DataCache
from .errors import RunawayProgram, SimulationError, UnsupportedInstruction
from .memory import MainMemory
from .pipeline import PipelineConfig
from .stats import SimStats

__all__ = ["Machine"]

_WORD_MASK = 0xFFFFFFFF


def _wrap32(value):
    """Wrap integer results to signed 32-bit; floats pass through."""
    if isinstance(value, float):
        return value
    value &= _WORD_MASK
    return value - 0x100000000 if value & 0x80000000 else value


class Machine:
    """Single-issue in-order scalar core with a data cache.

    Parameters
    ----------
    memory:
        Main data memory (word addressed).
    cache_config:
        Data-cache geometry/timing; pass None for the default 32 KB cache
        or ``cache=False``-style behaviour via ``use_cache=False``.
    pipeline:
        Timing parameters.
    max_instructions:
        Runaway guard: the run aborts with :class:`RunawayProgram` if HALT
        is not reached within this budget.
    """

    def __init__(self, memory: MainMemory, cache_config: CacheConfig = None,
                 pipeline: PipelineConfig = None, use_cache: bool = True,
                 charge_cache_latency: bool = False,
                 max_instructions: int = 50_000_000):
        self.memory = memory
        self.dcache = DataCache(cache_config) if use_cache else None
        self.charge_cache_latency = charge_cache_latency
        self.pipeline = pipeline or PipelineConfig()
        self.max_instructions = max_instructions
        self.registers = [0] * 32
        self.pc = 0
        self.stats = SimStats()
        self.halted = False
        self._last_load_reg = None
        # Predecode cache: handler list for the last-run program (compare
        # by identity; streaming reuses one Program object across runs).
        # The token invalidates the cache when decode-relevant machine
        # state changes (see _predecode_token).
        self._decoded_program = None
        self._decoded_handlers = None
        self._decoded_token = None

    # Register helpers ----------------------------------------------------

    def read_reg(self, number: int):
        """Read a GPR (r0 reads as zero)."""
        return 0 if number == 0 else self.registers[number]

    def write_reg(self, number: int, value) -> None:
        """Write a GPR (writes to r0 are discarded)."""
        if number != 0:
            self.registers[number] = _wrap32(value)

    # Memory helpers with cache accounting --------------------------------

    def data_access(self, word_address: int, is_write: bool) -> int:
        """Account one data access; returns its latency in cycles.

        Miss counting always happens; the miss *penalty* only enters the
        returned latency when ``charge_cache_latency`` is set.  The default
        matches the paper's SimpleScalar methodology, where Table I/II
        cycle counts and data-cache miss counts are separate columns.
        """
        if is_write:
            self.stats.stores += 1
        else:
            self.stats.loads += 1
        if self.dcache is None:
            return 1
        latency = self.dcache.access(word_address, is_write)
        if latency > self.dcache.config.hit_latency:
            self.stats.dcache_misses += 1
        else:
            self.stats.dcache_hits += 1
        if not self.charge_cache_latency:
            return self.dcache.config.hit_latency
        return latency

    # Execution -----------------------------------------------------------

    def run(self, program: Program) -> SimStats:
        """Run ``program`` from instruction 0 until HALT; returns stats.

        The fast path: the program is predecoded once into per-opcode
        handler closures (operands, branch targets and extra-cost terms
        resolved at decode time), so the per-step work is a list index
        and one call instead of the :meth:`step` opcode chain.  Semantics
        and statistics are identical to :meth:`run_interpreted`.
        """
        if "step" in self.__dict__ or "execute_custom" in self.__dict__:
            # step() or execute_custom() has been instrumented on the
            # instance (e.g. an ExecutionTrace wrap, or a fault-injection
            # harness); honour the patch via the interpreter.
            return self.run_interpreted(program)
        self.pc = 0
        self.halted = False
        self._last_load_reg = None
        token = self._predecode_token()
        if program is not self._decoded_program or token != self._decoded_token:
            self._decoded_handlers = self._predecode(program)
            self._decoded_program = program
            self._decoded_token = token
        handlers = self._decoded_handlers
        length = len(program)
        stats = self.stats
        stall = self.pipeline.load_use_stall
        # Dispatch and cycle counters run in locals and are flushed on
        # exit (also on error).  Fused burst handlers retire extra
        # instructions directly into stats.instructions mid-run, so the
        # runaway check sums both counters.  The check runs between
        # dispatches: a fused burst completes before the guard fires, so
        # the abort may land up to one straight-line burst past the limit
        # (stats stay exact; only the abort point is coarser than the
        # interpreter's).
        limit = self.max_instructions
        instructions = 0
        cycles = 0
        try:
            while not self.halted:
                pc = self.pc
                if not (0 <= pc < length):
                    raise SimulationError(
                        f"PC {pc} outside program of length {length}"
                    )
                handler, uses = handlers[pc]
                instructions += 1
                cost = 1
                last = self._last_load_reg
                if last is not None:
                    self._last_load_reg = None
                    if last != 0 and last in uses:
                        cost += stall
                        stats.stall_cycles += stall
                extra, next_pc = handler()
                cycles += cost + extra
                self.pc = next_pc
                if instructions + stats.instructions > limit:
                    raise RunawayProgram(
                        f"exceeded {limit} instructions"
                    )
        finally:
            stats.instructions += instructions
            stats.cycles += cycles
        return stats

    def run_interpreted(self, program: Program) -> SimStats:
        """Run via the readable one-:meth:`step`-at-a-time interpreter.

        The predecoded :meth:`run` is tested against this oracle; it is
        also the honest baseline for the engine-speed benchmark.
        """
        self.pc = 0
        self.halted = False
        self._last_load_reg = None
        length = len(program)
        while not self.halted:
            if not (0 <= self.pc < length):
                raise SimulationError(
                    f"PC {self.pc} outside program of length {length}"
                )
            instr = program[self.pc]
            self.step(instr)
            if self.stats.instructions > self.max_instructions:
                raise RunawayProgram(
                    f"exceeded {self.max_instructions} instructions"
                )
        return self.stats

    # Predecode -----------------------------------------------------------

    def _predecode(self, program: Program) -> list:
        """Lower ``program`` to a list of ``(handler, uses)`` pairs.

        ``handler()`` executes the instruction and returns ``(extra_cost,
        next_pc)``; ``uses`` is the register tuple consulted by the
        load-use interlock (precomputed :meth:`_uses`).
        """
        decoded = []
        for index, instr in enumerate(program):
            factory = _HANDLER_FACTORIES.get(instr.opcode)
            if factory is None:
                if instr.is_custom:
                    factory = _make_custom
                else:
                    factory = _make_unsupported
            decoded.append((factory(self, instr, index), _uses_tuple(instr)))
        self._fuse_custom_bursts(program, decoded)
        return decoded

    def _fuse_custom_bursts(self, program: Program, decoded: list) -> None:
        """Overlay burst handlers on straight-line runs of custom ops.

        Generated FFT programs are dominated by LDIN/BUT4/STOUT bursts;
        fusing a run of same-opcode custom instructions into one handler
        removes the per-instruction dispatch overhead while retiring the
        same instructions with the same cycle and stat accounting.  The
        per-instruction handlers stay in place at every index, so a
        branch into the middle of a run still executes correctly (custom
        ops never branch, so a fused run always falls through).  Burst
        handlers retire their extra instructions into the stats before
        returning, so the runaway guard sees every retired instruction.
        """
        length = len(program)
        index = 0
        while index < length:
            instr = program[index]
            if not instr.is_custom:
                index += 1
                continue
            end = index + 1
            while (end < length and program[end].is_custom
                   and program[end].opcode is instr.opcode):
                end += 1
            if end - index > 1:
                decoded[index] = (
                    self._make_custom_burst(program, index, end), ()
                )
            index = end

    def _make_custom_burst(self, program: Program, start: int, end: int):
        burst = self.custom_burst_executor(program, start, end)
        if burst is not None:
            def handler(m=self, burst=burst,
                        count_minus_one=end - start - 1, nxt=end):
                extra = count_minus_one + burst()
                m.stats.instructions += count_minus_one
                return (extra, nxt)
            return handler

        executors = [
            (self.custom_executor(program[i]), program[i])
            for i in range(start, end)
        ]

        def handler(m=self, executors=executors,
                    count_minus_one=end - start - 1, nxt=end):
            extra = count_minus_one
            for fn, instr in executors:
                extra += fn(instr)
            m.stats.instructions += count_minus_one
            return (extra, nxt)
        return handler

    def custom_burst_executor(self, program: Program, start: int, end: int):
        """Predecode hook: a fused executor for a custom-op run, or None.

        A subclass may return a zero-argument callable that executes the
        whole run ``program[start:end]`` with identical architectural
        effects and statistics, returning the summed per-op *extra*
        cycles (beyond the one issue cycle each).  Returning None selects
        the generic per-op loop.
        """
        return None

    def step(self, instr: Instruction) -> None:
        """Execute one instruction, updating state, stats and PC."""
        self.stats.instructions += 1
        cost = 1
        next_pc = self.pc + 1
        op = instr.opcode

        # Load-use interlock from the previous instruction's load.
        if self._last_load_reg is not None and self._uses(
            instr, self._last_load_reg
        ):
            cost += self.pipeline.load_use_stall
            self.stats.stall_cycles += self.pipeline.load_use_stall
        self._last_load_reg = None

        if op is Opcode.NOP:
            pass
        elif op is Opcode.HALT:
            self.halted = True
        elif op in _ALU_R:
            a, b = self.read_reg(instr.rs), self.read_reg(instr.rt)
            self.write_reg(instr.rd, _ALU_R[op](a, b))
            if op in (Opcode.MUL, Opcode.MULH):
                cost += self.pipeline.mul_extra
        elif op in _ALU_I:
            a = self.read_reg(instr.rs)
            self.write_reg(instr.rt, _ALU_I[op](a, instr.imm))
        elif op is Opcode.LUI:
            self.write_reg(instr.rt, (instr.imm & 0xFFFF) << 16)
        elif op is Opcode.LW:
            address = self.read_reg(instr.rs) + instr.imm
            cost += self.data_access(address, is_write=False) - 1
            self.write_reg(instr.rt, self.memory.read_word(address))
            self._last_load_reg = instr.rt
        elif op is Opcode.SW:
            address = self.read_reg(instr.rs) + instr.imm
            cost += self.data_access(address, is_write=True) - 1
            self.memory.write_word(address, self.read_reg(instr.rt))
        elif op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
            self.stats.branches += 1
            taken = _BRANCH_TAKEN[op](
                self.read_reg(instr.rs), self.read_reg(instr.rt)
            )
            if taken:
                next_pc = instr.imm
                cost += self.pipeline.branch_penalty
                self.stats.taken_branches += 1
        elif op is Opcode.J:
            self.stats.branches += 1
            self.stats.taken_branches += 1
            next_pc = instr.imm
            cost += self.pipeline.branch_penalty
        elif op is Opcode.JAL:
            self.stats.branches += 1
            self.stats.taken_branches += 1
            self.write_reg(31, self.pc + 1)
            next_pc = instr.imm
            cost += self.pipeline.branch_penalty
        elif op is Opcode.JR:
            self.stats.branches += 1
            self.stats.taken_branches += 1
            next_pc = self.read_reg(instr.rs)
            cost += self.pipeline.branch_penalty
        elif instr.is_custom:
            cost += self.execute_custom(instr)
        else:  # pragma: no cover - enum is exhaustive
            raise UnsupportedInstruction(f"cannot execute {instr}")

        self.stats.cycles += cost
        self.pc = next_pc

    def execute_custom(self, instr: Instruction) -> int:
        """Execute a custom opcode; returns *extra* cycles beyond issue.

        The plain base core has no FFT extension hardware.
        """
        raise UnsupportedInstruction(
            f"{instr.opcode} requires the FFT extension hardware"
        )

    def custom_executor(self, instr: Instruction):
        """Predecode hook: the callable executing this custom instruction.

        Subclasses with several custom opcodes can resolve the dispatch
        once at decode time instead of on every dynamic execution.
        """
        return self.execute_custom

    def _predecode_token(self):
        """State the predecoded handlers depend on besides the program.

        Subclasses whose decode-time specialisation reads mutable machine
        state (e.g. the ASIP's ``vectorized`` flag) return it here so the
        handler cache is invalidated when it changes.
        """
        return None

    @staticmethod
    def _uses(instr: Instruction, reg: int) -> bool:
        if reg == 0:
            return False
        op = instr.opcode
        if op in _ALU_R or op is Opcode.JR:
            return reg in (instr.rs, instr.rt)
        if op in _ALU_I or op is Opcode.LW:
            return reg == instr.rs
        if op is Opcode.SW or op in (
            Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE
        ):
            return reg in (instr.rs, instr.rt)
        return False


def _shift_amount(value) -> int:
    return int(value) & 31


_ALU_R = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.MULH: lambda a, b: (int(a) * int(b)) >> 32,
    Opcode.AND: lambda a, b: int(a) & int(b),
    Opcode.OR: lambda a, b: int(a) | int(b),
    Opcode.XOR: lambda a, b: int(a) ^ int(b),
    Opcode.SLT: lambda a, b: 1 if a < b else 0,
    Opcode.SLLV: lambda a, b: int(a) << _shift_amount(b),
}

_ALU_I = {
    Opcode.ADDI: lambda a, imm: a + imm,
    Opcode.ANDI: lambda a, imm: int(a) & (imm & 0xFFFF),
    Opcode.ORI: lambda a, imm: int(a) | (imm & 0xFFFF),
    Opcode.XORI: lambda a, imm: int(a) ^ (imm & 0xFFFF),
    Opcode.SLTI: lambda a, imm: 1 if a < imm else 0,
    Opcode.SLL: lambda a, imm: int(a) << _shift_amount(imm),
    Opcode.SRL: lambda a, imm: (int(a) & _WORD_MASK) >> _shift_amount(imm),
    Opcode.SRA: lambda a, imm: int(a) >> _shift_amount(imm),
}

_BRANCH_TAKEN = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLT: lambda a, b: a < b,
    Opcode.BGE: lambda a, b: a >= b,
}


# Predecode support ---------------------------------------------------------
#
# One factory per opcode family builds a closure with the instruction's
# operands (and its fall-through PC) bound as locals.  Each closure returns
# ``(extra_cost, next_pc)``; the run loop supplies the base issue cycle and
# the load-use interlock.  The factories mirror ``step`` exactly — the
# equivalence is asserted by tests against ``run_interpreted``.


def _uses_tuple(instr: Instruction) -> tuple:
    """Registers the load-use interlock must check for this instruction."""
    op = instr.opcode
    if op in _ALU_R or op is Opcode.JR:
        return (instr.rs, instr.rt)
    if op in _ALU_I or op is Opcode.LW:
        return (instr.rs,)
    if op is Opcode.SW or op in _BRANCH_TAKEN:
        return (instr.rs, instr.rt)
    return ()


def _make_nop(machine, instr, index):
    return lambda nxt=index + 1: (0, nxt)


def _make_halt(machine, instr, index):
    def handler(m=machine, nxt=index + 1):
        m.halted = True
        return (0, nxt)
    return handler


def _make_alu_r(machine, instr, index):
    extra = (
        machine.pipeline.mul_extra
        if instr.opcode in (Opcode.MUL, Opcode.MULH) else 0
    )

    def handler(m=machine, fn=_ALU_R[instr.opcode], rd=instr.rd,
                rs=instr.rs, rt=instr.rt, extra=extra, nxt=index + 1):
        m.write_reg(rd, fn(m.read_reg(rs), m.read_reg(rt)))
        return (extra, nxt)
    return handler


def _make_alu_i(machine, instr, index):
    def handler(m=machine, fn=_ALU_I[instr.opcode], rt=instr.rt,
                rs=instr.rs, imm=instr.imm, nxt=index + 1):
        m.write_reg(rt, fn(m.read_reg(rs), imm))
        return (0, nxt)
    return handler


def _make_lui(machine, instr, index):
    value = (instr.imm & 0xFFFF) << 16

    def handler(m=machine, rt=instr.rt, value=value, nxt=index + 1):
        m.write_reg(rt, value)
        return (0, nxt)
    return handler


def _make_lw(machine, instr, index):
    def handler(m=machine, rt=instr.rt, rs=instr.rs, imm=instr.imm,
                nxt=index + 1):
        address = m.read_reg(rs) + imm
        extra = m.data_access(address, is_write=False) - 1
        m.write_reg(rt, m.memory.read_word(address))
        m._last_load_reg = rt
        return (extra, nxt)
    return handler


def _make_sw(machine, instr, index):
    def handler(m=machine, rt=instr.rt, rs=instr.rs, imm=instr.imm,
                nxt=index + 1):
        address = m.read_reg(rs) + imm
        extra = m.data_access(address, is_write=True) - 1
        m.memory.write_word(address, m.read_reg(rt))
        return (extra, nxt)
    return handler


def _make_branch(machine, instr, index):
    def handler(m=machine, taken=_BRANCH_TAKEN[instr.opcode], rs=instr.rs,
                rt=instr.rt, target=instr.imm,
                penalty=machine.pipeline.branch_penalty, nxt=index + 1):
        stats = m.stats
        stats.branches += 1
        if taken(m.read_reg(rs), m.read_reg(rt)):
            stats.taken_branches += 1
            return (penalty, target)
        return (0, nxt)
    return handler


def _make_jump(machine, instr, index):
    def handler(m=machine, target=instr.imm,
                penalty=machine.pipeline.branch_penalty):
        stats = m.stats
        stats.branches += 1
        stats.taken_branches += 1
        return (penalty, target)
    return handler


def _make_jal(machine, instr, index):
    def handler(m=machine, target=instr.imm, link=index + 1,
                penalty=machine.pipeline.branch_penalty):
        stats = m.stats
        stats.branches += 1
        stats.taken_branches += 1
        m.write_reg(31, link)
        return (penalty, target)
    return handler


def _make_jr(machine, instr, index):
    def handler(m=machine, rs=instr.rs,
                penalty=machine.pipeline.branch_penalty):
        stats = m.stats
        stats.branches += 1
        stats.taken_branches += 1
        return (penalty, m.read_reg(rs))
    return handler


def _make_custom(machine, instr, index):
    def handler(fn=machine.custom_executor(instr), instr=instr, nxt=index + 1):
        return (fn(instr), nxt)
    return handler


def _make_unsupported(machine, instr, index):
    def handler(instr=instr):
        raise UnsupportedInstruction(f"cannot execute {instr}")
    return handler


_HANDLER_FACTORIES = {Opcode.NOP: _make_nop, Opcode.HALT: _make_halt}
_HANDLER_FACTORIES.update({op: _make_alu_r for op in _ALU_R})
_HANDLER_FACTORIES.update({op: _make_alu_i for op in _ALU_I})
_HANDLER_FACTORIES.update({op: _make_branch for op in _BRANCH_TAKEN})
_HANDLER_FACTORIES[Opcode.LUI] = _make_lui
_HANDLER_FACTORIES[Opcode.LW] = _make_lw
_HANDLER_FACTORIES[Opcode.SW] = _make_sw
_HANDLER_FACTORIES[Opcode.J] = _make_jump
_HANDLER_FACTORIES[Opcode.JAL] = _make_jal
_HANDLER_FACTORIES[Opcode.JR] = _make_jr
