"""Word-addressed main memory with complex-point helpers.

One complex sample point occupies **one 32-bit word** — packed Q1.15 real
(high half) and imaginary (low half) — so the paper's 64-bit bus moves
exactly two points per beat and one LDIN/STOUT transfers two points, as
Section III-B states.  Point addresses and word addresses therefore
coincide.

The memory also serves as plain word storage for base-ISA ``lw``/``sw``
(the software baselines choose their own layouts).  In ``float_mode``
(the idealised datapath) a word may hold a Python complex directly; in
fixed-point mode complex points are stored packed and bit-true.

Storage is **ndarray-backed** so the fast execution paths'
``gather_*``/``scatter_*`` calls are true numpy fancy indexing instead
of Python loops:

* packed mode — one int64 word vector (every packed point is a 32-bit
  integer);
* float mode — one complex128 vector holding the complex points and the
  numeric projection of raw words.

Raw ``lw``/``sw`` word semantics are preserved by a dict **overlay**
(the old storage model, retained as the oracle for values the ndarray
cannot represent exactly): every raw :meth:`write_word` keeps its exact
Python value — arbitrary ints, floats, anything — in the overlay, and
:meth:`read_word` returns it bit-for-bit.  The complex-point layer
clears overlay entries it overwrites.  FFT data traffic never touches
the overlay, so the vectorised paths stay pure fancy indexing.
"""

from __future__ import annotations

import numpy as np

from ..core.fixed_point import (
    FixedComplex,
    fixed_to_complex_array,
    fixed_to_words_array,
    quantize,
    quantize_array,
    words_to_fixed_array,
)

__all__ = ["MainMemory"]


class MainMemory:
    """A flat word-addressed memory.

    Parameters
    ----------
    words:
        Size in 32-bit words.
    float_mode:
        When True, complex helpers store native complex values (idealised
        datapath); when False they pack Q1.15 pairs into one integer word.
    """

    def __init__(self, words: int, float_mode: bool = True):
        if words <= 0:
            raise ValueError(f"memory size must be positive, got {words}")
        self.size = words
        self.float_mode = float_mode
        if float_mode:
            self._data = np.zeros(words, dtype=complex)
            # Marks words written through the complex-point layer; raw
            # reads of untouched words must still return the integer 0.
            self._is_complex = np.zeros(words, dtype=bool)
        else:
            self._data = np.zeros(words, dtype=np.int64)
            self._is_complex = None
        # Overlay of exact raw-word values (the dict-path oracle).
        self._raw: dict = {}

    def _check(self, address: int) -> None:
        if not (0 <= address < self.size):
            raise IndexError(
                f"memory address {address} out of range [0, {self.size})"
            )

    def read_word(self, address: int):
        """Read one word (exact raw value for ``lw``/``sw`` traffic)."""
        self._check(address)
        if self._raw:
            value = self._raw.get(address)
            if value is not None:
                return value
        if self.float_mode:
            if self._is_complex[address]:
                return complex(self._data[address])
            return 0
        return int(self._data[address])

    def write_word(self, address: int, value) -> None:
        """Write one word, preserving the exact Python value."""
        self._check(address)
        if self.float_mode:
            self._is_complex[address] = False
            self._raw[address] = value
            try:
                self._data[address] = complex(value)
            except (TypeError, ValueError):
                self._data[address] = 0
            return
        if isinstance(value, (int, np.integer)) and (
            -(2 ** 63) <= value < 2 ** 63
        ):
            self._data[address] = value
            if self._raw:
                self._raw.pop(address, None)
        else:
            # Out-of-range or non-integer word in packed mode: keep the
            # exact value on the overlay, zero the array projection.
            self._data[address] = 0
            self._raw[address] = value

    # Complex-point layer -------------------------------------------------

    def read_complex(self, point_address: int) -> complex:
        """Read the complex point at ``point_address``."""
        self._check(point_address)
        if self.float_mode:
            return complex(self._data[point_address])
        word = int(self._data[point_address])
        return FixedComplex.from_words(
            (word >> 16) & 0xFFFF, word & 0xFFFF
        ).to_complex()

    def write_complex(self, point_address: int, value: complex) -> None:
        """Store a complex point at ``point_address``."""
        self._check(point_address)
        if self._raw:
            self._raw.pop(point_address, None)
        if self.float_mode:
            self._data[point_address] = complex(value)
            self._is_complex[point_address] = True
        else:
            re_word, im_word = quantize(complex(value)).to_words()
            self._data[point_address] = (re_word << 16) | im_word

    def read_complex_pair(self, first: int, second: int) -> tuple:
        """Read the two complex points of one 64-bit bus beat."""
        return self.read_complex(first), self.read_complex(second)

    def write_complex_pair(self, first: int, second: int,
                           value_first: complex,
                           value_second: complex) -> None:
        """Store the two complex points of one 64-bit bus beat."""
        self.write_complex(first, value_first)
        self.write_complex(second, value_second)

    # Vectorised bulk access (fast execution paths) -----------------------

    def _check_array(self, addresses: np.ndarray) -> None:
        if addresses.size and (
            int(addresses.min()) < 0 or int(addresses.max()) >= self.size
        ):
            raise IndexError(
                f"memory address range [{int(addresses.min())}, "
                f"{int(addresses.max())}] exceeds [0, {self.size})"
            )

    def _drop_overlay(self, addresses: np.ndarray) -> None:
        if self._raw:
            pop = self._raw.pop
            for a in addresses.tolist():
                pop(a, None)

    def gather_words(self, addresses) -> np.ndarray:
        """Bulk :meth:`read_word` of integer words at an index array.

        Only meaningful in fixed-point (packed) mode, where every data
        word is an integer: one fancy-index gather, with any overlay
        entries (raw out-of-range words) patched in on top.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        self._check_array(addresses)
        out = self._data[addresses]
        if self._raw:
            raw = self._raw
            for k, a in enumerate(addresses.tolist()):
                if a in raw:
                    out[k] = raw[a]
        return out

    def scatter_words(self, addresses, words) -> None:
        """Bulk :meth:`write_word` of integer words (packed mode)."""
        addresses = np.asarray(addresses, dtype=np.int64)
        self._check_array(addresses)
        self._drop_overlay(addresses)
        self._data[addresses] = words

    def gather_complex(self, addresses) -> np.ndarray:
        """Bulk :meth:`read_complex` at an index array."""
        addresses = np.asarray(addresses, dtype=np.int64)
        self._check_array(addresses)
        if self.float_mode:
            return self._data[addresses]
        re, im = words_to_fixed_array(self._data[addresses])
        return fixed_to_complex_array(re, im)

    def scatter_complex(self, addresses, values) -> None:
        """Bulk :meth:`write_complex` at an index array.

        Packed mode quantises exactly like the scalar write path.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        self._check_array(addresses)
        self._drop_overlay(addresses)
        if self.float_mode:
            self._data[addresses] = values
            self._is_complex[addresses] = True
            return
        re, im = quantize_array(values)
        self._data[addresses] = fixed_to_words_array(re, im)

    def load_complex_vector(self, base_point: int, values) -> None:
        """Bulk-store a complex vector starting at ``base_point``."""
        values = np.asarray(values, dtype=complex)
        self.scatter_complex(
            base_point + np.arange(len(values), dtype=np.int64), values
        )

    def read_complex_vector(self, base_point: int, count: int) -> np.ndarray:
        """Bulk-read ``count`` complex points."""
        return np.array(self.gather_complex(
            base_point + np.arange(count, dtype=np.int64)
        ))
