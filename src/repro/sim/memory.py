"""Word-addressed main memory with complex-point helpers.

One complex sample point occupies **one 32-bit word** — packed Q1.15 real
(high half) and imaginary (low half) — so the paper's 64-bit bus moves
exactly two points per beat and one LDIN/STOUT transfers two points, as
Section III-B states.  Point addresses and word addresses therefore
coincide.

The memory also serves as plain word storage for base-ISA ``lw``/``sw``
(the software baselines choose their own layouts).  In ``float_mode``
(the idealised datapath) a word may hold a Python complex directly; in
fixed-point mode complex points are stored packed and bit-true.
"""

from __future__ import annotations

import numpy as np

from ..core.fixed_point import (
    FixedComplex,
    fixed_to_complex_array,
    fixed_to_words_array,
    quantize,
    quantize_array,
    words_to_fixed_array,
)

__all__ = ["MainMemory"]


class MainMemory:
    """A flat word-addressed memory.

    Parameters
    ----------
    words:
        Size in 32-bit words.
    float_mode:
        When True, complex helpers store native complex values (idealised
        datapath); when False they pack Q1.15 pairs into one integer word.
    """

    def __init__(self, words: int, float_mode: bool = True):
        if words <= 0:
            raise ValueError(f"memory size must be positive, got {words}")
        self.size = words
        self.float_mode = float_mode
        self._data = [0] * words

    def _check(self, address: int) -> None:
        if not (0 <= address < self.size):
            raise IndexError(
                f"memory address {address} out of range [0, {self.size})"
            )

    def read_word(self, address: int):
        """Read one word."""
        self._check(address)
        return self._data[address]

    def write_word(self, address: int, value) -> None:
        """Write one word."""
        self._check(address)
        self._data[address] = value

    # Complex-point layer -------------------------------------------------

    def read_complex(self, point_address: int) -> complex:
        """Read the complex point at ``point_address``."""
        self._check(point_address)
        value = self._data[point_address]
        if self.float_mode:
            return complex(value)
        word = int(value)
        return FixedComplex.from_words(
            (word >> 16) & 0xFFFF, word & 0xFFFF
        ).to_complex()

    def write_complex(self, point_address: int, value: complex) -> None:
        """Store a complex point at ``point_address``."""
        self._check(point_address)
        if self.float_mode:
            self._data[point_address] = complex(value)
        else:
            re_word, im_word = quantize(complex(value)).to_words()
            self._data[point_address] = (re_word << 16) | im_word

    def read_complex_pair(self, first: int, second: int) -> tuple:
        """Read the two complex points of one 64-bit bus beat."""
        if self.float_mode:
            self._check(first)
            self._check(second)
            data = self._data
            return complex(data[first]), complex(data[second])
        return self.read_complex(first), self.read_complex(second)

    def write_complex_pair(self, first: int, second: int,
                           value_first: complex,
                           value_second: complex) -> None:
        """Store the two complex points of one 64-bit bus beat."""
        if self.float_mode:
            self._check(first)
            self._check(second)
            data = self._data
            data[first] = complex(value_first)
            data[second] = complex(value_second)
            return
        self.write_complex(first, value_first)
        self.write_complex(second, value_second)

    # Vectorised bulk access (fast execution paths) -----------------------

    def _check_array(self, addresses: np.ndarray) -> None:
        if addresses.size and (
            int(addresses.min()) < 0 or int(addresses.max()) >= self.size
        ):
            raise IndexError(
                f"memory address range [{int(addresses.min())}, "
                f"{int(addresses.max())}] exceeds [0, {self.size})"
            )

    def gather_words(self, addresses) -> np.ndarray:
        """Bulk :meth:`read_word` of integer words at an index array.

        Only meaningful in fixed-point (packed) mode, where every data
        word is an integer.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        self._check_array(addresses)
        data = self._data
        return np.fromiter(
            (data[a] for a in addresses.tolist()),
            dtype=np.int64, count=len(addresses),
        )

    def scatter_words(self, addresses, words) -> None:
        """Bulk :meth:`write_word` of integer words (packed mode)."""
        addresses = np.asarray(addresses, dtype=np.int64)
        self._check_array(addresses)
        data = self._data
        for a, w in zip(addresses.tolist(), np.asarray(words).tolist()):
            data[a] = w

    def gather_complex(self, addresses) -> np.ndarray:
        """Bulk :meth:`read_complex` at an index array."""
        addresses = np.asarray(addresses, dtype=np.int64)
        self._check_array(addresses)
        data = self._data
        if self.float_mode:
            return np.array(
                [data[a] for a in addresses.tolist()], dtype=complex
            )
        re, im = words_to_fixed_array(self.gather_words(addresses))
        return fixed_to_complex_array(re, im)

    def scatter_complex(self, addresses, values) -> None:
        """Bulk :meth:`write_complex` at an index array.

        Packed mode quantises exactly like the scalar write path.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        self._check_array(addresses)
        data = self._data
        if self.float_mode:
            for a, v in zip(addresses.tolist(), values):
                data[a] = complex(v)
            return
        re, im = quantize_array(values)
        words = fixed_to_words_array(re, im)
        for a, w in zip(addresses.tolist(), words.tolist()):
            data[a] = w

    def load_complex_vector(self, base_point: int, values) -> None:
        """Bulk-store a complex vector starting at ``base_point``."""
        for k, v in enumerate(np.asarray(values, dtype=complex)):
            self.write_complex(base_point + k, complex(v))

    def read_complex_vector(self, base_point: int, count: int) -> np.ndarray:
        """Bulk-read ``count`` complex points."""
        return np.array(
            [self.read_complex(base_point + k) for k in range(count)],
            dtype=complex,
        )
