"""Set-associative data cache with LRU replacement (SimpleScalar-style).

The paper simulates its cores with a modified SimpleScalar whose base PISA
configuration carries a 32 KB data cache; Table II reports data-cache miss
counts for each implementation.  This model reproduces the standard
``sim-cache`` behaviour: write-allocate, write-back, LRU, miss counting,
and a configurable miss penalty consumed by the timing model.

Addresses here are *word* addresses (32-bit words), so ``block_words`` is
the line size in words (8 words = 32 bytes, the SimpleScalar default).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheConfig", "DataCache"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry + timing of a data cache.

    The default models the paper's 32 KB cache: 128 sets x 4 ways x 8
    words x 4 bytes/word = 16 KB... adjusted to 256 sets for 32 KB.
    """

    sets: int = 256
    ways: int = 4
    block_words: int = 8
    hit_latency: int = 1
    miss_penalty: int = 18

    def __post_init__(self):
        for field_name in ("sets", "ways", "block_words"):
            v = getattr(self, field_name)
            if v <= 0 or (v & (v - 1)) != 0:
                raise ValueError(f"{field_name} must be a power of two, got {v}")

    @property
    def size_bytes(self) -> int:
        """Total capacity in bytes (4-byte words)."""
        return self.sets * self.ways * self.block_words * 4


class DataCache:
    """LRU set-associative cache tracking hit/miss counts.

    ``access`` returns the latency of the access and updates the counters;
    the machine adds the latency to the cycle count.  Tag state is kept as
    per-set ordered lists (most recent first) — simple and adequate for
    the simulation sizes involved.
    """

    def __init__(self, config: CacheConfig = None):
        self.config = config or CacheConfig()
        self._sets = [[] for _ in range(self.config.sets)]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self._dirty = set()

    def reset(self) -> None:
        """Flush contents and zero the counters."""
        self._sets = [[] for _ in range(self.config.sets)]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self._dirty = set()

    def _locate(self, word_address: int) -> tuple:
        block = word_address // self.config.block_words
        index = block % self.config.sets
        tag = block // self.config.sets
        return index, tag, block

    def access(self, word_address: int, is_write: bool = False) -> int:
        """Simulate one access; returns its latency in cycles."""
        index, tag, block = self._locate(word_address)
        ways = self._sets[index]
        if ways and ways[0] == tag:
            # MRU fast path: back-to-back beats of one LDIN/STOUT hit the
            # same line; no list churn needed to keep it most-recent.
            self.hits += 1
            if is_write:
                self._dirty.add(block)
            return self.config.hit_latency
        if tag in ways:
            ways.remove(tag)
            ways.insert(0, tag)
            self.hits += 1
            if is_write:
                self._dirty.add(block)
            return self.config.hit_latency
        self.misses += 1
        ways.insert(0, tag)
        if len(ways) > self.config.ways:
            victim_tag = ways.pop()
            victim_block = victim_tag * self.config.sets + index
            if victim_block in self._dirty:
                self._dirty.discard(victim_block)
                self.writebacks += 1
        if is_write:
            self._dirty.add(block)
        return self.config.hit_latency + self.config.miss_penalty

    def state_key(self) -> tuple:
        """Hashable fingerprint of the full tag/LRU/dirty state.

        Two caches with equal keys respond identically to any future
        access sequence — the fixed-point test the batched symbol replay
        uses to extrapolate per-symbol hit/miss counts exactly.
        """
        return (
            tuple(tuple(ways) for ways in self._sets),
            frozenset(self._dirty),
        )

    @property
    def accesses(self) -> int:
        """Total accesses."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss rate over all accesses."""
        return self.misses / self.accesses if self.accesses else 0.0
