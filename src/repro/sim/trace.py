"""Bounded execution tracing for debugging simulated programs."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..isa.instructions import Instruction

__all__ = ["TraceEntry", "ExecutionTrace"]


@dataclass(frozen=True)
class TraceEntry:
    """One retired instruction with its PC and cycle stamp."""

    pc: int
    cycle: int
    instruction: Instruction

    def __str__(self) -> str:
        return f"[{self.cycle:>10d}] {self.pc:6d}: {self.instruction}"


class ExecutionTrace:
    """Ring buffer of the most recent ``capacity`` retired instructions.

    Attach to a machine by wrapping its ``step``::

        trace = ExecutionTrace(capacity=1000)
        machine.step = trace.wrap(machine)
    """

    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.entries = deque(maxlen=capacity)

    def record(self, pc: int, cycle: int, instruction: Instruction) -> None:
        """Append one entry."""
        self.entries.append(
            TraceEntry(pc=pc, cycle=cycle, instruction=instruction)
        )

    def wrap(self, machine):
        """Return a replacement ``step`` that records then delegates."""
        original_step = machine.step

        def traced_step(instr):
            self.record(machine.pc, machine.stats.cycles, instr)
            return original_step(instr)

        return traced_step

    def __len__(self) -> int:
        return len(self.entries)

    def listing(self) -> str:
        """The buffered trace as text."""
        return "\n".join(str(e) for e in self.entries)

    def trace_events(self, pid: int = 1, tid: str = "asip",
                     cycle_us: float = 1.0,
                     origin_us: float = 0.0) -> list:
        """The buffered instructions as Chrome trace-event dicts.

        The adapter into :mod:`repro.telemetry.export`: each retired
        instruction becomes one complete (``"X"``) event on the
        ``tid`` lane, with ``ts`` mapped from its cycle stamp
        (``origin_us + cycle * cycle_us``) and ``dur`` from the gap to
        the next retirement — so the simulator's exact cycle account
        renders as an instruction timeline in the same Perfetto file
        as the span layers above it.
        """
        entries = list(self.entries)
        events = []
        for index, entry in enumerate(entries):
            if index + 1 < len(entries):
                cycles = max(entries[index + 1].cycle - entry.cycle, 1)
            else:
                cycles = 1
            text = str(entry.instruction)
            mnemonic = text.split()[0] if text.split() else "instr"
            events.append({
                "name": mnemonic,
                "cat": "sim",
                "ph": "X",
                "ts": round(origin_us + entry.cycle * cycle_us, 3),
                "dur": round(cycles * cycle_us, 3),
                "pid": pid,
                "tid": tid,
                "args": {"pc": entry.pc, "cycle": entry.cycle,
                         "text": text},
            })
        return events
