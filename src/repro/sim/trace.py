"""Bounded execution tracing for debugging simulated programs."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..isa.instructions import Instruction

__all__ = ["TraceEntry", "ExecutionTrace"]


@dataclass(frozen=True)
class TraceEntry:
    """One retired instruction with its PC and cycle stamp."""

    pc: int
    cycle: int
    instruction: Instruction

    def __str__(self) -> str:
        return f"[{self.cycle:>10d}] {self.pc:6d}: {self.instruction}"


class ExecutionTrace:
    """Ring buffer of the most recent ``capacity`` retired instructions.

    Attach to a machine by wrapping its ``step``::

        trace = ExecutionTrace(capacity=1000)
        machine.step = trace.wrap(machine)
    """

    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.entries = deque(maxlen=capacity)

    def record(self, pc: int, cycle: int, instruction: Instruction) -> None:
        """Append one entry."""
        self.entries.append(
            TraceEntry(pc=pc, cycle=cycle, instruction=instruction)
        )

    def wrap(self, machine):
        """Return a replacement ``step`` that records then delegates."""
        original_step = machine.step

        def traced_step(instr):
            self.record(machine.pc, machine.stats.cycles, instr)
            return original_step(instr)

        return traced_step

    def __len__(self) -> int:
        return len(self.entries)

    def listing(self) -> str:
        """The buffered trace as text."""
        return "\n".join(str(e) for e in self.entries)
