"""Simulator error types."""

from __future__ import annotations

__all__ = ["SimulationError", "UnsupportedInstruction", "RunawayProgram"]


class SimulationError(RuntimeError):
    """Base class for simulator failures."""


class UnsupportedInstruction(SimulationError):
    """An opcode the configured machine cannot execute (e.g. BUT4 on the
    plain base core without the FFT extension)."""


class RunawayProgram(SimulationError):
    """The instruction budget was exhausted without reaching HALT."""
