"""Simulation statistics: the counters Table I / Table II report."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SimStats"]


@dataclass
class SimStats:
    """Counters accumulated during one simulation run.

    ``cycles`` comes from the timing model (pipeline + cache penalties);
    ``loads``/``stores`` count *data memory* operations — LDIN/STOUT count
    once per instruction, like the lw/sw they replace (the paper's Table II
    counts instructions, not bus beats).
    """

    cycles: int = 0
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    dcache_hits: int = 0
    dcache_misses: int = 0
    branches: int = 0
    taken_branches: int = 0
    stall_cycles: int = 0
    custom_ops: dict = field(default_factory=dict)

    def count_custom(self, mnemonic: str) -> None:
        """Bump the per-custom-op counter."""
        self.custom_ops[mnemonic] = self.custom_ops.get(mnemonic, 0) + 1

    @property
    def memory_operations(self) -> int:
        """Total loads + stores."""
        return self.loads + self.stores

    @property
    def dcache_accesses(self) -> int:
        """Total data-cache accesses."""
        return self.dcache_hits + self.dcache_misses

    @property
    def miss_rate(self) -> float:
        """Data-cache miss rate (0 when the cache was never touched)."""
        accesses = self.dcache_accesses
        return self.dcache_misses / accesses if accesses else 0.0

    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        return self.cycles / self.instructions if self.instructions else 0.0

    def as_dict(self) -> dict:
        """Flat dictionary for table rendering."""
        out = {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "loads": self.loads,
            "stores": self.stores,
            "dcache_misses": self.dcache_misses,
            "dcache_hits": self.dcache_hits,
            "branches": self.branches,
            "stall_cycles": self.stall_cycles,
        }
        for k, v in sorted(self.custom_ops.items()):
            out[f"op_{k}"] = v
        return out
