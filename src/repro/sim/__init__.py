"""Instruction-set simulator substrate (SimpleScalar-equivalent role)."""

from .ac_logic import AddressChangingLogic, BUAddresses
from .bu_unit import BUFunctionalUnit
from .cache import CacheConfig, DataCache
from .crf import CustomRegisterFile
from .errors import RunawayProgram, SimulationError, UnsupportedInstruction
from .machine import Machine
from .memory import MainMemory
from .pipeline import PipelineConfig, pipeline_preset
from .rom import CoefficientROM
from .stats import SimStats
from .trace import ExecutionTrace, TraceEntry

__all__ = [
    "Machine",
    "MainMemory",
    "DataCache",
    "CacheConfig",
    "PipelineConfig",
    "pipeline_preset",
    "SimStats",
    "CustomRegisterFile",
    "CoefficientROM",
    "AddressChangingLogic",
    "BUAddresses",
    "BUFunctionalUnit",
    "ExecutionTrace",
    "TraceEntry",
    "SimulationError",
    "UnsupportedInstruction",
    "RunawayProgram",
]
