"""Custom Register File (CRF) — the on-chip store for epoch intermediates.

The CRF holds one group of intermediate results (``P`` complex entries for
the larger epoch).  The verified dataflow is ping-pong: each stage reads
its input column from one bank (at the AC-generated addresses) and writes
its output column to the other bank at natural positions, then the banks
swap — matching Fig. 2's two data columns sandwiching the butterflies.

Entries are complex values; in fixed-point mode the ASIP quantises on
load, so the CRF merely stores what it is given.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CustomRegisterFile"]


class CustomRegisterFile:
    """Double-banked register file of ``entries`` complex values."""

    def __init__(self, entries: int):
        if entries <= 0:
            raise ValueError(f"CRF needs a positive size, got {entries}")
        self.entries = entries
        self._banks = [
            np.zeros(entries, dtype=complex),
            np.zeros(entries, dtype=complex),
        ]
        self._active = 0
        self.reads = 0
        self.writes = 0

    @property
    def active_bank(self) -> int:
        """Index of the bank currently holding live data."""
        return self._active

    def _check(self, address: int) -> None:
        if not (0 <= address < self.entries):
            raise IndexError(
                f"CRF address {address} out of range [0, {self.entries})"
            )

    def read(self, address: int) -> complex:
        """Read one entry from the active bank."""
        self._check(address)
        self.reads += 1
        return complex(self._banks[self._active][address])

    def write(self, address: int, value: complex) -> None:
        """Write one entry to the active bank (used by LDIN)."""
        self._check(address)
        self.writes += 1
        self._banks[self._active][address] = value

    def write_shadow(self, address: int, value: complex) -> None:
        """Write to the inactive bank (stage outputs before the swap)."""
        self._check(address)
        self.writes += 1
        self._banks[1 - self._active][address] = value

    def read_many(self, addresses: np.ndarray) -> np.ndarray:
        """Gather entries from the active bank at an index array.

        Counts one read per address, like ``len(addresses)`` calls of
        :meth:`read`.  Callers must supply non-negative in-range indices
        (the AC logic validates its tables once at build time); the
        fancy index rejects overruns but would wrap negatives.
        """
        self.reads += len(addresses)
        return self._banks[self._active][addresses]

    def write_shadow_many(self, addresses: np.ndarray, values) -> None:
        """Scatter a value array into the inactive bank (stage outputs)."""
        self.writes += len(addresses)
        self._banks[1 - self._active][addresses] = values

    def swap_banks(self) -> None:
        """Make the shadow bank active (end of a stage)."""
        self._active = 1 - self._active

    def snapshot(self) -> np.ndarray:
        """Copy of the active bank's contents."""
        return self._banks[self._active].copy()

    def load_vector(self, values) -> None:
        """Bulk-load the active bank (test/debug convenience)."""
        values = np.asarray(values, dtype=complex)
        if len(values) != self.entries:
            raise ValueError(
                f"expected {self.entries} values, got {len(values)}"
            )
        self._banks[self._active][:] = values
