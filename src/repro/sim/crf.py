"""Custom Register File (CRF) — the on-chip store for epoch intermediates.

The CRF holds one group of intermediate results (``P`` complex entries for
the larger epoch).  The verified dataflow is ping-pong: each stage reads
its input column from one bank (at the AC-generated addresses) and writes
its output column to the other bank at natural positions, then the banks
swap — matching Fig. 2's two data columns sandwiching the butterflies.

Two storage modes model the same architectural state:

* **complex mode** (default) — each bank is a complex vector; in
  fixed-point operation the ASIP quantises on load, so every stored value
  lies on the Q1.15 grid and the CRF merely stores what it is given.
* **int mode** (``int_mode=True``) — each bank is a struct-of-arrays pair
  of int64 ``re``/``im`` component vectors holding the Q1.15 integers
  directly.  This is the storage the vectorised Q1.15 BUT4 path operates
  on; the scalar accessors convert on the fly (losslessly, since every
  value is on the grid), so the per-op oracle path stays bit-true.

An optional leading **batch axis** (``batch=n``) turns every entry into a
column of ``n`` symbols: gathers and scatters move ``(n, k)`` blocks and
the access counters advance by ``n`` per architectural access, exactly as
``n`` serial symbol runs would.
"""

from __future__ import annotations

import numpy as np

from ..core.fixed_point import (
    fixed_to_complex_array,
    quantize,
    quantize_array,
)

__all__ = ["CustomRegisterFile"]


class CustomRegisterFile:
    """Double-banked register file of ``entries`` complex values."""

    def __init__(self, entries: int, int_mode: bool = False,
                 batch: int = None):
        if entries <= 0:
            raise ValueError(f"CRF needs a positive size, got {entries}")
        if batch is not None and batch <= 0:
            raise ValueError(f"CRF batch must be positive, got {batch}")
        self.entries = entries
        self.int_mode = bool(int_mode)
        self.batch = batch
        lead = () if batch is None else (batch,)
        shape = (2,) + lead + (entries,)
        if self.int_mode:
            self._re = np.zeros(shape, dtype=np.int64)
            self._im = np.zeros(shape, dtype=np.int64)
        else:
            self._data = np.zeros(shape, dtype=complex)
        self._active = 0
        self.reads = 0
        self.writes = 0

    @property
    def active_bank(self) -> int:
        """Index of the bank currently holding live data."""
        return self._active

    def _check(self, address: int) -> None:
        if not (0 <= address < self.entries):
            raise IndexError(
                f"CRF address {address} out of range [0, {self.entries})"
            )

    def _tally(self, count: int) -> int:
        """Architectural accesses for ``count`` entry touches."""
        return count if self.batch is None else count * self.batch

    # Scalar accessors (one entry — a symbol column in batch mode) --------

    def read(self, address: int):
        """Read one entry from the active bank.

        Returns a Python complex (complex column in batch mode).
        """
        self._check(address)
        self.reads += self._tally(1)
        if self.int_mode:
            re = self._re[self._active][..., address]
            im = self._im[self._active][..., address]
            if self.batch is None:
                return complex(fixed_to_complex_array(re, im))
            return fixed_to_complex_array(re, im)
        value = self._data[self._active][..., address]
        return complex(value) if self.batch is None else value.copy()

    def write(self, address: int, value) -> None:
        """Write one entry to the active bank (used by LDIN)."""
        self._write_bank(self._active, address, value)

    def write_shadow(self, address: int, value) -> None:
        """Write to the inactive bank (stage outputs before the swap)."""
        self._write_bank(1 - self._active, address, value)

    def _write_bank(self, bank: int, address: int, value) -> None:
        self._check(address)
        self.writes += self._tally(1)
        if self.int_mode:
            if np.ndim(value):
                re, im = quantize_array(value)
            else:
                q = quantize(complex(value))
                re, im = q.re, q.im
            self._re[bank][..., address] = re
            self._im[bank][..., address] = im
        else:
            self._data[bank][..., address] = value

    # Vectorised accessors -------------------------------------------------

    def read_many(self, addresses: np.ndarray) -> np.ndarray:
        """Gather entries from the active bank at an index array.

        Counts one read per address (per symbol in batch mode), like
        ``len(addresses)`` calls of :meth:`read`.  Callers must supply
        non-negative in-range indices (the AC logic validates its tables
        once at build time); the fancy index rejects overruns but would
        wrap negatives.
        """
        self.reads += self._tally(len(addresses))
        if self.int_mode:
            return fixed_to_complex_array(
                self._re[self._active][..., addresses],
                self._im[self._active][..., addresses],
            )
        return self._banks_data(self._active)[..., addresses]

    def read_many_fixed(self, addresses: np.ndarray) -> tuple:
        """Gather Q1.15 ``(re, im)`` components (int mode only)."""
        if not self.int_mode:
            raise ValueError("read_many_fixed needs an int-mode CRF")
        self.reads += self._tally(len(addresses))
        return (
            self._re[self._active][..., addresses],
            self._im[self._active][..., addresses],
        )

    def write_many(self, addresses: np.ndarray, values) -> None:
        """Scatter a value block into the active bank (LDIN columns)."""
        self._scatter(self._active, addresses, values)

    def write_shadow_many(self, addresses: np.ndarray, values) -> None:
        """Scatter a value array into the inactive bank (stage outputs)."""
        self._scatter(1 - self._active, addresses, values)

    def _scatter(self, bank: int, addresses: np.ndarray, values) -> None:
        self.writes += self._tally(len(addresses))
        if self.int_mode:
            re, im = quantize_array(values)
            self._re[bank][..., addresses] = re
            self._im[bank][..., addresses] = im
        else:
            self._data[bank][..., addresses] = values

    def write_many_fixed(self, addresses: np.ndarray, re, im) -> None:
        """Scatter Q1.15 components into the active bank (int mode)."""
        self._scatter_fixed(self._active, addresses, re, im)

    def write_shadow_many_fixed(self, addresses: np.ndarray, re, im) -> None:
        """Scatter Q1.15 components into the inactive bank (int mode)."""
        self._scatter_fixed(1 - self._active, addresses, re, im)

    def _scatter_fixed(self, bank: int, addresses: np.ndarray,
                       re, im) -> None:
        if not self.int_mode:
            raise ValueError("fixed-component scatter needs an int-mode CRF")
        self.writes += self._tally(len(addresses))
        self._re[bank][..., addresses] = re
        self._im[bank][..., addresses] = im

    def _banks_data(self, bank: int) -> np.ndarray:
        return self._data[bank]

    # Bank management ------------------------------------------------------

    def swap_banks(self) -> None:
        """Make the shadow bank active (end of a stage)."""
        self._active = 1 - self._active

    def snapshot(self) -> np.ndarray:
        """Copy of the active bank's contents as complex values."""
        if self.int_mode:
            return fixed_to_complex_array(
                self._re[self._active], self._im[self._active]
            )
        return self._data[self._active].copy()

    def load_vector(self, values) -> None:
        """Bulk-load the active bank (test/debug convenience).

        In int mode values are quantised on load — the same convention as
        the ASIP's LDIN.
        """
        values = np.asarray(values, dtype=complex)
        expected = (self.entries,) if self.batch is None else (
            self.batch, self.entries
        )
        if values.shape != expected:
            raise ValueError(
                f"expected values of shape {expected}, got {values.shape}"
            )
        if self.int_mode:
            re, im = quantize_array(values)
            self._re[self._active][...] = re
            self._im[self._active][...] = im
        else:
            self._data[self._active][...] = values

    # Symbol-batch staging -------------------------------------------------

    def batched_clone(self, n: int) -> "CustomRegisterFile":
        """A batched copy: every symbol starts from this CRF's state.

        Counters carry over so the batched run's accounting continues the
        serial totals (each batched access then advances them by ``n``).
        """
        clone = CustomRegisterFile(self.entries, int_mode=self.int_mode,
                                   batch=n)
        clone._active = self._active
        clone.reads = self.reads
        clone.writes = self.writes
        if self.int_mode:
            clone._re[:] = self._re[:, None, :]
            clone._im[:] = self._im[:, None, :]
        else:
            clone._data[:] = self._data[:, None, :]
        return clone

    def adopt_last_symbol(self, batched: "CustomRegisterFile") -> None:
        """Fold a batched run's end state back: last symbol + counters."""
        if batched.batch is None:
            raise ValueError("adopt_last_symbol needs a batched CRF")
        self._active = batched._active
        self.reads = batched.reads
        self.writes = batched.writes
        if self.int_mode:
            self._re[:] = batched._re[:, -1, :]
            self._im[:] = batched._im[:, -1, :]
        else:
            self._data[:] = batched._data[:, -1, :]
