"""The BU functional unit as wired into the ASIP's EX stage.

Wraps :class:`repro.core.butterfly.ButterflyUnit` with the CRF/ROM access
pattern of one BUT4 operation: gather 8 operands at the AC-generated read
addresses from the active CRF bank, compute 4 butterflies, scatter the
outputs to the shadow bank at natural positions.
"""

from __future__ import annotations

from ..core.butterfly import BUOperands, ButterflyUnit
from .ac_logic import BUAddresses
from .crf import CustomRegisterFile
from .rom import CoefficientROM

__all__ = ["BUFunctionalUnit"]


class BUFunctionalUnit:
    """Execution-stage wrapper: CRF/ROM in, CRF out."""

    def __init__(self, arithmetic=None):
        self.unit = ButterflyUnit(arithmetic=arithmetic)

    @property
    def op_count(self) -> int:
        """Number of BUT4 operations executed."""
        return self.unit.op_count

    def execute(self, addresses: BUAddresses, crf: CustomRegisterFile,
                rom: CoefficientROM, group_size: int) -> None:
        """Run one BUT4 against the CRF and ROM."""
        first = tuple(crf.read(a) for a in addresses.crf_reads_first)
        second = tuple(crf.read(a) for a in addresses.crf_reads_second)
        coefficients = tuple(
            rom.read_for_size(a, group_size)
            for a in addresses.rom_addresses
        )
        sums, diffs = self.unit.execute(
            BUOperands(first=first, second=second, coefficients=coefficients)
        )
        for position, value in zip(addresses.crf_writes_first, sums):
            crf.write_shadow(position, value)
        for position, value in zip(addresses.crf_writes_second, diffs):
            crf.write_shadow(position, value)
