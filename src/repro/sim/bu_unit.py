"""The BU functional unit as wired into the ASIP's EX stage.

Wraps :class:`repro.core.butterfly.ButterflyUnit` with the CRF/ROM access
pattern of one BUT4 operation: gather 8 operands at the AC-generated read
addresses from the active CRF bank, compute 4 butterflies, scatter the
outputs to the shadow bank at natural positions.
"""

from __future__ import annotations

import numpy as np

from ..core.butterfly import BUOperands, ButterflyUnit
from .ac_logic import BUAddresses
from .crf import CustomRegisterFile
from .rom import CoefficientROM

__all__ = ["BUFunctionalUnit"]


class BUFunctionalUnit:
    """Execution-stage wrapper: CRF/ROM in, CRF out."""

    def __init__(self, arithmetic=None):
        self.unit = ButterflyUnit(arithmetic=arithmetic)

    @property
    def op_count(self) -> int:
        """Number of BUT4 operations executed."""
        return self.unit.op_count

    def execute_indices(self, reads: np.ndarray, rom_addresses: np.ndarray,
                        writes: np.ndarray, lanes: int,
                        crf: CustomRegisterFile, rom: CoefficientROM,
                        group_size: int) -> None:
        """Vectorised BUT4: one gather, whole-lane butterflies, one scatter.

        ``reads``/``writes`` are the concatenated first+second index
        arrays from :meth:`AddressChangingLogic.index_arrays`.  Access
        counting (CRF reads/writes, ROM reads, BU op count) is identical
        to the scalar :meth:`execute` path — per symbol when the CRF
        carries a batch axis.  The arithmetic is the same computation
        element-wise over the lanes (and any batch axis): bit-identical
        on the Q1.15 int-array datapath, and equal to rounding noise
        (~1 ulp, numpy's compiled complex multiply vs Python scalars) on
        the float one.
        """
        self._execute_column(reads, rom_addresses, writes, lanes, 1,
                             crf, rom, group_size)

    def execute_span(self, reads: np.ndarray, rom_addresses: np.ndarray,
                     writes: np.ndarray, lanes: int, ops: int,
                     crf: CustomRegisterFile, rom: CoefficientROM,
                     group_size: int) -> None:
        """Run ``ops`` consecutive BUT4s of one stage as one column op.

        ``reads``/``writes``/``rom_addresses`` come from
        :meth:`AddressChangingLogic.span_arrays`; counting equals ``ops``
        scalar executions (``op_count += ops``, one CRF read/write per
        index, one ROM read per coefficient, each per symbol in batch
        mode).  Supports the float datapath and the int-array Q1.15 CRF;
        a scalar-lane fixed-point configuration must go through
        :meth:`execute`/:meth:`execute_indices` so quantisation happens
        per lane.
        """
        if self.unit.arithmetic is not None and not crf.int_mode:
            raise ValueError(
                "execute_span supports only the float datapath or the "
                "int-array Q1.15 CRF; scalar-lane fixed-point BUT4s must "
                "execute per op"
            )
        self._execute_column(reads, rom_addresses, writes, lanes, ops,
                             crf, rom, group_size)

    def _execute_column(self, reads, rom_addresses, writes, lanes, ops,
                        crf, rom, group_size) -> None:
        symbols = crf.batch or 1
        self.unit.op_count += ops * symbols
        rom_count = len(rom_addresses) * symbols
        arithmetic = self.unit.arithmetic
        if arithmetic is not None and crf.int_mode:
            # Whole-column Q1.15: the int64 component arrays run through
            # the vectorised FixedPointContext ops — bit-identical to the
            # scalar lanes, overflow counts included.
            fx = arithmetic.context
            re, im = crf.read_many_fixed(reads)
            wr, wi = rom.read_many_fixed_for_size(
                rom_addresses, group_size, count=rom_count
            )
            sr, si, dr, di = fx.butterfly_arrays(
                re[..., :lanes], im[..., :lanes],
                re[..., lanes:], im[..., lanes:], wr, wi,
            )
            crf.write_shadow_many_fixed(
                writes,
                np.concatenate((sr, dr), axis=-1),
                np.concatenate((si, di), axis=-1),
            )
            return
        values = crf.read_many(reads)
        a = values[..., :lanes]
        b = values[..., lanes:]
        w = rom.read_many_for_size(rom_addresses, group_size,
                                   count=rom_count)
        if arithmetic is None:
            t = w * b
            out = np.empty_like(values)
            out[..., :lanes] = a + t
            out[..., lanes:] = a - t
        else:
            out = arithmetic.butterfly_column(a, b, w)
        crf.write_shadow_many(writes, out)

    def execute(self, addresses: BUAddresses, crf: CustomRegisterFile,
                rom: CoefficientROM, group_size: int) -> None:
        """Run one BUT4 against the CRF and ROM."""
        first = tuple(crf.read(a) for a in addresses.crf_reads_first)
        second = tuple(crf.read(a) for a in addresses.crf_reads_second)
        coefficients = tuple(
            rom.read_for_size(a, group_size)
            for a in addresses.rom_addresses
        )
        sums, diffs = self.unit.execute(
            BUOperands(first=first, second=second, coefficients=coefficients)
        )
        for position, value in zip(addresses.crf_writes_first, sums):
            crf.write_shadow(position, value)
        for position, value in zip(addresses.crf_writes_second, diffs):
            crf.write_shadow(position, value)
