"""The paper's core contribution: the scalable array-structured FFT."""

from .array_fft import ArrayFFT, array_fft
from .breaker import CircuitBreaker
from .butterfly import BUOperands, ButterflyUnit, radix2_butterfly
from .compiled import CompiledArrayFFT, CompiledStage
from .interleaved import InterleavedArrayFFT
from .fixed_point import (
    FixedComplex,
    FixedPointContext,
    fixed_to_complex_array,
    quantize,
    quantize_array,
    round_shift_array,
    snr_db,
)
from .parallel import ShardedEngine, available_workers, stream_sharded
from .plan import ArrayFFTPlan, EpochPlan, StagePlan, build_plan
from .schedule import BUOp, horizontal_schedule, interleaved_schedule

__all__ = [
    "ArrayFFT",
    "array_fft",
    "ShardedEngine",
    "CircuitBreaker",
    "available_workers",
    "stream_sharded",
    "CompiledArrayFFT",
    "CompiledStage",
    "InterleavedArrayFFT",
    "quantize_array",
    "round_shift_array",
    "fixed_to_complex_array",
    "ButterflyUnit",
    "BUOperands",
    "radix2_butterfly",
    "FixedPointContext",
    "FixedComplex",
    "quantize",
    "snr_db",
    "ArrayFFTPlan",
    "EpochPlan",
    "StagePlan",
    "build_plan",
    "BUOp",
    "horizontal_schedule",
    "interleaved_schedule",
]
