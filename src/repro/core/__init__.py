"""The paper's core contribution: the scalable array-structured FFT."""

from .array_fft import ArrayFFT, array_fft
from .butterfly import BUOperands, ButterflyUnit, radix2_butterfly
from .interleaved import InterleavedArrayFFT
from .fixed_point import FixedComplex, FixedPointContext, quantize, snr_db
from .plan import ArrayFFTPlan, EpochPlan, StagePlan, build_plan
from .schedule import BUOp, horizontal_schedule, interleaved_schedule

__all__ = [
    "ArrayFFT",
    "array_fft",
    "InterleavedArrayFFT",
    "ButterflyUnit",
    "BUOperands",
    "radix2_butterfly",
    "FixedPointContext",
    "FixedComplex",
    "quantize",
    "snr_db",
    "ArrayFFTPlan",
    "EpochPlan",
    "StagePlan",
    "build_plan",
    "BUOp",
    "horizontal_schedule",
    "interleaved_schedule",
]
