"""Execution plan for an N-point array FFT.

A plan captures everything that is static for a given FFT size: the epoch
split, per-stage CRF read-address sequences, per-stage ROM coefficient
indices, the BU op schedule, and the memory address maps of the epoch
boundaries.  The ASIP decoder's AC logic is exactly a hardware realisation
of these tables; building them once per size mirrors how the real decoder
derives them combinationally from (stage, module) operands.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..addressing.bitops import bit_width_of
from ..addressing.coefficients import rom_coefficient_index
from ..addressing.epoch import EpochSplit, split_epochs
from ..addressing.local import stage_input_addresses

__all__ = ["StagePlan", "EpochPlan", "ArrayFFTPlan", "build_plan"]


@dataclass(frozen=True)
class StagePlan:
    """Static tables for one stage of a group FFT.

    Attributes
    ----------
    stage:
        1-origin stage index within the epoch.
    read_addresses:
        CRF address ``read_addresses[r]`` feeding column position ``r``
        (the accumulated local switches, L rule).
    coefficient_indices:
        ROM address of flat butterfly ``m``, ``m = 0 .. size/2 - 1``.
    modules:
        Number of BUT4 ops needed for the stage (``max(size/8, 1)``).
    """

    stage: int
    read_addresses: tuple
    coefficient_indices: tuple
    modules: int


@dataclass(frozen=True)
class EpochPlan:
    """Static tables for one epoch: group size/count plus stage plans."""

    epoch: int
    group_size: int
    group_count: int
    stages: tuple

    @property
    def stage_count(self) -> int:
        """Number of butterfly stages per group in this epoch."""
        return len(self.stages)

    @property
    def but4_per_group(self) -> int:
        """BUT4 instruction count for one group of this epoch."""
        return sum(s.modules for s in self.stages)


@dataclass(frozen=True)
class ArrayFFTPlan:
    """Complete static description of an N-point array FFT run."""

    split: EpochSplit
    epochs: tuple
    crf_entries: int = field(default=0)

    @property
    def n_points(self) -> int:
        """Total FFT size N."""
        return self.split.N

    @property
    def total_but4(self) -> int:
        """Total BUT4 ops across both epochs (all groups, all stages)."""
        return sum(e.group_count * e.but4_per_group for e in self.epochs)

    @property
    def total_ldin(self) -> int:
        """Total LDIN ops (two points per op over the 64-bit bus)."""
        return sum(
            e.group_count * max(e.group_size // 2, 1) for e in self.epochs
        )

    @property
    def total_stout(self) -> int:
        """Total STOUT ops (two points per op)."""
        return self.total_ldin

    @property
    def prerotation_ops(self) -> int:
        """Pre-rotation multiply ops at the end of epoch 0 (one per point
        of each epoch-0 group, two points per cycle on the 64-bit path)."""
        epoch0 = self.epochs[0]
        return epoch0.group_count * max(epoch0.group_size // 2, 1)


def _build_epoch(epoch: int, group_size: int, group_count: int) -> EpochPlan:
    p = bit_width_of(group_size)
    stages = []
    for stage in range(1, p + 1):
        reads = tuple(stage_input_addresses(p, stage))
        coeffs = tuple(
            rom_coefficient_index(group_size, stage, m)
            for m in range(group_size // 2)
        )
        stages.append(
            StagePlan(
                stage=stage,
                read_addresses=reads,
                coefficient_indices=coeffs,
                modules=max(group_size // 8, 1),
            )
        )
    return EpochPlan(
        epoch=epoch,
        group_size=group_size,
        group_count=group_count,
        stages=tuple(stages),
    )


def build_plan(n_points: int, split: EpochSplit = None) -> ArrayFFTPlan:
    """Build the static plan for an ``n_points`` array FFT.

    The CRF must hold one group of the larger epoch, i.e. ``P`` entries —
    the paper's "P-entry CRF".
    """
    if split is None:
        split = split_epochs(n_points)
    if split.N != n_points:
        raise ValueError(
            f"split is for N={split.N}, expected N={n_points}"
        )
    epochs = (
        _build_epoch(0, split.P, split.Q),
        _build_epoch(1, split.Q, split.P),
    )
    return ArrayFFTPlan(split=split, epochs=epochs, crf_entries=split.P)
