"""Butterfly Unit (BU): four parallel radix-2 butterflies over 8 points.

The BU is the paper's fixed compute module (Fig. 2 / Fig. 4): every stage
of every group FFT is executed as repeated applications of this one unit.
Operationally a stage over a ``2**p``-entry column applies the *half-split*
pairing — butterfly ``m`` combines column positions ``m`` and ``m + P/2``
with the twiddle applied to the second input (DIT style):

    out[m]        = col[m] + W * col[m + P/2]
    out[m + P/2]  = col[m] - W * col[m + P/2]

One hardware BU op covers four consecutive butterflies (module ``i`` covers
flat butterflies ``4(i-1) .. 4i-1``), i.e. 8 data points per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["radix2_butterfly", "ButterflyUnit", "BUOperands"]


def radix2_butterfly(a: complex, b: complex, w: complex) -> tuple:
    """Single radix-2 DIT butterfly: returns ``(a + w*b, a - w*b)``."""
    t = w * b
    return a + t, a - t


@dataclass(frozen=True)
class BUOperands:
    """The 8 input values and 4 coefficients consumed by one BU op."""

    first: tuple   # 4 values at column positions m .. m+3
    second: tuple  # 4 values at column positions m + P/2 .. m+3 + P/2
    coefficients: tuple  # 4 twiddles from the ROM

    def __post_init__(self):
        if not (len(self.first) == len(self.second) == len(self.coefficients)):
            raise ValueError("BU operands must have matching lane counts")
        if len(self.first) > 4:
            raise ValueError("a BU has at most 4 butterfly lanes")


class ButterflyUnit:
    """The vectorised 4-butterfly functional unit.

    ``arithmetic`` selects the datapath: the default complex-float model,
    or a :class:`repro.core.fixed_point.FixedPointContext` for the Q1.15
    hardware datapath.  The unit counts its invocations so the simulator
    and the hardware-cost model can report utilisation.
    """

    LANES = 4
    POINTS = 8

    def __init__(self, arithmetic=None):
        self.arithmetic = arithmetic
        self.op_count = 0

    def reset_stats(self) -> None:
        """Clear the operation counter."""
        self.op_count = 0

    def execute(self, operands: BUOperands) -> tuple:
        """Run up to 4 butterflies; returns (sums, differences) tuples."""
        self.op_count += 1
        sums, diffs = [], []
        for a, b, w in zip(
            operands.first, operands.second, operands.coefficients
        ):
            if self.arithmetic is None:
                s, d = radix2_butterfly(a, b, w)
            else:
                s, d = self.arithmetic.butterfly(a, b, w)
            sums.append(s)
            diffs.append(d)
        return tuple(sums), tuple(diffs)

    def execute_column(self, column: np.ndarray, coefficients) -> np.ndarray:
        """Apply a whole stage to a column using repeated BU ops.

        ``column`` has ``P`` entries (P may be smaller than 8 for tiny
        groups); ``coefficients[m]`` is the twiddle of flat butterfly
        ``m``.  Returns the output column; the caller handles storage.
        """
        size = len(column)
        half = size // 2
        if len(coefficients) != half:
            raise ValueError(
                f"need {half} coefficients for a {size}-entry column, "
                f"got {len(coefficients)}"
            )
        out = np.empty(size, dtype=column.dtype)
        for base in range(0, half, self.LANES):
            lanes = min(self.LANES, half - base)
            ops = BUOperands(
                first=tuple(column[base + k] for k in range(lanes)),
                second=tuple(column[base + half + k] for k in range(lanes)),
                coefficients=tuple(
                    coefficients[base + k] for k in range(lanes)
                ),
            )
            sums, diffs = self.execute(ops)
            for k in range(lanes):
                out[base + k] = sums[k]
                out[base + half + k] = diffs[k]
        return out
