"""Circuit breaker for self-healing degraded resources.

:class:`CircuitBreaker` tracks the health of one recoverable resource
(here: the :class:`~repro.core.parallel.ShardedEngine` worker pool)
through the classic three-state protocol:

* **closed** — healthy; attempts are allowed.
* **open** — a failure was recorded; attempts are refused until a
  capped-exponential backoff elapses (``backoff_initial * 2**(k-1)``
  seconds after the *k*-th consecutive failure, capped at
  ``backoff_max``).  Refused attempts cost one clock read — there is no
  retry storm while the resource is known-bad.
* **half-open** — the backoff elapsed; exactly one caller is admitted
  as a probe.  If the probe succeeds (:meth:`record_success`) the
  breaker closes and the failure count resets; if it fails the breaker
  re-opens with a doubled backoff.

The breaker is thread-safe (one internal lock; no callbacks held under
it) and deliberately knows nothing about *what* it protects — callers
ask :meth:`allow_attempt` before using the resource and report the
outcome.  Counters for opened episodes (degraded transitions) and
recoveries feed the serve tier's health registry.
"""

from __future__ import annotations

import threading
import time

__all__ = ["CircuitBreaker"]


def _emit(name: str, **attributes) -> None:
    """Telemetry instant event for a state change (no-op when disabled).

    Imported lazily so this leaf module adds nothing to ``repro.core``'s
    import graph; transitions are rare, so the ``sys.modules`` hit is
    irrelevant.  Called *outside* the breaker lock.
    """
    from .. import telemetry

    if telemetry.enabled():
        telemetry.event(name, **attributes)


class CircuitBreaker:
    """Three-state (closed/open/half-open) breaker with capped backoff.

    Parameters
    ----------
    backoff_initial:
        Seconds to stay open after the first failure of an episode.
    backoff_max:
        Cap on the exponential backoff.
    clock:
        Monotonic time source (injectable for tests).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, backoff_initial: float = 0.5,
                 backoff_max: float = 30.0, clock=time.monotonic):
        self.backoff_initial = max(float(backoff_initial), 0.0)
        self.backoff_max = max(float(backoff_max), self.backoff_initial)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0          # consecutive failures this episode
        self._retry_at = 0.0        # clock time the next probe may run
        self.last_failure_reason = None
        #: fresh closed->open transitions (degraded episodes) so far.
        self.opened_count = 0
        #: open->closed recoveries (successful half-open probes) so far.
        self.recovered_count = 0

    # Introspection -------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state name (``closed`` / ``open`` / ``half-open``)."""
        with self._lock:
            return self._state

    @property
    def failures(self) -> int:
        """Consecutive failures in the current episode (0 when closed)."""
        with self._lock:
            return self._failures

    def snapshot(self) -> dict:
        """One dict of state + counters for health registries."""
        with self._lock:
            retry_in = max(self._retry_at - self._clock(), 0.0) \
                if self._state == self.OPEN else 0.0
            return {
                "state": self._state,
                "failures": self._failures,
                "retry_in_s": retry_in,
                "opened": self.opened_count,
                "recovered": self.recovered_count,
                "last_failure": self.last_failure_reason,
            }

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (f"CircuitBreaker({snap['state']}, "
                f"failures={snap['failures']}, opened={snap['opened']}, "
                f"recovered={snap['recovered']})")

    # Protocol ------------------------------------------------------------

    def allow_attempt(self) -> bool:
        """May the caller use the resource right now?

        Closed: yes.  Open: yes exactly once the backoff has elapsed
        (the call itself transitions to half-open, admitting this
        caller as the single probe); otherwise no.  Half-open: no — a
        probe is already in flight.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN and self._clock() >= self._retry_at:
                self._state = self.HALF_OPEN
                probing = True
            else:
                return False
        if probing:
            _emit("breaker.half-open")
        return True

    def record_failure(self, reason: str = "failure") -> bool:
        """Report a failed attempt; returns True on a *fresh* episode.

        A fresh episode is the closed->open transition — the one moment
        callers should emit their degradation warning.  Failed half-open
        probes re-open silently with a doubled (capped) backoff.
        """
        with self._lock:
            fresh = self._state == self.CLOSED
            self._failures += 1
            failures = self._failures
            backoff = min(
                self.backoff_initial * (2.0 ** (self._failures - 1)),
                self.backoff_max,
            )
            self._retry_at = self._clock() + backoff
            self._state = self.OPEN
            self.last_failure_reason = reason
            if fresh:
                self.opened_count += 1
        # Outside the lock (the class promise: no callbacks held under it).
        _emit("breaker.open", reason=reason, fresh=fresh,
              failures=failures, backoff_s=backoff)
        return fresh

    def record_success(self) -> None:
        """Report a successful attempt; closes the breaker.

        A success after an open episode (the half-open probe worked)
        counts as a recovery; successes while already closed are free.
        """
        with self._lock:
            recovered = self._state != self.CLOSED
            if recovered:
                self.recovered_count += 1
            self._state = self.CLOSED
            self._failures = 0
            self._retry_at = 0.0
        if recovered:
            _emit("breaker.closed", recovered=True)

    def reset(self) -> None:
        """Force-close and forget the current episode (test/admin hook)."""
        with self._lock:
            self._state = self.CLOSED
            self._failures = 0
            self._retry_at = 0.0

    def force_open(self, reason: str = "forced open") -> None:
        """Force-open with the current backoff (test/admin hook)."""
        with self._lock:
            fresh = self._state == self.CLOSED
            if fresh:
                self._failures = max(self._failures, 1)
                self.opened_count += 1
            backoff = min(
                self.backoff_initial * (2.0 ** (self._failures - 1)),
                self.backoff_max,
            )
            self._retry_at = self._clock() + backoff
            self._state = self.OPEN
            self.last_failure_reason = reason
        _emit("breaker.open", reason=reason, fresh=fresh, forced=True)
