"""Sharded parallel batch engine: ``transform_many`` across a process pool.

One :class:`ShardedEngine` owns a serial :class:`~repro.core.ArrayFFT`
and, lazily, a worker pool.  Large ``(n_symbols, N)`` batches are split
into one shard per worker and transformed concurrently; each worker
process builds its engine (plan, ROM, pre-rotation store, compiled
tables) exactly once via the pool initializer, so per-call traffic is
only the shard data.  The compiled datapaths are deterministic
element-wise per symbol, so sharded output is bit-identical to the
serial path — asserted in ``tests/test_parallel.py``.

Robustness rules (all covered by tests):

* batches below ``min_parallel_symbols`` run serially — fan-out overhead
  would swamp the win;
* ``workers < 2`` never builds a pool;
* any pool failure (spawn refusal, broken pool, a SIGKILLed worker,
  pickling error) opens a :class:`~repro.core.breaker.CircuitBreaker`
  and falls back to the serial engine — results are always produced.
  The first failure of an episode emits a single
  :class:`RuntimeWarning` and the engine carries ``degraded=True``
  while the breaker is open; the facade
  (:class:`repro.engines.Engine`) copies that marker onto every
  :class:`~repro.engines.TransformResult` produced meanwhile.  Unlike
  the original broken-for-life flag, the breaker *self-heals*: after a
  capped exponential backoff one batch is admitted as a half-open
  probe on a freshly spawned pool, and a successful probe restores
  parallel execution (clearing ``degraded``).  There is still no retry
  storm — refused attempts inside the backoff window cost one clock
  read and run serially.

Fixed-point bookkeeping survives sharding: workers report their
overflow-count deltas, which are folded into the parent engine's
:class:`FixedPointContext`, and the parent's ``ButterflyUnit`` op count
advances by the plan total per symbol exactly as the serial path does.

The module also shards the *instruction-level* streaming workload:
:func:`stream_sharded` splits a symbol stream across worker processes
each streaming through a facade ``asip-batch`` engine; the per-shard
:class:`~repro.engines.TransformResult`\\ s merge through
:func:`repro.engines.concat_results` (cycle counts are deterministic,
so the merged totals equal a single-machine run).
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from .array_fft import ArrayFFT
from .breaker import CircuitBreaker

from .. import telemetry

__all__ = ["ShardedEngine", "available_workers", "stream_sharded"]


def available_workers() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _pool_context():
    """Prefer fork (cheap, shares the imported package); fall back."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


# Per-worker-process state, installed once by the pool initializer.
_WORKER_ENGINE = None
_WORKER_STREAM = None


def _init_transform_worker(n_points: int, fixed_point: bool) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = ArrayFFT(n_points, fixed_point=fixed_point)
    _WORKER_ENGINE.compiled_engine()  # build the plan tables once


def _run_transform_shard(task):
    direction, blocks = task
    engine = _WORKER_ENGINE
    before = engine.fx.overflow_count if engine.fixed_point else 0
    if direction == "inverse":
        out = engine.inverse_many(blocks)
    else:
        out = engine.transform_many(blocks)
    overflow = (
        engine.fx.overflow_count - before if engine.fixed_point else 0
    )
    return out, overflow


def _init_stream_worker(n_points: int, fixed_point: bool) -> None:
    global _WORKER_STREAM
    from ..engines import engine as build_engine

    _WORKER_STREAM = build_engine(
        n_points, backend="asip-batch",
        precision="q15" if fixed_point else "float",
    )


def _run_stream_shard(task):
    """Stream one shard; returns the facade's uniform TransformResult."""
    blocks, verify, batch = task
    return _WORKER_STREAM.stream(blocks, batch=batch, verify=verify)


class ShardedEngine:
    """Batch FFT engine that shards ``transform_many`` across processes.

    Parameters
    ----------
    n_points, fixed_point:
        As for :class:`ArrayFFT`.
    workers:
        Pool size; defaults to :func:`available_workers`.  Values below 2
        disable the pool entirely.
    min_parallel_symbols:
        Smallest batch worth fanning out (default
        :attr:`MIN_PARALLEL_SYMBOLS`); smaller batches run serially.
    breaker_backoff_initial, breaker_backoff_max:
        Circuit-breaker backoff window after a pool failure (seconds;
        defaults :attr:`BREAKER_BACKOFF_INITIAL` /
        :attr:`BREAKER_BACKOFF_MAX`).  The serve tier shortens these to
        probe for recovery aggressively; the defaults keep a failed
        batch workload serial for at least half a second so there is
        never a retry storm.
    """

    MIN_PARALLEL_SYMBOLS = 64
    BREAKER_BACKOFF_INITIAL = 0.5
    BREAKER_BACKOFF_MAX = 30.0

    def __init__(self, n_points: int, fixed_point: bool = False,
                 workers: int = None, min_parallel_symbols: int = None,
                 breaker_backoff_initial: float = None,
                 breaker_backoff_max: float = None):
        self.engine = ArrayFFT(n_points, fixed_point=fixed_point)
        self.fixed_point = fixed_point
        self.workers = (
            available_workers() if workers is None else max(int(workers), 0)
        )
        self.min_parallel_symbols = (
            self.MIN_PARALLEL_SYMBOLS if min_parallel_symbols is None
            else max(int(min_parallel_symbols), 1)
        )
        self._pool = None
        # Pool health lives in a circuit breaker: a failure opens it
        # (single warning, ``degraded=True``, serial fallback), a capped
        # exponential backoff later one batch probes a fresh pool, and a
        # successful probe restores parallel execution.
        self.breaker = CircuitBreaker(
            backoff_initial=self.BREAKER_BACKOFF_INITIAL
            if breaker_backoff_initial is None else breaker_backoff_initial,
            backoff_max=self.BREAKER_BACKOFF_MAX
            if breaker_backoff_max is None else breaker_backoff_max,
        )
        self.degraded_reason = None

    @property
    def degraded(self) -> bool:
        """True while the breaker is open (serial fallback in effect).

        Clears again once a half-open probe restores the pool;
        ``breaker.opened_count`` keeps the episode history.
        """
        return self.breaker.state != CircuitBreaker.CLOSED

    @property
    def _pool_broken(self) -> bool:
        # Compatibility spelling of "the breaker is not closed" — older
        # callers (and the fault-injection hooks) read and write this
        # flag directly.
        return self.degraded

    @_pool_broken.setter
    def _pool_broken(self, value: bool) -> None:
        if value:
            self.breaker.force_open("marked broken")
        else:
            self.breaker.reset()

    @property
    def n_points(self) -> int:
        """FFT size N."""
        return self.engine.n_points

    @property
    def plan(self):
        """The underlying :class:`ArrayFFTPlan`."""
        return self.engine.plan

    # Single-symbol passthrough (OfdmLink's transmitter etc.) -------------

    def transform(self, x) -> np.ndarray:
        """Serial single-symbol transform on the inner engine."""
        return self.engine.transform(x)

    def inverse(self, spectrum) -> np.ndarray:
        """Serial single-symbol inverse on the inner engine."""
        return self.engine.inverse(spectrum)

    # Sharded batch API ----------------------------------------------------

    def transform_many(self, blocks) -> np.ndarray:
        """Batch forward transform, sharded across the pool."""
        return self._run_many(blocks, "forward")

    def inverse_many(self, spectra) -> np.ndarray:
        """Batch inverse transform, sharded across the pool."""
        return self._run_many(spectra, "inverse")

    def _run_many(self, blocks, direction: str) -> np.ndarray:
        blocks = np.asarray(blocks, dtype=complex)
        if blocks.ndim != 2 or blocks.shape[1] != self.n_points:
            raise ValueError(
                f"expected an (n_symbols, {self.n_points}) matrix, "
                f"got shape {blocks.shape}"
            )
        if (self.workers < 2
                or len(blocks) < self.min_parallel_symbols):
            return self._run_serial(blocks, direction)
        if not self.breaker.allow_attempt():
            # Open breaker inside its backoff window, or another thread
            # already holds the half-open probe slot: stay serial.
            return self._run_serial(blocks, direction)
        pool = self._ensure_pool()
        if pool is None:
            return self._run_serial(blocks, direction)
        shards = [
            shard for shard in np.array_split(blocks, self.workers)
            if len(shard)
        ]
        try:
            with telemetry.span(
                "sharded.dispatch", workers=self.workers,
                shards=len(shards), symbols=len(blocks),
                direction=direction,
            ):
                results = list(
                    pool.map(_run_transform_shard,
                             [(direction, shard) for shard in shards])
                )
        except Exception as exc:
            # Broken pool / worker death / pickling trouble: never
            # fail — degrade to the serial path until the breaker's
            # backoff admits a fresh-pool probe.
            self._mark_broken(f"{type(exc).__name__}: {exc}")
            return self._run_serial(blocks, direction)
        self.breaker.record_success()
        out = np.concatenate([result[0] for result in results])
        if self.fixed_point:
            self.engine.fx.overflow_count += sum(
                result[1] for result in results
            )
        # Mirror the serial path's op accounting on the parent engine.
        self.engine.bu.op_count += len(blocks) * self.plan.total_but4
        return out

    def _run_serial(self, blocks: np.ndarray, direction: str) -> np.ndarray:
        if direction == "inverse":
            return self.engine.inverse_many(blocks)
        return self.engine.transform_many(blocks)

    # Pool lifecycle -------------------------------------------------------

    def _ensure_pool(self):
        # The breaker already admitted this attempt: build a pool
        # whenever one is missing (first use, or a half-open probe
        # after `_mark_broken` tore the dead one down).
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=_pool_context(),
                    initializer=_init_transform_worker,
                    initargs=(self.n_points, self.fixed_point),
                )
            except Exception as exc:
                self._mark_broken(f"pool spawn failed: {exc}")
        return self._pool

    def _mark_broken(self, reason: str = "pool failure") -> None:
        # `record_failure` is True only on the fresh closed->open
        # transition — exactly one warning per degradation episode
        # (failed half-open probes re-open silently, backoff doubled).
        if self.breaker.record_failure(reason):
            self.degraded_reason = reason
            warnings.warn(
                f"sharded pool failed ({reason}); falling back to the "
                f"serial engine until a breaker probe succeeds",
                RuntimeWarning, stacklevel=3,
            )
        self.close_pool()

    def close_pool(self) -> None:
        """Tear the worker pool down without touching breaker state."""
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - best-effort teardown
                pass

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self.close_pool()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown ordering
        try:
            self.close()
        except Exception:
            pass


def _result_to_stream_stats(result, n_points: int):
    """Fold a facade TransformResult into the streaming API's StreamStats."""
    from ..asip.streaming import StreamStats

    return StreamStats(
        n_points=n_points,
        symbols=result.n_symbols,
        total_cycles=result.total_cycles,
        per_symbol_cycles=list(result.cycles),
    )


def stream_sharded(n_points: int, blocks, workers: int = None,
                   fixed_point: bool = False, verify: bool = True,
                   batch: int = None, as_result: bool = False):
    """Shard a symbol stream across worker processes running the ASIP.

    Splits ``blocks`` (an ``(n_symbols, N)`` array or list of blocks)
    into one shard per worker, streams each through a worker-local
    facade engine (``asip-batch`` backend), and merges the per-shard
    :class:`~repro.engines.TransformResult`\\ s through
    :func:`repro.engines.concat_results` — the same merge path every
    chunked consumer uses.  Per-symbol cycle counts are deterministic,
    so the merged totals are identical to a single-machine run; only
    host wall-clock changes.  Falls back to a local streamed run when
    the pool is unavailable or the stream is too short to shard.

    Returns the merged result folded into :class:`StreamStats` (the
    historical return type); pass ``as_result=True`` for the raw merged
    :class:`TransformResult` (spectra, cycles, stats and overflow
    deltas included).
    """
    from ..engines import concat_results
    from ..engines import engine as build_engine

    blocks = np.asarray(blocks, dtype=complex)
    if blocks.ndim != 2 or blocks.shape[1] != n_points:
        raise ValueError(
            f"expected an (n_symbols, {n_points}) stream, "
            f"got shape {blocks.shape}"
        )
    precision = "q15" if fixed_point else "float"

    def run_local():
        with build_engine(n_points, backend="asip-batch",
                          precision=precision) as eng:
            return eng.stream(blocks, batch=batch, verify=verify)

    workers = available_workers() if workers is None else max(int(workers), 0)
    if workers < 2 or len(blocks) < 2 * workers:
        merged = run_local()
    else:
        shards = [s for s in np.array_split(blocks, workers) if len(s)]
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                mp_context=_pool_context(),
                initializer=_init_stream_worker,
                initargs=(n_points, fixed_point),
            ) as pool:
                results = list(
                    pool.map(_run_stream_shard,
                             [(shard, verify, batch) for shard in shards])
                )
            merged = concat_results(
                results, n_points=n_points, backend="asip-batch",
                precision=precision,
            )
        except Exception:
            merged = run_local()
    return merged if as_result else _result_to_stream_stats(merged, n_points)
