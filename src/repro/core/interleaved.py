"""Interleaved-group execution — the temporal-parallel variant.

The paper's related work ([14], Ishebabi et al.) improves cached-FFT
ASIPs by interleaving group executions to hide latency; the paper notes
its own design keeps one group in flight (simpler CRF).  This module
makes the trade executable: an engine that processes ``ways`` groups of
an epoch concurrently, stage by stage, out of a ``ways * P``-entry
register file — the datapath the ablation benchmarks price against the
baseline schedule.

Numerically the result is identical to :class:`repro.core.ArrayFFT`
(asserted in tests); what changes is the op *schedule* (exposed for
pipeline-occupancy analysis) and the CRF capacity requirement.
"""

from __future__ import annotations

import numpy as np

from ..addressing.coefficients import PreRotationStore, rom_table
from .array_fft import _ExactPreRotation
from .butterfly import ButterflyUnit
from .plan import ArrayFFTPlan, EpochPlan, build_plan
from .schedule import BUOp, interleaved_schedule

__all__ = ["InterleavedArrayFFT"]


class InterleavedArrayFFT:
    """Array FFT executing ``ways`` groups of each epoch in parallel."""

    def __init__(self, n_points: int, ways: int = 2):
        if ways < 1:
            raise ValueError(f"ways must be >= 1, got {ways}")
        self.plan: ArrayFFTPlan = build_plan(n_points)
        self.ways = ways
        self.bu = ButterflyUnit()
        self.prerotation = (
            PreRotationStore(n_points) if n_points >= 8
            else _ExactPreRotation(n_points)
        )
        self._rom = {
            epoch.group_size: rom_table(epoch.group_size)
            for epoch in self.plan.epochs
        }
        self.executed_ops = []

    @property
    def n_points(self) -> int:
        """FFT size N."""
        return self.plan.n_points

    @property
    def crf_entries_required(self) -> int:
        """Register-file capacity of this variant (``ways * P``)."""
        return self.ways * self.plan.crf_entries

    def transform(self, x) -> np.ndarray:
        """Forward FFT via the interleaved schedule; natural order out."""
        x = np.asarray(x, dtype=complex)
        if len(x) != self.n_points:
            raise ValueError(
                f"engine planned for N={self.n_points}, got {len(x)}"
            )
        split = self.plan.split
        P, Q, N = split.P, split.Q, split.N
        epoch0, epoch1 = self.plan.epochs
        self.executed_ops = []

        live = {}  # (epoch, group) -> current CRF column
        ops = list(interleaved_schedule(self.plan, self.ways))
        scratch = np.empty(N, dtype=complex)
        out = np.empty(N, dtype=complex)

        boundary = sum(1 for op in ops if op.epoch == 0)
        self._run_epoch(ops[:boundary], epoch0, live,
                        loader=lambda g: x[g::Q].copy(),
                        sink=lambda g, col: self._dump_epoch0(
                            scratch, g, col, split))
        self._run_epoch(ops[boundary:], epoch1, live,
                        loader=lambda g: scratch[g * Q:(g + 1) * Q].copy(),
                        sink=lambda g, col: self._dump_epoch1(
                            out, g, col, split))
        return out

    def _run_epoch(self, ops, epoch: EpochPlan, live: dict, loader,
                   sink) -> None:
        rom = self._rom[epoch.group_size]
        half = epoch.group_size // 2
        lanes = self.bu.LANES
        progress = {}  # group -> stages completed
        for op in ops:
            key = (op.epoch, op.group)
            if key not in live:
                if len(live) >= self.ways:
                    raise AssertionError(
                        "schedule exceeded the provisioned CRF capacity"
                    )
                live[key] = loader(op.group)
                progress[op.group] = {"stage": 0, "column": None}
            state = progress[op.group]
            stage_plan = epoch.stages[op.stage - 1]
            if state["stage"] != op.stage:
                # first module of a new stage: gather the read column
                state["column"] = live[key][list(stage_plan.read_addresses)]
                state["out"] = np.empty_like(live[key])
                state["stage"] = op.stage
            base = lanes * (op.module - 1)
            width = min(lanes, half - base)
            column = state["column"]
            coeffs = rom[list(
                stage_plan.coefficient_indices[base:base + width]
            )]
            for k in range(width):
                m = base + k
                s, d = self.bu.execute(_single_op(
                    column[m], column[m + half], coeffs[k]
                ))
                state["out"][m] = s[0]
                state["out"][m + half] = d[0]
            self.executed_ops.append(op)
            if op.module == stage_plan.modules:
                live[key] = state["out"]  # ping-pong bank swap
                if op.stage == epoch.stage_count:
                    sink(op.group, live.pop(key))
                    del progress[op.group]

    def _dump_epoch0(self, scratch, group, column, split) -> None:
        for s in range(split.P):
            scratch[s * split.Q + group] = (
                column[s] * self.prerotation.weight(s, group)
            )

    def _dump_epoch1(self, out, group, column, split) -> None:
        for k2 in range(split.Q):
            out[group + split.P * k2] = column[k2]


def _single_op(a, b, w):
    from .butterfly import BUOperands

    return BUOperands(first=(a,), second=(b,), coefficients=(w,))
