"""Q1.15 complex fixed-point arithmetic — the hardware datapath model.

The paper's BU is synthesised hardware; its datapath is fixed point (the
64-bit bus moves two complex points of 2 x 16 bits).  This module models a
Q1.15 datapath with round-to-nearest and saturation so the reproduction
can report the numerical behaviour (SNR vs float) of the hardware, not
just the algorithmic correctness.

The representation keeps values as integers in ``[-2**15, 2**15 - 1]``
scaled by ``2**-15``.  A per-stage scale-by-half option models the usual
FFT growth management (dividing butterfly outputs by 2 keeps the word
length fixed at the cost of a deterministic output scale of ``1/N``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FixedPointContext",
    "FixedComplex",
    "quantize",
    "quantize_array",
    "round_shift_array",
    "fixed_to_complex_array",
    "words_to_fixed_array",
    "fixed_to_words_array",
    "snr_db",
]

_FRAC_BITS = 15
_SCALE = 1 << _FRAC_BITS
_MAX = _SCALE - 1
_MIN = -_SCALE


def _saturate(v: int) -> int:
    return max(_MIN, min(_MAX, v))


def _round_shift(v: int, bits: int) -> int:
    """Arithmetic shift right with round-to-nearest (ties away from zero)."""
    if bits <= 0:
        return v << (-bits)
    half = 1 << (bits - 1)
    if v >= 0:
        return (v + half) >> bits
    return -((-v + half) >> bits)


@dataclass(frozen=True)
class FixedComplex:
    """A complex value with Q1.15 integer real/imaginary parts."""

    re: int
    im: int

    def to_complex(self) -> complex:
        """Back-convert to float complex in [-1, 1)."""
        return complex(self.re / _SCALE, self.im / _SCALE)

    def to_words(self) -> tuple:
        """The two 16-bit two's-complement memory words (re, im)."""
        return self.re & 0xFFFF, self.im & 0xFFFF

    @staticmethod
    def from_words(re_word: int, im_word: int) -> "FixedComplex":
        """Build from 16-bit two's-complement words."""
        def signed(w):
            w &= 0xFFFF
            return w - 0x10000 if w & 0x8000 else w
        return FixedComplex(signed(re_word), signed(im_word))


def quantize(value: complex) -> FixedComplex:
    """Quantise a float complex (|re|,|im| <= 1) to Q1.15 with saturation."""
    re = _saturate(int(round(value.real * _SCALE)))
    im = _saturate(int(round(value.imag * _SCALE)))
    return FixedComplex(re, im)


# Vectorised Q1.15 datapath ------------------------------------------------
#
# The array forms below are the whole-column counterparts of the scalar
# FixedComplex operations.  They follow the same arithmetic to the bit:
# round-half-even quantisation (``round`` and ``np.rint`` agree on every
# double), round-to-nearest-ties-away shifts, and saturation with overflow
# counting.  The compiled engine relies on this exact equivalence.


def quantize_array(values) -> tuple:
    """Quantise a complex array to Q1.15; returns ``(re, im)`` int64 arrays.

    Element ``k`` equals ``quantize(values[k])`` exactly (``np.rint`` and
    Python's ``round`` both round half to even).
    """
    values = np.asarray(values, dtype=complex)
    re = np.clip(np.rint(values.real * _SCALE), _MIN, _MAX).astype(np.int64)
    im = np.clip(np.rint(values.imag * _SCALE), _MIN, _MAX).astype(np.int64)
    return re, im


def round_shift_array(v: np.ndarray, bits: int) -> np.ndarray:
    """Array form of :func:`_round_shift` (ties away from zero).

    Branchless: shift the magnitude, restore the sign (``x ^ s - s`` with
    the arithmetic sign fill ``s``) — element-wise equal to the scalar
    form, without materialising both branches of a ``where``.
    """
    if bits <= 0:
        return v << (-bits)
    half = 1 << (bits - 1)
    sign = v >> (v.dtype.itemsize * 8 - 1)
    magnitude = (np.abs(v) + half) >> bits
    return (magnitude ^ sign) - sign


def fixed_to_complex_array(re: np.ndarray, im: np.ndarray) -> np.ndarray:
    """Back-convert integer (re, im) arrays to float complex."""
    out = np.empty(np.shape(re), dtype=complex)
    out.real = re / _SCALE
    out.imag = im / _SCALE
    return out


def words_to_fixed_array(words) -> tuple:
    """Unpack 32-bit memory words into Q1.15 int64 ``(re, im)`` components.

    Element ``k`` equals ``FixedComplex.from_words(words[k] >> 16,
    words[k])`` exactly: 16-bit fields, sign-extended.
    """
    words = np.asarray(words, dtype=np.int64)
    re = (words >> 16) & 0xFFFF
    im = words & 0xFFFF
    re = re - ((re & 0x8000) << 1)
    im = im - ((im & 0x8000) << 1)
    return re, im


def fixed_to_words_array(re: np.ndarray, im: np.ndarray) -> np.ndarray:
    """Pack Q1.15 components into 32-bit words (``FixedComplex.to_words``)."""
    return ((np.asarray(re, dtype=np.int64) & 0xFFFF) << 16) | (
        np.asarray(im, dtype=np.int64) & 0xFFFF
    )


class FixedPointContext:
    """Arithmetic context implementing the BU datapath in Q1.15.

    Parameters
    ----------
    scale_stages:
        When True (default), each butterfly halves its outputs, matching
        the standard hardware policy of one guard shift per stage; the
        final spectrum is then ``FFT(x) / N`` exactly in the absence of
        rounding.
    """

    def __init__(self, scale_stages: bool = True):
        self.scale_stages = scale_stages
        self.overflow_count = 0

    def multiply(self, x: FixedComplex, w: FixedComplex) -> FixedComplex:
        """Complex multiply with 30->15 bit rounding per component."""
        rr = x.re * w.re - x.im * w.im
        ii = x.re * w.im + x.im * w.re
        return FixedComplex(
            self._narrow(_round_shift(rr, _FRAC_BITS)),
            self._narrow(_round_shift(ii, _FRAC_BITS)),
        )

    def add(self, x: FixedComplex, y: FixedComplex) -> FixedComplex:
        """Saturating add, optionally pre-scaled by 1/2."""
        return self._combine(x.re + y.re, x.im + y.im)

    def sub(self, x: FixedComplex, y: FixedComplex) -> FixedComplex:
        """Saturating subtract, optionally pre-scaled by 1/2."""
        return self._combine(x.re - y.re, x.im - y.im)

    def butterfly(self, a: FixedComplex, b: FixedComplex,
                  w: FixedComplex) -> tuple:
        """Radix-2 butterfly on fixed-point operands."""
        t = self.multiply(b, w)
        return self.add(a, t), self.sub(a, t)

    def _combine(self, re: int, im: int) -> FixedComplex:
        if self.scale_stages:
            re = _round_shift(re, 1)
            im = _round_shift(im, 1)
        return FixedComplex(self._narrow(re), self._narrow(im))

    def _narrow(self, v: int) -> int:
        if v > _MAX or v < _MIN:
            self.overflow_count += 1
        return _saturate(v)

    # Vectorised datapath -------------------------------------------------
    #
    # Array counterparts of multiply/add/sub/butterfly operating on int64
    # (re, im) component arrays.  Intermediate products need up to 32 bits
    # (2 * 2^30), so int64 keeps every step exact.  Overflow accounting is
    # element-wise and lands on the same ``overflow_count`` the scalar
    # path uses, with identical totals for identical inputs.

    def _narrow_array(self, v: np.ndarray) -> np.ndarray:
        # minimum/maximum are plain ufuncs (np.clip pays a dispatch tax
        # per call that dominates on short butterfly columns).
        clipped = np.minimum(np.maximum(v, _MIN), _MAX)
        over = int(np.count_nonzero(clipped != v))
        if over:
            self.overflow_count += over
        return clipped

    def multiply_arrays(self, xr, xi, wr, wi) -> tuple:
        """Element-wise complex multiply with 30->15 bit rounding."""
        rr = xr * wr - xi * wi
        ii = xr * wi + xi * wr
        return (
            self._narrow_array(round_shift_array(rr, _FRAC_BITS)),
            self._narrow_array(round_shift_array(ii, _FRAC_BITS)),
        )

    def _combine_array(self, re: np.ndarray, im: np.ndarray) -> tuple:
        if self.scale_stages:
            re = round_shift_array(re, 1)
            im = round_shift_array(im, 1)
        return self._narrow_array(re), self._narrow_array(im)

    def butterfly_arrays(self, ar, ai, br, bi, wr, wi) -> tuple:
        """Whole-column radix-2 butterfly; returns (sr, si, dr, di)."""
        tr, ti = self.multiply_arrays(br, bi, wr, wi)
        sr, si = self._combine_array(ar + tr, ai + ti)
        dr, di = self._combine_array(ar - tr, ai - ti)
        return sr, si, dr, di

    # Vector helpers -----------------------------------------------------

    def quantize_vector(self, x) -> list:
        """Quantise a complex vector to a list of :class:`FixedComplex`."""
        return [quantize(complex(v)) for v in np.asarray(x, dtype=complex)]

    def to_complex_vector(self, values) -> np.ndarray:
        """Convert :class:`FixedComplex` values back to a numpy vector."""
        return np.array([v.to_complex() for v in values], dtype=complex)


def snr_db(reference, measured) -> float:
    """Signal-to-noise ratio (dB) of ``measured`` against ``reference``."""
    reference = np.asarray(reference, dtype=complex)
    measured = np.asarray(measured, dtype=complex)
    noise = np.sum(np.abs(reference - measured) ** 2)
    signal = np.sum(np.abs(reference) ** 2)
    if noise == 0:
        return float("inf")
    if signal == 0:
        return float("-inf")
    return float(10.0 * np.log10(signal / noise))
