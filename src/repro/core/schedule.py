"""BU operation scheduling (the array walk order of Fig. 1).

The paper applies BU operations "in a horizontal order first (from Stage 1
to Stage 2, and so on for the first group of data points), and then the
vertical order (from the top group to the bottom group)": each group runs
all of its stages to completion before the next group starts — which is
what makes a single P-entry CRF sufficient.

This module generates that schedule as an explicit sequence of operation
descriptors so the ASIP code generator, the trace infrastructure, and the
ablation benchmarks (e.g. interleaved-group variants) can all consume it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .plan import ArrayFFTPlan

__all__ = ["BUOp", "horizontal_schedule", "interleaved_schedule"]


@dataclass(frozen=True)
class BUOp:
    """One BUT4 operation: epoch / group / stage / module coordinates."""

    epoch: int
    group: int
    stage: int   # 1-origin within the epoch
    module: int  # 1-origin within the stage, 1 .. group_size/8


def horizontal_schedule(plan: ArrayFFTPlan) -> Iterator[BUOp]:
    """The paper's order: per group, stages left-to-right; groups top-down.

    Yields every BUT4 of the whole N-point FFT in execution order.
    """
    for epoch_plan in plan.epochs:
        for group in range(epoch_plan.group_count):
            for stage_plan in epoch_plan.stages:
                for module in range(1, stage_plan.modules + 1):
                    yield BUOp(
                        epoch=epoch_plan.epoch,
                        group=group,
                        stage=stage_plan.stage,
                        module=module,
                    )


def interleaved_schedule(plan: ArrayFFTPlan, ways: int = 2) -> Iterator[BUOp]:
    """Temporal-parallel variant (the paper's reference [14] ablation).

    Interleaves ``ways`` groups stage-by-stage, modelling designs that hide
    latency by alternating between independent groups.  Requires a CRF of
    ``ways * P`` entries; the ablation benchmark uses this to quantify the
    area/throughput trade-off the paper declined to take.
    """
    if ways < 1:
        raise ValueError(f"ways must be >= 1, got {ways}")
    for epoch_plan in plan.epochs:
        groups = list(range(epoch_plan.group_count))
        for base in range(0, len(groups), ways):
            bundle = groups[base:base + ways]
            for stage_plan in epoch_plan.stages:
                for group in bundle:
                    for module in range(1, stage_plan.modules + 1):
                        yield BUOp(
                            epoch=epoch_plan.epoch,
                            group=group,
                            stage=stage_plan.stage,
                            module=module,
                        )
