"""Compiled-plan vectorized execution engine for the array FFT.

The readable :class:`~repro.core.array_fft.ArrayFFT` datapaths walk the
plan group by group, butterfly by butterfly — ideal as a bit-true oracle,
hopeless as a throughput engine.  This module lowers an
:class:`~repro.core.plan.ArrayFFTPlan` *once* into flat numpy tables:

* per-stage CRF read-address gathers (``StagePlan.read_addresses`` as an
  index array) and pre-gathered ROM coefficient rows;
* the full P x Q pre-rotation weight matrix from
  :meth:`PreRotationStore.weight_matrix` (one vectorised symmetry
  reconstruction instead of N scalar lookups);
* the epoch-0 gather map (corner turn ``x -> (Q, P)``) and the epoch-1
  scatter map (``(P, Q) -> natural-order spectrum``).

Execution is then pure fancy indexing plus whole-column butterflies: an
epoch processes **all of its groups at once** as a ``(..., groups, size)``
block, and a leading batch axis turns the same code into the multi-symbol
``transform_many`` path.  The fixed-point datapath runs on int64
component arrays through the vectorised
:class:`~repro.core.fixed_point.FixedPointContext` ops and is
bit-identical — including overflow counts — to the scalar
:class:`FixedComplex` walk.
"""

from __future__ import annotations

import numpy as np

from ..addressing.coefficients import prerotation_matrix, rom_table
from .fixed_point import (
    FixedPointContext,
    fixed_to_complex_array,
    quantize_array,
)
from .plan import ArrayFFTPlan, EpochPlan

__all__ = ["CompiledStage", "CompiledArrayFFT"]


class CompiledStage:
    """One stage of a group FFT, lowered to gather tables.

    Attributes
    ----------
    reads:
        int index array of length ``size``: the CRF gather order
        (``StagePlan.read_addresses``).
    weights:
        complex array of length ``size / 2``: the ROM values at this
        stage's coefficient indices, pre-gathered.
    wr, wi:
        Q1.15 quantisation of ``weights`` (int64), present in
        fixed-point mode.
    """

    __slots__ = ("reads", "weights", "wr", "wi", "modules")

    def __init__(self, reads, weights, fixed_point: bool, modules: int):
        self.reads = np.asarray(reads, dtype=np.intp)
        self.weights = np.asarray(weights, dtype=complex)
        self.modules = modules
        if fixed_point:
            self.wr, self.wi = quantize_array(self.weights)
        else:
            self.wr = self.wi = None


def _lower_epoch(epoch: EpochPlan, fixed_point: bool) -> list:
    rom = rom_table(epoch.group_size)
    return [
        CompiledStage(
            reads=stage.read_addresses,
            weights=rom[list(stage.coefficient_indices)],
            fixed_point=fixed_point,
            modules=stage.modules,
        )
        for stage in epoch.stages
    ]


class CompiledArrayFFT:
    """The lowered, vectorised form of one :class:`ArrayFFTPlan`.

    Parameters
    ----------
    plan:
        The static plan to lower.
    prerotation:
        The owning engine's pre-rotation store.  When it provides
        ``weight_matrix`` (the symmetry-compressed store) that vectorised
        path is used; otherwise (the N < 8 fallback) the exact weights are
        computed directly.
    fixed_point:
        Selects the Q1.15 int64 datapath.
    fx:
        The owning engine's :class:`FixedPointContext`; vectorised ops
        accumulate overflow counts on it so scalar and compiled runs
        report through the same counter.
    """

    def __init__(self, plan: ArrayFFTPlan, prerotation,
                 fixed_point: bool = False, fx: FixedPointContext = None):
        self.plan = plan
        self.fixed_point = fixed_point
        self.fx = fx if fx is not None else (
            FixedPointContext() if fixed_point else None
        )
        split = plan.split
        P, Q, N = split.P, split.Q, split.N
        self.epoch0 = _lower_epoch(plan.epochs[0], fixed_point)
        self.epoch1 = _lower_epoch(plan.epochs[1], fixed_point)
        # Epoch-0 gather map: element (l, m) of the (Q, P) group block is
        # input point m*Q + l (the strided LDIN walk of every group at
        # once).  Epoch-1 scatter map: group-block element (s, k2) lands
        # at spectrum position k2*P + s.
        self.gather0 = (
            np.arange(P, dtype=np.intp)[None, :] * Q
            + np.arange(Q, dtype=np.intp)[:, None]
        )
        self.scatter1 = (
            np.arange(Q, dtype=np.intp)[None, :] * P
            + np.arange(P, dtype=np.intp)[:, None]
        )
        # Full P x Q pre-rotation weight matrix, one vectorised lookup.
        self.prerotation = prerotation_matrix(prerotation, P, Q)
        if fixed_point:
            self.pr, self.pi = quantize_array(self.prerotation)

    # Float datapath ------------------------------------------------------

    def transform_many(self, blocks: np.ndarray) -> np.ndarray:
        """Transform a ``(..., N)`` batch; returns the same shape.

        All leading axes are batch axes; a single transform is the
        ``(1, N)`` case.  Dispatches on the engine's datapath.
        """
        blocks = np.asarray(blocks, dtype=complex)
        if blocks.shape[-1] != self.plan.n_points:
            raise ValueError(
                f"engine is compiled for N={self.plan.n_points}, "
                f"got blocks of {blocks.shape[-1]} points"
            )
        if self.fixed_point:
            return self._transform_many_fixed(blocks)
        return self._transform_many_float(blocks)

    def _transform_many_float(self, blocks: np.ndarray) -> np.ndarray:
        batch = blocks.shape[:-1]
        P, Q = self.plan.split.P, self.plan.split.Q
        # Corner-turn every symbol into its (Q, P) epoch-0 group block.
        state = blocks[..., self.gather0]
        for stage in self.epoch0:
            state = self._stage_float(state, stage)
        # Pre-rotate and transpose into the (P, Q) epoch-1 group block.
        state = state.swapaxes(-1, -2) * self.prerotation
        for stage in self.epoch1:
            state = self._stage_float(state, stage)
        out = np.empty(batch + (self.plan.n_points,), dtype=complex)
        out[..., self.scatter1.reshape(-1)] = state.reshape(batch + (-1,))
        return out

    @staticmethod
    def _stage_float(state: np.ndarray, stage: CompiledStage) -> np.ndarray:
        column = state[..., stage.reads]
        half = column.shape[-1] // 2
        a = column[..., :half]
        t = column[..., half:] * stage.weights
        out = np.empty_like(state)
        out[..., :half] = a + t
        out[..., half:] = a - t
        return out

    # Fixed-point datapath -------------------------------------------------

    def _transform_many_fixed(self, blocks: np.ndarray) -> np.ndarray:
        batch = blocks.shape[:-1]
        re, im = quantize_array(blocks)
        re = re[..., self.gather0]
        im = im[..., self.gather0]
        for stage in self.epoch0:
            re, im = self._stage_fixed(re, im, stage)
        re, im = self.fx.multiply_arrays(
            re.swapaxes(-1, -2), im.swapaxes(-1, -2), self.pr, self.pi
        )
        for stage in self.epoch1:
            re, im = self._stage_fixed(re, im, stage)
        flat = fixed_to_complex_array(
            re.reshape(batch + (-1,)), im.reshape(batch + (-1,))
        )
        out = np.empty(batch + (self.plan.n_points,), dtype=complex)
        out[..., self.scatter1.reshape(-1)] = flat
        return out

    def _stage_fixed(self, re, im, stage: CompiledStage) -> tuple:
        cre = re[..., stage.reads]
        cim = im[..., stage.reads]
        half = cre.shape[-1] // 2
        sr, si, dr, di = self.fx.butterfly_arrays(
            cre[..., :half], cim[..., :half],
            cre[..., half:], cim[..., half:],
            stage.wr, stage.wi,
        )
        out_re = np.empty_like(re)
        out_im = np.empty_like(im)
        out_re[..., :half] = sr
        out_re[..., half:] = dr
        out_im[..., :half] = si
        out_im[..., half:] = di
        return out_re, out_im
