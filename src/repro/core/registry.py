"""Backend capability registry for the unified engine facade.

The facade (:func:`repro.engine`) resolves backend names through this
registry.  Each backend registers a :class:`BackendSpec` declaring

* a **factory** building the backend implementation for a plan size;
* the **precisions** it supports (``"float"``, ``"q15"``);
* whether it accepts multi-process **workers**;
* which uniform-result fields it actually **emits** (per-symbol cycles,
  :class:`~repro.sim.stats.SimStats`) — array-level engines compute the
  same spectra as the instruction-level ones but have no simulated
  machine behind them, so those fields stay empty/None.

The registry is deliberately open: anything satisfying the backend
contract documented in DESIGN.md ("Unified engine facade") can be
registered under a new name and immediately becomes reachable from
``repro.engine(n, backend="<name>")``, the CLI ``--backend`` flag and
the parity test suite.  The five built-in backends are registered by
:mod:`repro.engines` on first use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "BackendSpec",
    "UnknownNameError",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "backend_names",
    "backend_specs",
]


class UnknownNameError(KeyError, ValueError):
    """An unknown registry name; the message lists what *is* registered.

    Every registry in the package (engine backends here, pipeline stages
    in :mod:`repro.pipelines.registry`, scenarios in
    :mod:`repro.scenarios`) raises this on a failed lookup.  It
    subclasses both ``KeyError`` (it is a failed name lookup) and
    ``ValueError`` (what historical callers catch), so existing
    ``except ValueError`` handlers keep working.
    """

    def __str__(self) -> str:
        # KeyError.__str__ shows repr(args[0]); we carry a sentence.
        return self.args[0] if self.args else ""

#: canonical precision names understood by the facade
PRECISIONS = ("float", "q15")


@dataclass(frozen=True)
class BackendSpec:
    """One backend's capability declaration.

    Parameters
    ----------
    name:
        Registry key (``repro.engine(..., backend=name)``).
    factory:
        ``factory(n_points, fixed_point, workers, batch, **options)``
        returning a backend implementation object (see DESIGN.md for the
        required interface: ``transform_many(blocks) -> (spectra,
        cycles)``, ``close()``, and the ``fx`` / ``sim_stats`` /
        ``machine`` attributes).
    description:
        One-line human description (shown by the CLI and benches).
    precisions:
        Subset of :data:`PRECISIONS` the backend supports.
    supports_batch:
        Whether ``transform_many`` amortises work across a batch (every
        built-in backend does; a hypothetical one-shot backend may not).
    supports_workers:
        Whether the factory accepts ``workers >= 2`` (process sharding).
    emits_cycles:
        Whether results carry real per-symbol simulated cycle counts.
    emits_sim_stats:
        Whether results carry a :class:`SimStats` delta.
    """

    name: str
    factory: object
    description: str = ""
    precisions: tuple = field(default=PRECISIONS)
    supports_batch: bool = True
    supports_workers: bool = False
    emits_cycles: bool = False
    emits_sim_stats: bool = False

    def supports_precision(self, precision: str) -> bool:
        """Whether ``precision`` (canonical name) is supported."""
        return precision in self.precisions


_REGISTRY: dict = {}


def register_backend(spec: BackendSpec, replace: bool = False) -> None:
    """Register ``spec`` under ``spec.name``.

    Re-registering an existing name raises unless ``replace=True`` —
    accidental shadowing of a built-in backend should be loud.
    """
    if not isinstance(spec, BackendSpec):
        raise TypeError(f"expected a BackendSpec, got {type(spec).__name__}")
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"backend {spec.name!r} is already registered")
    unknown = [p for p in spec.precisions if p not in PRECISIONS]
    if unknown:
        raise ValueError(
            f"backend {spec.name!r} declares unknown precisions {unknown}; "
            f"valid names are {list(PRECISIONS)}"
        )
    _REGISTRY[spec.name] = spec


def unregister_backend(name: str) -> None:
    """Remove a backend (primarily for tests registering throwaways)."""
    _REGISTRY.pop(name, None)


def _bootstrap() -> None:
    """Load the built-in backends (registered by :mod:`repro.engines`).

    Imported lazily so ``repro.core`` never depends on ``repro.asip`` at
    import time; the first registry lookup pulls the defaults in.
    """
    import repro.engines  # noqa: F401  (registers on import)


def get_backend(name: str) -> BackendSpec:
    """Look up a backend by name; raises ``ValueError`` with the menu."""
    spec = _REGISTRY.get(name)
    if spec is None:
        _bootstrap()
        spec = _REGISTRY.get(name)
    if spec is None:
        raise UnknownNameError(
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(backend_names())}"
        )
    return spec


def backend_names() -> list:
    """Sorted names of every registered backend."""
    if not _REGISTRY:
        _bootstrap()
    return sorted(_REGISTRY)


def backend_specs() -> dict:
    """Name-sorted snapshot of the registry (name -> :class:`BackendSpec`).

    Sorted so listings, error menus and their tests are deterministic
    regardless of registration (import) order.
    """
    if not _REGISTRY:
        _bootstrap()
    return {name: _REGISTRY[name] for name in sorted(_REGISTRY)}
