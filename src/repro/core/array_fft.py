"""The array-structured FFT — the paper's primary contribution.

An :class:`ArrayFFT` executes the restructured dataflow of Figs. 1-2:

* the N-point FFT is split into two epochs of P- and Q-point group FFTs
  (``N = P * Q``) with one memory exchange between them;
* every group FFT runs stage-by-stage through the *same* modular compute
  step: a half-split column of butterflies executed by the 4-lane
  Butterfly Unit, with read addresses from the accumulated local
  address-changing rule and twiddles from the ROM stride rule;
* epoch-0 outputs are pre-rotated by ``W_N^{s l}`` using the
  symmetry-compressed coefficient store.

The class operates at the algorithm level (no instruction simulation) and
is the ground-truth engine the ASIP's execution must, and is tested to,
agree with.  Both float and Q1.15 fixed-point datapaths are supported.
"""

from __future__ import annotations

import numpy as np

from ..addressing.coefficients import PreRotationStore, rom_table
from ..addressing.epoch import EpochSplit
from .butterfly import ButterflyUnit
from .compiled import CompiledArrayFFT
from .fixed_point import FixedPointContext, quantize
from .plan import ArrayFFTPlan, EpochPlan, build_plan

__all__ = ["ArrayFFT", "array_fft"]


class _ExactPreRotation:
    """Uncompressed pre-rotation weights for N < 8 (no octant symmetry)."""

    def __init__(self, n_points: int):
        self.n_points = n_points

    def weight(self, s: int, l: int) -> complex:
        exp = (s * l) % self.n_points
        return complex(np.exp(-2j * np.pi * exp / self.n_points))


class ArrayFFT:
    """Reusable N-point array FFT engine.

    Parameters
    ----------
    n_points:
        FFT size; any power of two >= 4 ("any-point" scalability is the
        design goal — the same engine covers WiMAX's 128..2048 range).
    split:
        Optional explicit epoch split (defaults to the paper's rule).
    fixed_point:
        When True, runs the Q1.15 datapath with per-stage scaling; the
        returned spectrum is then ``FFT(x)/N`` plus quantisation noise.
    compiled:
        When True (default), :meth:`transform` runs on the compiled-plan
        vectorised engine (:class:`repro.core.compiled.CompiledArrayFFT`),
        which is bit-identical in fixed point and agrees to rounding
        noise (~1 ulp) in float.  Set False to force the readable
        per-butterfly oracle datapath.
    """

    def __init__(self, n_points: int, split: EpochSplit = None,
                 fixed_point: bool = False, compiled: bool = True):
        self.plan: ArrayFFTPlan = build_plan(n_points, split)
        self.fixed_point = fixed_point
        self.use_compiled = compiled
        self._compiled: CompiledArrayFFT = None
        self.fx = FixedPointContext() if fixed_point else None
        self.bu = ButterflyUnit(arithmetic=self.fx)
        # The paper's N/8+1 symmetry store needs N >= 8; the N=4 corner
        # case falls back to exact weights (there are only 4 of them).
        if n_points >= 8:
            self.prerotation = PreRotationStore(n_points)
        else:
            self.prerotation = _ExactPreRotation(n_points)
        self._rom = {
            epoch.group_size: rom_table(epoch.group_size)
            for epoch in self.plan.epochs
        }
        if fixed_point:
            self._rom_fx = {
                size: [quantize(complex(w)) for w in table]
                for size, table in self._rom.items()
            }

    @property
    def n_points(self) -> int:
        """FFT size N."""
        return self.plan.n_points

    # ------------------------------------------------------------------

    def compiled_engine(self) -> CompiledArrayFFT:
        """The lazily built compiled-plan engine for this plan."""
        if self._compiled is None:
            self._compiled = CompiledArrayFFT(
                self.plan, self.prerotation,
                fixed_point=self.fixed_point, fx=self.fx,
            )
        return self._compiled

    def transform(self, x) -> np.ndarray:
        """Compute the natural-order forward FFT of ``x``.

        In fixed-point mode the input must satisfy ``|re|, |im| <= 1`` and
        the output equals ``FFT(x)/N`` up to quantisation noise.
        """
        x = np.asarray(x, dtype=complex)
        if len(x) != self.n_points:
            raise ValueError(
                f"engine is planned for N={self.n_points}, "
                f"got {len(x)} points"
            )
        if self.use_compiled:
            out = self.compiled_engine().transform_many(x[None, :])[0]
            self.bu.op_count += self.plan.total_but4
            return out
        return self.transform_reference(x)

    def transform_reference(self, x) -> np.ndarray:
        """The readable per-butterfly oracle datapath (the seed code).

        Retained alongside the compiled engine as the bit-true reference:
        in fixed point the compiled path must (and is tested to) agree
        with this one to the last bit, overflow counts included.
        """
        x = np.asarray(x, dtype=complex)
        if len(x) != self.n_points:
            raise ValueError(
                f"engine is planned for N={self.n_points}, "
                f"got {len(x)} points"
            )
        if self.fixed_point:
            return self._transform_fixed(x)
        return self._transform_float(x)

    def transform_many(self, blocks) -> np.ndarray:
        """Batch transform of an ``(n_symbols, N)`` block matrix.

        Runs every symbol through the compiled engine in one vectorised
        pass, amortising plan compilation and per-call overhead across
        the batch — the multi-symbol OFDM workload path.
        """
        blocks = np.asarray(blocks, dtype=complex)
        if blocks.ndim != 2 or blocks.shape[1] != self.n_points:
            raise ValueError(
                f"expected an (n_symbols, {self.n_points}) matrix, "
                f"got shape {blocks.shape}"
            )
        if not self.use_compiled:
            return np.stack(
                [self.transform_reference(block) for block in blocks]
            )
        out = self.compiled_engine().transform_many(blocks)
        self.bu.op_count += blocks.shape[0] * self.plan.total_but4
        return out

    def __call__(self, x) -> np.ndarray:
        """Alias for :meth:`transform`."""
        return self.transform(x)

    # Float datapath -----------------------------------------------------

    def _transform_float(self, x: np.ndarray) -> np.ndarray:
        split = self.plan.split
        P, Q, N = split.P, split.Q, split.N
        scratch = np.empty(N, dtype=complex)
        epoch0, epoch1 = self.plan.epochs
        for l in range(Q):
            crf = x[l::Q].copy()          # LDIN: strided gather, group l
            crf = self._run_group(crf, epoch0)
            for s in range(P):            # pre-rotation + STOUT
                scratch[s * Q + l] = crf[s] * self.prerotation.weight(s, l)
        out = np.empty(N, dtype=complex)
        for s in range(P):
            crf = scratch[s * Q:(s + 1) * Q].copy()
            crf = self._run_group(crf, epoch1)
            out[s + P * np.arange(Q)] = crf
        return out

    def _run_group(self, crf: np.ndarray, epoch: EpochPlan) -> np.ndarray:
        rom = self._rom[epoch.group_size]
        for stage_plan in epoch.stages:
            column = crf[list(stage_plan.read_addresses)]
            coeffs = rom[list(stage_plan.coefficient_indices)]
            crf = self.bu.execute_column(column, coeffs)
        return crf

    # Fixed-point datapath ------------------------------------------------

    def _transform_fixed(self, x: np.ndarray) -> np.ndarray:
        split = self.plan.split
        P, Q, N = split.P, split.Q, split.N
        epoch0, epoch1 = self.plan.epochs
        scratch = [None] * N
        for l in range(Q):
            crf = [quantize(complex(v)) for v in x[l::Q]]
            crf = self._run_group_fixed(crf, epoch0)
            for s in range(P):
                w = quantize(self.prerotation.weight(s, l))
                scratch[s * Q + l] = self.fx.multiply(crf[s], w)
        out = np.empty(N, dtype=complex)
        for s in range(P):
            crf = scratch[s * Q:(s + 1) * Q]
            crf = self._run_group_fixed(crf, epoch1)
            for k2 in range(Q):
                out[s + P * k2] = crf[k2].to_complex()
        return out

    def _run_group_fixed(self, crf: list, epoch: EpochPlan) -> list:
        rom = self._rom_fx[epoch.group_size]
        half = epoch.group_size // 2
        for stage_plan in epoch.stages:
            column = [crf[a] for a in stage_plan.read_addresses]
            out = [None] * epoch.group_size
            for m in range(half):
                w = rom[stage_plan.coefficient_indices[m]]
                s, d = self.fx.butterfly(column[m], column[m + half], w)
                out[m] = s
                out[m + half] = d
            crf = out
        return crf

    # Inverse transform ----------------------------------------------------

    def inverse(self, spectrum) -> np.ndarray:
        """Inverse FFT via the conjugation identity.

        OFDM transmitters run the IFFT on the same hardware; the standard
        trick ``ifft(X) = conj(fft(conj(X))) / N`` reuses the array
        datapath unchanged.  In fixed-point mode the forward transform
        already carries the ``1/N`` scaling, so the inverse needs no
        further division and returns the time signal directly.
        """
        spectrum = np.asarray(spectrum, dtype=complex)
        forward = self.transform(np.conj(spectrum))
        if self.fixed_point:
            return np.conj(forward)
        return np.conj(forward) / self.n_points

    def inverse_many(self, spectra) -> np.ndarray:
        """Batch inverse FFT of an ``(n_symbols, N)`` spectrum matrix."""
        spectra = np.asarray(spectra, dtype=complex)
        forward = self.transform_many(np.conj(spectra))
        if self.fixed_point:
            return np.conj(forward)
        return np.conj(forward) / self.n_points

    # Introspection -------------------------------------------------------

    def memory_operation_counts(self) -> dict:
        """Load/store/BUT4 counts implied by the plan (Algorithm 1)."""
        return {
            "ldin": self.plan.total_ldin,
            "stout": self.plan.total_stout,
            "but4": self.plan.total_but4,
            "prerotation": self.plan.prerotation_ops,
        }


def array_fft(x, fixed_point: bool = False, workers: int = None) -> np.ndarray:
    """One-shot wrapper — **deprecated**, delegates to :func:`repro.engine`.

    Accepts a single N-point vector or an ``(n_symbols, N)`` batch and
    returns the bare spectrum array, exactly as it always did; the work
    now runs through the unified facade's cached engines (``compiled``,
    or ``sharded`` when ``workers >= 2`` on a batch, with the usual
    serial fallback).  New code should call ``repro.engine(...)``
    directly and use the richer :class:`~repro.engines.TransformResult`.
    """
    import warnings

    warnings.warn(
        "repro.array_fft() is deprecated; use repro.engine(N, "
        "backend='compiled').transform(x) (or backend='sharded' with "
        "workers) instead",
        DeprecationWarning, stacklevel=2,
    )
    from ..engines import shared_engine

    x = np.asarray(x, dtype=complex)
    precision = "q15" if fixed_point else "float"
    if x.ndim == 2:
        if workers is not None and workers >= 2:
            facade = shared_engine(x.shape[1], backend="sharded",
                                   precision=precision, workers=workers)
        else:
            facade = shared_engine(x.shape[1], precision=precision)
        return facade.transform_many(x).spectrum
    return shared_engine(len(x), precision=precision).transform(x).spectrum
