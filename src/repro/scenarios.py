"""Scenario registry: named presets resolving to pipeline configs.

The paper positions the FFT ASIP as the engine of *multi-standard* OFDM
receivers; this module is where those standards live as data.  A
:class:`ScenarioSpec` names a complete workload — FFT size, stage
chain, constellation, channel model, SNR, precision — and
:meth:`ScenarioSpec.build` resolves it to a ready
:class:`~repro.pipelines.Pipeline` on any facade backend.  One call
runs a preset end to end::

    >>> import repro
    >>> result = repro.run_scenario("uwb-ofdm", backend="asip-batch")
    >>> result.ber, result.total_cycles

Built-in presets (``repro.scenario_names()``):

=================== =====================================================
``uwb-ofdm``        802.15.3a MB-UWB: 1024-carrier QPSK over AWGN — the
                    paper's motivating workload (Section I)
``wimax-ofdm``      802.16 WiMAX: 256-carrier 16-QAM over AWGN (the
                    2.5 MHz bandwidth point of the scaling family)
``multipath-eq``    frequency-selective reception: 128-carrier 16-QAM
                    through a 3-tap Rayleigh channel with one-tap
                    equalisation
``spectral``        plain Q1.15 spectral analysis of a block stream (no
                    modulation) — StreamingFFT's workload with overflow
                    accounting
``dvbt-2k``         DVB-T 2k mode: 2048-carrier QPSK behind the K=7
                    rate-2/3 convolutional codec (coded chain)
``dvbt-8k``         DVB-T 8k mode: 8192-carrier 16-QAM, K=7 rate 3/4
``uwb-ofdm-coded``  the MB-UWB workload behind the standard K=7
                    rate-1/2 codec
``wimax-ofdm-coded`` 802.16 WiMAX 16-QAM, K=7 rate 3/4, block
                    interleaved
=================== =====================================================

The registry is open like the backend and stage registries: register a
spec under a new name and it is immediately reachable from
``repro.run_scenario``, ``OfdmLink.from_scenario``,
``analysis.scenario_sweep`` and ``python -m repro run <name>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .core.registry import UnknownNameError
from .ofdm.channel import MultipathChannel
from .pipelines import (
    CODED_OFDM_CHAIN,
    DEFAULT_OFDM_CHAIN,
    SPECTRUM_CHAIN,
    Pipeline,
)

__all__ = [
    "ScenarioSpec",
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "scenario_names",
    "scenario_specs",
    "build_scenario",
    "run_scenario",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """One named workload preset.

    The schema (also documented in DESIGN.md, "Scenario registry"):
    everything a pipeline constructor needs plus run defaults.
    ``channel_profile`` keeps the channel *recipe* ``(n_taps, decay,
    rng_seed)`` rather than a live object, so every build draws
    identical taps and stays reproducible across processes.
    """

    name: str
    description: str
    n_points: int
    stages: tuple = DEFAULT_OFDM_CHAIN
    scheme: str = "qpsk"
    snr_db: float = None
    precision: str = "float"
    backend: str = None          # None -> the pipeline default rule
    source_scale: float = 1.0
    channel_profile: tuple = None  # (n_taps, decay, rng_seed)
    code: str = None             # registered code name for coded chains
    code_rate: str = "1/2"       # puncture rate ("1/2", "2/3", "3/4")
    interleaver: object = None   # interleaver name (None -> "block")
    symbols: int = 16            # default burst for run_scenario / CLI
    seed: int = 0

    def make_channel(self) -> MultipathChannel:
        """Instantiate the preset's channel (None when profile unset)."""
        if self.channel_profile is None:
            return None
        n_taps, decay, rng_seed = self.channel_profile
        return MultipathChannel.exponential_profile(
            n_taps=n_taps, decay=decay,
            rng=np.random.default_rng(rng_seed),
        )

    def build(self, **overrides) -> Pipeline:
        """Resolve the preset to a :class:`Pipeline`.

        Any pipeline option (``backend``, ``precision``, ``workers``,
        ``batch``, ``n_points``, ``snr_db``, ``seed``, ...) may be
        overridden — the point of the registry is that the *scenario*
        stays fixed while the execution substrate swaps freely.
        """
        options = dict(
            backend=self.backend, precision=self.precision,
            scheme=self.scheme, channel=self.make_channel(),
            snr_db=self.snr_db, source_scale=self.source_scale,
            code=self.code, code_rate=self.code_rate,
            interleaver=self.interleaver,
            seed=self.seed, name=self.name,
        )
        n_points = overrides.pop("n_points", self.n_points)
        stages = overrides.pop("stages", list(self.stages))
        options.update(overrides)
        return Pipeline(n_points, stages, **options)


_REGISTRY: dict = {}


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> None:
    """Register ``spec`` under ``spec.name`` (loud on duplicates)."""
    if not isinstance(spec, ScenarioSpec):
        raise TypeError(
            f"expected a ScenarioSpec, got {type(spec).__name__}"
        )
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec


def unregister_scenario(name: str) -> None:
    """Remove a scenario (primarily for tests registering throwaways)."""
    _REGISTRY.pop(name, None)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario by name; raises with the registered menu."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise UnknownNameError(
            f"unknown scenario {name!r}; registered scenarios: "
            f"{', '.join(scenario_names())}"
        )
    return spec


def scenario_names() -> list:
    """Sorted names of every registered scenario."""
    return sorted(_REGISTRY)


def scenario_specs() -> dict:
    """Name-sorted snapshot of the registry (name -> :class:`ScenarioSpec`),
    deterministic regardless of registration order."""
    return {name: _REGISTRY[name] for name in sorted(_REGISTRY)}


def build_scenario(name: str, **overrides) -> Pipeline:
    """Build the named scenario's pipeline (see :meth:`ScenarioSpec.build`)."""
    return get_scenario(name).build(**overrides)


def run_scenario(name: str, symbols: int = None, seed: int = None,
                 **overrides):
    """Run one burst of the named scenario; returns a PipelineResult.

    ``symbols`` defaults to the preset's burst size; other keywords
    override pipeline options (``backend=``, ``precision=``,
    ``workers=``, ``n_points=``, ...).
    """
    spec = get_scenario(name)
    with spec.build(**overrides) as pipe:
        return pipe.run(
            symbols=spec.symbols if symbols is None else symbols,
            seed=seed,
        )


_BUILTIN_SCENARIOS = (
    ScenarioSpec(
        name="uwb-ofdm",
        description="802.15.3a MB-UWB: 1024-carrier QPSK over AWGN "
                    "(the paper's motivating workload)",
        n_points=1024,
        scheme="qpsk",
        snr_db=20.0,
        symbols=8,
    ),
    ScenarioSpec(
        name="wimax-ofdm",
        description="802.16 WiMAX: 256-carrier 16-QAM over AWGN "
                    "(the 2.5 MHz point of the scaling family)",
        n_points=256,
        scheme="16qam",
        snr_db=28.0,
        symbols=16,
    ),
    ScenarioSpec(
        name="multipath-eq",
        description="128-carrier 16-QAM through a 3-tap Rayleigh "
                    "channel with one-tap equalisation",
        n_points=128,
        scheme="16qam",
        snr_db=35.0,
        channel_profile=(3, 0.4, 2),
        symbols=8,
    ),
    ScenarioSpec(
        name="spectral",
        description="plain Q1.15 spectral analysis of a block stream "
                    "(StreamingFFT's workload, overflow accounted)",
        n_points=256,
        stages=SPECTRUM_CHAIN,
        scheme=None,
        precision="q15",
        source_scale=0.25,
        symbols=32,
    ),
    # Coded presets: the chains deployed receivers actually run — a
    # K=7 convolutional codec with soft-decision demapping in front of
    # the FFT, one terminated code block per OFDM symbol.
    ScenarioSpec(
        name="dvbt-2k",
        description="DVB-T 2k mode: 2048-carrier QPSK, K=7 rate-2/3 "
                    "coded with soft-decision Viterbi",
        n_points=2048,
        stages=CODED_OFDM_CHAIN,
        scheme="qpsk",
        snr_db=10.0,
        code="conv-k7",
        code_rate="2/3",
        symbols=4,
    ),
    ScenarioSpec(
        name="dvbt-8k",
        description="DVB-T 8k mode: 8192-carrier 16-QAM, K=7 rate-3/4 "
                    "coded with soft-decision Viterbi",
        n_points=8192,
        stages=CODED_OFDM_CHAIN,
        scheme="16qam",
        snr_db=20.0,
        code="conv-k7",
        code_rate="3/4",
        symbols=2,
    ),
    ScenarioSpec(
        name="uwb-ofdm-coded",
        description="802.15.3a MB-UWB behind the standard K=7 rate-1/2 "
                    "codec (the paper's workload, coded)",
        n_points=1024,
        stages=CODED_OFDM_CHAIN,
        scheme="qpsk",
        snr_db=8.0,
        code="conv-k7",
        code_rate="1/2",
        symbols=8,
    ),
    ScenarioSpec(
        name="wimax-ofdm-coded",
        description="802.16 WiMAX 256-carrier 16-QAM, K=7 rate-3/4 "
                    "coded with block interleaving",
        n_points=256,
        stages=CODED_OFDM_CHAIN,
        scheme="16qam",
        snr_db=18.0,
        code="conv-k7",
        code_rate="3/4",
        symbols=8,
    ),
)

for _spec in _BUILTIN_SCENARIOS:
    register_scenario(_spec, replace=True)
