"""Command-line interface: regenerate any of the paper's artifacts.

Usage::

    python -m repro table1              # Table I throughput sweep
    python -m repro table2 [--size N]   # Table II four-way comparison
    python -m repro hw [--group-size P] # Section IV hardware cost
    python -m repro fft --size N [--backend B] [--precision P]
                                        # one verified transform
    python -m repro stream --size N --symbols K [--backend B] [--workers W]
                                        # steady-state streamed throughput
    python -m repro bench [--sizes N,M] [--record PATH]
                                        # per-backend facade benchmark
    python -m repro run <scenario> [--symbols K] [--backend B]
    python -m repro run --list          # registered scenario presets
    python -m repro run --all           # every preset, one table
    python -m repro verify --fuzz N [--seed S]
                                        # seeded differential fuzzing
    python -m repro verify --coexec <scenario> [--backends a,b]
                                        # lockstep co-execution parity
    python -m repro verify --inject <fault|all>
                                        # fault-injection self-test
    python -m repro serve [--tenants T --symbols K --size N]
                                        # multi-tenant serving demo + health
    python -m repro serve --bench       # concurrent load generator
                                        # (sessions/s + tail latency ->
                                        # BENCH_engine.json)
    python -m repro listing --size N    # the generated program listing

The transform-running subcommands (``fft``, ``stream``, ``bench``,
``run``) share the facade flags ``--backend`` / ``--precision`` /
``--workers`` and run through :func:`repro.engine`, so every registered
backend is reachable from the command line; ``run`` resolves named
presets from the scenario registry (:mod:`repro.scenarios`) into
pipelines.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from .analysis import (
    PAPER_TABLE1,
    format_ratio,
    render_table,
    size_sweep,
    table1_rows,
)
from .asip import generate_fft_program
from .asip.throughput import msamples_per_second, paper_mbps
from .baselines import PAPER_TABLE2, run_table2
from .core.registry import backend_names, get_backend
from .engines import benchmark_backends
from .engines import engine as build_engine
from .hw import hardware_report

from . import telemetry

__all__ = ["main", "build_parser"]


def _engine_flags() -> argparse.ArgumentParser:
    """The shared facade flags (--backend/--precision/--workers)."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--backend", type=str, default=None,
                        help="facade backend (default depends on the "
                             f"subcommand; registered: "
                             f"{', '.join(backend_names())})")
    common.add_argument("--precision", type=str, default=None,
                        choices=["float", "q15", "fixed"],
                        help="datapath precision (fixed is an alias for "
                             "q15; default float, or the scenario's own "
                             "for `run`)")
    common.add_argument("--workers", type=int, default=None,
                        help="process-pool size for sharding backends")
    return common


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DATE'09 array-FFT ASIP reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    common = _engine_flags()

    sub.add_parser("table1", help="Table I throughput sweep")

    t2 = sub.add_parser("table2", help="Table II four-way comparison")
    t2.add_argument("--size", type=int, default=1024)

    hw = sub.add_parser("hw", help="Section IV hardware cost report")
    hw.add_argument("--group-size", type=int, default=32)

    fft = sub.add_parser("fft", parents=[common],
                         help="run one verified transform on a backend")
    fft.add_argument("--size", type=int, default=1024)
    fft.add_argument("--fixed-point", action="store_true",
                     help="alias for --precision q15")
    fft.add_argument("--seed", type=int, default=0)

    stream = sub.add_parser(
        "stream", parents=[common],
        help="streamed multi-symbol throughput on a backend",
    )
    stream.add_argument("--size", type=int, default=1024)
    stream.add_argument("--symbols", type=int, default=64)
    stream.add_argument("--batch", type=int, default=None,
                        help="symbols per batched execution pass")
    stream.add_argument("--fixed-point", action="store_true",
                        help="alias for --precision q15")
    stream.add_argument("--no-verify", action="store_true",
                        help="skip per-symbol output verification")
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--record", type=str, default="",
                        help="append this run's per-backend row to a "
                             "BENCH_engine.json-style file")

    bench = sub.add_parser(
        "bench", parents=[common],
        help="per-backend facade benchmark (all backends by default)",
    )
    bench.add_argument("--sizes", type=str, default="256",
                       help="comma-separated FFT sizes")
    bench.add_argument("--symbols", type=int, default=32)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--record", type=str, default="BENCH_engine.json",
                       help="JSON file receiving the per-backend rows "
                            "('' disables the write)")
    bench.add_argument("--trace", type=str, default="", metavar="PATH",
                       help="also record a Chrome trace-event file of "
                            "the benchmark's spans")

    run = sub.add_parser(
        "run", parents=[common],
        help="run a named scenario preset through the pipeline API",
    )
    run.add_argument("scenario", nargs="?", default=None,
                     help="registered scenario name (see run --list)")
    run.add_argument("--symbols", type=int, default=None,
                     help="burst size (default: the preset's)")
    run.add_argument("--size", type=int, default=None,
                     help="override the preset's FFT size")
    run.add_argument("--seed", type=int, default=None)
    run.add_argument("--list", action="store_true",
                     help="list registered scenarios and exit")
    run.add_argument("--all", action="store_true",
                     help="run every registered scenario (one table)")
    run.add_argument("--record", type=str, default="",
                     help="append this run's per-scenario rows to a "
                          "BENCH_engine.json-style file")
    run.add_argument("--trace", type=str, default="", metavar="PATH",
                     help="also record a Chrome trace-event file of the "
                          "run's spans (pipeline stages, engine "
                          "transforms, Viterbi sub-phases)")

    verify = sub.add_parser(
        "verify",
        help="differential co-execution, fuzzing and fault injection",
    )
    verify.add_argument("--fuzz", type=int, default=None, metavar="N",
                        help="run N seeded fuzz cases round-robin over "
                             "the ISA/engine/scenario/coded generators")
    verify.add_argument("--coexec", type=str, default=None,
                        metavar="SCENARIO",
                        help="co-execute one scenario preset's transform "
                             "across a backend pair in lockstep")
    verify.add_argument("--inject", type=str, default=None,
                        choices=["twiddle", "branch-metric", "llr-sign",
                                 "worker-shard", "asip-step",
                                 "engine-stall", "all"],
                        help="inject one fault class (or every class) "
                             "and prove the harness localises it")
    verify.add_argument("--backends", type=str,
                        default="compiled,reference",
                        help="comma-separated backend pair for --coexec")
    verify.add_argument("--symbols", type=int, default=8,
                        help="burst size for --coexec")
    verify.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve", parents=[common],
        help="supervised multi-tenant session serving (demo or --bench "
             "load generator)",
    )
    serve.add_argument("--tenants", type=int, default=8,
                       help="concurrent tenant sessions to drive")
    serve.add_argument("--symbols", type=int, default=64,
                       help="symbols per tenant")
    serve.add_argument("--size", type=int, default=64,
                       help="FFT size per tenant session")
    serve.add_argument("--batch", type=int, default=8,
                       help="symbols per executed chunk")
    serve.add_argument("--deadline", type=float, default=10.0,
                       help="per-submit deadline in seconds")
    serve.add_argument("--exec-timeout", type=float, default=None,
                       help="per-chunk watchdog bound in seconds")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--bench", action="store_true",
                       help="run the threaded load generator and record "
                            "sessions/s + tail latency")
    serve.add_argument("--record", type=str, default="BENCH_engine.json",
                       help="JSON file receiving the --bench row "
                            "('' disables the write)")
    serve.add_argument("--trace", type=str, nargs="?", const="trace.json",
                       default="", metavar="PATH",
                       help="also record a Chrome trace-event file of "
                            "per-tenant request spans (default PATH: "
                            "trace.json)")

    trace_cmd = sub.add_parser(
        "trace", parents=[common],
        help="run a scenario under the span tracer and export the "
             "trace (chrome-trace/jsonl/console exporters)",
    )
    trace_cmd.add_argument("scenario",
                           help="registered scenario name (see run "
                                "--list)")
    trace_cmd.add_argument("--symbols", type=int, default=None,
                           help="burst size (default: the preset's)")
    trace_cmd.add_argument("--size", type=int, default=None,
                           help="override the preset's FFT size")
    trace_cmd.add_argument("--seed", type=int, default=None)
    trace_cmd.add_argument("--out", type=str, default="trace.json",
                           help="output file for the exported trace")
    trace_cmd.add_argument("--exporter", type=str, default="chrome-trace",
                           help="registered exporter name "
                                f"({', '.join(telemetry.exporter_names())})")
    trace_cmd.add_argument("--instructions", type=int, default=0,
                           metavar="N",
                           help="also run an N-point interpreted ASIP "
                                "FFT and merge its instruction timeline "
                                "into the trace-event file")
    trace_cmd.add_argument("--regress", type=str,
                           default="BENCH_engine.json",
                           help="bench file whose recorded stage history "
                                "the run is compared against ('' "
                                "disables the check)")

    uarch = sub.add_parser(
        "uarch",
        help="re-time a recorded oracle run under the scoreboarded "
             "issue-width overlay (--study: width x cache sweep priced "
             "through the hw/ models)",
    )
    uarch.add_argument("scenario", nargs="?", default=None,
                       help="registered scenario whose FFT size to use "
                            "(default: 1024 points)")
    uarch.add_argument("--size", type=int, default=None,
                       help="override the FFT size directly")
    uarch.add_argument("--study", action="store_true",
                       help="run the issue-width x cache design study "
                            "(the extended Table II)")
    uarch.add_argument("--seed", type=int, default=2009)
    uarch.add_argument("--record", type=str, nargs="?", default="",
                       const="BENCH_engine.json", metavar="PATH",
                       help="append the rows to this bench file's "
                            "'uarch' section (default BENCH_engine.json)")

    listing = sub.add_parser("listing", help="show the generated program")
    listing.add_argument("--size", type=int, default=64)

    report = sub.add_parser(
        "report", help="full Markdown reproduction report"
    )
    report.add_argument("--size", type=int, default=1024,
                        help="Table II comparison size")
    report.add_argument("--output", type=str, default="",
                        help="write to a file instead of stdout")
    return parser


def _resolve_precision(args) -> str:
    if getattr(args, "fixed_point", False):
        return "q15"
    return "q15" if args.precision in ("q15", "fixed") else "float"


def _cmd_table1() -> str:
    results = size_sweep(sorted(PAPER_TABLE1))
    return render_table(
        ["N", "cycles", "paper cycles", "Mbps (6-bit)", "paper Mbps"],
        table1_rows(results),
        title="Table I — data throughput for different FFT sizes",
    )


def _cmd_table2(size: int) -> str:
    rows = run_table2(size)
    ours = rows["proposed"]
    body = []
    for key in ("standard_sw", "ti_dsp", "xtensa", "proposed"):
        row = rows[key]
        paper = PAPER_TABLE2[key]["cycles"] if size == 1024 else "-"
        body.append((
            row.name, row.cycles, paper,
            row.loads or "-", row.stores or "-", row.misses,
            format_ratio(row.cycles / ours.cycles),
        ))
    return render_table(
        ["implementation", "cycles", "paper", "loads", "stores",
         "D$ misses", "X vs proposed"],
        body,
        title=f"Table II — {size}-point FFT comparison",
    )


def _cmd_hw(group_size: int) -> str:
    report = hardware_report(group_size)
    note = "" if group_size == 32 else " (paper column is the P=32 config)"
    return render_table(
        ["metric", "modelled", "paper"],
        report.rows(),
        title=f"Hardware cost, P = {group_size}{note}",
    )


def _cmd_fft(size: int, backend: str, precision: str, workers: int,
             seed: int) -> str:
    backend = backend or "asip"
    fixed = precision == "q15"
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(size) + 1j * rng.standard_normal(size)
    if fixed:
        x *= 0.25
    try:
        eng = build_engine(size, backend=backend, precision=precision,
                           workers=workers)
    except ValueError as exc:
        raise SystemExit(str(exc))
    with eng:
        result = eng.transform(x)
        stats = eng.stats
        scale = 1.0 / size if fixed else 1.0
        reference = np.fft.fft(x) * scale
        error = float(np.max(np.abs(result.spectrum - reference)))
        lines = [
            f"N = {size}  ({'Q1.15' if fixed else 'float'} datapath, "
            f"backend = {result.backend})",
        ]
        if eng.spec.emits_sim_stats:
            cycles = result.total_cycles
            lines += [
                f"cycles = {cycles}   instructions = {stats.instructions}",
                f"loads = {stats.loads}  stores = {stats.stores}  "
                f"D$ misses = {stats.dcache_misses}",
                f"throughput = {msamples_per_second(size, cycles):.1f} "
                f"Msample/s ({paper_mbps(size, cycles):.1f} Mbps, "
                f"6-bit conv.)",
            ]
        if fixed:
            lines.append(f"overflow count = {result.overflow_count}")
        lines.append(f"max error vs numpy = {error:.2e}")
    return "\n".join(lines)


def _stream_blocks(size: int, symbols: int, fixed: bool,
                   seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    blocks = rng.standard_normal((symbols, size)) + 1j * rng.standard_normal(
        (symbols, size)
    )
    return blocks * 0.25 if fixed else blocks


def _cmd_stream(size: int, symbols: int, backend: str, precision: str,
                workers: int, batch: int, verify: bool, seed: int,
                record: str) -> str:
    backend = backend or "asip-batch"
    fixed = precision == "q15"
    blocks = _stream_blocks(size, symbols, fixed, seed)
    started = time.perf_counter()
    if workers and workers >= 2 and backend in ("asip", "asip-batch"):
        # Multi-process instruction-level streams keep the dedicated
        # sharded driver (worker-local machines, merged StreamStats).
        from .core.parallel import stream_sharded

        stats = stream_sharded(
            size, blocks, workers=workers, fixed_point=fixed,
            verify=verify, batch=batch,
        )
        elapsed = time.perf_counter() - started
        cycles = stats.per_symbol_cycles
        n_symbols = stats.symbols
    else:
        with build_engine(size, backend=backend, precision=precision,
                          workers=workers, batch=batch) as eng:
            result = eng.stream(blocks, batch=batch, verify=verify)
        elapsed = time.perf_counter() - started
        cycles = result.cycles
        n_symbols = result.n_symbols
    total_cycles = int(sum(cycles))
    per_symbol = total_cycles / n_symbols if n_symbols else 0.0
    deterministic = len(set(cycles)) <= 1
    samples = size * n_symbols
    msps = (
        msamples_per_second(samples, total_cycles) if total_cycles else 0.0
    )
    mbps = paper_mbps(samples, total_cycles) if total_cycles else 0.0
    datapath = "Q1.15" if fixed else "float"
    lines = [
        f"N = {size}  ({datapath} datapath, backend = {backend})"
        f"  symbols = {n_symbols}"
        + (f"  workers = {workers}" if workers and workers >= 2 else ""),
        f"cycles/symbol = {per_symbol:.1f}"
        f"   deterministic = {deterministic}",
        f"steady-state throughput = {msps:.1f} "
        f"Msample/s ({mbps:.1f} Mbps, 6-bit conv.)",
        f"host wall-clock = {elapsed:.2f} s "
        f"({n_symbols / elapsed:.1f} symbols/s simulated)",
    ]
    if record:
        row = {
            "backend": backend, "n": size, "symbols": n_symbols,
            "precision": precision, "workers": workers,
            "cycles_per_symbol": per_symbol, "wall_s": elapsed,
            "symbols_per_s": n_symbols / elapsed if elapsed else 0.0,
        }
        record_backend_rows(Path(record), "cli_stream", [row])
        lines.append(f"recorded -> {record}")
    return "\n".join(lines)


def _cmd_bench(sizes: str, symbols: int, backend: str, precision: str,
               workers: int, seed: int, record: str) -> str:
    try:
        size_list = [int(s) for s in sizes.split(",") if s.strip()]
    except ValueError:
        raise SystemExit(f"bad --sizes value {sizes!r}")
    if backend:
        try:
            get_backend(backend)
        except ValueError as exc:
            raise SystemExit(str(exc))
        names = [backend]
    else:
        names = None
    rows = []
    for n in size_list:
        rows.extend(benchmark_backends(
            n, symbols, precisions=(precision,), backends=names,
            workers=workers, seed=seed,
        ))
    body = [
        (
            row["backend"], row["n"], row["symbols"],
            f"{row['wall_ms']:.2f}",
            f"{row['symbols_per_s']:.0f}",
            (f"{row['cycles_per_symbol']:.0f}"
             if row["cycles_per_symbol"] else "-"),
        )
        for row in rows
    ]
    out = render_table(
        ["backend", "N", "symbols", "wall ms", "symbols/s",
         "cycles/symbol"],
        body,
        title=f"Facade backends ({precision} datapath, parity-checked)",
    )
    if record:
        record_backend_rows(Path(record), "cli_bench", rows)
        out += f"\nrecorded -> {record}"
    return out


def record_backend_rows(path: Path, section: str, rows: list) -> None:
    """Append dated per-backend rows into a BENCH_engine.json-style file.

    The file's other sections (the engine-speed trajectory's ``latest``
    / ``history``) are preserved; each section keeps its own dated
    ``latest`` entry plus a bounded ``history`` list.
    """
    stored = {}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, dict):
                stored = loaded
        except (ValueError, OSError):
            pass
    entry = {"date": time.strftime("%Y-%m-%d %H:%M:%S"), "rows": rows}
    block = stored.get(section)
    history = block.get("history", []) if isinstance(block, dict) else []
    history.append(entry)
    stored[section] = {"latest": entry, "history": history[-50:]}
    # Atomic replace: a bench run racing a serve run must never leave a
    # half-written history behind.
    telemetry.atomic_write_json(path, stored)


def _scenario_listing() -> str:
    from .scenarios import scenario_specs

    body = [
        (spec.name, spec.n_points, spec.scheme or "-", spec.precision,
         spec.description)
        for spec in scenario_specs().values()
    ]
    return render_table(
        ["scenario", "N", "scheme", "precision", "description"],
        sorted(body),
        title="Registered scenarios (python -m repro run <name>)",
    )


def _scenario_row_table(rows: list, title: str) -> str:
    body = [
        (
            row["scenario"], row["n"], row["symbols"], row["backend"],
            row["precision"],
            f"{row['ber']:.4f}" if "ber" in row else "-",
            (f"{row['evm_percent']:.2f}" if "evm_percent" in row else "-"),
            (f"{row['cycles_per_symbol']:.0f}"
             if row.get("cycles_per_symbol") else "-"),
            row.get("overflow_count", "-"),
            f"{row['wall_ms']:.1f}",
        )
        for row in rows
    ]
    return render_table(
        ["scenario", "N", "symbols", "backend", "precision", "BER",
         "EVM %", "cycles/sym", "overflow", "wall ms"],
        body,
        title=title,
    )


def _cmd_run(args) -> str:
    from .analysis.sweep import scenario_sweep
    from .core.registry import UnknownNameError
    from .scenarios import get_scenario, scenario_names

    if args.list:
        return _scenario_listing()
    overrides = dict(
        backend=args.backend,
        precision=args.precision,
        workers=args.workers,
        n_points=args.size,
        symbols=args.symbols,
        seed=args.seed,
    )
    overrides = {k: v for k, v in overrides.items() if v is not None}
    if args.all:
        rows = scenario_sweep(**overrides)
        out = _scenario_row_table(rows, "Scenario sweep (pipeline API)")
    else:
        if not args.scenario:
            raise SystemExit(
                "run needs a scenario name (or --list / --all); "
                f"registered: {', '.join(scenario_names())}"
            )
        try:
            spec = get_scenario(args.scenario)
        except UnknownNameError as exc:
            raise SystemExit(str(exc))
        rows = scenario_sweep(names=[spec.name], **overrides)
        row = rows[0]
        lines = [
            f"{spec.name}: {spec.description}",
            row["chain"],
            f"symbols = {row['symbols']}   wall = {row['wall_ms']:.1f} ms "
            f"({row['symbols_per_s']:.0f} symbols/s)",
        ]
        if "coded_ber" in row:
            lines.append(
                f"coded BER = {row['coded_ber']:.5f}   "
                f"uncoded BER = {row['uncoded_ber']:.5f}   "
                f"FER = {row['fer']:.3f}   ({row['code']})"
            )
            if "evm_percent" in row:
                lines.append(f"EVM = {row['evm_percent']:.2f} %")
        elif "ber" in row:
            lines.append(f"BER = {row['ber']:.5f}"
                         + (f"   EVM = {row['evm_percent']:.2f} %"
                            if "evm_percent" in row else ""))
        if "stage_seconds" in row:
            slowest = sorted(row["stage_seconds"].items(),
                             key=lambda kv: kv[1], reverse=True)[:3]
            lines.append("slowest stages: " + "  ".join(
                f"{name} {seconds * 1e3:.1f} ms"
                for name, seconds in slowest
            ))
        if row.get("cycles_per_symbol"):
            lines.append(
                f"FFT cycles/symbol = {row['cycles_per_symbol']:.0f}"
            )
        if row["precision"] == "q15":
            lines.append(f"overflow count = {row.get('overflow_count', 0)}")
        out = "\n".join(lines)
    if args.record:
        record_backend_rows(Path(args.record), "cli_run", rows)
        out += f"\nrecorded -> {args.record}"
    return out


def _cmd_trace(args) -> tuple:
    """Returns ``(text, exit_code)``: one scenario run under the tracer.

    The scenario executes through the pipeline API with a fresh tracer
    installed; the finished spans export through the chosen registered
    exporter, the console summary tree prints either way, and the
    ``stage.*`` aggregates are compared against the stage history
    recorded in ``BENCH_engine.json`` (informational — a flagged stage
    is reported, not fatal).
    """
    from .analysis.sweep import scenario_sweep
    from .core.registry import UnknownNameError
    from .scenarios import get_scenario

    try:
        spec = get_scenario(args.scenario)
    except UnknownNameError as exc:
        raise SystemExit(str(exc))
    try:
        exporter_spec = telemetry.get_exporter(args.exporter)
    except UnknownNameError as exc:
        raise SystemExit(str(exc))
    overrides = dict(
        backend=args.backend,
        precision=args.precision,
        workers=args.workers,
        n_points=args.size,
        symbols=args.symbols,
        seed=args.seed,
    )
    overrides = {k: v for k, v in overrides.items() if v is not None}
    with telemetry.trace(f"trace:{spec.name}") as tracer:
        rows = scenario_sweep(names=[spec.name], **overrides)
    extra_events = None
    if args.instructions:
        extra_events = _instruction_timeline(args.instructions)
    exporter = exporter_spec.factory()
    out_path = exporter.export(
        tracer, Path(args.out), extra_events=extra_events,
    )
    if args.exporter == "chrome-trace":
        telemetry.validate_trace_events(out_path.read_text())
    row = rows[0]
    lines = [
        f"{spec.name}: {row['symbols']} symbols in "
        f"{row['wall_ms']:.1f} ms on {row['backend']!r}",
        telemetry.ConsoleExporter().render(tracer).rstrip(),
    ]
    if args.regress:
        report = telemetry.compare_with_history(
            tracer, spec.name, Path(args.regress),
        )
        lines.append(report.describe())
    suffix = (f" (+{len(extra_events)} instruction events)"
              if extra_events else "")
    lines.append(
        f"trace -> {out_path} ({len(tracer.finished())} spans, "
        f"{args.exporter}){suffix}"
    )
    return "\n".join(lines), 0


def _instruction_timeline(n_points: int) -> list:
    """Instruction trace events from one interpreted N-point ASIP run."""
    from .asip.fft_asip import FFTASIP
    from .sim.trace import ExecutionTrace

    machine = FFTASIP(n_points)
    trace = ExecutionTrace(capacity=65536)
    machine.step = trace.wrap(machine)
    rng = np.random.default_rng(0)
    machine.load_input(
        rng.standard_normal(n_points) + 1j * rng.standard_normal(n_points)
    )
    machine.run_interpreted(generate_fft_program(n_points))
    return trace.trace_events(tid=f"asip-{n_points}")


def _cmd_verify(args) -> tuple:
    """Returns ``(text, exit_code)`` — non-zero on real divergences or
    on a fault the harness failed to detect."""
    from .verify import (
        FAULT_CLASSES,
        coexec_backends,
        demonstrate_fault,
        fuzz_backends,
    )

    chosen = [flag for flag in ("fuzz", "coexec", "inject")
              if getattr(args, flag) is not None]
    if len(chosen) != 1:
        raise SystemExit(
            "verify needs exactly one of --fuzz N, --coexec <scenario>, "
            "--inject <fault>"
        )

    if args.fuzz is not None:
        report = fuzz_backends(args.fuzz, seed=args.seed)
        return report.summary(), 0 if report.ok else 1

    if args.coexec is not None:
        from .core.registry import UnknownNameError
        from .scenarios import get_scenario

        try:
            spec = get_scenario(args.coexec)
        except UnknownNameError as exc:
            raise SystemExit(str(exc))
        backends = tuple(
            name.strip() for name in args.backends.split(",") if name.strip()
        )
        if len(backends) != 2:
            raise SystemExit(
                f"--backends needs a pair, got {args.backends!r}"
            )
        try:
            result = coexec_backends(
                spec.n_points, backends, symbols=args.symbols,
                precision=spec.precision or "float", seed=args.seed,
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
        head = (f"coexec {spec.name}: N={spec.n_points} "
                f"{spec.precision or 'float'} x{args.symbols} symbols "
                f"on {backends[0]} vs {backends[1]} "
                f"({result.seconds * 1e3:.1f} ms)")
        if result.ok:
            return f"{head}\nparity: OK ({result.steps} symbols compared)", 0
        return f"{head}\n{result.report.describe()}", 1

    kinds = FAULT_CLASSES if args.inject == "all" else (args.inject,)
    lines, code = [], 0
    for kind in kinds:
        fault, result = demonstrate_fault(kind, seed=args.seed)
        lines.append(fault.describe())
        if result.ok:
            lines.append("  MISSED: co-execution did not detect the fault")
            code = 1
        else:
            lines.append(f"  detected -> {result.report.describe()}")
    return "\n".join(lines), code


def _cmd_serve(args) -> tuple:
    """Returns ``(text, exit_code)``; non-zero when the load generator
    saw errors, mismatches against the serial oracle, or shed load."""
    from .serve import run_load

    backend = args.backend or "compiled"
    precision = _resolve_precision(args)
    measure = run_load(
        tenants=args.tenants, symbols=args.symbols, n_points=args.size,
        backend=backend, precision=precision, batch=args.batch,
        deadline=args.deadline, exec_timeout=args.exec_timeout,
        seed=args.seed,
    )
    title = ("Serve load generator" if args.bench
             else "Serve demo (threaded tenants, shared engine pool)")
    body = [
        ("tenants", measure["tenants"]),
        ("symbols/tenant", measure["symbols_per_tenant"]),
        ("backend", f"{backend} ({precision}, N={args.size})"),
        ("sessions/s", f"{measure['sessions_per_s']:.1f}"),
        ("symbols/s", f"{measure['symbols_per_s']:.0f}"),
        ("chunk p50", f"{measure['latency_p50_ms']:.2f} ms"),
        ("chunk p99", f"{measure['latency_p99_ms']:.2f} ms"),
        ("shed / backpressure",
         f"{measure['shed']} / {measure['backpressure']}"),
        ("timeouts", measure["timeouts"]),
        ("degraded transitions", measure["degraded_transitions"]),
        ("pool built / reused",
         f"{measure['pool_built']} / {measure['pool_reused']}"),
        ("oracle check",
         "ok" if measure["ok"] else f"FAILED {measure['errors']}"
                                    f"{measure['mismatches']}"),
    ]
    out = render_table(["metric", "value"], body, title=title)
    if args.bench and args.record:
        row = {key: value for key, value in measure.items()
               if key not in ("errors", "mismatches")}
        record_backend_rows(Path(args.record), "serve_bench", [row])
        out += f"\nrecorded -> {args.record}"
    code = 0 if measure["ok"] and measure["shed"] == 0 \
        and measure["timeouts"] == 0 else 1
    return out, code


def _cmd_uarch(args) -> tuple:
    """Returns ``(text, exit_code)``; non-zero if the cycle sandwich
    (critical path <= dual-issue <= single-issue) is ever violated."""
    from .core.registry import UnknownNameError
    from .uarch import (
        critical_path_cycles,
        record_fft_trace,
        retime,
        run_uarch_study,
        uarch_specs,
    )

    n_points = args.size
    if n_points is None and args.scenario:
        from .scenarios import get_scenario

        try:
            n_points = get_scenario(args.scenario).n_points
        except UnknownNameError as exc:
            raise SystemExit(str(exc))
    n_points = n_points or 1024

    if args.study:
        rows = run_uarch_study(n_points, seed=args.seed)
        body = [
            (row["config"], row["cycles"], row["floor_cycles"],
             f"{row['cpi']:.3f}", f"{row['speedup']:.3f}",
             row["dcache_misses"], row["gates"],
             f"{row['clock_mhz']:.0f}", f"{row['time_us']:.2f}",
             f"{row['power_mw']:.1f}", f"{row['energy_uj']:.3f}")
            for row in rows
        ]
        out = render_table(
            ["config", "cycles", "floor", "CPI", "speedup", "D$ miss",
             "gates", "MHz", "us", "mW", "uJ"],
            body,
            title=f"Issue-width design study — {n_points}-point FFT "
                  f"(extended Table II)",
        )
        if args.record:
            record_backend_rows(Path(args.record), "uarch", rows)
            out += f"\nrecorded -> {args.record}"
        return out, 0

    ops, machine = record_fft_trace(n_points, seed=args.seed)
    results = {
        name: retime(ops, spec) for name, spec in uarch_specs().items()
    }
    floor = critical_path_cycles(ops)
    body = [
        ("critical-path", "inf", floor, "-", "-", "-", "-", "-")
    ] + [
        (name, result.issue_width, result.cycles, f"{result.cpi:.3f}",
         result.stalls["raw"], result.stalls["structural"],
         result.stalls["branch"] + result.stalls["cache"],
         result.dcache_misses)
        for name, result in results.items()
    ]
    out = render_table(
        ["config", "width", "cycles", "CPI", "raw", "struct",
         "branch+cache", "D$ miss"],
        body,
        title=f"Timing overlay — {n_points}-point FFT "
              f"({machine.stats.instructions} retired ops, oracle "
              f"{machine.stats.cycles} cycles)",
    )
    dual = results["dual-issue"].cycles
    single = results["single-issue"].cycles
    ok = floor <= dual <= single
    out += (f"\nsandwich: critical-path {floor} <= dual-issue {dual} "
            f"<= single-issue {single}: {'ok' if ok else 'VIOLATED'}")
    if args.record:
        rows = [
            {"config": name, "issue_width": result.issue_width,
             "n_points": n_points, "cycles": result.cycles,
             "cpi": round(result.cpi, 3),
             "dcache_misses": result.dcache_misses, **{
                 f"stall_{kind}": cycles
                 for kind, cycles in result.stalls.items()
             }}
            for name, result in results.items()
        ]
        record_backend_rows(Path(args.record), "uarch", rows)
        out += f"\nrecorded -> {args.record}"
    return out, 0 if ok else 1


def _cmd_listing(size: int) -> str:
    return generate_fft_program(size).listing()


def main(argv=None) -> int:
    """Entry point; returns a process exit code.

    A ``--trace PATH`` flag on ``run`` / ``bench`` / ``serve`` wraps
    the whole command in a fresh tracer and exports the spans as a
    Chrome trace-event file afterwards.
    """
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", "") or ""
    if not trace_path:
        return _dispatch(args)
    with telemetry.trace(args.command) as tracer:
        code = _dispatch(args)
    out = telemetry.get_exporter("chrome-trace").factory().export(
        tracer, Path(trace_path),
    )
    telemetry.validate_trace_events(out.read_text())
    print(f"trace -> {out} ({len(tracer.finished())} spans)")
    return code


def _dispatch(args) -> int:
    if args.command == "table1":
        print(_cmd_table1())
    elif args.command == "table2":
        print(_cmd_table2(args.size))
    elif args.command == "hw":
        print(_cmd_hw(args.group_size))
    elif args.command == "fft":
        print(_cmd_fft(args.size, args.backend, _resolve_precision(args),
                       args.workers, args.seed))
    elif args.command == "stream":
        print(_cmd_stream(
            args.size, args.symbols, args.backend,
            _resolve_precision(args), args.workers, args.batch,
            not args.no_verify, args.seed, args.record,
        ))
    elif args.command == "bench":
        print(_cmd_bench(
            args.sizes, args.symbols, args.backend,
            _resolve_precision(args), args.workers, args.seed,
            args.record,
        ))
    elif args.command == "run":
        print(_cmd_run(args))
    elif args.command == "trace":
        text, code = _cmd_trace(args)
        print(text)
        return code
    elif args.command == "verify":
        text, code = _cmd_verify(args)
        print(text)
        return code
    elif args.command == "serve":
        text, code = _cmd_serve(args)
        print(text)
        return code
    elif args.command == "uarch":
        text, code = _cmd_uarch(args)
        print(text)
        return code
    elif args.command == "listing":
        print(_cmd_listing(args.size))
    elif args.command == "report":
        from .analysis.report import build_report

        text = build_report(table2_size=args.size)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text)
            print(f"wrote {args.output}")
        else:
            print(text)
    return 0
