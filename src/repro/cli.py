"""Command-line interface: regenerate any of the paper's artifacts.

Usage::

    python -m repro table1              # Table I throughput sweep
    python -m repro table2 [--size N]   # Table II four-way comparison
    python -m repro hw [--group-size P] # Section IV hardware cost
    python -m repro fft --size N        # one verified ASIP simulation
    python -m repro stream --size N --symbols K [--workers W]
                                        # steady-state streamed throughput
    python -m repro listing --size N    # the generated program listing
"""

from __future__ import annotations

import argparse

import numpy as np

from .analysis import (
    PAPER_TABLE1,
    format_ratio,
    render_table,
    size_sweep,
    table1_rows,
)
from .asip import generate_fft_program, simulate_fft
from .baselines import PAPER_TABLE2, run_table2
from .hw import hardware_report

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DATE'09 array-FFT ASIP reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table I throughput sweep")

    t2 = sub.add_parser("table2", help="Table II four-way comparison")
    t2.add_argument("--size", type=int, default=1024)

    hw = sub.add_parser("hw", help="Section IV hardware cost report")
    hw.add_argument("--group-size", type=int, default=32)

    fft = sub.add_parser("fft", help="simulate one FFT on the ASIP")
    fft.add_argument("--size", type=int, default=1024)
    fft.add_argument("--fixed-point", action="store_true")
    fft.add_argument("--seed", type=int, default=0)

    stream = sub.add_parser(
        "stream", help="streamed multi-symbol ASIP throughput"
    )
    stream.add_argument("--size", type=int, default=1024)
    stream.add_argument("--symbols", type=int, default=64)
    stream.add_argument("--workers", type=int, default=1,
                        help="shard the stream across worker processes")
    stream.add_argument("--batch", type=int, default=None,
                        help="symbols per batched execution pass")
    stream.add_argument("--fixed-point", action="store_true")
    stream.add_argument("--no-verify", action="store_true",
                        help="skip per-symbol output verification")
    stream.add_argument("--seed", type=int, default=0)

    listing = sub.add_parser("listing", help="show the generated program")
    listing.add_argument("--size", type=int, default=64)

    report = sub.add_parser(
        "report", help="full Markdown reproduction report"
    )
    report.add_argument("--size", type=int, default=1024,
                        help="Table II comparison size")
    report.add_argument("--output", type=str, default="",
                        help="write to a file instead of stdout")
    return parser


def _cmd_table1() -> str:
    results = size_sweep(sorted(PAPER_TABLE1))
    return render_table(
        ["N", "cycles", "paper cycles", "Mbps (6-bit)", "paper Mbps"],
        table1_rows(results),
        title="Table I — data throughput for different FFT sizes",
    )


def _cmd_table2(size: int) -> str:
    rows = run_table2(size)
    ours = rows["proposed"]
    body = []
    for key in ("standard_sw", "ti_dsp", "xtensa", "proposed"):
        row = rows[key]
        paper = PAPER_TABLE2[key]["cycles"] if size == 1024 else "-"
        body.append((
            row.name, row.cycles, paper,
            row.loads or "-", row.stores or "-", row.misses,
            format_ratio(row.cycles / ours.cycles),
        ))
    return render_table(
        ["implementation", "cycles", "paper", "loads", "stores",
         "D$ misses", "X vs proposed"],
        body,
        title=f"Table II — {size}-point FFT comparison",
    )


def _cmd_hw(group_size: int) -> str:
    report = hardware_report(group_size)
    note = "" if group_size == 32 else " (paper column is the P=32 config)"
    return render_table(
        ["metric", "modelled", "paper"],
        report.rows(),
        title=f"Hardware cost, P = {group_size}{note}",
    )


def _cmd_fft(size: int, fixed_point: bool, seed: int) -> str:
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(size) + 1j * rng.standard_normal(size)
    if fixed_point:
        x *= 0.25
    result = simulate_fft(x, fixed_point=fixed_point)
    scale = 1.0 / size if fixed_point else 1.0
    reference = np.fft.fft(x) * scale
    error = float(np.max(np.abs(result.spectrum - reference)))
    stats = result.stats
    lines = [
        f"N = {size}  ({'Q1.15' if fixed_point else 'float'} datapath)",
        f"cycles = {stats.cycles}   instructions = {stats.instructions}",
        f"loads = {stats.loads}  stores = {stats.stores}  "
        f"D$ misses = {stats.dcache_misses}",
        f"throughput = {result.throughput.msamples:.1f} Msample/s "
        f"({result.throughput.mbps_paper_convention:.1f} Mbps, 6-bit conv.)",
        f"max error vs numpy = {error:.2e}",
    ]
    return "\n".join(lines)


def _cmd_stream(size: int, symbols: int, workers: int, batch: int,
                fixed_point: bool, verify: bool, seed: int) -> str:
    import time

    from .asip.streaming import StreamingFFT
    from .core.parallel import stream_sharded

    rng = np.random.default_rng(seed)
    blocks = rng.standard_normal((symbols, size)) + 1j * rng.standard_normal(
        (symbols, size)
    )
    if fixed_point:
        blocks *= 0.25
    started = time.perf_counter()
    if workers and workers >= 2:
        stats = stream_sharded(
            size, blocks, workers=workers, fixed_point=fixed_point,
            verify=verify, batch=batch,
        )
    else:
        stats = StreamingFFT(size, fixed_point=fixed_point).process(
            blocks, verify=verify, batch=batch
        )
    elapsed = time.perf_counter() - started
    datapath = "Q1.15" if fixed_point else "float"
    lines = [
        f"N = {size}  ({datapath} datapath)  symbols = {stats.symbols}"
        + (f"  workers = {workers}" if workers and workers >= 2 else ""),
        f"cycles/symbol = {stats.cycles_per_symbol:.1f}"
        f"   deterministic = {stats.is_deterministic}",
        f"steady-state throughput = {stats.msamples_per_second:.1f} "
        f"Msample/s ({stats.mbps_paper_convention:.1f} Mbps, 6-bit conv.)",
        f"host wall-clock = {elapsed:.2f} s "
        f"({stats.symbols / elapsed:.1f} symbols/s simulated)",
    ]
    return "\n".join(lines)


def _cmd_listing(size: int) -> str:
    return generate_fft_program(size).listing()


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        print(_cmd_table1())
    elif args.command == "table2":
        print(_cmd_table2(args.size))
    elif args.command == "hw":
        print(_cmd_hw(args.group_size))
    elif args.command == "fft":
        print(_cmd_fft(args.size, args.fixed_point, args.seed))
    elif args.command == "stream":
        print(_cmd_stream(
            args.size, args.symbols, args.workers, args.batch,
            args.fixed_point, not args.no_verify, args.seed,
        ))
    elif args.command == "listing":
        print(_cmd_listing(args.size))
    elif args.command == "report":
        from .analysis.report import build_report

        text = build_report(table2_size=args.size)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text)
            print(f"wrote {args.output}")
        else:
            print(text)
    return 0
