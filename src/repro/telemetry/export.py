"""Trace exporters behind the repo's seventh open registry.

Three built-ins render a :class:`~repro.telemetry.spans.Tracer` (or a
plain span list):

* ``chrome-trace`` — Chrome trace-event JSON (``{"traceEvents": [...]}``
  with complete ``"X"`` events, microsecond ``ts``/``dur``, per-thread
  lanes and thread-name metadata), loadable in Perfetto or
  ``chrome://tracing``.  Extra pre-built events — e.g. the simulator's
  :meth:`~repro.sim.trace.ExecutionTrace.trace_events` instruction
  timeline — merge into the same file;
* ``jsonl`` — one JSON object per span per line, for ad-hoc tooling;
* ``console`` — an aggregated text tree (count / total / mean per span
  name, nested by parentage) for terminal use.

The registry mirrors the other six (:mod:`repro.core.registry` et al.):
``register_exporter`` / ``get_exporter`` raising
:class:`~repro.core.registry.UnknownNameError` with the sorted menu /
``exporter_names`` / name-sorted ``exporter_specs``.

:func:`validate_trace_events` is the checker the tests and the CLI run
over exported files: required keys per phase, non-negative durations,
non-decreasing ``ts``, balanced ``B``/``E`` pairs per thread lane.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..core.registry import UnknownNameError

__all__ = [
    "ExporterSpec",
    "Exporter",
    "ChromeTraceExporter",
    "JsonlExporter",
    "ConsoleExporter",
    "register_exporter",
    "unregister_exporter",
    "get_exporter",
    "exporter_names",
    "exporter_specs",
    "validate_trace_events",
]

#: pid used for all emitted events (one traced process).
TRACE_PID = 1


def _spans_of(source) -> list:
    """Accept a Tracer or any iterable of spans; spans by start time."""
    spans = source.finished() if hasattr(source, "finished") else list(source)
    return sorted(spans, key=lambda s: (s.start, s.span_id))


def _orphans_of(source) -> list:
    if hasattr(source, "orphan_events"):
        return source.orphan_events()
    return []


def _json_safe(value):
    """Coerce attribute values to something json.dumps accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    try:
        return value.item()  # numpy scalars
    except AttributeError:
        return repr(value)


class Exporter:
    """Render/export interface shared by every registered exporter."""

    def render(self, source, extra_events=None) -> str:
        raise NotImplementedError

    def export(self, source, path, extra_events=None):
        """Render to ``path``; returns the path."""
        from pathlib import Path

        path = Path(path)
        path.write_text(self.render(source, extra_events=extra_events))
        return path


class ChromeTraceExporter(Exporter):
    """Chrome trace-event JSON: complete events, one lane per thread."""

    def events(self, source, extra_events=None) -> list:
        """The trace-event dicts, ``ts``-sorted, metadata first."""
        spans = _spans_of(source)
        events = []
        threads = {}
        for record in spans:
            threads.setdefault(record.thread_id, record.thread_name)
        for name, ts, attrs, thread_id, thread_name in _orphans_of(source):
            threads.setdefault(thread_id, thread_name)
        for thread_id, thread_name in sorted(
                threads.items(), key=lambda kv: str(kv[0])):
            events.append({
                "name": "thread_name", "ph": "M", "pid": TRACE_PID,
                "tid": thread_id, "args": {"name": thread_name},
            })
        body = []
        for record in spans:
            args = {str(k): _json_safe(v)
                    for k, v in record.attributes.items()}
            args["span_id"] = record.span_id
            if record.parent_id is not None:
                args["parent_id"] = record.parent_id
            body.append({
                "name": record.name,
                "cat": record.name.split(".", 1)[0],
                "ph": "X",
                "ts": round(record.start * 1e6, 3),
                "dur": round(record.duration * 1e6, 3),
                "pid": TRACE_PID,
                "tid": record.thread_id,
                "args": args,
            })
            for ev_name, ev_ts, ev_attrs in record.events:
                body.append({
                    "name": ev_name, "cat": "event", "ph": "i",
                    "ts": round(ev_ts * 1e6, 3), "pid": TRACE_PID,
                    "tid": record.thread_id, "s": "t",
                    "args": {str(k): _json_safe(v)
                             for k, v in ev_attrs.items()},
                })
        for name, ts, attrs, thread_id, thread_name in _orphans_of(source):
            body.append({
                "name": name, "cat": "event", "ph": "i",
                "ts": round(ts * 1e6, 3), "pid": TRACE_PID,
                "tid": thread_id, "s": "p",
                "args": {str(k): _json_safe(v) for k, v in attrs.items()},
            })
        if extra_events:
            body.extend(extra_events)
        body.sort(key=lambda ev: ev.get("ts", 0.0))
        return events + body

    def render(self, source, extra_events=None) -> str:
        payload = {
            "traceEvents": self.events(source, extra_events=extra_events),
            "displayTimeUnit": "ms",
        }
        return json.dumps(payload, indent=1) + "\n"


class JsonlExporter(Exporter):
    """One JSON object per span per line (start-time order)."""

    def render(self, source, extra_events=None) -> str:
        lines = []
        for record in _spans_of(source):
            lines.append(json.dumps({
                "name": record.name,
                "span_id": record.span_id,
                "parent_id": record.parent_id,
                "start_us": round(record.start * 1e6, 3),
                "dur_us": round(record.duration * 1e6, 3),
                "thread": record.thread_name,
                "attributes": {str(k): _json_safe(v)
                               for k, v in record.attributes.items()},
                "events": [
                    {"name": name, "ts_us": round(ts * 1e6, 3),
                     "attributes": {str(k): _json_safe(v)
                                    for k, v in attrs.items()}}
                    for name, ts, attrs in record.events
                ],
            }))
        return "\n".join(lines) + ("\n" if lines else "")


class ConsoleExporter(Exporter):
    """Aggregated text tree: count / total / mean per span name."""

    def render(self, source, extra_events=None) -> str:
        spans = _spans_of(source)
        by_id = {record.span_id: record for record in spans}
        # Aggregate by the *name path* from the root, so e.g. every
        # "engine.transform" under "stage.transform" folds into one row.
        paths = {}
        roots = {}

        def path_of(record):
            names = [record.name]
            parent = by_id.get(record.parent_id)
            while parent is not None:
                names.append(parent.name)
                parent = by_id.get(parent.parent_id)
            return tuple(reversed(names))

        for record in spans:
            path = path_of(record)
            row = paths.setdefault(path, {"count": 0, "total": 0.0})
            row["count"] += 1
            row["total"] += record.duration
            if len(path) == 1:
                roots[path] = True
        lines = ["span tree (count, total ms, mean ms)"]
        for path in sorted(paths):
            row = paths[path]
            indent = "  " * (len(path) - 1)
            mean = row["total"] / row["count"] if row["count"] else 0.0
            lines.append(
                f"{indent}{path[-1]:<28} {row['count']:>5}  "
                f"{row['total'] * 1e3:>10.3f}  {mean * 1e3:>9.3f}"
            )
        orphans = _orphans_of(source)
        if orphans:
            lines.append(f"tracer events: "
                         + ", ".join(sorted({o[0] for o in orphans})))
        return "\n".join(lines) + "\n"


def validate_trace_events(payload) -> int:
    """Validate Chrome trace events; returns the event count.

    ``payload`` may be the JSON string, the ``{"traceEvents": [...]}``
    dict, or the event list itself.  Raises ``ValueError`` on the
    first malformed event: a missing required key, a negative ``dur``,
    ``ts`` going backwards, or an unbalanced ``B``/``E`` pair within
    one ``(pid, tid)`` lane.
    """
    if isinstance(payload, str):
        payload = json.loads(payload)
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("payload has no traceEvents list")
    else:
        events = list(payload)
    last_ts = None
    open_begins = {}
    for index, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {index} is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "B", "E", "i", "I", "M"):
            raise ValueError(f"event {index} has unsupported ph {ph!r}")
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                raise ValueError(f"event {index} is missing {key!r}")
        if ph == "M":
            continue
        if "ts" not in ev:
            raise ValueError(f"event {index} ({ph}) is missing 'ts'")
        ts = float(ev["ts"])
        if last_ts is not None and ts < last_ts:
            raise ValueError(
                f"event {index} ts {ts} goes backwards (previous {last_ts})"
            )
        last_ts = ts
        lane = (ev["pid"], ev["tid"])
        if ph == "X":
            if "dur" not in ev:
                raise ValueError(f"event {index} (X) is missing 'dur'")
            if float(ev["dur"]) < 0:
                raise ValueError(f"event {index} has negative dur")
        elif ph == "B":
            open_begins.setdefault(lane, []).append(ev["name"])
        elif ph == "E":
            stack = open_begins.get(lane)
            if not stack:
                raise ValueError(
                    f"event {index}: E with no open B on lane {lane}"
                )
            stack.pop()
    leftovers = {lane: stack for lane, stack in open_begins.items() if stack}
    if leftovers:
        raise ValueError(f"unmatched B events: {leftovers}")
    return len(events)


# Registry ----------------------------------------------------------------


@dataclass(frozen=True)
class ExporterSpec:
    """One exporter's registry entry.

    ``factory()`` (no arguments) returns an :class:`Exporter`
    instance; ``description`` is the one-liner shown in menus.
    """

    name: str
    factory: object
    description: str = ""


_REGISTRY: dict = {}


def register_exporter(spec: ExporterSpec, replace: bool = False) -> None:
    """Register ``spec`` under ``spec.name`` (loud on shadowing)."""
    if not isinstance(spec, ExporterSpec):
        raise TypeError(
            f"expected an ExporterSpec, got {type(spec).__name__}"
        )
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"exporter {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec


def unregister_exporter(name: str) -> None:
    """Remove an exporter (primarily for tests registering throwaways)."""
    _REGISTRY.pop(name, None)


def get_exporter(name: str) -> ExporterSpec:
    """Look up an exporter by name; unknown names get the sorted menu."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise UnknownNameError(
            f"unknown exporter {name!r}; registered exporters: "
            f"{', '.join(exporter_names())}"
        )
    return spec


def exporter_names() -> list:
    """Sorted names of every registered exporter."""
    return sorted(_REGISTRY)


def exporter_specs() -> dict:
    """Name-sorted snapshot of the registry (name -> ExporterSpec)."""
    return {name: _REGISTRY[name] for name in sorted(_REGISTRY)}


register_exporter(ExporterSpec(
    "chrome-trace", ChromeTraceExporter,
    "Chrome trace-event JSON (Perfetto / chrome://tracing)",
))
register_exporter(ExporterSpec(
    "jsonl", JsonlExporter, "one JSON object per span per line",
))
register_exporter(ExporterSpec(
    "console", ConsoleExporter, "aggregated text summary tree",
))
