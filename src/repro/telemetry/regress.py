"""Span-aggregate regression checks against ``BENCH_engine.json``.

``python -m repro run --record`` (and the full benchmark) have been
appending per-scenario ``stage_seconds`` into the bench file's dated
history since PR 5; this module closes the loop: aggregate a traced
run's ``stage.*`` spans and compare each stage against the median of
the recorded history, flagging stages that got materially slower.

Also home to :func:`atomic_write_json` — the tmp-file + ``os.replace``
writer every ``BENCH_engine.json`` mutation goes through, so a bench
run racing a serve run can no longer clobber the history with a
half-written file.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "atomic_write_json",
    "span_aggregates",
    "stage_history",
    "Regression",
    "RegressionReport",
    "compare_aggregates",
    "compare_with_history",
]


def atomic_write_json(path, data) -> None:
    """Serialise ``data`` to ``path`` atomically (tmp + ``os.replace``).

    The temp file lands in the destination directory so the final
    rename never crosses filesystems; readers see either the old
    complete file or the new complete file, never a torn write.
    """
    path = Path(path)
    directory = path.parent if str(path.parent) else Path(".")
    handle, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=path.name + ".", suffix=".tmp",
    )
    try:
        with os.fdopen(handle, "w") as stream:
            stream.write(json.dumps(data, indent=2) + "\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def span_aggregates(source) -> dict:
    """``{span name: {count, total_s, max_s}}`` for a tracer/span list."""
    if hasattr(source, "aggregates"):
        return source.aggregates()
    totals = {}
    for record in source:
        row = totals.setdefault(
            record.name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        row["count"] += 1
        row["total_s"] += record.duration
        row["max_s"] = max(row["max_s"], record.duration)
    return totals


def _median(values) -> float:
    data = sorted(values)
    mid = len(data) // 2
    if len(data) % 2:
        return float(data[mid])
    return float(data[mid - 1] + data[mid]) / 2.0


def stage_history(path, scenario: str) -> dict:
    """Per-stage baselines from the bench file's recorded history.

    Collects every ``stage_seconds`` dict recorded for ``scenario``
    across the ``cli_run`` section and the full-bench trajectory's
    ``scenarios`` rows, and reduces each stage to the **median** of
    its history (robust to one slow outlier run).  Returns
    ``{stage: {"seconds": median, "runs": n}}`` (empty when the file
    or scenario has no history).
    """
    path = Path(path)
    if not path.exists():
        return {}
    try:
        stored = json.loads(path.read_text())
    except (ValueError, OSError):
        return {}
    if not isinstance(stored, dict):
        return {}
    samples: dict = {}

    def _collect(rows):
        for row in rows or []:
            if not isinstance(row, dict):
                continue
            if row.get("scenario") != scenario:
                continue
            stage_seconds = row.get("stage_seconds")
            if not isinstance(stage_seconds, dict):
                continue
            for stage, seconds in stage_seconds.items():
                samples.setdefault(stage, []).append(float(seconds))

    section = stored.get("cli_run")
    if isinstance(section, dict):
        for entry in section.get("history", []):
            if isinstance(entry, dict):
                _collect(entry.get("rows"))
    for entry in stored.get("history", []) or []:
        if isinstance(entry, dict):
            _collect(entry.get("scenarios"))
    latest = stored.get("latest")
    if isinstance(latest, dict) and not stored.get("history"):
        _collect(latest.get("scenarios"))
    return {
        stage: {"seconds": _median(values), "runs": len(values)}
        for stage, values in samples.items()
    }


@dataclass(frozen=True)
class Regression:
    """One stage measurably slower than its recorded baseline."""

    name: str
    baseline_s: float
    current_s: float

    @property
    def ratio(self) -> float:
        return self.current_s / self.baseline_s if self.baseline_s else 0.0

    def __str__(self) -> str:
        return (f"{self.name}: {self.current_s * 1e3:.1f} ms vs "
                f"{self.baseline_s * 1e3:.1f} ms baseline "
                f"({self.ratio:.1f}x)")


@dataclass
class RegressionReport:
    """Outcome of one history comparison."""

    scenario: str
    checked: int = 0
    flagged: list = field(default_factory=list)
    missing_baseline: bool = False

    @property
    def ok(self) -> bool:
        return not self.flagged

    def describe(self) -> str:
        if self.missing_baseline:
            return (f"regress: no recorded stage history for "
                    f"{self.scenario!r} (run with --record to seed it)")
        if not self.flagged:
            return (f"regress: {self.checked} stages within threshold of "
                    f"the recorded history")
        lines = [f"regress: {len(self.flagged)} of {self.checked} stages "
                 f"slower than the recorded history:"]
        lines.extend(f"  {flag}" for flag in self.flagged)
        return "\n".join(lines)


def compare_aggregates(current: dict, baseline: dict,
                       threshold: float = 2.0,
                       min_seconds: float = 2e-3) -> list:
    """Flag entries of ``current`` slower than ``threshold`` x baseline.

    ``current`` maps names to aggregate rows (``total_s``) or floats;
    ``baseline`` maps names to floats.  Entries under ``min_seconds``
    are ignored — at sub-millisecond scale the ratio is noise.
    """
    flagged = []
    for name in sorted(current):
        if name not in baseline:
            continue
        row = current[name]
        seconds = row["total_s"] if isinstance(row, dict) else float(row)
        base = float(baseline[name])
        if seconds < min_seconds:
            continue
        if base > 0 and seconds > threshold * base:
            flagged.append(Regression(name, base, seconds))
    return flagged


def compare_with_history(source, scenario: str, path,
                         threshold: float = 2.0,
                         min_seconds: float = 2e-3) -> RegressionReport:
    """Compare a traced run's ``stage.*`` spans against bench history.

    ``source`` is a tracer or span list; span names ``stage.<name>``
    map onto the ``stage_seconds`` keys recorded in
    ``BENCH_engine.json`` for ``scenario``.  Informational by design —
    the caller decides whether a flagged stage is fatal.
    """
    baseline_rows = stage_history(path, scenario)
    report = RegressionReport(scenario=scenario)
    if not baseline_rows:
        report.missing_baseline = True
        return report
    current = {}
    for name, row in span_aggregates(source).items():
        if name.startswith("stage."):
            current[name[len("stage."):]] = row
    baseline = {stage: row["seconds"]
                for stage, row in baseline_rows.items()}
    report.checked = len([s for s in current if s in baseline])
    report.flagged = compare_aggregates(
        current, baseline, threshold=threshold, min_seconds=min_seconds,
    )
    return report
