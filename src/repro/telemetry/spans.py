"""Span-based tracing with thread-local context propagation.

One :class:`Tracer` collects :class:`Span` records — named, nested,
attributed intervals measured on ``time.perf_counter`` relative to the
tracer's epoch.  Each thread keeps its own current-span stack (a
``threading.local``), so concurrently executing tenants/stages nest
correctly without any locking on the hot path; finishing a span takes
the tracer lock once to append it to the finished list.

The module-level API is what instrumented code calls:

* :func:`span` — open a nested span as a context manager;
* :func:`event` — attach an instant event to the current span (or to
  the tracer itself when no span is open — breaker state flips from
  pool teardown threads land here);
* :func:`current_span` / :func:`attach` — capture the caller's span
  and re-parent work executed on another thread under it (the session
  watchdog and the serve tier use this);
* :func:`trace` — install a fresh tracer for a ``with`` block;
* :func:`enabled` — is any tracer installed right now?

**Disabled-overhead rule** (pinned by the ``telemetry_quick`` bench
row): with no tracer installed, :func:`span` returns one cached no-op
context manager — a module attribute load, a ``None`` check and a
constant return.  No ``Span`` object, no clock read, no lock.  Hot
loops that want to skip even argument building can guard with
``if telemetry.enabled():``.
"""

from __future__ import annotations

import itertools
import threading
import time

__all__ = [
    "Span",
    "Tracer",
    "NULL_SPAN",
    "span",
    "event",
    "current_span",
    "attach",
    "trace",
    "enabled",
    "active_tracer",
    "install",
    "uninstall",
]


class Span:
    """One named interval: attributes, instant events, parent linkage.

    Times (``start`` / ``end``) are seconds relative to the owning
    tracer's epoch; ``duration`` is available once the span finished.
    """

    __slots__ = ("name", "span_id", "parent_id", "attributes", "events",
                 "start", "end", "thread_id", "thread_name")

    is_recording = True

    def __init__(self, name: str, span_id: int, parent_id, start: float,
                 attributes: dict):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = None
        self.attributes = attributes
        self.events = []
        current = threading.current_thread()
        self.thread_id = current.ident
        self.thread_name = current.name

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return max(self.end - self.start, 0.0)

    def set(self, key: str, value) -> None:
        """Set one attribute (late sets after finish are fine)."""
        self.attributes[key] = value

    def add_event(self, name: str, timestamp: float, attributes=None) -> None:
        """Attach an instant event (timestamp in tracer-epoch seconds)."""
        self.events.append((name, timestamp, attributes or {}))

    def __repr__(self) -> str:
        state = "open" if self.end is None else f"{self.duration * 1e3:.3f}ms"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class _NullSpan:
    """The span handed out while tracing is disabled; every op a no-op."""

    __slots__ = ()

    is_recording = False
    name = ""
    span_id = 0
    parent_id = None
    attributes = {}
    events = ()
    start = 0.0
    end = 0.0
    duration = 0.0

    def set(self, key, value):
        pass

    def add_event(self, name, timestamp=0.0, attributes=None):
        pass

    def __repr__(self) -> str:
        return "NullSpan()"


NULL_SPAN = _NullSpan()


class _NullContext:
    """Cached do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return NULL_SPAN

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()


class _SpanContext:
    """Context manager opening one span on the owning tracer."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span")

    def __init__(self, tracer, name, attributes):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span = None

    def __enter__(self) -> Span:
        self._span = self._tracer._start(self._name, self._attributes)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.set("error", exc_type.__name__)
        self._tracer._finish(self._span)
        return False


class _AttachContext:
    """Context manager pushing a foreign span as this thread's current.

    Used to carry trace context across a thread boundary: capture the
    parent with :func:`current_span` on the submitting thread, then
    ``with telemetry.attach(parent):`` inside the worker so spans it
    opens nest under the submitter's request.  The span is *not*
    finished on exit — the opening thread owns its lifecycle.
    """

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer, span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack().append(self._span)
        return self._span

    def __exit__(self, *exc) -> bool:
        stack = self._tracer._stack()
        if stack and stack[-1] is self._span:
            stack.pop()
        return False


class Tracer:
    """Collects spans for one traced run; thread-safe, epoch-anchored."""

    def __init__(self, name: str = "trace"):
        self.name = name
        self._epoch = time.perf_counter()
        self._wall_start = time.time()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._finished_spans = []
        self._orphan_events = []

    # Clock ---------------------------------------------------------------

    def now(self) -> float:
        """Seconds since this tracer's epoch."""
        return time.perf_counter() - self._epoch

    # Thread-local current-span stack -------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self):
        """This thread's innermost open span (None outside any span)."""
        stack = self._stack()
        return stack[-1] if stack else None

    # Span lifecycle ------------------------------------------------------

    def span(self, name: str, **attributes) -> _SpanContext:
        """Open a nested span for a ``with`` block; yields the Span."""
        return _SpanContext(self, name, attributes)

    def attach(self, parent: Span) -> _AttachContext:
        """Adopt ``parent`` as this thread's current span for a block."""
        return _AttachContext(self, parent)

    def _start(self, name: str, attributes: dict) -> Span:
        stack = self._stack()
        parent = stack[-1] if stack else None
        record = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            start=self.now(),
            attributes=attributes,
        )
        stack.append(record)
        return record

    def _finish(self, record: Span) -> None:
        record.end = self.now()
        stack = self._stack()
        if stack and stack[-1] is record:
            stack.pop()
        with self._lock:
            self._finished_spans.append(record)

    def event(self, name: str, **attributes) -> None:
        """Instant event on the current span (or tracer-level orphan)."""
        timestamp = self.now()
        target = self.current()
        if target is not None:
            target.add_event(name, timestamp, attributes)
            return
        current = threading.current_thread()
        with self._lock:
            self._orphan_events.append(
                (name, timestamp, attributes, current.ident, current.name)
            )

    # Reading -------------------------------------------------------------

    def finished(self) -> list:
        """Snapshot of finished spans in completion order."""
        with self._lock:
            return list(self._finished_spans)

    def orphan_events(self) -> list:
        """Snapshot of events recorded outside any span."""
        with self._lock:
            return list(self._orphan_events)

    def aggregates(self) -> dict:
        """Per-name totals: ``{name: {count, total_s, max_s}}``."""
        totals = {}
        for record in self.finished():
            row = totals.setdefault(
                record.name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            row["count"] += 1
            row["total_s"] += record.duration
            row["max_s"] = max(row["max_s"], record.duration)
        return totals

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished_spans)

    def __repr__(self) -> str:
        return f"Tracer({self.name!r}, spans={len(self)})"


# Module-level active tracer ----------------------------------------------
#
# One process-wide active tracer (plus a stack for nested installs).
# Reads on the hot path are a single module-attribute load; mutation is
# rare (CLI/bench/test setup) and serialised under a lock.

_ACTIVE = None
_INSTALLED = []
_INSTALL_LOCK = threading.Lock()


def enabled() -> bool:
    """Is a tracer installed right now? (The hot-path guard.)"""
    return _ACTIVE is not None


def active_tracer():
    """The installed :class:`Tracer` (None while disabled)."""
    return _ACTIVE


def install(tracer: Tracer) -> None:
    """Make ``tracer`` the active tracer (stacks over any previous one)."""
    global _ACTIVE
    with _INSTALL_LOCK:
        _INSTALLED.append(tracer)
        _ACTIVE = tracer


def uninstall(tracer: Tracer = None) -> None:
    """Remove ``tracer`` (default: the newest) and restore the previous."""
    global _ACTIVE
    with _INSTALL_LOCK:
        if tracer is None:
            if _INSTALLED:
                _INSTALLED.pop()
        elif tracer in _INSTALLED:
            _INSTALLED.remove(tracer)
        _ACTIVE = _INSTALLED[-1] if _INSTALLED else None


class trace:
    """``with telemetry.trace() as tracer:`` — trace the enclosed block.

    Installs a fresh :class:`Tracer` on entry and uninstalls it on
    exit; the tracer object stays readable afterwards (export it, feed
    it to :func:`repro.telemetry.regress.compare_with_history`).
    """

    def __init__(self, name: str = "trace"):
        self.tracer = Tracer(name)

    def __enter__(self) -> Tracer:
        install(self.tracer)
        return self.tracer

    def __exit__(self, *exc) -> bool:
        uninstall(self.tracer)
        return False


def span(name: str, **attributes):
    """Open a span on the active tracer (cached no-op when disabled)."""
    active = _ACTIVE
    if active is None:
        return _NULL_CONTEXT
    return active.span(name, **attributes)


def event(name: str, **attributes) -> None:
    """Record an instant event on the active tracer (no-op when disabled)."""
    active = _ACTIVE
    if active is not None:
        active.event(name, **attributes)


def current_span():
    """The calling thread's current span (None when disabled/outside)."""
    active = _ACTIVE
    return active.current() if active is not None else None


def attach(parent):
    """Adopt ``parent`` (from :func:`current_span`) on this thread.

    Returns a context manager; a no-op when tracing is disabled or
    ``parent`` is None, so call sites never need their own guard.
    """
    active = _ACTIVE
    if active is None or parent is None:
        return _NULL_CONTEXT
    return active.attach(parent)
