"""Shared metrics core: counters, histograms and the percentile rule.

This is the single home of the nearest-rank :func:`percentile` the
serving tier's quantiles are built on (``repro.serve.metrics``
re-exports it), plus two small thread-safe primitives:

* :class:`Counter` — a monotonic counter behind one lock;
* :class:`Histogram` — a rolling window of float samples with
  nearest-rank quantile snapshots (the generalisation of
  ``TenantMetrics``' latency window).

Everything here is dependency-free and lock-per-instance: the hot path
is one append or one integer bump, never cross-instance contention.
"""

from __future__ import annotations

import threading
from collections import deque

__all__ = ["percentile", "Counter", "Histogram"]


def percentile(samples, q: float) -> float:
    """Nearest-rank percentile of ``samples`` (0 for an empty set).

    Tiny and dependency-free on purpose — latency sets here are a few
    thousand floats at most, sorting per snapshot is cheap.  Edge
    rules (pinned by tests): an empty set yields 0.0; a single sample
    is every percentile of itself; ``q=0`` is the minimum; ``q=100``
    is the maximum; ties resolve to the nearest rank in the *sorted*
    order (duplicates collapse naturally).
    """
    data = sorted(samples)
    if not data:
        return 0.0
    rank = max(int(round(q / 100.0 * len(data) + 0.5)), 1)
    return float(data[min(rank, len(data)) - 1])


class Counter:
    """A named, thread-safe, monotonically increasing counter."""

    def __init__(self, name: str = ""):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> int:
        """Add ``amount``; returns the new value."""
        with self._lock:
            self._value += amount
            return self._value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Histogram:
    """A rolling window of float samples with nearest-rank quantiles.

    ``window`` bounds memory: only the most recent ``window`` samples
    participate in quantiles (the total observation count keeps
    climbing).  One lock per instance; snapshots are self-consistent.
    """

    def __init__(self, name: str = "", window: int = 4096):
        if window <= 0:
            raise ValueError("window must be positive")
        self.name = name
        self.window = window
        self._lock = threading.Lock()
        self._samples = deque(maxlen=window)
        self._count = 0
        self._total = 0.0

    def observe(self, value: float) -> None:
        """Fold one sample in (hot path: one append + two adds)."""
        value = float(value)
        with self._lock:
            self._samples.append(value)
            self._count += 1
            self._total += value

    def values(self) -> list:
        """The current window's samples, oldest first."""
        with self._lock:
            return list(self._samples)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the current window."""
        return percentile(self.values(), q)

    @property
    def count(self) -> int:
        """Total samples ever observed (not just the window)."""
        with self._lock:
            return self._count

    def snapshot(self) -> dict:
        """Self-consistent summary of the current window."""
        with self._lock:
            data = list(self._samples)
            count = self._count
            total = self._total
        return {
            "count": count,
            "window": len(data),
            "mean": (sum(data) / len(data)) if data else 0.0,
            "total": total,
            "min": min(data) if data else 0.0,
            "max": max(data) if data else 0.0,
            "p50": percentile(data, 50.0),
            "p99": percentile(data, 99.0),
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def __repr__(self) -> str:
        return (f"Histogram({self.name!r}, window={self.window}, "
                f"observed={self.count})")
