"""repro.telemetry — unified tracing, metrics and profiling.

One observability layer across every tier of the system::

    >>> from repro import telemetry
    >>> with telemetry.trace() as tracer:
    ...     repro.run_scenario("dvbt-2k")
    >>> telemetry.get_exporter("chrome-trace").factory().export(
    ...     tracer, "trace.json")

With a tracer installed, spans nest from the outermost layer down to
the trellis: ``serve.request`` (tenant/deadline attributes, carried
across worker threads) > ``session.chunk`` > ``pool.execute`` >
``engine.transform`` > ``sharded.dispatch``; pipeline runs emit
``pipeline.run`` > ``stage.<name>`` (from which the legacy
``stage_seconds`` metric is derived) > ``viterbi.branch-metrics`` /
``viterbi.acs`` / ``viterbi.traceback``; circuit-breaker state changes
land as instant events.  With no tracer installed every site costs one
attribute load and a ``None`` check (pinned <= 2% by the
``telemetry_quick`` bench row).

Submodules:

* :mod:`repro.telemetry.spans`   — the tracer (thread-local context,
  cross-thread :func:`attach`, the no-op disabled path);
* :mod:`repro.telemetry.metrics` — counters, histograms and the
  nearest-rank :func:`percentile` the serve tier re-exports;
* :mod:`repro.telemetry.export`  — the exporter registry
  (``chrome-trace`` / ``jsonl`` / ``console``) + trace validation;
* :mod:`repro.telemetry.regress` — span aggregates vs the
  ``BENCH_engine.json`` history, and the atomic JSON writer.

Surfaced on the CLI as ``python -m repro trace <scenario>`` and the
``--trace`` flag on ``run`` / ``serve`` / ``bench``.
"""

from .export import (
    ChromeTraceExporter,
    ConsoleExporter,
    Exporter,
    ExporterSpec,
    JsonlExporter,
    exporter_names,
    exporter_specs,
    get_exporter,
    register_exporter,
    unregister_exporter,
    validate_trace_events,
)
from .metrics import Counter, Histogram, percentile
from .regress import (
    RegressionReport,
    atomic_write_json,
    compare_with_history,
    span_aggregates,
)
from .spans import (
    NULL_SPAN,
    Span,
    Tracer,
    active_tracer,
    attach,
    current_span,
    enabled,
    event,
    install,
    span,
    trace,
    uninstall,
)

__all__ = [
    # spans
    "Span",
    "Tracer",
    "NULL_SPAN",
    "span",
    "event",
    "current_span",
    "attach",
    "trace",
    "enabled",
    "active_tracer",
    "install",
    "uninstall",
    # metrics
    "Counter",
    "Histogram",
    "percentile",
    # export
    "Exporter",
    "ExporterSpec",
    "ChromeTraceExporter",
    "JsonlExporter",
    "ConsoleExporter",
    "register_exporter",
    "unregister_exporter",
    "get_exporter",
    "exporter_names",
    "exporter_specs",
    "validate_trace_events",
    # regress
    "atomic_write_json",
    "span_aggregates",
    "compare_with_history",
    "RegressionReport",
]
